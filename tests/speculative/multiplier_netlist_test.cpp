#include "speculative/multiplier_netlist.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/testutil.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/timing.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;
using netlist::Netlist;
using netlist::Simulator;

struct MulCase {
  int width;
  int window;
  ScsaVariant variant;
};

class MultiplierNetlistTest : public ::testing::TestWithParam<MulCase> {};

TEST_P(MultiplierNetlistTest, RecoveryBankMultipliesExactly) {
  const auto [n, k, variant] = GetParam();
  const Netlist nl = netlist::optimize(
      build_multiplier_netlist(MultiplierNetlistConfig{n, k, variant}));
  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(static_cast<unsigned>(n * 7 + k));
  for (int round = 0; round < 4; ++round) {
    std::vector<ApInt> a, b;
    for (int v = 0; v < 64; ++v) {
      a.push_back(ApInt::random(n, rng));
      b.push_back(ApInt::random(n, rng));
    }
    testutil::load_operands(sim, a, b, n);
    sim.run();
    for (std::size_t v = 0; v < 64; ++v) {
      // Schoolbook reference product at 2n bits.
      ApInt expected(2 * n);
      const ApInt wide_a = a[v].zext(2 * n);
      for (int j = 0; j < n; ++j) {
        if (b[v].bit(j)) expected = expected + wide_a.shl(j);
      }
      // Recovery is always exact.
      ASSERT_EQ(testutil::read_bus(sim, "rec", 2 * n, v), expected) << "vector " << v;
      // The speculative product is exact whenever detection does not stall.
      const bool stalled = ((sim.output("stall") >> v) & 1) != 0;
      if (!stalled) {
        const ApInt spec = testutil::read_bus(sim, "product", 2 * n, v);
        if (variant == ScsaVariant::kScsa1) {
          ASSERT_EQ(spec, expected);
        } else {
          const bool err0 = ((sim.output("err0") >> v) & 1) != 0;
          const ApInt selected =
              err0 ? testutil::read_bus(sim, "product1", 2 * n, v) : spec;
          ASSERT_EQ(selected, expected);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configurations, MultiplierNetlistTest,
                         ::testing::Values(MulCase{8, 4, ScsaVariant::kScsa1},
                                           MulCase{8, 4, ScsaVariant::kScsa2},
                                           MulCase{12, 6, ScsaVariant::kScsa2},
                                           MulCase{16, 8, ScsaVariant::kScsa1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.width) + "_k" +
                                  std::to_string(info.param.window) + "_" +
                                  to_string(info.param.variant);
                         });

TEST(MultiplierNetlist, HasAllOutputGroupsAndPlausibleTiming) {
  const auto nl = netlist::optimize(
      build_multiplier_netlist(MultiplierNetlistConfig{16, 8, ScsaVariant::kScsa2}));
  const auto timing = netlist::analyze_timing(nl);
  EXPECT_GT(timing.delay_of(kGroupSpec), 0.0);
  EXPECT_GT(timing.delay_of(kGroupDetect), 0.0);
  EXPECT_GT(timing.delay_of(kGroupRecovery), timing.delay_of(kGroupSpec));
  // The partial-product tree dominates: detection lands close to the
  // speculative product (both wait for the tree).
  EXPECT_LT(timing.delay_of(kGroupDetect), 1.2 * timing.delay_of(kGroupSpec));
}

}  // namespace
}  // namespace vlcsa::spec
