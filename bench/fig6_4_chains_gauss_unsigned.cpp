// Fig 6.4 — carry-chain length statistics for unsigned Gaussian inputs on a
// 32-bit adder.  sigma = 2^20 keeps |sample| well inside 32 bits (the paper
// plots a 32-bit adder without stating sigma for this figure; the shape is
// sigma-insensitive as long as samples fit).  Runs the registry's
// "fig6.4/gaussian-unsigned" experiment on the parallel engine.

#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.4",
                        "Carry-chain length statistics, unsigned Gaussian inputs "
                        "(mu=0, sigma=2^20), 32-bit adder, " +
                            std::to_string(args.samples) + " additions.");

  const auto* experiment = harness::find_chain_profile_experiment("fig6.4/gaussian-unsigned");
  if (experiment == nullptr) {
    std::cerr << "fig6.4/gaussian-unsigned missing from the registry\n";
    return 1;
  }
  const auto profiler =
      harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: short-chain dominated, similar to unsigned uniform —\n"
               "magnitude alone does not create long chains (Ch. 6.3).\n";
  return 0;
}
