// Table 7.4 — SCSA/VLCSA 1 window sizes for target error rates 0.01% and
// 0.25% (unsigned uniform inputs), from the analytical sizing rule, each
// validated by Monte Carlo.

#include <iostream>

#include "arith/distributions.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 200000);
  harness::print_banner(std::cout, "Table 7.4",
                        "SCSA window sizes for error rates 0.01% / 0.25% (analytical "
                        "sizing + Monte Carlo check, " + std::to_string(args.samples) +
                            " samples per cell).");

  harness::Table table({"adder width", "k @ 0.01%", "model", "simulated", "k @ 0.25%",
                        "model", "simulated"});
  for (const int n : {64, 128, 256, 512}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const double target : {1e-4, 2.5e-3}) {
      const int k = spec::min_window_for_error_rate(n, target);
      auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
      const auto result = harness::run_vlcsa(
          spec::VlcsaConfig{n, k, spec::ScsaVariant::kScsa1}, *source, args.samples,
          args.seed);
      row.push_back(std::to_string(k));
      row.push_back(harness::fmt_pct(spec::scsa_error_rate(n, k)));
      row.push_back(harness::fmt_pct(result.nominal_rate()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nPaper values: k = 14/15/16/17 (0.01%) and 10/11/12/13 (0.25%); the\n"
               "sizing rule reproduces all eight (see DESIGN.md on the paper's display\n"
               "rounding).\n";
  return 0;
}
