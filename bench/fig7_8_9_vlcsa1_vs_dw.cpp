// Figs 7.8 / 7.9 — delay and area of the full VLCSA 1 vs the DesignWare
// substitute at the 0.01% / 0.25% design points.  Delay columns report the
// "correctly speculated" path max(spec, detect) plus the recovery path.

#include <algorithm>
#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

namespace {

struct Point {
  double correct;
  double recovery;
  double area;
};

Point measure(int n, int k) {
  const auto r = vlcsa::harness::synthesize(
      spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
  return {std::max(r.delay_of("spec"), r.delay_of("detect")), r.delay_of("recovery"),
          r.area};
}

}  // namespace

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figures 7.8 / 7.9",
                        "VLCSA 1 vs DesignWare-substitute: correctly-speculated and "
                        "recovery delays [tau], area [inv].");

  harness::Table delay({"n", "DesignWare", "correct @0.01%", "vs DW", "recovery @0.01%",
                        "correct @0.25%", "vs DW", "recovery @0.25%"});
  harness::Table area({"n", "DesignWare", "VLCSA1 @0.01%", "vs DW", "VLCSA1 @0.25%",
                       "vs DW"});
  for (const int n : {64, 128, 256, 512}) {
    const auto dw = harness::synthesize(adders::build_designware_adder(n));
    const auto p01 = measure(n, spec::min_window_for_error_rate(n, 1e-4));
    const auto p25 = measure(n, spec::min_window_for_error_rate(n, 2.5e-3));
    delay.add_row({std::to_string(n), harness::fmt_fixed(dw.delay, 1),
                   harness::fmt_fixed(p01.correct, 1),
                   harness::fmt_delta_pct(p01.correct, dw.delay),
                   harness::fmt_fixed(p01.recovery, 1), harness::fmt_fixed(p25.correct, 1),
                   harness::fmt_delta_pct(p25.correct, dw.delay),
                   harness::fmt_fixed(p25.recovery, 1)});
    area.add_row({std::to_string(n), harness::fmt_fixed(dw.area, 0),
                  harness::fmt_fixed(p01.area, 0), harness::fmt_delta_pct(p01.area, dw.area),
                  harness::fmt_fixed(p25.area, 0),
                  harness::fmt_delta_pct(p25.area, dw.area)});
  }
  std::cout << "Fig 7.8 — delay:\n";
  delay.print(std::cout);
  std::cout << "\nFig 7.9 — area:\n";
  area.print(std::cout);
  std::cout << "\nPaper shape: correctly-speculated delay ~10% below DesignWare;\n"
               "recovery below twice the correct-path delay; area requirement\n"
               "-6..42% (0.01%) and -19..16% (0.25%) vs DesignWare, improving with\n"
               "width (Ch. 7.5.2).\n";
  return 0;
}
