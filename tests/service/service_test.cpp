// Tests for the experiment service (service/service.hpp + server.hpp): the
// protocol router's strictness, the cache-hit contract the ISSUE acceptance
// criteria pin down — a repeated run request is served from cache without
// re-sampling, and the cached record is byte-identical to a fresh
// recomputation at any thread count — plus the stdio and Unix-socket
// transports end to end.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"
#include "service/server.hpp"

namespace vlcsa::service {
namespace {

using harness::JsonParse;
using harness::JsonValue;
using harness::parse_json;

// Small but real registry experiments, so runs stay fast.
constexpr const char* kErrorRateRun =
    R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})";
constexpr const char* kChainProfileRun =
    R"({"request": "run", "experiment": "fig6.1/uniform-unsigned", "samples": 2000})";

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_service_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

JsonValue parse_reply(const ExperimentService::Reply& reply) {
  JsonParse parse = parse_json(reply.line);
  EXPECT_TRUE(parse.ok()) << reply.line << " -> " << parse.error;
  EXPECT_EQ(parse.value.kind(), JsonValue::Kind::kObject);
  return parse.value;
}

std::string field(const JsonValue& response, const char* name) {
  const JsonValue* value = response.find(name);
  return value != nullptr && value->kind() == JsonValue::Kind::kString ? value->as_string()
                                                                       : std::string();
}

void expect_error_containing(ExperimentService& service, const std::string& line,
                             const std::string& needle) {
  const JsonValue response = parse_reply(service.handle_line(line));
  EXPECT_EQ(field(response, "status"), "error") << line;
  EXPECT_NE(field(response, "error").find(needle), std::string::npos)
      << line << " -> " << field(response, "error");
}

/// Extracts the embedded record's bytes by re-rendering is forbidden (it
/// must stay byte-identical), so runs compare records through the cache
/// file, whose content is exactly record + '\n'.
std::string read_single_cache_file(const std::string& dir) {
  std::string found;
  int count = 0;
  // Only .json record files: the directory also holds the fleet-mode
  // .vlcsa.lock advisory-lock file.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    found = entry.path().string();
  }
  EXPECT_EQ(count, 1) << "expected exactly one cache file in " << dir;
  std::ifstream in(found, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(ExperimentService, RunMissThenMemoryHitWithoutResampling) {
  ExperimentService service({temp_dir("hit"), 64, 1});

  const JsonValue first = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(first, "status"), "ok");
  EXPECT_EQ(field(first, "cache"), "miss");
  ASSERT_NE(first.find("record"), nullptr);
  EXPECT_EQ(field(*first.find("record"), "experiment"), "fig7.1/n64-k6");

  const JsonValue second = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(second, "cache"), "hit-memory");

  // "Without re-sampling" is observable through the counters: one miss (the
  // only compute), one memory hit, one store.
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.stores, 1u);

  // And the hit carried the identical record.
  std::uint64_t errors_first = 0, errors_second = 0;
  ASSERT_TRUE(first.find("record")->find("actual_errors")->to_u64(errors_first));
  ASSERT_TRUE(second.find("record")->find("actual_errors")->to_u64(errors_second));
  EXPECT_EQ(errors_first, errors_second);
}

TEST(ExperimentService, CachedRecordByteIdenticalAcrossThreadCounts) {
  // The acceptance criterion: the record cached by one service must be
  // byte-identical to a fresh recomputation at any --threads setting, for
  // both eval paths.
  const std::string dir_a = temp_dir("threads1");
  const std::string dir_b = temp_dir("threads4");
  {
    ExperimentService service({dir_a, 64, 1});
    EXPECT_EQ(field(parse_reply(service.handle_line(kErrorRateRun)), "cache"), "miss");
  }
  {
    ExperimentService service({dir_b, 64, 4});
    EXPECT_EQ(field(parse_reply(service.handle_line(kErrorRateRun)), "cache"), "miss");
  }
  EXPECT_EQ(read_single_cache_file(dir_a), read_single_cache_file(dir_b));
}

TEST(ExperimentService, ScalarAndBatchedPathsCacheSeparatelyButAgreeOnCounters) {
  ExperimentService service({"", 64, 1});
  const std::string batched =
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "eval_path": "batched"})";
  const std::string scalar =
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "eval_path": "scalar"})";
  const JsonValue first = parse_reply(service.handle_line(batched));
  const JsonValue second = parse_reply(service.handle_line(scalar));
  EXPECT_EQ(field(second, "cache"), "miss");  // distinct key: no false sharing
  // The batch-vs-scalar differential contract holds through the service too.
  std::uint64_t batched_errors = 0, scalar_errors = 0;
  ASSERT_TRUE(first.find("record")->find("actual_errors")->to_u64(batched_errors));
  ASSERT_TRUE(second.find("record")->find("actual_errors")->to_u64(scalar_errors));
  EXPECT_EQ(batched_errors, scalar_errors);
}

TEST(ExperimentService, DiskHitAfterRestart) {
  const std::string dir = temp_dir("restart");
  {
    ExperimentService service({dir, 64, 1});
    EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "miss");
  }
  ExperimentService service({dir, 64, 1});
  EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "hit-disk");
  EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "hit-memory");
}

TEST(ExperimentService, DefaultSamplesAndExplicitDefaultShareOneKey) {
  ExperimentService service({"", 64, 1});
  // fig6.2 crypto experiments default to 4 samples — cheap enough to run.
  const JsonValue first = parse_reply(
      service.handle_line(R"({"request": "run", "experiment": "fig6.2/rsa-like"})"));
  EXPECT_EQ(field(first, "status"), "ok");
  const JsonValue second = parse_reply(service.handle_line(
      R"({"request": "run", "experiment": "fig6.2/rsa-like", "samples": 4, "seed": 1})"));
  EXPECT_EQ(field(second, "cache"), "hit-memory");
}

TEST(ExperimentService, StrictRequestValidation) {
  ExperimentService service({"", 4, 1});
  expect_error_containing(service, "not json", "malformed request");
  expect_error_containing(service, "[1]", "must be a JSON object");
  expect_error_containing(service, R"({"experiment": "x"})", "request");
  expect_error_containing(service, R"({"request": "frobnicate"})", "unknown request");
  expect_error_containing(service, R"({"request": "run"})", "requires field 'experiment'");
  expect_error_containing(service, R"({"request": "run", "experiment": "no/such"})",
                          "unknown experiment");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": -1})",
      "non-negative integer");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 0})",
      "must be positive");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "eval_path": "simd"})",
      "eval_path");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "widht": 64})",
      "unknown field 'widht'");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig6.1/uniform-unsigned", "eval_path": "scalar"})",
      "chain-profile");
  expect_error_containing(service, R"({"request": "cache-stats", "experiment": "x"})",
                          "unknown field");
  expect_error_containing(service, R"({"request": "shutdown", "now": true})", "unknown field");
  // Validation failures never touch the cache.
  EXPECT_EQ(service.cache_stats().misses, 0u);
}

TEST(ExperimentService, ListAndDescribe) {
  ExperimentService service({"", 4, 1});
  const JsonValue list = parse_reply(service.handle_line(R"({"request": "list"})"));
  EXPECT_EQ(field(list, "status"), "ok");
  bool saw_table71 = false;
  for (const JsonValue& name : list.find("error_rate")->items()) {
    saw_table71 = saw_table71 || name.as_string() == "table7.1/n64";
  }
  EXPECT_TRUE(saw_table71);
  EXPECT_FALSE(list.find("chain_profile")->items().empty());

  const JsonValue filtered =
      parse_reply(service.handle_line(R"({"request": "list", "prefix": "fig6."})"));
  EXPECT_TRUE(filtered.find("error_rate")->items().empty());
  for (const JsonValue& name : filtered.find("chain_profile")->items()) {
    EXPECT_EQ(name.as_string().substr(0, 5), "fig6.");
  }

  const JsonValue describe = parse_reply(
      service.handle_line(R"({"request": "describe", "experiment": "table7.2/n64"})"));
  EXPECT_EQ(field(describe, "kind"), "error-rate");
  EXPECT_EQ(field(describe, "model"), "VLCSA 2");
  EXPECT_EQ(field(describe, "distribution"), "gaussian-twos-complement");
  std::uint64_t default_samples = 0;
  ASSERT_TRUE(describe.find("default_samples")->to_u64(default_samples));
  EXPECT_EQ(default_samples, 200000u);

  const JsonValue crypto = parse_reply(
      service.handle_line(R"({"request": "describe", "experiment": "fig6.2/rsa-like"})"));
  EXPECT_EQ(field(crypto, "kind"), "chain-profile");
  EXPECT_EQ(field(crypto, "workload"), "crypto");
}

TEST(ExperimentService, ShutdownReply) {
  ExperimentService service({"", 4, 1});
  const ExperimentService::Reply reply = service.handle_line(R"({"request": "shutdown"})");
  EXPECT_TRUE(reply.shutdown);
  EXPECT_EQ(field(parse_reply(reply), "status"), "ok");
  // Errors and normal requests never set the flag.
  EXPECT_FALSE(service.handle_line(R"({"request": "list"})").shutdown);
  EXPECT_FALSE(service.handle_line("garbage").shutdown);
}

TEST(ServeStdio, ConversationEndsOnShutdown) {
  ExperimentService service({"", 4, 1});
  std::istringstream in(
      "{\"request\": \"list\"}\n"
      "\n"  // blank lines tolerated
      "{\"request\": \"cache-stats\"}\n"
      "{\"request\": \"shutdown\"}\n"
      "{\"request\": \"list\"}\n");  // after shutdown: unread
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(in, out, service), 3u);
  // Three response lines, each valid JSON.
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(parse_json(line).ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(ExperimentService, ConcurrentIdenticalColdRequestsComputeOnce) {
  // Single-flight: N threads racing on the same cold key must trigger
  // exactly one computation (one store) — the rest are memory hits or
  // coalesced waiters, never independent re-samplings.
  ExperimentService service({"", 16, 1});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> caches(kThreads);
  std::vector<std::uint64_t> errors(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &caches, &errors, t] {
      const JsonValue response = parse_reply(service.handle_line(kErrorRateRun));
      caches[static_cast<std::size_t>(t)] = field(response, "cache");
      (void)response.find("record")->find("actual_errors")->to_u64(
          errors[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(service.cache_stats().stores, 1u);  // exactly one computation
  int miss_count = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(caches[t] == "miss" || caches[t] == "coalesced" || caches[t] == "hit-memory")
        << caches[t];
    miss_count += caches[t] == "miss" ? 1 : 0;
    EXPECT_EQ(errors[t], errors[0]);  // everyone saw the same record
  }
  EXPECT_EQ(miss_count, 1);  // exactly the leader of the cold generation
}

TEST(SocketServer, ShutdownCompletesWithAnotherConnectionOpen) {
  // Regression: a worker blocked in recv() on an idle connection must not
  // keep serve() from returning after another client requests shutdown.
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_shutdown_test.sock").string();
  ExperimentService service({"", 4, 1});
  SocketServer server(socket_path, service, /*workers=*/2);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  ServiceClient idle;  // connects, sends nothing, stays open
  ASSERT_EQ(idle.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(idle.roundtrip(R"({"request": "list"})", response), "");  // worker now owns it

  ServiceClient requester;
  ASSERT_EQ(requester.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  ASSERT_EQ(requester.roundtrip(R"({"request": "shutdown"})", response), "");
  EXPECT_EQ(field(parse_json(response).value, "status"), "ok");

  serving.join();  // must return despite the idle connection (hung pre-fix)
}

TEST(SocketServer, EndToEndOverUnixSocket) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_test.sock").string();
  ExperimentService service({"", 16, 1});
  SocketServer server(socket_path, service, /*workers=*/2);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  {
    ServiceClient client;
    ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
    std::string response;
    // Several requests over one connection.
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    JsonParse first = parse_json(response);
    ASSERT_TRUE(first.ok()) << response;
    EXPECT_EQ(field(first.value, "cache"), "miss");
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    JsonParse second = parse_json(response);
    ASSERT_TRUE(second.ok()) << response;
    EXPECT_EQ(field(second.value, "cache"), "hit-memory");
  }
  {
    // A second connection sees the same warm cache.
    ServiceClient client;
    ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
    std::string response;
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    EXPECT_EQ(field(parse_json(response).value, "cache"), "hit-memory");
    ASSERT_EQ(client.roundtrip(R"({"request": "shutdown"})", response), "");
    EXPECT_EQ(field(parse_json(response).value, "status"), "ok");
  }
  serving.join();
}

std::vector<std::string> read_cache_files_sorted(const std::string& dir) {
  std::vector<std::string> contents;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;  // skip .vlcsa.lock
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    contents.push_back(content.str());
  }
  std::sort(contents.begin(), contents.end());
  return contents;
}

TEST(ExperimentService, RunBatchEmptyArrayIsOkWithZeroCount) {
  ExperimentService service({"", 4, 1});
  const JsonValue response =
      parse_reply(service.handle_line(R"({"request": "run-batch", "runs": []})"));
  EXPECT_EQ(field(response, "status"), "ok");
  std::uint64_t count = 99;
  ASSERT_TRUE(response.find("count")->to_u64(count));
  EXPECT_EQ(count, 0u);
  EXPECT_TRUE(response.find("results")->items().empty());
}

TEST(ExperimentService, RunBatchContinuesPastABadElement) {
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}, )"
      R"({"experiment": "no/such"}, )"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000, "widht": 64}, )"
      R"({"experiment": "fig6.1/uniform-unsigned", "samples": 2000}]})";
  const JsonValue response = parse_reply(service.handle_line(batch));
  EXPECT_EQ(field(response, "status"), "ok");  // the batch itself succeeded
  std::uint64_t count = 0, ok = 0, errors = 0;
  ASSERT_TRUE(response.find("count")->to_u64(count));
  ASSERT_TRUE(response.find("ok")->to_u64(ok));
  ASSERT_TRUE(response.find("errors")->to_u64(errors));
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(errors, 2u);

  const auto& results = response.find("results")->items();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(field(results[0], "status"), "ok");
  EXPECT_EQ(field(results[1], "status"), "error");
  EXPECT_EQ(field(results[1], "code"), "unknown-experiment");
  EXPECT_EQ(field(results[2], "status"), "error");
  EXPECT_NE(field(results[2], "error").find("unknown field 'widht'"), std::string::npos);
  EXPECT_EQ(field(results[3], "status"), "ok");
  // The two good elements each computed and stored.
  EXPECT_EQ(service.cache_stats().stores, 2u);
}

TEST(ExperimentService, RunBatchRecordsByteIdenticalToSingleRuns) {
  // A batch's cache records must be exactly the records the same specs
  // produce as individual run requests — the loadgen byte-identity check in
  // CI rests on this.
  const std::string dir_batch = temp_dir("batch");
  const std::string dir_single = temp_dir("single");
  const char* spec_a = R"({"experiment": "fig7.1/n64-k6", "samples": 2000})";
  const char* spec_b = R"({"experiment": "fig6.1/uniform-unsigned", "samples": 2000})";
  {
    ExperimentService service({dir_batch, 16, 1});
    const std::string batch = std::string(R"({"request": "run-batch", "runs": [)") + spec_a +
                              ", " + spec_b + "]}";
    const JsonValue response = parse_reply(service.handle_line(batch));
    std::uint64_t ok = 0;
    ASSERT_TRUE(response.find("ok")->to_u64(ok));
    ASSERT_EQ(ok, 2u);
  }
  {
    ExperimentService service({dir_single, 16, 1});
    for (const char* spec : {spec_a, spec_b}) {
      std::string line = spec;
      line.insert(1, R"("request": "run", )");
      EXPECT_EQ(field(parse_reply(service.handle_line(line)), "status"), "ok");
    }
  }
  const auto batch_files = read_cache_files_sorted(dir_batch);
  const auto single_files = read_cache_files_sorted(dir_single);
  ASSERT_EQ(batch_files.size(), 2u);
  EXPECT_EQ(batch_files, single_files);
}

TEST(ExperimentService, RunBatchAllHitServesFromCacheWithoutRecompute) {
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}, )"
      R"({"experiment": "fig6.1/uniform-unsigned", "samples": 2000}]})";
  (void)parse_reply(service.handle_line(batch));
  EXPECT_EQ(service.cache_stats().stores, 2u);
  const JsonValue again = parse_reply(service.handle_line(batch));
  EXPECT_EQ(service.cache_stats().stores, 2u);  // nothing recomputed
  for (const JsonValue& result : again.find("results")->items()) {
    EXPECT_EQ(field(result, "cache"), "hit-memory");
  }
}

TEST(ExperimentService, RunBatchStrictTopLevelValidation) {
  ExperimentService service({"", 4, 1});
  expect_error_containing(service, R"({"request": "run-batch"})", "array field 'runs'");
  expect_error_containing(service, R"({"request": "run-batch", "runs": 3})",
                          "array field 'runs'");
  expect_error_containing(service, R"({"request": "run-batch", "runs": [], "spins": 1})",
                          "unknown field 'spins'");
  expect_error_containing(
      service, R"({"request": "run-batch", "runs": [], "timeout_ms": 0})", "must be positive");
  // A non-object element errors in place, not at the top level.
  const JsonValue response = parse_reply(
      service.handle_line(R"({"request": "run-batch", "runs": [17]})"));
  EXPECT_EQ(field(response, "status"), "ok");
  EXPECT_EQ(field(response.find("results")->items()[0], "status"), "error");
}

TEST(ExperimentService, TimeoutCancelsRunWithoutWritingACacheRecord) {
  // A run big enough to take hundreds of milliseconds single-threaded, with
  // a 50 ms deadline: the watchdog flips the token, the engine aborts at a
  // shard boundary, and the reply is a "timeout"-coded error.  The key
  // contract: a cancelled run never writes a (partial) cache record.
  const std::string dir = temp_dir("timeout");
  ExperimentService service({dir, 16, 1});
  const JsonValue response = parse_reply(service.handle_line(
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 50000000, "timeout_ms": 50})"));
  EXPECT_EQ(field(response, "status"), "error");
  EXPECT_EQ(field(response, "code"), "timeout");
  EXPECT_NE(field(response, "error").find("timeout"), std::string::npos);

  EXPECT_EQ(service.cache_stats().stores, 0u);
  // No record file, even partial (the dir itself holds the fleet lock file).
  int record_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json" || entry.path().extension() == ".tmp") {
      ++record_files;
    }
  }
  EXPECT_EQ(record_files, 0);
  EXPECT_EQ(service.metrics().snapshot().timeouts, 1u);

  // The same key still computes fine afterwards with a sane budget.
  const JsonValue retry = parse_reply(service.handle_line(
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})"));
  EXPECT_EQ(field(retry, "status"), "ok");
  std::filesystem::remove_all(dir);
}

TEST(ExperimentService, BatchSharesOneDeadlineAcrossElements) {
  // Two heavy elements under one 30 ms batch deadline: the first is
  // cancelled mid-run, the second observes the already-fired token before
  // starting.  Both answer timeout-coded element errors; nothing is cached.
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "timeout_ms": 30, "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 50000000}, )"
      R"({"experiment": "fig7.1/n64-k6", "samples": 50000000, "seed": 2}]})";
  const JsonValue response = parse_reply(service.handle_line(batch));
  EXPECT_EQ(field(response, "status"), "ok");
  std::uint64_t errors = 0;
  ASSERT_TRUE(response.find("errors")->to_u64(errors));
  EXPECT_EQ(errors, 2u);
  for (const JsonValue& result : response.find("results")->items()) {
    EXPECT_EQ(field(result, "code"), "timeout");
  }
  EXPECT_EQ(service.cache_stats().stores, 0u);
}

TEST(ExperimentService, ExplicitZeroTimeoutIsRejected) {
  ExperimentService service({"", 4, 1});
  expect_error_containing(
      service,
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "timeout_ms": 0})",
      "must be positive");
}

TEST(ExperimentService, OversizedTimeoutIsRejected) {
  // timeout_ms above 24 h would overflow the milliseconds-as-int deadline
  // arithmetic; the parser must reject it, not silently disable the deadline.
  ExperimentService service({"", 4, 1});
  expect_error_containing(
      service,
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "timeout_ms": 86400001})",
      "at most 86400000");
  expect_error_containing(
      service, R"({"request": "run-batch", "runs": [], "timeout_ms": 99999999999})",
      "at most 86400000");
}

TEST(ExperimentService, DrainedBatchElementsCountAsTimeouts) {
  // Elements answered by the already-expired fast path carry code "timeout"
  // and must be counted in the timeouts metric like any other timeout reply.
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "timeout_ms": 30, "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 50000000}, )"
      R"({"experiment": "fig7.1/n64-k6", "samples": 50000000, "seed": 2}]})";
  const JsonValue response = parse_reply(service.handle_line(batch));
  std::uint64_t errors = 0;
  ASSERT_TRUE(response.find("errors")->to_u64(errors));
  ASSERT_EQ(errors, 2u);  // one cancelled mid-run, one drained pre-start
  EXPECT_EQ(service.metrics().snapshot().timeouts, 2u);
}

TEST(ExperimentService, CoalescedFollowerEnforcesItsOwnDeadline) {
  // A follower coalesced onto a leader with no deadline must still honor its
  // own timeout_ms: it answers "timeout" while the leader keeps computing
  // and completes (and caches) normally.
  ExperimentService service({"", 16, 1});
  std::thread leader([&service] {
    const JsonValue response = parse_reply(service.handle_line(
        R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 100000000})"));
    EXPECT_EQ(field(response, "status"), "ok");
  });
  // Wait for the leader to be in flight, then a beat more so it holds the
  // single-flight latch before the follower arrives.
  while (service.metrics().snapshot().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const JsonValue follower = parse_reply(service.handle_line(
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 100000000, "timeout_ms": 50})"));
  EXPECT_EQ(field(follower, "status"), "error");
  EXPECT_EQ(field(follower, "code"), "timeout");
  leader.join();
  EXPECT_EQ(service.cache_stats().stores, 1u);  // the leader was not cancelled
}

TEST(ExperimentService, ErrorRepliesCarryMachineReadableCodes) {
  ExperimentService service({"", 4, 1});
  const auto code_of = [&](const std::string& line) {
    return field(parse_reply(service.handle_line(line)), "code");
  };
  EXPECT_EQ(code_of("not json"), "bad-request");
  EXPECT_EQ(code_of(R"({"request": "frobnicate"})"), "unknown-request");
  EXPECT_EQ(code_of(R"({"request": "run", "experiment": "no/such"})"), "unknown-experiment");
  EXPECT_EQ(code_of(R"({"request": "run"})"), "bad-request");
}

TEST(SocketServer, EndToEndOverTcp) {
  // The same protocol over the TCP transport: ephemeral port, two requests
  // on one connection, cache warm across transports would also hold (shared
  // service) — here we just prove the listener abstraction serves TCP.
  ExperimentService service({"", 16, 1});
  SocketServer server({ListenerSpec::tcp("127.0.0.1", 0)}, service);
  ASSERT_EQ(server.listen_or_error(), "");
  const int port = server.tcp_port();
  ASSERT_GT(port, 0);
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  ServiceClient client;
  ASSERT_EQ(client.connect_tcp_or_error("127.0.0.1", port, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
  EXPECT_EQ(field(parse_json(response).value, "cache"), "miss");
  ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
  EXPECT_EQ(field(parse_json(response).value, "cache"), "hit-memory");
  ASSERT_EQ(client.roundtrip(R"({"request": "shutdown"})", response), "");
  serving.join();
}

TEST(SocketServer, UnixAndTcpListenersShareOneCache) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_dual_test.sock").string();
  ExperimentService service({"", 16, 1});
  SocketServer server({ListenerSpec::unix_socket(socket_path), ListenerSpec::tcp("127.0.0.1", 0)},
                      service);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  std::string response;
  {
    ServiceClient over_unix;
    ASSERT_EQ(over_unix.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
    ASSERT_EQ(over_unix.roundtrip(kErrorRateRun, response), "");
    EXPECT_EQ(field(parse_json(response).value, "cache"), "miss");
  }
  {
    ServiceClient over_tcp;
    ASSERT_EQ(over_tcp.connect_tcp_or_error("127.0.0.1", server.tcp_port(), 2000), "");
    ASSERT_EQ(over_tcp.roundtrip(kErrorRateRun, response), "");
    EXPECT_EQ(field(parse_json(response).value, "cache"), "hit-memory");  // warmed over Unix
    ASSERT_EQ(over_tcp.roundtrip(R"({"request": "shutdown"})", response), "");
  }
  serving.join();
}

TEST(SocketServer, RejectsConnectionsPastTheBacklogWithOverloadedError) {
  // workers=1 and max_pending=1: one connection conversing, one queued; the
  // next connection must be answered with one "overloaded" line and closed,
  // not queued unboundedly.
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_backlog_test.sock").string();
  ExperimentService service({"", 4, 1});
  SocketServer::Options options;
  options.workers = 1;
  options.max_pending = 1;
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  ServiceClient busy;  // claims the only worker
  ASSERT_EQ(busy.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(busy.roundtrip(R"({"request": "list"})", response), "");

  ServiceClient queued;  // fills the pending queue
  ASSERT_EQ(queued.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  // Wait until the accept loop has actually queued it (the connect returns
  // before the server accepts).
  for (int i = 0; i < 500 && server.pending_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.pending_connections(), 1u);

  ServiceClient rejected;
  ASSERT_EQ(rejected.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  // The server speaks first on a rejected connection: one overloaded line,
  // then close — nothing to send.
  ASSERT_EQ(rejected.read_response(response), "");
  EXPECT_EQ(field(parse_json(response).value, "code"), "overloaded");
  EXPECT_EQ(service.metrics().snapshot().rejected_connections, 1u);

  ASSERT_EQ(busy.roundtrip(R"({"request": "shutdown"})", response), "");
  serving.join();
}

TEST(ServiceClient, ReadTimeoutFailsInsteadOfHangingOnASilentServer) {
  // A listener that accepts but never answers: the armed I/O deadline must
  // turn the roundtrip into a "timed out" error, not a hang.
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_silent_test.sock").string();
  ::unlink(socket_path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", socket_path.c_str());
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);

  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  ASSERT_EQ(client.set_io_timeout_ms(100), "");
  std::string response;
  const std::string error = client.roundtrip(R"({"request": "list"})", response);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
}

TEST(ExperimentService, CacheStatsBreaksHitsDownByTierWithRatios) {
  const std::string dir = temp_dir("tiers");
  const auto stats_of = [](ExperimentService& service) {
    return parse_reply(service.handle_line(R"({"request": "cache-stats"})"));
  };
  const auto u64_of = [](const JsonValue& response, const char* name) {
    std::uint64_t value = 0;
    const JsonValue* field = response.find(name);
    EXPECT_NE(field, nullptr) << name;
    if (field != nullptr) {
      EXPECT_TRUE(field->to_u64(value)) << name;
    }
    return value;
  };
  {
    ExperimentService service({dir, 64, 1});
    EXPECT_TRUE(service.handle_line(kErrorRateRun).ok);  // miss
    EXPECT_TRUE(service.handle_line(kErrorRateRun).ok);  // memory hit
    const JsonValue response = stats_of(service);
    EXPECT_EQ(u64_of(response, "memory_hits"), 1u);
    EXPECT_EQ(u64_of(response, "disk_hits"), 0u);
    EXPECT_EQ(u64_of(response, "coalesced_hits"), 0u);
    EXPECT_EQ(u64_of(response, "misses"), 1u);
    // 2 lookups: 1 memory hit, 1 miss.
    EXPECT_DOUBLE_EQ(response.find("memory_hit_ratio")->as_double(), 0.5);
    EXPECT_DOUBLE_EQ(response.find("disk_hit_ratio")->as_double(), 0.0);
    EXPECT_DOUBLE_EQ(response.find("coalesced_hit_ratio")->as_double(), 0.0);
    EXPECT_DOUBLE_EQ(response.find("hit_ratio")->as_double(), 0.5);
  }
  {
    // A restart empties the memory tier: the same run answers from disk.
    ExperimentService service({dir, 64, 1});
    EXPECT_TRUE(service.handle_line(kErrorRateRun).ok);
    const JsonValue response = stats_of(service);
    EXPECT_EQ(u64_of(response, "disk_hits"), 1u);
    EXPECT_DOUBLE_EQ(response.find("disk_hit_ratio")->as_double(), 1.0);
    EXPECT_DOUBLE_EQ(response.find("hit_ratio")->as_double(), 1.0);
  }
  {
    // No traffic at all: every ratio is defined (0.0), never NaN.
    ExperimentService service({"", 4, 1});
    const JsonValue response = stats_of(service);
    EXPECT_DOUBLE_EQ(response.find("hit_ratio")->as_double(), 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(ExperimentService, CacheStatsReportsDiskTierSizeAndCap) {
  const std::string dir = temp_dir("cap");
  ServiceConfig config;
  config.cache_dir = dir;
  config.memory_entries = 4;
  config.threads = 1;
  config.cache_max_bytes = 1 << 20;
  ExperimentService service(config);
  (void)parse_reply(service.handle_line(kErrorRateRun));

  const JsonValue response =
      parse_reply(service.handle_line(R"({"request": "cache-stats"})"));
  EXPECT_EQ(field(response, "status"), "ok");
  std::uint64_t value = 0;
  ASSERT_NE(response.find("disk_bytes"), nullptr);
  ASSERT_TRUE(response.find("disk_bytes")->to_u64(value));
  EXPECT_GT(value, 0u);  // the run's record is on disk and counted
  ASSERT_NE(response.find("disk_max_bytes"), nullptr);
  ASSERT_TRUE(response.find("disk_max_bytes")->to_u64(value));
  EXPECT_EQ(value, static_cast<std::uint64_t>(1 << 20));
  ASSERT_NE(response.find("disk_evictions"), nullptr);
  ASSERT_TRUE(response.find("disk_evictions")->to_u64(value));
  EXPECT_EQ(value, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ExperimentService, OriginIsValidatedAndCountsSweepRunTraffic) {
  ExperimentService service({"", 16, 1});
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "origin": 7})",
      "field 'origin' must be a string");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "origin": ""})",
      "field 'origin' must be non-empty");

  // Only run traffic counts toward the sweep counters: a metrics request may
  // declare the origin (it lands in the access log) without incrementing them.
  std::uint64_t value = 99;
  JsonValue response =
      parse_reply(service.handle_line(R"({"request": "metrics", "origin": "sweep"})"));
  ASSERT_TRUE(response.find("sweep_requests")->to_u64(value));
  EXPECT_EQ(value, 0u);

  const std::string run =
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "origin": "sweep"})";
  EXPECT_EQ(field(parse_reply(service.handle_line(run)), "status"), "ok");
  const std::string batch =
      R"({"request": "run-batch", "origin": "sweep", "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}, )"
      R"({"experiment": "fig6.1/uniform-unsigned", "samples": 2000}]})";
  EXPECT_EQ(field(parse_reply(service.handle_line(batch)), "status"), "ok");
  // Runs with a different (or no) origin stay out of the sweep counters.
  (void)parse_reply(service.handle_line(kChainProfileRun));

  response = parse_reply(service.handle_line(R"({"request": "metrics"})"));
  ASSERT_TRUE(response.find("sweep_requests")->to_u64(value));
  EXPECT_EQ(value, 2u);  // the origin-"sweep" run + run-batch
  ASSERT_TRUE(response.find("sweep_cells")->to_u64(value));
  EXPECT_EQ(value, 3u);  // 1 single-run cell + 2 batch elements
}

TEST(ExperimentService, TracedRunBatchAttachesProfilesOnlyToComputedElements) {
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "trace": true, "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}, )"
      R"({"experiment": "fig6.1/uniform-unsigned", "samples": 2000}]})";

  const JsonValue cold = parse_reply(service.handle_line(batch));
  ASSERT_EQ(cold.find("results")->items().size(), 2u);
  for (const JsonValue& result : cold.find("results")->items()) {
    EXPECT_EQ(field(result, "cache"), "miss");
    const JsonValue* profile = result.find("profile");
    ASSERT_NE(profile, nullptr) << field(result, "experiment");
    ASSERT_EQ(profile->kind(), JsonValue::Kind::kObject);
    std::uint64_t samples = 0;
    ASSERT_NE(profile->find("samples"), nullptr);
    ASSERT_TRUE(profile->find("samples")->to_u64(samples));
    EXPECT_EQ(samples, 2000u);  // the element's own engine run, not a total
  }

  // Cache hits never ran the engine, so they carry no profile even when
  // traced — a sweep's rollup only aggregates real compute.
  const JsonValue warm = parse_reply(service.handle_line(batch));
  for (const JsonValue& result : warm.find("results")->items()) {
    EXPECT_EQ(field(result, "cache"), "hit-memory");
    EXPECT_EQ(result.find("profile"), nullptr);
  }

  // Untraced batches never carry profiles, computed or not.
  ExperimentService fresh({"", 16, 1});
  const std::string untraced =
      R"({"request": "run-batch", "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}]})";
  const JsonValue plain = parse_reply(fresh.handle_line(untraced));
  ASSERT_EQ(plain.find("results")->items().size(), 1u);
  EXPECT_EQ(plain.find("results")->items()[0].find("profile"), nullptr);
}

}  // namespace
}  // namespace vlcsa::service
