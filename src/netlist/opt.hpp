#pragma once
// Netlist optimizer: constant folding, local algebraic rewrites, structural
// hashing (common-subexpression merging) and dead-gate elimination.
//
// Generators in this library intentionally emit regular, readable structures
// (e.g. the first SCSA window receives a constant carry-in; prefix networks
// compute group-propagate signals nobody consumes).  The optimizer plays the
// role Design Compiler plays in the paper's flow: it removes that slack
// before timing/area are measured, so reported numbers reflect an optimized
// implementation rather than template overhead.  Gray-cell pruning in the
// prefix adders falls out of dead-gate elimination automatically.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

struct OptStats {
  std::uint32_t gates_before = 0;
  std::uint32_t gates_after = 0;

  [[nodiscard]] std::uint32_t removed() const { return gates_before - gates_after; }
};

/// Returns an optimized copy of `nl` with identical ports (names, order,
/// output groups) and identical function on every input assignment.
[[nodiscard]] Netlist optimize(const Netlist& nl, OptStats* stats = nullptr);

/// Dead-gate elimination only: keeps every input port and the transitive
/// fanin of the outputs.
[[nodiscard]] Netlist prune(const Netlist& nl);

}  // namespace vlcsa::netlist
