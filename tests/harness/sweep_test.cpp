// Tests for the sweep subsystem (harness/sweep.hpp): strict spec parsing and
// deterministic grid expansion, the run_sweep orchestration loop over an
// in-process service transport (compute-then-resume — the acceptance
// criterion that a re-run against a warm cache performs zero engine runs and
// returns byte-identical records), the JSONL event log and its validator,
// chunking, and failure behavior (per-cell errors continue, transport
// failures abort with a still-valid log).

#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "service/service.hpp"

namespace vlcsa::harness {
namespace {

using service::ExperimentService;
using service::ServiceConfig;

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_sweep_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string temp_file(const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() / ("vlcsa_sweep_test_" + tag);
  std::filesystem::remove(path);
  return path.string();
}

/// A transport over an owned in-process service (the vlcsa_sweep default).
SweepTransport in_process(ExperimentService& service) {
  return [&service](const std::string& request, std::string& reply) {
    reply = service.handle_line(request).line;
    return std::string{};
  };
}

/// Options with progress off (tests must not spam the ctest output).
SweepOptions quiet_options() {
  SweepOptions options;
  options.progress = false;
  return options;
}

SweepLogValidation validate_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return validate_sweep_event_log(in);
}

TEST(SweepSpec, ExpandsTheCartesianGridDeterministically) {
  const std::string text = R"({
    "name": "grid",
    "experiments": ["table7.1/n64", "eq5.2/n64-uniform"],
    "samples": [1000, 2000],
    "seeds": [1, 2]
  })";
  const SweepSpecParse parsed = parse_sweep_spec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.spec.name, "grid");
  ASSERT_EQ(parsed.spec.cells.size(), 8u);
  // Expansion order: experiments (entry order) x samples x seeds.
  EXPECT_EQ(parsed.spec.cells[0].id, "table7.1/n64|1000|1|batched");
  EXPECT_EQ(parsed.spec.cells[1].id, "table7.1/n64|1000|2|batched");
  EXPECT_EQ(parsed.spec.cells[2].id, "table7.1/n64|2000|1|batched");
  EXPECT_EQ(parsed.spec.cells[4].id, "eq5.2/n64-uniform|1000|1|batched");
  for (std::size_t i = 0; i < parsed.spec.cells.size(); ++i) {
    EXPECT_EQ(parsed.spec.cells[i].index, i);
    EXPECT_TRUE(parsed.spec.cells[i].error_rate);
  }
  // Same spec, same cells: the property resume is built on.
  const SweepSpecParse again = parse_sweep_spec(text);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.spec.cells.size(), parsed.spec.cells.size());
  for (std::size_t i = 0; i < parsed.spec.cells.size(); ++i) {
    EXPECT_EQ(again.spec.cells[i].id, parsed.spec.cells[i].id);
  }
}

TEST(SweepSpec, DefaultsResolveToRegistrySamplesAndSeedOne) {
  const SweepSpecParse parsed =
      parse_sweep_spec(R"({"experiments": ["table7.1/n64"]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.cells.size(), 1u);
  const auto* experiment = find_error_rate_experiment("table7.1/n64");
  ASSERT_NE(experiment, nullptr);
  EXPECT_EQ(parsed.spec.cells[0].samples, experiment->default_samples);
  EXPECT_EQ(parsed.spec.cells[0].seed, 1u);
  EXPECT_EQ(parsed.spec.name, "sweep");
}

TEST(SweepSpec, PrefixSelectionFollowsRegistryOrderAndDeduplicates) {
  // The exact name repeats inside the prefix selection: one cell, first wins.
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["eq5.2/n64-uniform", "eq5.2/"], "samples": [1000]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const std::size_t registry_count = error_rate_experiments_with_prefix("eq5.2/").size();
  EXPECT_EQ(parsed.spec.cells.size(), registry_count);
  EXPECT_EQ(parsed.spec.cells[0].experiment, "eq5.2/n64-uniform");
}

TEST(SweepSpec, ChainProfileCellsAreKeyedScalar) {
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["fig6.1/uniform-unsigned"], "samples": [2000]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.cells.size(), 1u);
  EXPECT_FALSE(parsed.spec.cells[0].error_rate);
  EXPECT_EQ(parsed.spec.cells[0].eval_path, "scalar");
  EXPECT_EQ(parsed.spec.cells[0].id, "fig6.1/uniform-unsigned|2000|1|scalar");
}

TEST(SweepSpec, FiltersNarrowAPrefixSelection) {
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["eq5.2/"], "widths": [64], "samples": [1000]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.cells.size(), 2u);  // n64-uniform + n64-gaussian-2c
  for (const SweepCell& cell : parsed.spec.cells) {
    EXPECT_EQ(cell.experiment.find("eq5.2/n64"), 0u) << cell.experiment;
  }
}

TEST(SweepSpec, StrictValidationRejectsMalformedSpecs) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"not json", "malformed"},
      {"[]", "must be a JSON object"},
      {R"({"experiments": ["table7.1/n64"], "typo": 1})", "unknown field 'typo'"},
      {R"({"samples": [1000]})", "requires field 'experiments'"},
      {R"({"experiments": []})", "must not be empty"},
      {R"({"experiments": ["no-such-experiment"]})", "unknown experiment"},
      {R"({"experiments": ["nope/"]})", "matched no experiment"},
      {R"({"experiments": ["table7.1/n64", "table7.1/n64"]})", "repeats value"},
      {R"({"experiments": ["table7.1/n64"], "samples": [0]})", "must be positive"},
      {R"({"experiments": ["table7.1/n64"], "samples": [1000, 1000]})", "repeats value"},
      {R"({"experiments": ["table7.1/n64"], "eval_path": "wat"})",
       "'eval_path' must be"},
      {R"({"experiments": ["fig6.1/uniform-unsigned"], "eval_path": "batched"})",
       "chain-profile"},
      {R"({"experiments": ["fig6.1/uniform-unsigned"], "widths": [32]})",
       "chain-profile"},
      {R"({"experiments": ["table7.1/n64"], "widths": [999]})",
       "matches no selected experiment"},
      {R"({"experiments": ["table7.1/n64"], "models": ["VLCSA 9"]})", "unknown model"},
      {R"({"experiments": ["table7.1/n64"], "name": ""})", "non-empty"},
  };
  for (const auto& [spec, needle] : cases) {
    const SweepSpecParse parsed = parse_sweep_spec(spec);
    EXPECT_FALSE(parsed.ok()) << spec;
    EXPECT_NE(parsed.error.find(needle), std::string::npos)
        << spec << " -> " << parsed.error;
  }
}

TEST(SweepSpec, ConjunctiveFiltersCanEliminateEverythingLoudly) {
  // Each filter value matches SOME selected experiment, but the conjunction
  // matches none: eq5.2/n64-uniform has window 10 but not the gaussian
  // distribution; table7.1/n64 is gaussian but window 14.
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["table7.1/n64", "eq5.2/n64-uniform"],
          "windows": [10], "distributions": ["gaussian-twos-complement"]})");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("eliminated every"), std::string::npos) << parsed.error;
}

TEST(SweepRun, ComputesEveryCellThenResumesFromCacheByteIdentically) {
  const std::string cache_dir = temp_dir("resume");
  const std::string log_cold = temp_file("resume_cold.jsonl");
  const std::string log_warm = temp_file("resume_warm.jsonl");
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"name": "resume-grid",
          "experiments": ["fig7.1/n64-k6", "fig6.1/uniform-unsigned"],
          "samples": [2000], "seeds": [1, 2]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.cells.size(), 4u);

  SweepOptions options = quiet_options();
  options.event_log_path = log_cold;
  SweepResult cold;
  {
    ServiceConfig config;
    config.cache_dir = cache_dir;
    ExperimentService service(config);
    cold = run_sweep(parsed.spec, options, in_process(service));
  }
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(cold.computed_cells, 4u);
  EXPECT_EQ(cold.resumed_cells, 0u);
  EXPECT_EQ(cold.failed_cells, 0u);
  ASSERT_EQ(cold.cells.size(), 4u);
  for (const SweepCellResult& cell : cold.cells) {
    EXPECT_TRUE(cell.ok);
    EXPECT_EQ(cell.cache, "miss");
    EXPECT_FALSE(cell.record.empty());
    EXPECT_FALSE(cell.profile.empty()) << "computed cells must carry a RunProfile";
    EXPECT_FALSE(cell.trace_id.empty());
  }
  // The computed profiles rolled up: 4 cells x 2000 samples.
  EXPECT_EQ(cold.profile_totals.cells, 4u);
  EXPECT_EQ(cold.profile_totals.samples, 8000u);
  const SweepLogValidation cold_log = validate_file(log_cold);
  ASSERT_TRUE(cold_log.ok()) << cold_log.error;
  EXPECT_EQ(cold_log.cells, 4u);
  EXPECT_EQ(cold_log.computed, 4u);

  // A fresh service over the same cache dir: resume-by-construction answers
  // every cell from prior work, with byte-identical records.
  options.event_log_path = log_warm;
  SweepResult warm;
  {
    ServiceConfig config;
    config.cache_dir = cache_dir;
    config.memory_entries = 0;  // force the disk tier: cross-process resume
    ExperimentService service(config);
    warm = run_sweep(parsed.spec, options, in_process(service));
  }
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.computed_cells, 0u);
  EXPECT_EQ(warm.resumed_cells, 4u);
  EXPECT_EQ(warm.failed_cells, 0u);
  ASSERT_EQ(warm.cells.size(), 4u);
  for (std::size_t i = 0; i < warm.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i].cached);
    EXPECT_EQ(warm.cells[i].cache, "hit-disk");
    EXPECT_EQ(warm.cells[i].record, cold.cells[i].record) << warm.cells[i].cell.id;
    EXPECT_TRUE(warm.cells[i].profile.empty()) << "cache hits must not re-profile";
  }
  const SweepLogValidation warm_log = validate_file(log_warm);
  ASSERT_TRUE(warm_log.ok()) << warm_log.error;
  EXPECT_EQ(warm_log.resumed, 4u);
  EXPECT_EQ(warm_log.computed, 0u);

  // The vlcsa-sweep-1 report round-trips through the strict parser and
  // carries the accounting.
  const std::string report = render_sweep_report(parsed.spec, options, warm);
  const JsonParse report_parse = parse_json(report);
  ASSERT_TRUE(report_parse.ok()) << report_parse.error;
  const JsonValue* schema = report_parse.value.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "vlcsa-sweep-1");
  std::uint64_t resumed = 0;
  ASSERT_TRUE(report_parse.value.find("resumed_cells")->to_u64(resumed));
  EXPECT_EQ(resumed, 4u);
  const JsonValue* records = report_parse.value.find("cell_records");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->items().size(), 4u);
}

TEST(SweepRun, ChunkSizeControlsTheRequestCount) {
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["fig7.1/n64-k6"], "samples": [2000], "seeds": [1, 2, 3]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  for (const auto& [chunk, expected_requests] :
       std::vector<std::pair<std::size_t, int>>{{1, 3}, {2, 2}, {16, 1}}) {
    ServiceConfig config;
    ExperimentService service(config);
    int requests = 0;
    SweepOptions options = quiet_options();
    options.chunk = chunk;
    const SweepResult result = run_sweep(
        parsed.spec, options, [&](const std::string& request, std::string& reply) {
          ++requests;
          reply = service.handle_line(request).line;
          return std::string{};
        });
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(requests, expected_requests) << "chunk " << chunk;
    EXPECT_EQ(result.computed_cells + result.resumed_cells, 3u);
  }
}

TEST(SweepRun, PerCellErrorsFailTheCellAndContinue) {
  // One real cell, then a spec whose second cell times out is hard to build
  // deterministically — instead drive the per-element error path with a
  // scripted transport replying a mixed batch.
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["fig7.1/n64-k6"], "samples": [2000], "seeds": [1, 2]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const std::string log_path = temp_file("mixed.jsonl");
  SweepOptions options = quiet_options();
  options.event_log_path = log_path;
  const SweepResult result = run_sweep(
      parsed.spec, options, [&](const std::string&, std::string& reply) {
        reply =
            R"({"status": "ok", "count": 2, "ok_count": 1, "results": [)"
            R"({"status": "ok", "experiment": "fig7.1/n64-k6", "cache": "miss", "record": {"x": 1}}, )"
            R"({"status": "error", "error": "boom", "code": "internal"}]})";
        return std::string{};
      });
  ASSERT_TRUE(result.ok()) << result.error;  // per-cell failure, sweep completes
  EXPECT_EQ(result.computed_cells, 1u);
  EXPECT_EQ(result.failed_cells, 1u);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].record, "{\"x\": 1}");
  EXPECT_EQ(result.cells[1].code, "internal");
  const SweepLogValidation log = validate_file(log_path);
  ASSERT_TRUE(log.ok()) << log.error;
  EXPECT_EQ(log.failed, 1u);
}

TEST(SweepRun, TransportFailureAbortsButTheEventLogStaysValid) {
  const SweepSpecParse parsed = parse_sweep_spec(
      R"({"experiments": ["fig7.1/n64-k6"], "samples": [2000], "seeds": [1, 2, 3]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const std::string log_path = temp_file("abort.jsonl");
  ServiceConfig config;
  ExperimentService service(config);
  int requests = 0;
  SweepOptions options = quiet_options();
  options.chunk = 1;
  options.event_log_path = log_path;
  const SweepResult result = run_sweep(
      parsed.spec, options, [&](const std::string& request, std::string& reply) {
        if (++requests == 2) return std::string("connection reset");
        reply = service.handle_line(request).line;
        return std::string{};
      });
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("transport"), std::string::npos) << result.error;
  EXPECT_EQ(result.computed_cells, 1u);
  EXPECT_EQ(result.failed_cells, 1u);
  EXPECT_EQ(requests, 2);  // the third chunk was never attempted
  // The log still validates: started cells all terminated, counts reconcile,
  // and the sweep-done line says aborted (so full coverage is not required).
  const SweepLogValidation log = validate_file(log_path);
  ASSERT_TRUE(log.ok()) << log.error;
  EXPECT_EQ(log.computed, 1u);
  EXPECT_EQ(log.failed, 1u);
}

TEST(SweepLog, ValidatorRejectsStructurallyBrokenLogs) {
  const char* start = R"({"event": "sweep-start", "sweep": "s", "cells": 1})";
  const char* cell_start = R"({"event": "cell-start", "cell": "c1"})";
  const char* cell_done =
      R"({"event": "cell-done", "cell": "c1", "wall_ms": 1.0, "cache": "miss"})";
  const char* done =
      R"({"event": "sweep-done", "status": "ok", "cells": 1, "computed_cells": 1,)"
      R"( "resumed_cells": 0, "failed_cells": 0})";

  const auto validate_text = [](std::initializer_list<const char*> lines) {
    std::string text;
    for (const char* line : lines) text += std::string(line) + "\n";
    std::istringstream in(text);
    return validate_sweep_event_log(in);
  };

  // The well-formed baseline passes.
  EXPECT_TRUE(validate_text({start, cell_start, cell_done, done}).ok());
  // First event must be sweep-start.
  EXPECT_NE(validate_text({cell_start, cell_done, done}).error.find("sweep-start"),
            std::string::npos);
  // A terminal without a start.
  EXPECT_NE(validate_text({start, cell_done, done}).error.find("without a cell-start"),
            std::string::npos);
  // Two terminals for one cell.
  EXPECT_NE(
      validate_text({start, cell_start, cell_done, cell_done, done}).error.find("second"),
      std::string::npos);
  // A started cell with no terminal.
  EXPECT_NE(validate_text({start, cell_start, done}).error.find("no terminal"),
            std::string::npos);
  // Missing sweep-done.
  EXPECT_NE(validate_text({start, cell_start, cell_done}).error.find("no sweep-done"),
            std::string::npos);
  // Events after sweep-done.
  EXPECT_NE(validate_text({start, cell_start, cell_done, done, cell_start})
                .error.find("after sweep-done"),
            std::string::npos);
  // Counts that do not reconcile.
  const char* wrong_done =
      R"({"event": "sweep-done", "status": "ok", "cells": 1, "computed_cells": 0,)"
      R"( "resumed_cells": 1, "failed_cells": 0})";
  EXPECT_NE(validate_text({start, cell_start, cell_done, wrong_done})
                .error.find("reconcile"),
            std::string::npos);
}

TEST(SweepRun, EventLogOpenFailureIsASweepError) {
  const SweepSpecParse parsed =
      parse_sweep_spec(R"({"experiments": ["fig7.1/n64-k6"], "samples": [2000]})");
  ASSERT_TRUE(parsed.ok());
  SweepOptions options = quiet_options();
  options.event_log_path = "/nonexistent-dir/sub/sweep.jsonl";
  const SweepResult result =
      run_sweep(parsed.spec, options, [](const std::string&, std::string&) {
        ADD_FAILURE() << "transport must not be reached";
        return std::string{};
      });
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("event log"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace vlcsa::harness
