#include "arith/apint.hpp"

#include <gtest/gtest.h>

#include <random>

namespace vlcsa::arith {
namespace {

TEST(ApInt, DefaultConstructIsZeroWidthOne) {
  const ApInt v;
  EXPECT_EQ(v.width(), 1);
  EXPECT_TRUE(v.is_zero());
}

TEST(ApInt, FromU64TruncatesToWidth) {
  const ApInt v = ApInt::from_u64(4, 0xff);
  EXPECT_EQ(v.to_u64(), 0xfu);
}

TEST(ApInt, FromI64SignExtends) {
  const ApInt v = ApInt::from_i64(128, -1);
  EXPECT_EQ(v.popcount(), 128);
  const ApInt w = ApInt::from_i64(128, -2);
  EXPECT_EQ(w.popcount(), 127);
  EXPECT_FALSE(w.bit(0));
  EXPECT_TRUE(w.bit(127));
}

TEST(ApInt, AllOnes) {
  const ApInt v = ApInt::all_ones(70);
  EXPECT_EQ(v.popcount(), 70);
  EXPECT_EQ(v.highest_set_bit(), 69);
}

TEST(ApInt, FromBinaryMsbFirst) {
  const ApInt v = ApInt::from_binary(8, "1011");
  EXPECT_EQ(v.to_u64(), 0b1011u);
  EXPECT_EQ(v.to_binary(), "00001011");
}

TEST(ApInt, FromBinaryRejectsBadInput) {
  EXPECT_THROW(ApInt::from_binary(2, "101"), std::invalid_argument);
  EXPECT_THROW(ApInt::from_binary(8, "10x"), std::invalid_argument);
}

TEST(ApInt, BitAboveWidthReadsZero) {
  const ApInt v = ApInt::all_ones(10);
  EXPECT_TRUE(v.bit(9));
  EXPECT_FALSE(v.bit(10));
  EXPECT_FALSE(v.bit(1000));
}

TEST(ApInt, SetBitOutOfRangeThrows) {
  ApInt v(10);
  EXPECT_THROW(v.set_bit(10, true), std::out_of_range);
}

class ApIntWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(ApIntWidthTest, AddMatchesNativeArithmetic) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(7 + static_cast<std::uint64_t>(width));
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t ua = rng() & mask;
    const std::uint64_t ub = rng() & mask;
    const bool cin = (rng() & 1) != 0;
    const auto a = ApInt::from_u64(width, ua);
    const auto b = ApInt::from_u64(width, ub);
    const auto r = ApInt::add(a, b, cin);
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(ua) + ub + (cin ? 1 : 0);
    if (width <= 64) {
      EXPECT_EQ(r.sum.to_u64(), static_cast<std::uint64_t>(wide) & mask);
      EXPECT_EQ(r.carry_out, ((wide >> width) & 1) != 0);
    } else {
      // Operands occupy only the low 64 bits: the wide sum is exact and the
      // adder carry-out (bit width-1) can never fire.
      EXPECT_EQ(r.sum.to_u64(), static_cast<std::uint64_t>(wide));
      EXPECT_EQ(r.sum.extract(64, 2), static_cast<std::uint64_t>(wide >> 64));
      EXPECT_FALSE(r.carry_out);
    }
  }
}

TEST_P(ApIntWidthTest, SubtractionIsTwosComplementAddition) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(11 + static_cast<std::uint64_t>(width));
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = ApInt::random(width, rng);
    const auto b = ApInt::random(width, rng);
    EXPECT_EQ(a - b, a + b.negated());
  }
}

TEST_P(ApIntWidthTest, NegationRoundTrips) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(13 + static_cast<std::uint64_t>(width));
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = ApInt::random(width, rng);
    EXPECT_EQ(a.negated().negated(), a);
    EXPECT_TRUE((a + a.negated()).is_zero());
  }
}

TEST_P(ApIntWidthTest, ShiftsMatchNative) {
  const int width = GetParam();
  if (width > 64) GTEST_SKIP() << "native reference limited to 64 bits";
  vlcsa::arith::BlockRng rng(17 + static_cast<std::uint64_t>(width));
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t ua = rng() & mask;
    const int amount = static_cast<int>(rng() % static_cast<std::uint64_t>(width + 4));
    const auto a = ApInt::from_u64(width, ua);
    const std::uint64_t shl_ref = amount >= width ? 0 : (ua << amount) & mask;
    const std::uint64_t shr_ref = amount >= width ? 0 : ua >> amount;
    EXPECT_EQ(a.shl(amount).to_u64(), shl_ref) << "width=" << width << " amt=" << amount;
    EXPECT_EQ(a.shr(amount).to_u64(), shr_ref) << "width=" << width << " amt=" << amount;
  }
}

TEST_P(ApIntWidthTest, BitwiseOpsMatchDeMorgan) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(19 + static_cast<std::uint64_t>(width));
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = ApInt::random(width, rng);
    const auto b = ApInt::random(width, rng);
    EXPECT_EQ(~(a & b), (~a | ~b));
    EXPECT_EQ(~(a | b), (~a & ~b));
    EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  }
}

TEST_P(ApIntWidthTest, CompareUnsignedIsTotalOrder) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(23 + static_cast<std::uint64_t>(width));
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = ApInt::random(width, rng);
    const auto b = ApInt::random(width, rng);
    const int ab = a.compare_unsigned(b);
    const int ba = b.compare_unsigned(a);
    EXPECT_EQ(ab, -ba);
    if (ab == 0) {
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ApIntWidthTest,
                         ::testing::Values(1, 2, 7, 8, 31, 32, 33, 63, 64, 65, 127, 128, 200,
                                           256, 512));

TEST(ApInt, ExtractCrossesLimbBoundary) {
  ApInt v(130);
  v.set_bit(62, true);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(66, true);
  // Bits 62..66 = 1,1,1,0,1 (LSB first) = 0b10111.
  EXPECT_EQ(v.extract(62, 5), 0b10111u);
}

TEST(ApInt, ExtractBeyondWidthReadsZero) {
  const ApInt v = ApInt::all_ones(10);
  EXPECT_EQ(v.extract(8, 4), 0b0011u);
  EXPECT_EQ(v.extract(10, 4), 0u);
  EXPECT_EQ(v.extract(100, 8), 0u);
}

TEST(ApInt, DepositExtractRoundTrip) {
  vlcsa::arith::BlockRng rng(29);
  for (int iter = 0; iter < 200; ++iter) {
    ApInt v(200);
    const int pos = static_cast<int>(rng() % 190);
    const int len = 1 + static_cast<int>(rng() % 10);
    const std::uint64_t bits = rng() & ((std::uint64_t{1} << len) - 1);
    v.deposit(pos, len, bits);
    EXPECT_EQ(v.extract(pos, len), bits);
  }
}

TEST(ApInt, DepositDropsOverhang) {
  ApInt v(8);
  v.deposit(6, 4, 0b1111);
  EXPECT_EQ(v.to_u64(), 0b11000000u);
}

TEST(ApInt, SignedCompareOrdersNegativesBelowPositives) {
  const auto neg = ApInt::from_i64(64, -5);
  const auto pos = ApInt::from_i64(64, 5);
  EXPECT_LT(neg.compare_signed(pos), 0);
  EXPECT_GT(pos.compare_signed(neg), 0);
  EXPECT_GT(neg.compare_unsigned(pos), 0);  // unsigned view flips
  const auto neg2 = ApInt::from_i64(64, -3);
  EXPECT_LT(neg.compare_signed(neg2), 0);  // -5 < -3
}

TEST(ApInt, ZextSextBehave) {
  const auto v = ApInt::from_i64(8, -2);  // 0xfe
  EXPECT_EQ(v.zext(16).to_u64(), 0xfeu);
  EXPECT_EQ(v.sext(16).to_u64(), 0xfffeu);
  EXPECT_EQ(v.sext(16).to_i64(), -2);
  EXPECT_EQ(v.zext(4).to_u64(), 0xeu);  // truncation
}

TEST(ApInt, ToI64RoundTripsSmallWidths) {
  for (const std::int64_t x : {-128L, -7L, -1L, 0L, 1L, 99L, 127L}) {
    EXPECT_EQ(ApInt::from_i64(8, x).to_i64(), x);
  }
}

TEST(ApInt, HexString) {
  EXPECT_EQ(ApInt::from_u64(16, 0xbeef).to_hex(), "beef");
  EXPECT_EQ(ApInt::from_u64(12, 0xbeef).to_hex(), "eef");
  EXPECT_EQ(ApInt::from_u64(13, 0x1eef).to_hex(), "1eef");
}

TEST(ApInt, HighestSetBit) {
  EXPECT_EQ(ApInt(64).highest_set_bit(), -1);
  EXPECT_EQ(ApInt::from_u64(64, 1).highest_set_bit(), 0);
  ApInt v(300);
  v.set_bit(257, true);
  EXPECT_EQ(v.highest_set_bit(), 257);
}

TEST(ApInt, WidthMismatchThrows) {
  const ApInt a(8);
  const ApInt b(9);
  EXPECT_THROW((void)(a + b), std::invalid_argument);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
  EXPECT_THROW((void)a.compare_unsigned(b), std::invalid_argument);
}

// ---- PropagateGenerate ------------------------------------------------------

TEST(PropagateGenerate, GroupSignalsMatchBruteForce) {
  vlcsa::arith::BlockRng rng(31);
  const int width = 96;
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = ApInt::random(width, rng);
    const auto b = ApInt::random(width, rng);
    const PropagateGenerate pg(a, b);
    for (int trial = 0; trial < 20; ++trial) {
      const int pos = static_cast<int>(rng() % 90);
      const int len = 1 + static_cast<int>(rng() % std::min(20, width - pos));
      // Brute force: propagate = all p bits; generate = carry out with cin 0.
      bool all_p = true;
      for (int i = pos; i < pos + len; ++i) all_p = all_p && pg.p.bit(i);
      bool carry = false;
      for (int i = pos; i < pos + len; ++i) {
        carry = pg.g.bit(i) || (pg.p.bit(i) && carry);
      }
      EXPECT_EQ(pg.group_propagate(pos, len), all_p);
      EXPECT_EQ(pg.group_generate(pos, len), carry);
    }
  }
}

TEST(PropagateGenerate, GroupGenerateMatchesWindowCarryOut) {
  // The group generate of [pos, pos+len) must equal the carry out of adding
  // the two window chunks with carry-in 0.
  vlcsa::arith::BlockRng rng(37);
  const int width = 128;
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = ApInt::random(width, rng);
    const auto b = ApInt::random(width, rng);
    const PropagateGenerate pg(a, b);
    const int pos = static_cast<int>(rng() % 100);
    const int len = 1 + static_cast<int>(rng() % 28);
    const std::uint64_t aw = a.extract(pos, len);
    const std::uint64_t bw = b.extract(pos, len);
    EXPECT_EQ(pg.group_generate(pos, len), ((aw + bw) >> len) & 1);
  }
}

TEST(PropagateGenerate, OverhangNeverPropagates) {
  const auto a = ApInt::all_ones(8);
  const auto b = ApInt(8);
  const PropagateGenerate pg(a, b);  // p = all ones within width
  EXPECT_TRUE(pg.group_propagate(0, 8));
  EXPECT_FALSE(pg.group_propagate(0, 9));  // window overhangs the adder
  EXPECT_FALSE(pg.group_generate(4, 8));
}

}  // namespace
}  // namespace vlcsa::arith
