#include "netlist/verilog_parser.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vlcsa::netlist {

namespace {

struct ParseError : std::invalid_argument {
  ParseError(int line, const std::string& message)
      : std::invalid_argument("verilog parse error, line " + std::to_string(line) + ": " +
                              message) {}
};

/// Minimal cursor over one statement's text.
class Cursor {
 public:
  Cursor(std::string text, int line) : text_(std::move(text)), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  /// Identifier, optionally with a "[idx]" suffix folded into the name.
  [[nodiscard]] std::string identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool ident = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '_';
      if (!ident) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    std::string name = text_.substr(start, pos_ - start);
    if (consume('[')) {
      name += '[' + std::to_string(number()) + ']';
      expect(']');
    }
    return name;
  }

  [[nodiscard]] int number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == start) fail("expected number");
    return std::stoi(text_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(line_, message + " in: " + text_);
  }

  [[nodiscard]] int line() const { return line_; }

 private:
  std::string text_;
  int line_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Netlist run(const std::string& text) {
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    bool in_module = false;
    while (std::getline(in, raw)) {
      ++line_no;
      // Strip comments and whitespace.
      const auto comment = raw.find("//");
      if (comment != std::string::npos) raw.erase(comment);
      std::string line;
      for (const char c : raw) {
        if (c != '\r') line.push_back(c);
      }
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const auto last = line.find_last_not_of(" \t");
      line = line.substr(first, last - first + 1);

      if (line.rfind("module", 0) == 0) {
        if (in_module) throw ParseError(line_no, "nested module");
        in_module = true;
        parse_module_header(line, line_no);
        continue;
      }
      if (line == "endmodule") {
        in_module = false;
        continue;
      }
      if (!in_module) throw ParseError(line_no, "statement outside module: " + line);
      if (line.rfind("input", 0) == 0 || line.rfind("output", 0) == 0) {
        parse_port_decl(line, line_no);
      } else if (line.rfind("wire", 0) == 0) {
        // Wires are implied by their defining assignment.
      } else if (line.rfind("assign", 0) == 0) {
        parse_assign(line, line_no);
      } else {
        throw ParseError(line_no, "unsupported statement: " + line);
      }
    }
    if (in_module) throw ParseError(line_no, "missing endmodule");
    // Register outputs in declaration order.
    for (const auto& name : output_order_) {
      const auto it = output_values_.find(name);
      if (it == output_values_.end()) {
        throw ParseError(line_no, "output never assigned: " + name);
      }
      nl_.add_output(name, it->second);
    }
    return std::move(nl_);
  }

 private:
  void parse_module_header(const std::string& line, int line_no) {
    const auto open = line.find('(');
    if (open == std::string::npos) throw ParseError(line_no, "malformed module header");
    std::string name = line.substr(6, open - 6);
    const auto first = name.find_first_not_of(" \t");
    const auto last = name.find_last_not_of(" \t");
    if (first == std::string::npos) throw ParseError(line_no, "missing module name");
    nl_.set_name(name.substr(first, last - first + 1));
  }

  void parse_port_decl(const std::string& line, int line_no) {
    const bool is_input = line.rfind("input", 0) == 0;
    Cursor cur(line.substr(is_input ? 5 : 6), line_no);
    int msb = -1;
    if (cur.consume('[')) {
      msb = cur.number();
      cur.expect(':');
      if (cur.number() != 0) cur.fail("vector ranges must end at 0");
      cur.expect(']');
    }
    // Base identifier without index suffix.
    const std::string base = cur.identifier();
    cur.expect(';');
    if (msb < 0) {
      declare_port(base, is_input);
    } else {
      for (int i = 0; i <= msb; ++i) {
        declare_port(base + '[' + std::to_string(i) + ']', is_input);
      }
    }
  }

  void declare_port(const std::string& name, bool is_input) {
    if (is_input) {
      signals_[name] = nl_.add_input(name);
    } else {
      output_order_.push_back(name);
    }
  }

  [[nodiscard]] Signal lookup(Cursor& cur, const std::string& name) {
    if (name == "1'b0" || name == "1'b1") {
      return nl_.constant(name == "1'b1");
    }
    const auto it = signals_.find(name);
    if (it == signals_.end()) cur.fail("use of undefined net " + name);
    return it->second;
  }

  /// Operand: constant literal or (possibly indexed) identifier.
  [[nodiscard]] Signal operand(Cursor& cur) {
    if (cur.peek_is('1')) {
      // 1'b0 / 1'b1
      (void)cur.number();
      cur.expect('\'');
      const std::string suffix = cur.identifier();  // b0 / b1
      if (suffix == "b0") return nl_.constant(false);
      if (suffix == "b1") return nl_.constant(true);
      cur.fail("unsupported literal 1'" + suffix);
    }
    return lookup(cur, cur.identifier());
  }

  void parse_assign(const std::string& line, int line_no) {
    Cursor cur(line.substr(6), line_no);  // past "assign"
    const std::string lhs = cur.identifier();
    cur.expect('=');

    Signal value{};
    bool negated_pair = false;
    if (cur.consume('~')) {
      if (cur.consume('(')) {
        // ~(a OP b)
        negated_pair = true;
        const Signal a = operand(cur);
        value = binary(cur, a, /*negated=*/true);
        cur.expect(')');
      } else {
        value = nl_.not_(operand(cur));
      }
    } else {
      const Signal first = operand(cur);
      if (cur.peek_is('&') || cur.peek_is('|') || cur.peek_is('^')) {
        value = binary_from(cur, first, /*negated=*/false);
      } else if (cur.consume('?')) {
        const Signal d1 = operand(cur);
        cur.expect(':');
        const Signal d0 = operand(cur);
        value = nl_.mux(first, d0, d1);
      } else {
        value = nl_.buf(first);
      }
    }
    (void)negated_pair;
    cur.expect(';');
    if (!cur.at_end()) cur.fail("trailing text");

    // LHS is either an internal wire (nX) or a declared output bit.
    const bool is_output = output_values_.count(lhs) > 0 ||
                           std::find(output_order_.begin(), output_order_.end(), lhs) !=
                               output_order_.end();
    if (is_output) {
      output_values_[lhs] = value;
    } else {
      if (signals_.count(lhs) > 0) cur.fail("net assigned twice: " + lhs);
      signals_[lhs] = value;
    }
  }

  [[nodiscard]] Signal binary(Cursor& cur, Signal a, bool negated) {
    return binary_from(cur, a, negated);
  }

  [[nodiscard]] Signal binary_from(Cursor& cur, Signal a, bool negated) {
    char op = 0;
    for (const char candidate : {'&', '|', '^'}) {
      if (cur.consume(candidate)) {
        op = candidate;
        break;
      }
    }
    if (op == 0) cur.fail("expected binary operator");
    const Signal b = operand(cur);
    switch (op) {
      case '&': return negated ? nl_.nand_(a, b) : nl_.and_(a, b);
      case '|': return negated ? nl_.nor_(a, b) : nl_.or_(a, b);
      default: return negated ? nl_.xnor_(a, b) : nl_.xor_(a, b);
    }
  }

  Netlist nl_;
  std::map<std::string, Signal> signals_;
  std::vector<std::string> output_order_;
  std::map<std::string, Signal> output_values_;
};

}  // namespace

Netlist parse_verilog(const std::string& text) { return Parser().run(text); }

}  // namespace vlcsa::netlist
