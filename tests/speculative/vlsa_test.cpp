#include "speculative/vlsa.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/testutil.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/timing.hpp"
#include "speculative/error_model.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;
using netlist::Netlist;
using netlist::Simulator;

TEST(VlsaModel, RejectsBadConfig) {
  EXPECT_THROW(VlsaModel(VlsaConfig{0, 4}), std::invalid_argument);
  EXPECT_THROW(VlsaModel(VlsaConfig{32, 0}), std::invalid_argument);
  EXPECT_THROW(VlsaModel(VlsaConfig{32, 33}), std::invalid_argument);
}

TEST(VlsaModel, FullChainLengthIsExact) {
  const VlsaModel model(VlsaConfig{32, 32});
  vlcsa::arith::BlockRng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto ev = model.evaluate(ApInt::random(32, rng), ApInt::random(32, rng));
    EXPECT_TRUE(ev.spec_correct());
  }
}

TEST(VlsaModel, SpecMatchesDirectWindowedCarryDefinition) {
  // Cross-check the word-parallel implementation against the direct
  // bit-by-bit definition: carry out of bit j = group generate over the
  // min(l, j+1) bits ending at j.
  const int n = 40, l = 7;
  const VlsaModel model(VlsaConfig{n, l});
  vlcsa::arith::BlockRng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = ApInt::random(n, rng);
    const auto b = ApInt::random(n, rng);
    const auto ev = model.evaluate(a, b);
    const arith::PropagateGenerate pg(a, b);
    ApInt direct(n);
    direct.set_bit(0, pg.p.bit(0));
    for (int bit = 1; bit < n; ++bit) {
      const int len = std::min(l, bit);
      const bool carry = pg.group_generate(bit - len, len);
      direct.set_bit(bit, pg.p.bit(bit) ^ carry);
    }
    const int len = std::min(l, n);
    const bool cout = pg.group_generate(n - len, len);
    ASSERT_EQ(ev.spec, direct) << "iteration " << i;
    ASSERT_EQ(ev.spec_cout, cout);
  }
}

TEST(VlsaModel, DetectionNeverMissesAnError) {
  const int n = 48, l = 5;
  const VlsaModel model(VlsaConfig{n, l});
  vlcsa::arith::BlockRng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const auto ev = model.evaluate(ApInt::random(n, rng), ApInt::random(n, rng));
    if (!ev.spec_correct()) {
      ASSERT_TRUE(ev.err);
    }
  }
}

TEST(VlsaModel, DetectionOverestimates) {
  // An l-run of propagates without an entering carry flags but does not err.
  const int n = 48, l = 5;
  const VlsaModel model(VlsaConfig{n, l});
  vlcsa::arith::BlockRng rng(7);
  int flagged = 0, wrong = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto ev = model.evaluate(ApInt::random(n, rng), ApInt::random(n, rng));
    flagged += ev.err ? 1 : 0;
    wrong += ev.spec_correct() ? 0 : 1;
  }
  EXPECT_GT(flagged, wrong);
}

TEST(VlsaModel, RecoveredEqualsExact) {
  const VlsaModel model(VlsaConfig{64, 8});
  vlcsa::arith::BlockRng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto ev = model.evaluate(ApInt::random(64, rng), ApInt::random(64, rng));
    EXPECT_EQ(ev.recovered, ev.exact);
    EXPECT_EQ(ev.recovered_cout, ev.exact_cout);
  }
}

struct VlsaNetlistCase {
  int width;
  int chain;
};

class VlsaNetlistTest : public ::testing::TestWithParam<VlsaNetlistCase> {};

TEST_P(VlsaNetlistTest, MatchesBehavioralModel) {
  const auto [n, l] = GetParam();
  const VlsaConfig config{n, l};
  const Netlist nl = netlist::optimize(build_vlsa_netlist(config));
  const VlsaModel model(config);
  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(static_cast<unsigned>(n * 1000 + l));
  for (int round = 0; round < 4; ++round) {
    std::vector<ApInt> a, b;
    for (int v = 0; v < 64; ++v) {
      a.push_back(ApInt::random(n, rng));
      b.push_back(ApInt::random(n, rng));
    }
    testutil::load_operands(sim, a, b, n);
    sim.run();
    for (std::size_t v = 0; v < 64; ++v) {
      const auto ev = model.evaluate(a[v], b[v]);
      ASSERT_EQ(testutil::read_bus(sim, "sum", n, v), ev.spec) << "vector " << v;
      ASSERT_EQ(((sim.output("cout") >> v) & 1) != 0, ev.spec_cout);
      ASSERT_EQ(((sim.output("err0") >> v) & 1) != 0, ev.err);
      ASSERT_EQ(testutil::read_bus(sim, "rec", n, v), ev.recovered);
      ASSERT_EQ(((sim.output("rec_cout") >> v) & 1) != 0, ev.recovered_cout);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configurations, VlsaNetlistTest,
                         ::testing::Values(VlsaNetlistCase{16, 4}, VlsaNetlistCase{24, 5},
                                           VlsaNetlistCase{32, 8}, VlsaNetlistCase{33, 7},
                                           VlsaNetlistCase{64, 17}, VlsaNetlistCase{64, 12}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.width) + "_l" +
                                  std::to_string(info.param.chain);
                         });

TEST(VlsaNetlist, SpecOnlyNetlistMatches) {
  const VlsaConfig config{32, 6};
  const Netlist nl = netlist::optimize(build_vlsa_spec_netlist(config));
  const VlsaModel model(config);
  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(77);
  std::vector<ApInt> a, b;
  for (int v = 0; v < 64; ++v) {
    a.push_back(ApInt::random(32, rng));
    b.push_back(ApInt::random(32, rng));
  }
  testutil::load_operands(sim, a, b, 32);
  sim.run();
  for (std::size_t v = 0; v < 64; ++v) {
    ASSERT_EQ(testutil::read_bus(sim, "sum", 32, v), model.evaluate(a[v], b[v]).spec);
  }
}

TEST(VlsaNetlist, DetectionIsSlowerThanSpeculation) {
  // The structural weakness of VLSA that VLCSA fixes (Ch. 7.4.2): its error
  // detection critical path exceeds its speculative path.
  for (const int n : {64, 128, 256}) {
    const int l = vlsa_published_chain_length(n);
    const auto nl = netlist::optimize(build_vlsa_netlist(VlsaConfig{n, l}));
    const auto timing = netlist::analyze_timing(nl);
    EXPECT_GT(timing.delay_of("detect"), timing.delay_of("spec")) << "n = " << n;
  }
}

TEST(VlsaNetlist, RecoveryIsSlowerThanSpeculation) {
  const auto nl = netlist::optimize(build_vlsa_netlist(VlsaConfig{128, 18}));
  const auto timing = netlist::analyze_timing(nl);
  EXPECT_GT(timing.delay_of("recovery"), timing.delay_of("spec"));
}

}  // namespace
}  // namespace vlcsa::spec
