#pragma once
// Speculative multiplication — the paper's second future-work item (Ch. 8:
// "other arithmetic operations such as multiplication").
//
// Standard decomposition: n x n partial products, a carry-save tree, and one
// 2n-bit carry-propagate addition at the end.  The final addition is the
// only carry chain in the whole multiplier, so replacing it with a VLCSA
// turns the multiplier into a reliable variable-latency unit: 1-cycle
// products almost always, a recovery cycle when the final addition's
// detector fires, exact output always.

#include "speculative/multi_operand.hpp"

namespace vlcsa::spec {

struct MultiplierResult {
  ApInt product;  // 2n bits, always exact
  int cycles = 1;
  bool stalled = false;
};

class SpeculativeMultiplier {
 public:
  /// `width` is the operand width; the final adder works at 2*width with
  /// the given window size and variant.
  SpeculativeMultiplier(int width, int window, ScsaVariant variant = ScsaVariant::kScsa2)
      : width_(width),
        adder_(VlcsaConfig{2 * width, window, variant}) {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] const MultiOperandAdder& final_adder() const { return adder_; }

  /// Unsigned multiplication: a * b (mod 2^(2n), i.e. exact).
  [[nodiscard]] MultiplierResult multiply(const ApInt& a, const ApInt& b) const;

 private:
  int width_;
  MultiOperandAdder adder_;
};

}  // namespace vlcsa::spec
