// Fig 6.5 — carry-chain length statistics for 2's-complement Gaussian inputs
// on a 32-bit adder: the distribution that motivates VLCSA 2.  Expect a
// second mode of chains reaching the MSB (small negative + small positive
// operands whose sum flips sign).  Runs the registry's
// "fig6.5/gaussian-twos-complement" experiment on the parallel engine.

#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.5",
                        "Carry-chain length statistics, 2's-complement Gaussian inputs "
                        "(mu=0, sigma=2^20), 32-bit adder, " +
                            std::to_string(args.samples) + " additions.");

  const auto* experiment =
      harness::find_chain_profile_experiment("fig6.5/gaussian-twos-complement");
  if (experiment == nullptr) {
    std::cerr << "fig6.5/gaussian-twos-complement missing from the registry\n";
    return 1;
  }
  const auto profiler =
      harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
  bench::print_chain_histogram(profiler);
  std::cout << "\nfraction of chains reaching >= 24 bits: "
            << harness::fmt_pct(profiler.fraction_at_least(24), 2)
            << "\nExpected shape: bimodal — short chains plus a mode hugging the MSB\n"
               "(sign-extension chains), matching the crypto workload of Fig 6.2.\n";
  return 0;
}
