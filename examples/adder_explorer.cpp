// Adder explorer — the "C++ programs which ... generate Verilog files" flow
// of Ch. 7.1 as a command-line tool.  Builds any generator in the library,
// prints synthesis metrics, optionally writes the structural Verilog, and
// runs any named Monte Carlo experiment from the registry on the parallel
// sharded engine (bit-sliced batch pipeline by default; --batch=off selects
// the scalar oracle, byte-identical counters either way).
//
//   $ ./build/examples/adder_explorer --design=vlcsa2 --width=64 --window=13
//   $ ./build/examples/adder_explorer --design=kogge-stone --width=128 --verilog=ks128.v
//   $ ./build/examples/adder_explorer --list
//   $ ./build/examples/adder_explorer --list-experiments
//   $ ./build/examples/adder_explorer --experiment=table7.1/n64 --threads=4
//   $ ./build/examples/adder_explorer --experiment=table7.1/n64 --json=BENCH_t71_n64.json
//
// Argument parsing lives in harness/cli.{hpp,cpp} so it is unit-testable;
// unknown or malformed flags are hard errors, never silently ignored.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "adders/adders.hpp"
#include "harness/cli.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/verilog.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

using namespace vlcsa;

namespace {

const char* kDesigns[] = {"ripple",      "carry-select", "carry-skip",  "kogge-stone",
                          "brent-kung",  "sklansky",     "han-carlson", "hybrid-ks-carry-select",
                          "designware",  "scsa1",        "scsa2",       "vlcsa1",
                          "vlcsa2",      "vlsa"};

void print_usage() {
  std::cout << "usage: adder_explorer [--design=NAME] [--width=N] [--window=K]\n"
               "                      [--chain=L] [--verilog=FILE] [--list]\n"
               "                      [--experiment=NAME] [--samples=N] [--seed=S]\n"
               "                      [--threads=T] [--batch=on|off] [--json=FILE]\n"
               "                      [--profile] [--list-experiments]\n"
               "  --design      one of the generators (default kogge-stone)\n"
               "  --width       adder width in bits (default 64)\n"
               "  --window      SCSA/VLCSA window size (default: sized for 0.01%)\n"
               "  --chain       VLSA speculative chain length (default: published)\n"
               "  --verilog     write structural Verilog to FILE\n"
               "  --list        list available designs\n"
               "  --experiment  run a registry experiment instead of building a design\n"
               "  --samples     experiment sample count (default: the experiment's own)\n"
               "  --seed        experiment seed (default 1)\n"
               "  --threads     worker threads, 0 = all hardware threads (default 0)\n"
               "  --batch       bit-sliced 64-samples-per-word pipeline (default on;\n"
               "                off = scalar oracle, byte-identical counters)\n"
               "  --json        also write a machine-readable result record to FILE\n"
               "  --profile     print the engine run profile (shards, RNG words drawn,\n"
               "                fill/eval/merge time split, backend) to stderr as one\n"
               "                JSON line; with --json the profile is also embedded\n"
               "                in the record as its \"profile\" member\n"
               "  --list-experiments  list registry experiment names\n";
}

netlist::Netlist build(const std::string& design, int width, int window, int chain) {
  using adders::AdderKind;
  if (design == "scsa1" || design == "scsa2") {
    const auto variant = design == "scsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_scsa_netlist({width, window}, variant);
  }
  if (design == "vlcsa1" || design == "vlcsa2") {
    const auto variant = design == "vlcsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_vlcsa_netlist({width, window}, variant);
  }
  if (design == "vlsa") return spec::build_vlsa_netlist({width, chain});
  for (const auto kind :
       {AdderKind::kRipple, AdderKind::kCarrySelect, AdderKind::kCarrySkip,
        AdderKind::kKoggeStone, AdderKind::kBrentKung, AdderKind::kSklansky,
        AdderKind::kHanCarlson, AdderKind::kHybridKsCarrySelect, AdderKind::kDesignWare}) {
    if (design == to_string(kind)) return adders::build_adder_netlist(kind, width);
  }
  throw std::invalid_argument("unknown design: " + design + " (try --list)");
}

void list_experiments() {
  std::cout << "error-rate experiments:\n";
  for (const auto& e : harness::error_rate_experiments()) {
    std::cout << "  " << e.name << "  (" << to_string(e.model) << ", n=" << e.width
              << ", k=" << e.window << ")\n";
  }
  std::cout << "carry-chain profile experiments:\n";
  for (const auto& e : harness::chain_profile_experiments()) {
    std::cout << "  " << e.name << "  (n=" << e.width << ")\n";
  }
}

void write_json(const std::string& path, const harness::JsonObject& record) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  record.write(out);
  std::cout << "wrote result record to " << path << "\n";
}

int run_experiment_by_name(const harness::ExplorerOptions& opt) {
  using Clock = std::chrono::steady_clock;
  if (const auto* e = harness::find_error_rate_experiment(opt.experiment)) {
    const std::uint64_t n = opt.samples == 0 ? e->default_samples : opt.samples;
    std::cout << e->name << ": " << e->description << "\n"
              << n << " samples, seed " << opt.seed << ", " << to_string(opt.path)
              << " evaluation\n\n";
    harness::RunOptions options;
    options.samples = n;
    options.seed = opt.seed;
    options.threads = opt.threads;
    harness::RunProfileCollector collector;
    if (opt.profile) options.profile = &collector;
    const auto start = Clock::now();
    const auto result = harness::run_experiment(*e, options, opt.path);
    const double wall = std::chrono::duration<double>(Clock::now() - start).count();
    const double rate = wall > 0.0 ? static_cast<double>(result.samples) / wall : 0.0;
    if (opt.profile) {
      std::cerr << harness::render_run_profile(collector.snapshot()) << "\n";
    }

    harness::Table table({"metric", "value"});
    table.add_row({"samples", std::to_string(result.samples)});
    table.add_row({"actual error rate", harness::fmt_pct(result.actual_rate(), 3)});
    table.add_row({"nominal (stall) rate", harness::fmt_pct(result.nominal_rate(), 3)});
    table.add_row({"either-wrong rate", harness::fmt_pct(result.either_wrong_rate(), 3)});
    table.add_row({"false negatives", std::to_string(result.false_negatives)});
    table.add_row({"emitted wrong", std::to_string(result.emitted_wrong)});
    table.add_row({"avg cycles (eq. 5.2)", harness::fmt_fixed(result.average_cycles(), 4)});
    table.add_row({"wall time [s]", harness::fmt_fixed(wall, 3)});
    table.add_row({"samples/sec", harness::fmt_fixed(rate, 0)});
    table.print(std::cout);

    if (!opt.json_path.empty()) {
      harness::JsonObject record;
      record.add("experiment", e->name);
      record.add("kind", "error-rate");
      record.add("model", to_string(e->model));
      record.add("width", e->width);
      record.add("window", e->window);
      record.add("distribution", arith::to_string(e->dist));
      record.add("samples", result.samples);
      record.add("seed", opt.seed);
      record.add("threads", harness::resolve_threads(opt.threads));
      record.add("eval_path", to_string(opt.path));
      record.add("actual_errors", result.actual_errors);
      record.add("nominal_errors", result.nominal_errors);
      record.add("false_negatives", result.false_negatives);
      record.add("either_wrong", result.either_wrong);
      record.add("emitted_wrong", result.emitted_wrong);
      record.add("actual_rate", result.actual_rate());
      record.add("nominal_rate", result.nominal_rate());
      record.add("either_wrong_rate", result.either_wrong_rate());
      record.add("avg_cycles", result.average_cycles());
      record.add("wall_seconds", wall);
      record.add("samples_per_sec", rate);
      if (opt.profile) {
        record.add_json("profile", harness::render_run_profile(collector.snapshot()));
      }
      write_json(opt.json_path, record);
    }
    return 0;
  }
  if (const auto* e = harness::find_chain_profile_experiment(opt.experiment)) {
    if (opt.path_explicit) {
      std::cerr << "error: --batch only applies to error-rate experiments; "
                << e->name << " is a chain-profile experiment\n";
      return 2;
    }
    const std::uint64_t n = opt.samples == 0 ? e->default_samples : opt.samples;
    std::cout << e->name << ": " << e->description << "\n"
              << n << " samples, seed " << opt.seed << "\n\n";
    harness::RunOptions options;
    options.samples = n;
    options.seed = opt.seed;
    options.threads = opt.threads;
    harness::RunProfileCollector collector;
    if (opt.profile) options.profile = &collector;
    const auto start = Clock::now();
    const auto profiler = harness::run_experiment(*e, options);
    const double wall = std::chrono::duration<double>(Clock::now() - start).count();
    const double rate = wall > 0.0 ? static_cast<double>(n) / wall : 0.0;
    if (opt.profile) {
      std::cerr << harness::render_run_profile(collector.snapshot()) << "\n";
    }

    harness::Table table({"metric", "value"});
    table.add_row({"additions", std::to_string(profiler.additions())});
    table.add_row({"chains", std::to_string(profiler.total())});
    table.add_row({"mean chain length", harness::fmt_fixed(profiler.mean_length(), 2)});
    table.add_row({"chains >= width/2",
                   harness::fmt_pct(profiler.fraction_at_least(profiler.width() / 2), 2)});
    table.add_row({"wall time [s]", harness::fmt_fixed(wall, 3)});
    table.print(std::cout);

    if (!opt.json_path.empty()) {
      harness::JsonObject record;
      record.add("experiment", e->name);
      record.add("kind", "chain-profile");
      record.add("width", e->width);
      record.add("samples", n);
      record.add("seed", opt.seed);
      record.add("threads", harness::resolve_threads(opt.threads));
      record.add("additions", profiler.additions());
      record.add("chains", profiler.total());
      record.add("mean_chain_length", profiler.mean_length());
      record.add("wall_seconds", wall);
      record.add("samples_per_sec", rate);
      if (opt.profile) {
        record.add_json("profile", harness::render_run_profile(collector.snapshot()));
      }
      write_json(opt.json_path, record);
    }
    return 0;
  }
  std::cerr << "unknown experiment: " << opt.experiment << " (try --list-experiments)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parse = harness::parse_explorer_args(argc, argv);
  if (!parse.ok()) {
    std::cerr << "error: " << parse.error << "\n";
    print_usage();
    return 2;
  }
  const harness::ExplorerOptions& opt = parse.options;
  if (opt.show_help) {
    print_usage();
    return 0;
  }
  if (opt.list_designs) {
    for (const char* d : kDesigns) std::cout << "  " << d << "\n";
    return 0;
  }
  if (opt.list_experiments) {
    list_experiments();
    return 0;
  }

  try {
    if (!opt.experiment.empty()) {
      return run_experiment_by_name(opt);
    }

    int window = opt.window;
    int chain = opt.chain;
    if (window == 0) window = spec::min_window_for_error_rate(opt.width, 1e-4);
    if (chain == 0) {
      chain = (opt.width == 64 || opt.width == 128 || opt.width == 256 || opt.width == 512)
                  ? spec::vlsa_published_chain_length(opt.width)
                  : std::min(opt.width, window + 3);
    }

    const auto netlist = build(opt.design, opt.width, window, chain);
    const auto result = harness::synthesize(netlist);

    harness::Table table({"metric", "value"});
    table.add_row({"design", result.name});
    table.add_row({"gates (optimized)", std::to_string(result.gates)});
    table.add_row({"area [inv]", harness::fmt_fixed(result.area, 0)});
    table.add_row({"critical delay [tau]", harness::fmt_fixed(result.delay, 1)});
    for (const auto& [group, delay] : result.group_delay) {
      if (!group.empty()) {
        table.add_row({"delay of '" + group + "' [tau]", harness::fmt_fixed(delay, 1)});
      }
    }
    table.add_row({"max primary-input fanout", std::to_string(result.max_input_fanout)});
    table.print(std::cout);

    if (!opt.verilog_path.empty()) {
      std::ofstream out(opt.verilog_path);
      if (!out) throw std::runtime_error("cannot open " + opt.verilog_path);
      netlist::emit_verilog(netlist::optimize(netlist), out);
      std::cout << "wrote Verilog to " << opt.verilog_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
