#include "netlist/simulator.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace vlcsa::netlist {
namespace {

/// Builds a netlist with one gate of each 2-input kind plus NOT/BUF/MUX and
/// checks truth tables across all 4 input combinations (bit-sliced).
TEST(Simulator, PrimitiveGateTruthTables) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  const Signal s = nl.add_input("s");
  nl.add_output("and", nl.and_(a, b));
  nl.add_output("or", nl.or_(a, b));
  nl.add_output("nand", nl.nand_(a, b));
  nl.add_output("nor", nl.nor_(a, b));
  nl.add_output("xor", nl.xor_(a, b));
  nl.add_output("xnor", nl.xnor_(a, b));
  nl.add_output("not", nl.not_(a));
  nl.add_output("buf", nl.buf(a));
  nl.add_output("mux", nl.mux(s, a, b));
  nl.add_output("c0", nl.constant(false));
  nl.add_output("c1", nl.constant(true));

  Simulator sim(nl);
  const std::uint64_t va = 0b1100;  // vectors 0..3: a = 0,0,1,1
  const std::uint64_t vb = 0b1010;  //               b = 0,1,0,1
  const std::uint64_t vs = 0b1001;  //               s = 1,0,0,1
  sim.set_input("a", va);
  sim.set_input("b", vb);
  sim.set_input("s", vs);
  sim.run();

  const std::uint64_t m = 0xf;
  EXPECT_EQ(sim.output("and") & m, va & vb);
  EXPECT_EQ(sim.output("or") & m, va | vb);
  EXPECT_EQ(sim.output("nand") & m, ~(va & vb) & m);
  EXPECT_EQ(sim.output("nor") & m, ~(va | vb) & m);
  EXPECT_EQ(sim.output("xor") & m, va ^ vb);
  EXPECT_EQ(sim.output("xnor") & m, ~(va ^ vb) & m);
  EXPECT_EQ(sim.output("not") & m, ~va & m);
  EXPECT_EQ(sim.output("buf") & m, va);
  // mux: s ? b : a  per our (sel, d0, d1) = (s, a, b) convention
  EXPECT_EQ(sim.output("mux") & m, ((vs & vb) | (~vs & va)) & m);
  EXPECT_EQ(sim.output("c0") & m, 0u);
  EXPECT_EQ(sim.output("c1") & m, m);
}

TEST(Simulator, SetInputByIndexAndName) {
  Netlist nl;
  nl.add_input("x");
  nl.add_output("y", nl.not_(nl.inputs()[0].signal));
  Simulator sim(nl);
  sim.set_input(0, 0xff);
  sim.run();
  EXPECT_EQ(sim.output("y"), ~std::uint64_t{0xff});
  sim.set_input("x", 0x0);
  sim.run();
  EXPECT_EQ(sim.output("y"), ~std::uint64_t{0});
}

TEST(Simulator, UnknownPortThrows) {
  Netlist nl;
  nl.add_input("x");
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input("nope", 0), std::invalid_argument);
  EXPECT_THROW((void)sim.output("nope"), std::invalid_argument);
}

TEST(Simulator, DeepChainEvaluatesInOnePass) {
  // not(not(...not(x))) depth 1000: parity of inversions.
  Netlist nl;
  Signal cur = nl.add_input("x");
  for (int i = 0; i < 1001; ++i) cur = nl.not_(cur);
  nl.add_output("y", cur);
  Simulator sim(nl);
  sim.set_input("x", 0xdeadbeef);
  sim.run();
  EXPECT_EQ(sim.output("y"), ~std::uint64_t{0xdeadbeef});
}

TEST(Simulator, RandomNetworkMatchesReferenceEvaluator) {
  // Builds a random DAG and compares against direct recursive evaluation of
  // one scalar vector (bit 0 of every word).
  std::mt19937_64 rng(99);
  Netlist nl;
  std::vector<Signal> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int i = 0; i < 200; ++i) {
    const auto pick = [&] { return pool[rng() % pool.size()]; };
    const int kind = static_cast<int>(rng() % 7);
    Signal s;
    switch (kind) {
      case 0: s = nl.and_(pick(), pick()); break;
      case 1: s = nl.or_(pick(), pick()); break;
      case 2: s = nl.xor_(pick(), pick()); break;
      case 3: s = nl.nand_(pick(), pick()); break;
      case 4: s = nl.nor_(pick(), pick()); break;
      case 5: s = nl.not_(pick()); break;
      default: s = nl.mux(pick(), pick(), pick()); break;
    }
    pool.push_back(s);
  }
  nl.add_output("y", pool.back());

  Simulator sim(nl);
  std::vector<bool> scalar(8);
  for (int trial = 0; trial < 16; ++trial) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t word = rng();
      sim.set_input(static_cast<std::size_t>(i), word);
      scalar[static_cast<std::size_t>(i)] = word & 1;
    }
    sim.run();
    // Reference: evaluate gates in order on the scalar values.
    std::vector<bool> val(nl.num_gates());
    std::size_t input_idx = 0;
    for (std::uint32_t g = 0; g < nl.num_gates(); ++g) {
      const Gate& gate = nl.gates()[g];
      const auto in = [&](int pin) { return val[gate.fanin[static_cast<std::size_t>(pin)].id]; };
      switch (gate.kind) {
        case GateKind::kInput: val[g] = scalar[input_idx++]; break;
        case GateKind::kAnd2: val[g] = in(0) && in(1); break;
        case GateKind::kOr2: val[g] = in(0) || in(1); break;
        case GateKind::kXor2: val[g] = in(0) != in(1); break;
        case GateKind::kNand2: val[g] = !(in(0) && in(1)); break;
        case GateKind::kNor2: val[g] = !(in(0) || in(1)); break;
        case GateKind::kNot: val[g] = !in(0); break;
        case GateKind::kMux2: val[g] = in(0) ? in(2) : in(1); break;
        default: val[g] = false; break;
      }
    }
    EXPECT_EQ(sim.output("y") & 1, val[pool.back().id] ? 1u : 0u);
  }
}

/// Multi-word lanes: one W=4 pass must equal four independent W=1 passes
/// over the same vectors, lane word by lane word.
TEST(Simulator, MultiWordLanesMatchSingleWordRuns) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  const Signal s = nl.add_input("s");
  const Signal sum = nl.xor_(nl.xor_(a, b), s);
  const Signal maj = nl.or_(nl.and_(a, b), nl.and_(s, nl.xor_(a, b)));
  nl.add_output("sum", sum);
  nl.add_output("maj", nl.not_(maj));

  constexpr int kLaneWords = 4;
  std::mt19937_64 rng(42);
  std::uint64_t va[kLaneWords], vb[kLaneWords], vs[kLaneWords];
  for (int w = 0; w < kLaneWords; ++w) {
    va[w] = rng();
    vb[w] = rng();
    vs[w] = rng();
  }

  Simulator wide(nl, kLaneWords);
  EXPECT_EQ(wide.lane_words(), kLaneWords);
  wide.set_input_lanes(0, va);
  wide.set_input_lanes(1, vb);
  wide.set_input_lanes(2, vs);
  wide.run();

  for (int w = 0; w < kLaneWords; ++w) {
    Simulator narrow(nl);
    narrow.set_input("a", va[w]);
    narrow.set_input("b", vb[w]);
    narrow.set_input("s", vs[w]);
    narrow.run();
    EXPECT_EQ(wide.output_lanes("sum")[w], narrow.output("sum")) << "lane word " << w;
    EXPECT_EQ(wide.output_lanes("maj")[w], narrow.output("maj")) << "lane word " << w;
  }
  // The classic single-word accessors address lane word 0 on a wide sim.
  EXPECT_EQ(wide.output("sum"), wide.output_lanes("sum")[0]);
  EXPECT_THROW(Simulator(nl, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlcsa::netlist
