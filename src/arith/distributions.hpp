#pragma once
// Operand-pair sources for the four input classes studied in the paper
// (Ch. 3 and Ch. 6): unsigned uniform, two's-complement uniform, unsigned
// Gaussian and two's-complement Gaussian (the practical-input proxy), plus a
// common interface so the Monte Carlo harness can run any of them.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "arith/rng.hpp"

namespace vlcsa::arith {

/// A stream of operand pairs for an n-bit adder.
class OperandSource {
 public:
  explicit OperandSource(int width) : width_(width) {}
  virtual ~OperandSource() = default;

  OperandSource(const OperandSource&) = delete;
  OperandSource& operator=(const OperandSource&) = delete;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] virtual std::string name() const = 0;

  /// Draws the next operand pair.
  virtual std::pair<ApInt, ApInt> next(BlockRng& rng) = 0;

  /// Draws the next out.lanes() (= 64 * lane_words) operand pairs and
  /// transposes them into bit-planes.  CONTRACT: consumes the RNG exactly
  /// like out.lanes() successive next() calls and produces the same samples
  /// (lane j = the j-th pair) — this is what keeps the batched Monte Carlo
  /// path bit-identical to the scalar one at every lane width.  The default
  /// implementation literally calls next(); overrides may generate straight
  /// into the planes as long as the stream is preserved.
  virtual void fill_batch(BlockRng& rng, BitSlicedBatch& out);

  /// Fresh source of the same distribution with pristine stream state (any
  /// cached variates are discarded).  Must be safe to call concurrently from
  /// multiple threads — the parallel engine clones one source per shard.
  [[nodiscard]] virtual std::unique_ptr<OperandSource> clone() const = 0;

 private:
  int width_;
};

/// Uniformly random n-bit patterns ("unsigned random inputs", Ch. 3).
class UniformUnsignedSource final : public OperandSource {
 public:
  explicit UniformUnsignedSource(int width) : OperandSource(width) {}
  [[nodiscard]] std::string name() const override { return "uniform-unsigned"; }
  std::pair<ApInt, ApInt> next(BlockRng& rng) override;
  /// Fast path: one generate_block() per lane-word group fills the raw limb
  /// stream directly (same word order as ApInt::random — per sample, a's
  /// limbs then b's limbs — so the stream contract holds), then the words
  /// are deinterleaved into per-limb 64x64 blocks, masked, transposed, and
  /// written straight into the bit-planes.  No per-sample draw loop and no
  /// heap ApInts — this is the direct-to-plane path the block RNG enables.
  void fill_batch(BlockRng& rng, BitSlicedBatch& out) override;
  [[nodiscard]] std::unique_ptr<OperandSource> clone() const override {
    return std::make_unique<UniformUnsignedSource>(width());
  }

 private:
  std::vector<std::uint64_t> stream_;  // fill_batch raw block-RNG draw scratch
  std::vector<std::uint64_t> rows_;    // fill_batch transpose scratch
};

/// Two's-complement uniform inputs (Fig 6.3): a uniformly random magnitude
/// in [0, 2^(n-1)) with a random sign, encoded in two's complement.  This
/// differs from a uniform bit pattern in that negative values carry explicit
/// sign-extension structure, matching the paper's separate treatment of the
/// two cases.
class UniformTwosSource final : public OperandSource {
 public:
  explicit UniformTwosSource(int width) : OperandSource(width) {}
  [[nodiscard]] std::string name() const override { return "uniform-twos-complement"; }
  std::pair<ApInt, ApInt> next(BlockRng& rng) override;
  [[nodiscard]] std::unique_ptr<OperandSource> clone() const override {
    return std::make_unique<UniformTwosSource>(width());
  }
};

/// Parameters of the Gaussian operand model (Ch. 7 uses mu = 0, sigma = 2^32).
struct GaussianParams {
  double mean = 0.0;
  double sigma = 4294967296.0;  // 2^32
};

/// |round(N(mu, sigma))| encoded as an unsigned n-bit value (Fig 6.4).
/// Variates come from the block ziggurat (GaussianBlockSampler); next() and
/// fill_batch() share the sampler state, so the scalar and batched Monte
/// Carlo paths consume one identical stream.
class GaussianUnsignedSource final : public OperandSource {
 public:
  GaussianUnsignedSource(int width, GaussianParams params)
      : OperandSource(width), params_(params) {}
  [[nodiscard]] std::string name() const override { return "gaussian-unsigned"; }
  std::pair<ApInt, ApInt> next(BlockRng& rng) override;
  /// Fast path: bulk ziggurat variates encoded straight into transpose
  /// blocks — samples are at most 64 bits of magnitude, so only the limb-0
  /// block is transposed and every higher bit-plane is zero.
  void fill_batch(BlockRng& rng, BitSlicedBatch& out) override;
  [[nodiscard]] std::unique_ptr<OperandSource> clone() const override {
    return std::make_unique<GaussianUnsignedSource>(width(), params_);
  }

 private:
  GaussianParams params_;
  GaussianBlockSampler sampler_;
  std::vector<double> variates_;     // fill_batch variate scratch
  std::vector<std::uint64_t> rows_;  // fill_batch transpose scratch
};

/// round(N(mu, sigma)) encoded in n-bit two's complement (Fig 6.5, Ch. 7).
/// Small-magnitude negatives produce the long sign-extension carry chains
/// that motivate VLCSA 2.  Same block-ziggurat sampling discipline as
/// GaussianUnsignedSource.
class GaussianTwosSource final : public OperandSource {
 public:
  GaussianTwosSource(int width, GaussianParams params)
      : OperandSource(width), params_(params) {}
  [[nodiscard]] std::string name() const override { return "gaussian-twos-complement"; }
  std::pair<ApInt, ApInt> next(BlockRng& rng) override;
  /// Fast path: like GaussianUnsignedSource::fill_batch, plus sign
  /// extension — every bit-plane above limb 0 is the lane-wise sign mask,
  /// written directly with no extra transposes.
  void fill_batch(BlockRng& rng, BitSlicedBatch& out) override;
  [[nodiscard]] std::unique_ptr<OperandSource> clone() const override {
    return std::make_unique<GaussianTwosSource>(width(), params_);
  }

 private:
  GaussianParams params_;
  GaussianBlockSampler sampler_;
  std::vector<double> variates_;     // fill_batch variate scratch
  std::vector<std::uint64_t> rows_;  // fill_batch transpose scratch
};

enum class InputDistribution {
  kUniformUnsigned,
  kUniformTwos,
  kGaussianUnsigned,
  kGaussianTwos,
};

[[nodiscard]] std::string to_string(InputDistribution dist);

/// Inverse of to_string(InputDistribution) ("uniform-unsigned", ... — the
/// names experiment records and the service protocol carry).  Returns false
/// on unknown text without touching `out`.
[[nodiscard]] bool parse_distribution(std::string_view text, InputDistribution& out);

/// Factory used by the harness and benches.
[[nodiscard]] std::unique_ptr<OperandSource> make_source(InputDistribution dist, int width,
                                                         GaussianParams params = {});

/// Clamps a double sample to the representable signed range of `width` bits
/// and encodes it in two's complement.  Exposed for testing.
[[nodiscard]] ApInt encode_signed_sample(int width, double sample);

/// Clamps |sample| to the representable unsigned range of `width` bits.
/// Exposed for testing.
[[nodiscard]] ApInt encode_unsigned_sample(int width, double sample);

}  // namespace vlcsa::arith
