// Table 7.1 — experimental and nominal error rates of VLCSA 1 for
// 2's-complement Gaussian inputs (mu = 0, sigma = 2^32), at the paper's
// (n, k) design points.  Paper reports 25.01% for both columns at every
// width (1M samples; default here 2*10^5, override with --samples).
//
// Rows come from the "table7.1/" experiments in the registry and run on the
// parallel sharded engine (--threads=N; results are thread-count-invariant).

#include <iostream>

#include "harness/experiments.hpp"
#include "harness/report.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 200000);
  harness::print_banner(std::cout, "Table 7.1",
                        "VLCSA 1 error rates, 2's-complement Gaussian inputs "
                        "(mu=0, sigma=2^32), " + std::to_string(args.samples) +
                            " samples per row.  Paper: 25.01% everywhere.");

  harness::Table table({"adder width", "window size", "P_err (Monte Carlo)",
                        "P_err (ERR = 1)", "avg cycles"});
  for (const auto* experiment : harness::error_rate_experiments_with_prefix("table7.1/")) {
    const auto result =
        harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
    table.add_row({std::to_string(experiment->width), std::to_string(experiment->window),
                   harness::fmt_pct(result.actual_rate()),
                   harness::fmt_pct(result.nominal_rate()),
                   harness::fmt_fixed(result.average_cycles(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: ~25% in both columns — every fourth addition pairs operands\n"
               "of opposite sign whose sum crosses zero, driving a sign-extension carry\n"
               "chain across the whole adder (Ch. 7.3).\n";
  return 0;
}
