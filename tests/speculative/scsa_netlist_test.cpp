#include "speculative/scsa_netlist.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/testutil.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/timing.hpp"
#include "speculative/error_model.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;
using netlist::Netlist;
using netlist::Simulator;

struct NetlistCase {
  int width;
  int window;
  ScsaVariant variant;
  bool optimize;
};

class ScsaNetlistTest : public ::testing::TestWithParam<NetlistCase> {};

/// Drives 64 random vectors through the VLCSA netlist and checks every
/// output group against the behavioral model.
TEST_P(ScsaNetlistTest, MatchesBehavioralModelOnAllOutputGroups) {
  const auto [n, k, variant, optimize] = GetParam();
  const ScsaConfig config{n, k};
  Netlist nl = build_vlcsa_netlist(config, variant);
  if (optimize) nl = netlist::optimize(nl);
  const ScsaModel model(config);

  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(static_cast<unsigned>(n * 131 + k));
  for (int round = 0; round < 4; ++round) {
    std::vector<ApInt> a, b;
    for (int v = 0; v < 64; ++v) {
      a.push_back(ApInt::random(n, rng));
      b.push_back(ApInt::random(n, rng));
    }
    testutil::load_operands(sim, a, b, n);
    sim.run();
    for (std::size_t v = 0; v < 64; ++v) {
      const auto ev = model.evaluate(a[v], b[v]);
      ASSERT_EQ(testutil::read_bus(sim, "sum", n, v), ev.spec0) << "vector " << v;
      ASSERT_EQ(((sim.output("cout") >> v) & 1) != 0, ev.spec0_cout);
      ASSERT_EQ(((sim.output("err0") >> v) & 1) != 0, ev.err0);
      ASSERT_EQ(testutil::read_bus(sim, "rec", n, v), ev.recovered);
      ASSERT_EQ(((sim.output("rec_cout") >> v) & 1) != 0, ev.recovered_cout);
      if (variant == ScsaVariant::kScsa2) {
        ASSERT_EQ(testutil::read_bus(sim, "sum1", n, v), ev.spec1);
        ASSERT_EQ(((sim.output("cout1") >> v) & 1) != 0, ev.spec1_cout);
        ASSERT_EQ(((sim.output("err1") >> v) & 1) != 0, ev.err1);
        ASSERT_EQ(((sim.output("stall") >> v) & 1) != 0, ev.vlcsa2_stall());
      } else {
        ASSERT_EQ(((sim.output("stall") >> v) & 1) != 0, ev.vlcsa1_stall());
      }
      ASSERT_EQ(((sim.output("valid") >> v) & 1) != 0, !((sim.output("stall") >> v) & 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ScsaNetlistTest,
    ::testing::Values(NetlistCase{16, 4, ScsaVariant::kScsa1, false},
                      NetlistCase{16, 4, ScsaVariant::kScsa2, false},
                      NetlistCase{24, 8, ScsaVariant::kScsa2, true},
                      NetlistCase{32, 5, ScsaVariant::kScsa1, true},
                      NetlistCase{64, 14, ScsaVariant::kScsa1, true},
                      NetlistCase{64, 14, ScsaVariant::kScsa2, true},
                      NetlistCase{65, 7, ScsaVariant::kScsa2, true},
                      NetlistCase{128, 15, ScsaVariant::kScsa1, true}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.width) + "_k" +
             std::to_string(info.param.window) + "_" + to_string(info.param.variant) +
             (info.param.optimize ? "_opt" : "_raw");
    });

TEST(ScsaNetlist, SpecOnlyNetlistMatchesBehavioralSpec) {
  const ScsaConfig config{48, 9};
  const Netlist nl = netlist::optimize(build_scsa_netlist(config, ScsaVariant::kScsa1));
  const ScsaModel model(config);
  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(999);
  std::vector<ApInt> a, b;
  for (int v = 0; v < 64; ++v) {
    a.push_back(ApInt::random(48, rng));
    b.push_back(ApInt::random(48, rng));
  }
  testutil::load_operands(sim, a, b, 48);
  sim.run();
  for (std::size_t v = 0; v < 64; ++v) {
    const auto ev = model.evaluate(a[v], b[v]);
    ASSERT_EQ(testutil::read_bus(sim, "sum", 48, v), ev.spec0);
  }
}

TEST(ScsaNetlist, OutputGroupsArePresent) {
  const Netlist nl = build_vlcsa_netlist(ScsaConfig{32, 8}, ScsaVariant::kScsa2);
  bool has_spec = false, has_detect = false, has_recovery = false;
  for (const auto& port : nl.outputs()) {
    has_spec = has_spec || port.group == kGroupSpec;
    has_detect = has_detect || port.group == kGroupDetect;
    has_recovery = has_recovery || port.group == kGroupRecovery;
  }
  EXPECT_TRUE(has_spec);
  EXPECT_TRUE(has_detect);
  EXPECT_TRUE(has_recovery);
}

TEST(ScsaNetlist, DetectionDelayIsComparableToSpeculation) {
  // The paper's headline structural claim (Ch. 5.1): VLCSA's detector is no
  // slower than its speculative datapath (within a small margin), unlike
  // VLSA's.  Check at the published design points.
  for (const auto& [n, k01, k25] : published_scsa_parameters()) {
    const auto nl =
        netlist::optimize(build_vlcsa_netlist(ScsaConfig{n, k01}, ScsaVariant::kScsa1));
    const auto timing = netlist::analyze_timing(nl);
    const double spec = timing.delay_of(kGroupSpec);
    const double detect = timing.delay_of(kGroupDetect);
    EXPECT_GT(spec, 0.0);
    EXPECT_GT(detect, 0.0);
    EXPECT_LE(detect, spec * 1.15) << "n = " << n;
  }
}

TEST(ScsaNetlist, RecoveryDelayIsUnderTwoCycles) {
  // Ch. 5.2: with T_clk slightly above max(spec, detect), recovery finishes
  // within the second cycle.
  for (const auto& [n, k01, k25] : published_scsa_parameters()) {
    const auto nl =
        netlist::optimize(build_vlcsa_netlist(ScsaConfig{n, k01}, ScsaVariant::kScsa1));
    const auto timing = netlist::analyze_timing(nl);
    const double tclk = std::max(timing.delay_of(kGroupSpec), timing.delay_of(kGroupDetect));
    EXPECT_LT(timing.delay_of(kGroupRecovery), 2.0 * tclk) << "n = " << n;
  }
}

TEST(ScsaNetlist, Variant2AddsModestArea) {
  // SCSA 2 adds one mux bank + ERR1: area overhead should be O(n) small,
  // not a blowup (Ch. 6.5: complexity O(n/k) muxes of k bits each).
  const ScsaConfig config{128, 15};
  const auto v1 = netlist::optimize(build_vlcsa_netlist(config, ScsaVariant::kScsa1));
  const auto v2 = netlist::optimize(build_vlcsa_netlist(config, ScsaVariant::kScsa2));
  const auto a1 = netlist::analyze_area(v1).total;
  const auto a2 = netlist::analyze_area(v2).total;
  EXPECT_GT(a2, a1);
  EXPECT_LT(a2, a1 * 1.6);
}

TEST(ScsaNetlist, GaussianVectorsExerciseAllPathsEquivalently) {
  // Netlist-vs-behavioral equivalence specifically on sign-extension-heavy
  // vectors (the VLCSA 2 case split).
  const ScsaConfig config{64, 13};
  const Netlist nl = netlist::optimize(build_vlcsa_netlist(config, ScsaVariant::kScsa2));
  const ScsaModel model(config);
  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(31337);
  std::vector<ApInt> a, b;
  for (int v = 0; v < 64; ++v) {
    // Small signed values: dense long-chain coverage.
    a.push_back(ApInt::from_i64(64, static_cast<std::int64_t>(rng() % 4096) - 2048));
    b.push_back(ApInt::from_i64(64, static_cast<std::int64_t>(rng() % 4096) - 2048));
  }
  testutil::load_operands(sim, a, b, 64);
  sim.run();
  for (std::size_t v = 0; v < 64; ++v) {
    const auto ev = model.evaluate(a[v], b[v]);
    ASSERT_EQ(testutil::read_bus(sim, "sum", 64, v), ev.spec0);
    ASSERT_EQ(testutil::read_bus(sim, "sum1", 64, v), ev.spec1);
    ASSERT_EQ(((sim.output("err0") >> v) & 1) != 0, ev.err0);
    ASSERT_EQ(((sim.output("err1") >> v) & 1) != 0, ev.err1);
    ASSERT_EQ(testutil::read_bus(sim, "rec", 64, v), ev.recovered);
  }
}

}  // namespace
}  // namespace vlcsa::spec
