#pragma once
// Cycle-accurate stream model of a VLCSA in a single-issue datapath
// (Fig 5.3's VALID/STALL handshake): one addition issues per cycle; when
// detection stalls, the next issue waits one bubble cycle while recovery
// completes.  Combined with the synthesis clock periods this turns the
// paper's eq. (5.2) into wall-clock comparisons against fixed-latency
// adders ("on average ... about 10% faster than the DesignWare adder").

#include <cstdint>

#include "arith/distributions.hpp"
#include "speculative/vlcsa.hpp"

namespace vlcsa::spec {

struct PipelineStats {
  std::uint64_t additions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t stalls = 0;
  std::uint64_t wrong_results = 0;  // must stay 0

  /// Average cycles per addition — measured eq. (5.2).
  [[nodiscard]] double cycles_per_add() const {
    return additions == 0 ? 0.0
                          : static_cast<double>(cycles) / static_cast<double>(additions);
  }
  /// Additions per cycle.
  [[nodiscard]] double throughput() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(additions) / static_cast<double>(cycles);
  }
  /// Wall-clock time for the stream given a clock period.
  [[nodiscard]] double total_time(double clock_period) const {
    return static_cast<double>(cycles) * clock_period;
  }
};

class VlcsaPipeline {
 public:
  explicit VlcsaPipeline(VlcsaConfig config) : model_(config) {}

  [[nodiscard]] const VlcsaModel& model() const { return model_; }

  /// Streams `count` operand pairs through the adder.
  [[nodiscard]] PipelineStats run(arith::OperandSource& source, std::uint64_t count,
                                  std::uint64_t seed) const;

 private:
  VlcsaModel model_;
};

}  // namespace vlcsa::spec
