#include "harness/engine.hpp"

namespace vlcsa::harness {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mt19937_64 make_shard_rng(std::uint64_t seed, std::uint64_t shard_index) {
  std::seed_seq sequence{
      static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32),
      static_cast<std::uint32_t>(shard_index), static_cast<std::uint32_t>(shard_index >> 32)};
  return std::mt19937_64(sequence);
}

}  // namespace vlcsa::harness
