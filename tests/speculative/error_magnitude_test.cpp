#include "speculative/error_magnitude.hpp"

#include <gtest/gtest.h>

namespace vlcsa::spec {
namespace {

TEST(ErrorMagnitude, CountsMatchDirectEvaluation) {
  const ScsaConfig config{32, 6};
  arith::UniformUnsignedSource source(32);
  const auto stats = measure_error_magnitude(config, source, 50000, 13);
  EXPECT_EQ(stats.samples, 50000u);
  EXPECT_GT(stats.errors, 0u);
  // Histogram totals must equal the error count.
  std::uint64_t histogram_total = 0;
  for (const auto c : stats.magnitude_log2) histogram_total += c;
  EXPECT_EQ(histogram_total, stats.errors);
  EXPECT_GT(stats.error_rate(), 0.0);
  EXPECT_LE(stats.mean_relative_error, stats.max_relative_error);
}

TEST(ErrorMagnitude, ErrorsAreWindowWeightSized) {
  // Ch. 3.3: the absolute error is a (sum of) window-weight off-by-ones, so
  // log2 |error| always sits at a window boundary position.
  const ScsaConfig config{32, 8};
  arith::UniformUnsignedSource source(32);
  const auto stats = measure_error_magnitude(config, source, 200000, 17);
  ASSERT_GT(stats.errors, 0u);
  const WindowLayout layout(32, 8);
  for (int log2_mag = 0; log2_mag < 64; ++log2_mag) {
    if (stats.magnitude_log2[static_cast<std::size_t>(log2_mag)] == 0) continue;
    // A single wrong window at pos contributes exactly 2^pos; multiple
    // wrong windows can combine into runs ending just below a higher
    // boundary.  Either way the magnitude is >= the first non-zero window
    // boundary above bit 0.
    EXPECT_GE(log2_mag, layout.window(1).pos - 1) << "error of weight 2^" << log2_mag;
  }
}

TEST(ErrorMagnitude, MeanRelativeErrorIsSmallOnUniformInputs) {
  // The headline of Ch. 3.3: when the speculative adder errs on full-scale
  // uniform operands, the relative error is small (the paper's example is
  // 1/2^7).
  const ScsaConfig config{64, 10};
  arith::UniformUnsignedSource source(64);
  const auto stats = measure_error_magnitude(config, source, 300000, 19);
  ASSERT_GT(stats.errors, 10u);
  EXPECT_LT(stats.mean_relative_error, 0.05);
}

TEST(ErrorMagnitude, NoErrorsOnSingleWindow) {
  const ScsaConfig config{16, 16};
  arith::UniformUnsignedSource source(16);
  const auto stats = measure_error_magnitude(config, source, 10000, 23);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_relative_error, 0.0);
}

}  // namespace
}  // namespace vlcsa::spec
