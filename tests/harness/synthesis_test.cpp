#include "harness/synthesis.hpp"

#include <gtest/gtest.h>

#include "adders/adders.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

namespace vlcsa::harness {
namespace {

TEST(Synthesis, ReportsDelayAreaGates) {
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 32);
  const auto result = synthesize(nl);
  EXPECT_EQ(result.name, "kogge-stone_32");
  EXPECT_GT(result.delay, 0.0);
  EXPECT_GT(result.area, 0.0);
  EXPECT_GT(result.gates, 0u);
}

TEST(Synthesis, OptimizerOnlyShrinks) {
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 64);
  const auto raw = synthesize(nl, /*run_optimizer=*/false);
  const auto opt = synthesize(nl, /*run_optimizer=*/true);
  EXPECT_LE(opt.area, raw.area);
  EXPECT_LE(opt.delay, raw.delay + 1e-9);
}

TEST(Synthesis, KoggeStoneDelayGrowsLogarithmically) {
  // Doubling the width should add roughly one prefix level, not double the
  // delay.
  const auto d64 =
      synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 64)).delay;
  const auto d128 =
      synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 128)).delay;
  const auto d256 =
      synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 256)).delay;
  EXPECT_LT(d128 / d64, 1.5);
  EXPECT_LT(d256 / d128, 1.5);
  EXPECT_GT(d128, d64);
  EXPECT_GT(d256, d128);
}

TEST(Synthesis, RippleIsMuchSlowerThanPrefix) {
  const auto ripple =
      synthesize(adders::build_adder_netlist(adders::AdderKind::kRipple, 64)).delay;
  const auto ks =
      synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 64)).delay;
  EXPECT_GT(ripple, 3.0 * ks);
}

TEST(Synthesis, ScsaIsFasterThanKoggeStoneAtPaperDesignPoints) {
  // Fig 7.2's headline: the speculative adder beats the traditional one.
  for (const auto& [n, k01, k25] : spec::published_scsa_parameters()) {
    const auto scsa = synthesize(
        spec::build_scsa_netlist(spec::ScsaConfig{n, k01}, spec::ScsaVariant::kScsa1));
    const auto ks = synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, n));
    EXPECT_LT(scsa.delay, ks.delay) << "n = " << n;
  }
}

TEST(Synthesis, GroupDelaysExposedForVlcsa) {
  const auto nl =
      spec::build_vlcsa_netlist(spec::ScsaConfig{64, 14}, spec::ScsaVariant::kScsa1);
  const auto result = synthesize(nl);
  EXPECT_GT(result.delay_of("spec"), 0.0);
  EXPECT_GT(result.delay_of("detect"), 0.0);
  EXPECT_GT(result.delay_of("recovery"), result.delay_of("spec"));
  EXPECT_EQ(result.delay_of("nonexistent"), 0.0);
}

TEST(Synthesis, MaxInputFanoutIsTracked) {
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 32);
  const auto result = synthesize(nl);
  EXPECT_GE(result.max_input_fanout, 1u);
}

}  // namespace
}  // namespace vlcsa::harness
