#include "speculative/scsa.hpp"

#include <gtest/gtest.h>

#include <random>

#include "arith/distributions.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;

TEST(ScsaModel, RejectsWidthMismatch) {
  const ScsaModel model(ScsaConfig{64, 14});
  EXPECT_THROW(model.evaluate(ApInt(32), ApInt(64)), std::invalid_argument);
}

TEST(ScsaModel, ExactFieldIsTrueSum) {
  const ScsaModel model(ScsaConfig{64, 14});
  vlcsa::arith::BlockRng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto a = ApInt::random(64, rng);
    const auto b = ApInt::random(64, rng);
    const auto ev = model.evaluate(a, b);
    const auto ref = ApInt::add(a, b);
    EXPECT_EQ(ev.exact, ref.sum);
    EXPECT_EQ(ev.exact_cout, ref.carry_out);
  }
}

TEST(ScsaModel, SingleWindowIsAlwaysExact) {
  const ScsaModel model(ScsaConfig{16, 16});
  vlcsa::arith::BlockRng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto ev = model.evaluate(ApInt::random(16, rng), ApInt::random(16, rng));
    EXPECT_TRUE(ev.spec0_correct());
    EXPECT_TRUE(ev.spec1_correct());
    EXPECT_FALSE(ev.err0);
    EXPECT_FALSE(ev.err1);
  }
}

TEST(ScsaModel, TwoWindowPairOnlyFlagsWithoutError) {
  // 16-bit adder, k = 8.  Window 0 generates, window 1 is all-propagate.
  // With only two windows there is no "next next" window to corrupt — the
  // speculated carry into window 1 (= G0 = 1) is exact, so S*,0 is correct
  // even though ERR0 flags.  This is precisely the detector's documented
  // overestimation (Ch. 5.1).
  const ScsaModel model(ScsaConfig{16, 8});
  const ApInt a = ApInt::from_binary(16, "0101010111111111");  // low byte 0xFF
  const ApInt b = ApInt::from_binary(16, "1010101000000001");  // low byte 0x01
  const auto ev = model.evaluate(a, b);
  EXPECT_TRUE(ev.window_g[0]);
  EXPECT_TRUE(ev.window_p[1]);
  EXPECT_TRUE(ev.err0);
  EXPECT_TRUE(ev.spec0_correct());
}

TEST(ScsaModel, HandCraftedTruncationError) {
  // 24-bit adder, k = 8.  Window 0 generates, windows 1 and 2 are both
  // all-propagate: the carry crosses window 1 whole, but SCSA 1 speculates
  // window 2's carry-in as G1 = 0 — wrong.  ERR0 flags; ERR1 stays low (the
  // propagate run reaches the MSB window), so S*,1 — whose window-2 select
  // is G1 | P1 = 1 — is correct and VLCSA 2 answers in one cycle.
  const ScsaModel model(ScsaConfig{24, 8});
  ApInt a(24), b(24);
  a.deposit(0, 8, 0xff);  // window 0: 0xFF + 0x01 -> generate
  b.deposit(0, 8, 0x01);
  a.deposit(8, 8, 0x55);  // window 1: all-propagate
  b.deposit(8, 8, 0xaa);
  a.deposit(16, 8, 0x33);  // window 2: all-propagate
  b.deposit(16, 8, 0xcc);
  const auto ev = model.evaluate(a, b);
  EXPECT_TRUE(ev.window_g[0]);
  EXPECT_TRUE(ev.window_p[1]);
  EXPECT_TRUE(ev.window_p[2]);
  EXPECT_TRUE(ev.err0);
  EXPECT_FALSE(ev.err1);
  EXPECT_FALSE(ev.spec0_correct());
  EXPECT_TRUE(ev.spec1_correct());
  EXPECT_TRUE(ev.vlcsa2_selected_correct());
  EXPECT_FALSE(ev.vlcsa2_stall());
}

TEST(ScsaModel, HandCraftedChainDyingEarly) {
  // 24-bit adder, k = 8.  Window 0 generates, window 1 propagates, window 2
  // kills: ERR0 = 1 and ERR1 = 1 (the run dies before the MSB window), so
  // VLCSA 2 must stall; recovery must be exact.
  const ScsaModel model(ScsaConfig{24, 8});
  ApInt a(24), b(24);
  // Window 0 generate: a=0xFF, b=0x01.
  a.deposit(0, 8, 0xff);
  b.deposit(0, 8, 0x01);
  // Window 1 propagate: a=0x55, b=0xAA.
  a.deposit(8, 8, 0x55);
  b.deposit(8, 8, 0xaa);
  // Window 2 kill: zeros.
  const auto ev = model.evaluate(a, b);
  EXPECT_TRUE(ev.err0);
  EXPECT_TRUE(ev.err1);
  EXPECT_TRUE(ev.vlcsa2_stall());
  EXPECT_FALSE(ev.spec0_correct());
  EXPECT_EQ(ev.recovered, ev.exact);
  EXPECT_EQ(ev.recovered_cout, ev.exact_cout);
}

struct ScsaSweepCase {
  int width;
  int window;
};

class ScsaSweepTest : public ::testing::TestWithParam<ScsaSweepCase> {
 protected:
  static constexpr int kSamples = 20000;
};

TEST_P(ScsaSweepTest, RecoveryIsAlwaysExact) {
  const auto [n, k] = GetParam();
  const ScsaModel model(ScsaConfig{n, k});
  vlcsa::arith::BlockRng rng(100 + static_cast<unsigned>(n * k));
  for (int i = 0; i < kSamples; ++i) {
    const auto ev = model.evaluate(ApInt::random(n, rng), ApInt::random(n, rng));
    ASSERT_EQ(ev.recovered, ev.exact);
    ASSERT_EQ(ev.recovered_cout, ev.exact_cout);
  }
}

TEST_P(ScsaSweepTest, DetectionNeverMissesAnError) {
  // The load-bearing reliability invariant (Ch. 5.1): every wrong S*,0 must
  // raise ERR0 — no false negatives, over any input.
  const auto [n, k] = GetParam();
  const ScsaModel model(ScsaConfig{n, k});
  vlcsa::arith::BlockRng rng(200 + static_cast<unsigned>(n * k));
  for (int i = 0; i < kSamples; ++i) {
    const auto ev = model.evaluate(ApInt::random(n, rng), ApInt::random(n, rng));
    if (!ev.spec0_correct()) {
      ASSERT_TRUE(ev.err0);
    }
  }
}

TEST_P(ScsaSweepTest, Vlcsa2SelectionTheorem) {
  // Ch. 6.6 case analysis: whenever ERR0 = 1 and ERR1 = 0, the second
  // speculative result S*,1 equals the exact sum (including carry-out), so
  // VLCSA 2 can answer in one cycle.  And when it does not stall, the
  // selected result is always correct.
  const auto [n, k] = GetParam();
  const ScsaModel model(ScsaConfig{n, k});
  vlcsa::arith::BlockRng rng(300 + static_cast<unsigned>(n * k));
  for (int i = 0; i < kSamples; ++i) {
    const auto ev = model.evaluate(ApInt::random(n, rng), ApInt::random(n, rng));
    if (ev.err0 && !ev.err1) {
      ASSERT_TRUE(ev.spec1_correct());
    }
    if (!ev.vlcsa2_stall()) {
      ASSERT_TRUE(ev.vlcsa2_selected_correct());
    }
  }
}

TEST_P(ScsaSweepTest, Vlcsa2SelectionTheoremOnGaussianInputs) {
  // Same theorem over the adversarial distribution (long sign-extension
  // chains): 2's complement Gaussian.
  const auto [n, k] = GetParam();
  if (n < 64) GTEST_SKIP() << "sigma 2^20 needs some headroom";
  const ScsaModel model(ScsaConfig{n, k});
  arith::GaussianTwosSource source(n, arith::GaussianParams{0.0, 1048576.0});
  vlcsa::arith::BlockRng rng(400 + static_cast<unsigned>(n * k));
  for (int i = 0; i < kSamples; ++i) {
    const auto [a, b] = source.next(rng);
    const auto ev = model.evaluate(a, b);
    if (!ev.spec0_correct()) {
      ASSERT_TRUE(ev.err0);
    }
    if (ev.err0 && !ev.err1) {
      ASSERT_TRUE(ev.spec1_correct());
    }
    if (!ev.vlcsa2_stall()) {
      ASSERT_TRUE(ev.vlcsa2_selected_correct());
    }
    ASSERT_EQ(ev.recovered, ev.exact);
  }
}

TEST_P(ScsaSweepTest, Err0MatchesPairEventExactly) {
  // ERR0 is *defined* as "some window generates and the next propagates";
  // cross-check the model's flag against a direct group-signal scan.
  const auto [n, k] = GetParam();
  const ScsaModel model(ScsaConfig{n, k});
  vlcsa::arith::BlockRng rng(500 + static_cast<unsigned>(n * k));
  for (int i = 0; i < 2000; ++i) {
    const auto a = ApInt::random(n, rng);
    const auto b = ApInt::random(n, rng);
    const auto ev = model.evaluate(a, b);
    const arith::PropagateGenerate pg(a, b);
    bool expected = false;
    for (int w = 0; w + 1 < model.layout().count(); ++w) {
      const auto& cur = model.layout().window(w);
      const auto& nxt = model.layout().window(w + 1);
      expected = expected || (pg.group_generate(cur.pos, cur.size) &&
                              pg.group_propagate(nxt.pos, nxt.size));
    }
    ASSERT_EQ(ev.err0, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(WidthWindowGrid, ScsaSweepTest,
                         ::testing::Values(ScsaSweepCase{16, 4}, ScsaSweepCase{24, 8},
                                           ScsaSweepCase{32, 5}, ScsaSweepCase{64, 8},
                                           ScsaSweepCase{64, 14}, ScsaSweepCase{100, 9},
                                           ScsaSweepCase{128, 15}, ScsaSweepCase{256, 16}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.width) + "_k" +
                                  std::to_string(info.param.window);
                         });

TEST(ScsaModel, LowErrorMagnitudeProperty) {
  // Ch. 3.3: when SCSA 1 errs, each erring window was computed with its
  // carry-in off by one, so the total error decomposes as a sum of
  // window-weight corrections: exact = spec0 + sum of delta_w * 2^pos_w with
  // delta_w in {-1, 0, +1} — never a lone flipped high bit.
  const ScsaModel model(ScsaConfig{32, 8});
  const auto& windows = model.layout().windows();
  const int m = static_cast<int>(windows.size());
  vlcsa::arith::BlockRng rng(42);
  int errors = 0;
  while (errors < 200) {
    const auto a = ApInt::random(32, rng);
    const auto b = ApInt::random(32, rng);
    const auto ev = model.evaluate(a, b);
    if (ev.spec0_correct()) continue;
    ++errors;
    // Enumerate all 3^m delta assignments (window 0 is never wrong, but keep
    // it in the search for simplicity).
    bool decomposes = false;
    int combos = 1;
    for (int w = 0; w < m; ++w) combos *= 3;
    for (int c = 0; c < combos && !decomposes; ++c) {
      ApInt candidate = ev.spec0;
      int rest = c;
      for (int w = 0; w < m; ++w) {
        const int delta = rest % 3;  // 0, +1, -1
        rest /= 3;
        ApInt weight(32);
        weight.set_bit(windows[static_cast<std::size_t>(w)].pos, true);
        if (delta == 1) candidate = candidate + weight;
        if (delta == 2) candidate = candidate - weight;
      }
      decomposes = candidate == ev.exact;
    }
    EXPECT_TRUE(decomposes) << "spec " << ev.spec0 << " exact " << ev.exact;
  }
}

TEST(ToString, Variants) {
  EXPECT_STREQ(to_string(ScsaVariant::kScsa1), "scsa1");
  EXPECT_STREQ(to_string(ScsaVariant::kScsa2), "scsa2");
}

}  // namespace
}  // namespace vlcsa::spec
