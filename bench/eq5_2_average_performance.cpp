// Eq. (5.2) end to end — the paper's headline "on average, variable latency
// addition using SCSA-based speculative adders is about 10% faster than the
// DesignWare adder".  This bench combines both halves of that claim:
//   clock period  — from static timing: T_clk(VLCSA) = max(spec, detect),
//                   T_clk(DW) = its critical path;
//   cycle count   — from the registry's "eq5.2/" Monte Carlo experiments:
//                   one cycle per addition plus one bubble per stall, so
//                   ErrorRateResult::average_cycles() is exactly the stream
//                   model's cycles-per-add (N + stalls over N).
// Wall-clock ratio = (1 + stall_rate) * T_clk(VLCSA) / T_clk(DW).

#include <algorithm>
#include <iostream>

#include "adders/adders.hpp"
#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 100000);
  harness::print_banner(std::cout, "Eq. (5.2) average performance",
                        "Wall-clock time of VLCSA vs the DesignWare substitute: "
                        "T = cycles x T_clk, " + std::to_string(args.samples) +
                            " additions per stream.");

  harness::Table table({"n", "inputs", "design", "k", "T_clk", "avg cycles",
                        "time/add", "vs DesignWare"});
  for (const int n : {64, 128, 256, 512}) {
    const auto dw = harness::synthesize(adders::build_designware_adder(n));

    for (const auto* experiment :
         harness::error_rate_experiments_with_prefix("eq5.2/n" + std::to_string(n) + "-")) {
      const auto variant = experiment->model == harness::ModelKind::kVlcsa1
                               ? spec::ScsaVariant::kScsa1
                               : spec::ScsaVariant::kScsa2;
      const auto synth = harness::synthesize(spec::build_vlcsa_netlist(
          spec::ScsaConfig{experiment->width, experiment->window}, variant));
      const double tclk = std::max(synth.delay_of("spec"), synth.delay_of("detect"));
      const auto result =
          harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
      const double time_per_add = result.average_cycles() * tclk;
      const bool uniform = experiment->dist == arith::InputDistribution::kUniformUnsigned;
      table.add_row({std::to_string(n), uniform ? "uniform" : "gaussian-2c",
                     to_string(experiment->model), std::to_string(experiment->window),
                     harness::fmt_fixed(tclk, 1),
                     harness::fmt_fixed(result.average_cycles(), 4),
                     harness::fmt_fixed(time_per_add, 1),
                     harness::fmt_delta_pct(time_per_add, dw.delay)});
    }
    table.add_row({std::to_string(n), "-", "DesignWare", "-",
                   harness::fmt_fixed(dw.delay, 1), "1.0000",
                   harness::fmt_fixed(dw.delay, 1), "+0.0%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: VLCSA time/add ~10%+ below DesignWare on both input\n"
               "classes — the stall penalty (0.1-0.3% of adds) is negligible next to\n"
               "the shorter clock (Ch. 5.3, 7.5).\n";
  return 0;
}
