// Fig 7.1 — validation of the analytical error model against Monte Carlo
// simulation for unsigned uniform inputs.
//
// The paper ran 10^7 samples per point; the default here is 2*10^5 per point
// so the whole bench suite stays fast (raise with --samples).  Three columns
// per point:
//   model    — eq. (3.13) as printed (union bound over window pairs);
//   exact    — the exact DP over the window Markov chain (no union slack);
//   sim      — simulated *nominal* rate (ERR0 fires), the event (3.13) models.
// The simulated *actual* rate (speculative sum wrong) is also shown: it is
// slightly lower because the top window pair can only corrupt the carry-out
// (see error_model.hpp).
//
// Points come from the "fig7.1/" experiments in the registry and run on the
// parallel sharded engine (--threads=N; results are thread-count-invariant).

#include <iostream>

#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 200000);
  harness::print_banner(std::cout, "Figure 7.1",
                        "Analytical SCSA error model vs Monte Carlo, unsigned uniform "
                        "inputs, " + std::to_string(args.samples) + " samples per point.");

  harness::Table table(
      {"n", "k", "model (3.13)", "model (exact DP)", "sim nominal", "sim actual"});
  for (const auto* experiment : harness::error_rate_experiments_with_prefix("fig7.1/")) {
    const auto result =
        harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
    table.add_row({std::to_string(experiment->width), std::to_string(experiment->window),
                   harness::fmt_sci(spec::scsa_error_rate(experiment->width,
                                                          experiment->window)),
                   harness::fmt_sci(spec::scsa_exact_error_rate(experiment->width,
                                                                experiment->window)),
                   harness::fmt_sci(result.nominal_rate()),
                   harness::fmt_sci(result.actual_rate())});
  }
  table.print(std::cout);
  std::cout << "\nExpected: sim-nominal tracks the exact DP within sampling noise at\n"
               "every point, validating eq. (3.13)'s fit in Fig 7.1.\n";
  return 0;
}
