// Tests for the two-tier result cache (service/cache.hpp): LRU semantics,
// disk persistence across instances, validation of corrupt or mismatched
// disk records, and the stats counters the protocol's cache-stats request
// reports.

#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "service/fleet.hpp"

namespace vlcsa::service {
namespace {

std::string temp_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("vlcsa_cache_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// A minimal record carrying exactly the fields disk validation checks.
std::string record_for(const CacheKey& key, const std::string& payload = "x") {
  return "{\"experiment\": \"" + key.experiment +
         "\", \"samples\": " + std::to_string(key.samples) +
         ", \"seed\": " + std::to_string(key.seed) + ", \"eval_path\": \"" + key.eval_path +
         "\", \"payload\": \"" + payload + "\"}";
}

TEST(ResultCache, MissThenMemoryHit) {
  ResultCache cache("", 4);
  const CacheKey key{"table7.1/n64", 1000, 1, "batched", ""};
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
  cache.put(key, record_for(key));
  const auto hit = cache.get(key);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kMemory);
  EXPECT_EQ(hit.record, record_for(key));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.memory_entries, 1u);
}

TEST(ResultCache, CoalescedHitsAreCountedAsTheirOwnTier) {
  // The single-flight map lives in the service, not the cache, so followers
  // report their hits explicitly — the counter still belongs here with the
  // other tier stats the cache-stats request renders.
  ResultCache cache("", 4);
  EXPECT_EQ(cache.stats().coalesced_hits, 0u);
  cache.record_coalesced_hit();
  cache.record_coalesced_hit();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.coalesced_hits, 2u);
  EXPECT_EQ(stats.memory_hits, 0u);  // a coalesced hit is not a tier lookup
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCache, KeyComponentsAllDiscriminate) {
  ResultCache cache("", 8);
  const CacheKey key{"table7.1/n64", 1000, 1, "batched", ""};
  cache.put(key, record_for(key));
  for (const CacheKey& other :
       {CacheKey{"table7.1/n128", 1000, 1, "batched", ""},
        CacheKey{"table7.1/n64", 1001, 1, "batched", ""},
        CacheKey{"table7.1/n64", 1000, 2, "batched", ""},
        CacheKey{"table7.1/n64", 1000, 1, "scalar", ""}}) {
    EXPECT_EQ(cache.get(other).tier, ResultCache::Tier::kMiss) << cache_map_key(other);
  }
}

TEST(ResultCache, LruEvictsLeastRecentlyUsed) {
  ResultCache cache("", 2);
  const CacheKey a{"a", 1, 1, "batched", ""};
  const CacheKey b{"b", 1, 1, "batched", ""};
  const CacheKey c{"c", 1, 1, "batched", ""};
  cache.put(a, record_for(a));
  cache.put(b, record_for(b));
  EXPECT_EQ(cache.get(a).tier, ResultCache::Tier::kMemory);  // a is now most recent
  cache.put(c, record_for(c));                               // evicts b, not a
  EXPECT_EQ(cache.get(b).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.get(a).tier, ResultCache::Tier::kMemory);
  EXPECT_EQ(cache.get(c).tier, ResultCache::Tier::kMemory);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().memory_entries, 2u);
}

TEST(ResultCache, ZeroCapacityDisablesMemoryTier) {
  ResultCache cache("", 0);
  const CacheKey key{"a", 1, 1, "batched", ""};
  cache.put(key, record_for(key));
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
}

TEST(ResultCache, DiskTierSurvivesInstances) {
  const std::string dir = temp_dir("persist");
  const CacheKey key{"table7.1/n64", 2000, 7, "scalar", ""};
  const std::string record = record_for(key, "persisted");
  {
    ResultCache writer(dir, 4);
    writer.put(key, record);
    ASSERT_TRUE(std::filesystem::exists(writer.file_path(key)));
  }
  ResultCache reader(dir, 4);
  const auto hit = reader.get(key);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(hit.record, record);  // byte-identical through the file round-trip
  // The disk hit was promoted: the second lookup is a memory hit.
  EXPECT_EQ(reader.get(key).tier, ResultCache::Tier::kMemory);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().memory_hits, 1u);
}

TEST(ResultCache, CorruptDiskFileIsAMiss) {
  const std::string dir = temp_dir("corrupt");
  ResultCache cache(dir, 0);  // memory off so every get goes to disk
  const CacheKey key{"table7.1/n64", 2000, 7, "batched", ""};
  cache.put(key, record_for(key));
  {
    std::ofstream out(cache.file_path(key), std::ios::trunc);
    out << "{\"experiment\": \"table7.1/n64\", \"samples\": 2000, truncated";
  }
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().invalid_disk_records, 1u);
}

TEST(ResultCache, MismatchedRecordIsAMiss) {
  const std::string dir = temp_dir("mismatch");
  ResultCache cache(dir, 0);
  const CacheKey key{"table7.1/n64", 2000, 7, "batched", ""};
  const CacheKey other{"table7.1/n64", 2000, 8, "batched", ""};  // different seed
  {
    std::ofstream out(cache.file_path(key), std::ios::trunc);
    out << record_for(other) << "\n";  // valid JSON, wrong key fields
  }
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().invalid_disk_records, 1u);
}

TEST(ResultCache, StreamVersionedKeyRejectsUnversionedRecord) {
  // The stale-record guard for stream-versioned families (the crypto
  // chain-profile workloads after the BlockRng seeding consolidation): a
  // record written before the family carried a version has no
  // "stream_version" field and must read as a miss, never a stale hit —
  // while unversioned keys keep their historical map keys and file names.
  const std::string dir = temp_dir("stream_version");
  ResultCache cache(dir, 0);
  const CacheKey unversioned{"fig6.2/rsa-like", 4, 1, "scalar", ""};
  CacheKey versioned = unversioned;
  versioned.stream_version = "crypto-rng-v2";
  EXPECT_EQ(cache_map_key(unversioned), "fig6.2/rsa-like|4|1|scalar");
  EXPECT_EQ(cache_map_key(versioned), "fig6.2/rsa-like|4|1|scalar|crypto-rng-v2");
  EXPECT_NE(cache.file_path(unversioned), cache.file_path(versioned));

  // Pre-versioning record on disk under the *versioned* file name (the
  // pathological leftover): parse-validate must reject it.
  {
    std::ofstream out(cache.file_path(versioned), std::ios::trunc);
    out << record_for(unversioned) << "\n";  // valid JSON, no stream_version
  }
  EXPECT_EQ(cache.get(versioned).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().invalid_disk_records, 1u);

  // A record carrying the matching version round-trips.
  const std::string record =
      "{\"experiment\": \"fig6.2/rsa-like\", \"samples\": 4, \"seed\": 1, "
      "\"eval_path\": \"scalar\", \"stream_version\": \"crypto-rng-v2\"}";
  EXPECT_TRUE(record_matches_key(record, versioned));
  cache.put(versioned, record);
  const auto hit = cache.get(versioned);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(hit.record, record);
  // The wrong version string is as dead as a missing one.
  CacheKey bumped = versioned;
  bumped.stream_version = "crypto-rng-v3";
  EXPECT_FALSE(record_matches_key(record, bumped));
}

TEST(ResultCache, RecordMatchesKeyPredicate) {
  const CacheKey key{"e/p", 10, 2, "batched", ""};
  EXPECT_TRUE(record_matches_key(record_for(key), key));
  EXPECT_FALSE(record_matches_key("not json", key));
  EXPECT_FALSE(record_matches_key("[1, 2]", key));
  EXPECT_FALSE(record_matches_key("{\"experiment\": \"e/p\"}", key));  // fields missing
  CacheKey wrong = key;
  wrong.samples = 11;
  EXPECT_FALSE(record_matches_key(record_for(key), wrong));
}

TEST(ResultCache, DiskCapEvictsOldestRecords) {
  const std::string dir = temp_dir("cap");
  // Roomy cap first: three records persist.
  CacheKey keys[3] = {{"exp/a", 1, 1, "batched", ""}, {"exp/b", 2, 1, "batched", ""},
                      {"exp/c", 3, 1, "batched", ""}};
  {
    ResultCache cache(dir, 0, 1 << 20);
    for (int i = 0; i < 3; ++i) {
      cache.put(keys[i], record_for(keys[i]));
      // Distinct mtimes, all in the past so later stores are newest, and
      // "oldest" is well defined even on coarse filesystem clocks.
      const auto stamp = std::filesystem::last_write_time(cache.file_path(keys[i]));
      std::filesystem::last_write_time(cache.file_path(keys[i]),
                                       stamp - std::chrono::seconds(30 - i));
    }
    EXPECT_EQ(cache.stats().disk_evictions, 0u);
    EXPECT_GT(cache.stats().disk_bytes, 0u);
  }
  // Tight cap on the pre-populated dir: the constructor enforces it, keeping
  // only the newest record.
  const std::uint64_t one_record =
      static_cast<std::uint64_t>(record_for(keys[2]).size()) + 1;  // + framing '\n'
  ResultCache cache(dir, 0, one_record);
  EXPECT_EQ(cache.stats().disk_evictions, 2u);
  EXPECT_LE(cache.stats().disk_bytes, one_record);
  EXPECT_EQ(cache.get(keys[0]).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.get(keys[1]).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.get(keys[2]).tier, ResultCache::Tier::kDisk);
  // A fresh store pushes past the cap again: the older survivor goes.
  const CacheKey fresh{"exp/d", 4, 1, "batched", ""};
  cache.put(fresh, record_for(fresh));
  EXPECT_EQ(cache.get(fresh).tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(cache.get(keys[2]).tier, ResultCache::Tier::kMiss);
  EXPECT_GE(cache.stats().disk_evictions, 3u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, ZeroCapLeavesDiskUnbounded) {
  const std::string dir = temp_dir("nocap");
  ResultCache cache(dir, 0, 0);
  for (int i = 0; i < 8; ++i) {
    const CacheKey key{"exp/x" + std::to_string(i), static_cast<std::uint64_t>(i), 1,
                      "batched", ""};
    cache.put(key, record_for(key));
  }
  EXPECT_EQ(cache.stats().disk_evictions, 0u);
  EXPECT_EQ(cache.max_disk_bytes(), 0u);
  int on_disk = 0;
  for (int i = 0; i < 8; ++i) {
    const CacheKey key{"exp/x" + std::to_string(i), static_cast<std::uint64_t>(i), 1,
                      "batched", ""};
    if (cache.get(key).tier == ResultCache::Tier::kDisk) ++on_disk;
  }
  EXPECT_EQ(on_disk, 8);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, FilePathIsReadableAndKeyed) {
  ResultCache cache("/tmp/cache", 1);
  const CacheKey key{"table7.1/n64", 200000, 1, "batched", ""};
  const std::string path = cache.file_path(key);
  EXPECT_NE(path.find("/tmp/cache/table7.1_n64-s200000-seed1-batched-"), std::string::npos)
      << path;
  EXPECT_EQ(path.substr(path.size() - 5), ".json");
  // Different keys map to different files.
  CacheKey other = key;
  other.seed = 2;
  EXPECT_NE(cache.file_path(other), path);
}

// ---------------------------------------------------------------------------
// Fleet-mode disk tier: crash recovery, scratch reaping, fault injection, and
// two replicas sharing one cache directory (fork-based — cache_test runs no
// threads, so forking is safe even under the sanitizers).

void backdate(const std::string& path, int seconds) {
  const auto stamp = std::filesystem::last_write_time(path);
  std::filesystem::last_write_time(path, stamp - std::chrono::seconds(seconds));
}

int count_with_extension(const std::string& dir, const std::string& extension) {
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == extension) ++count;
  }
  return count;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(ResultCacheFleet, StartupReapsOnlyProvablyStaleScratch) {
  const std::string dir = temp_dir("reap");
  std::filesystem::create_directories(dir);
  const CacheKey key{"exp/reap", 10, 1, "batched", ""};
  {
    ResultCache writer(dir, 0);
    writer.put(key, record_for(key));
  }
  const auto scratch = [&](const std::string& name) {
    std::ofstream out(dir + "/" + name);
    out << "scratch\n";
  };
  scratch("crashed.json.1234.tmp");
  scratch("crashed.json.lease");
  backdate(dir + "/crashed.json.1234.tmp", 60);
  backdate(dir + "/crashed.json.lease", 60);
  scratch("live-peer.json.5678.tmp");  // fresh: a live replica mid-store

  ResultCache cache(dir, 0, 0, /*lease_stale_ms=*/1000);
  EXPECT_FALSE(std::filesystem::exists(dir + "/crashed.json.1234.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/crashed.json.lease"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/live-peer.json.5678.tmp"))
      << "fresh foreign scratch must survive startup reaping";
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kDisk);  // records untouched

  // lease_stale_ms 0 disables takeover: even ancient scratch is never swept.
  scratch("ancient.json.9.tmp");
  backdate(dir + "/ancient.json.9.tmp", 3600);
  ResultCache frozen(dir, 0, 0, /*lease_stale_ms=*/0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/ancient.json.9.tmp"));
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheFleet, TruncatedRecordAndLeftoverTmpRecoverOnRestart) {
  // The crash the write-then-rename scheme defends against, seen at startup:
  // a torn record file (e.g. torn by the filesystem, not the protocol) plus
  // a dead writer's .tmp.  The restarted daemon must serve a miss, reap the
  // scratch, and recover by recomputing.
  const std::string dir = temp_dir("restart");
  const CacheKey key{"exp/restart", 10, 1, "batched", ""};
  const std::string record = record_for(key, "recovered");
  std::string path;
  {
    ResultCache writer(dir, 0);
    writer.put(key, record);
    path = writer.file_path(key);
  }
  const std::string full = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }
  {
    std::ofstream out(path + ".4242.tmp");
    out << full.substr(0, 3);
  }
  backdate(path + ".4242.tmp", 60);

  ResultCache cache(dir, 0, 0, /*lease_stale_ms=*/1000);
  EXPECT_EQ(count_with_extension(dir, ".tmp"), 0);
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().invalid_disk_records, 1u);
  cache.put(key, record);
  const auto hit = cache.get(key);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(hit.record, record);
  EXPECT_EQ(read_file(path), record + "\n");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheFleet, TornReadFaultDegradesToMissNeverWrongHit) {
  const std::string dir = temp_dir("torn");
  ResultCache cache(dir, 0);
  const CacheKey key{"exp/torn", 10, 1, "batched", ""};
  const std::string record = record_for(key, "whole");
  cache.put(key, record);

  fleet::fault::configure_for_test("torn-read");
  EXPECT_EQ(cache.get(key).tier, ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().invalid_disk_records, 1u);

  // The fault tears the in-memory read, not the file: healthy reads hit.
  fleet::fault::configure_for_test("");
  const auto hit = cache.get(key);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(hit.record, record);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheFleet, CrashBeforeRenameLeavesScratchNotARecord) {
  const std::string dir = temp_dir("crash");
  const CacheKey key{"exp/crash", 10, 1, "batched", ""};
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child replica: dies at the injected fault site mid-store.  No gtest
    // in the child — it reports through its exit status alone.
    fleet::fault::configure_for_test("crash-before-rename");
    ResultCache dying(dir, 0);
    dying.put(key, record_for(key));
    _exit(0);  // unreachable: the fault site _exits with kExitCode first
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), fleet::fault::kExitCode);

  // The kill landed between write and rename: scratch exists, the record
  // does not, and a surviving replica sees a plain miss (the fresh .tmp is
  // kept — it cannot be told apart from a live peer's in-flight store).
  ResultCache survivor(dir, 0);
  EXPECT_FALSE(std::filesystem::exists(survivor.file_path(key)));
  EXPECT_EQ(count_with_extension(dir, ".tmp"), 1);
  EXPECT_EQ(survivor.get(key).tier, ResultCache::Tier::kMiss);

  // Once the scratch ages past the staleness bound, a restart reaps it and
  // the key recovers through a normal recompute-and-store.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") backdate(entry.path().string(), 60);
  }
  ResultCache reaper(dir, 0, 0, /*lease_stale_ms=*/1000);
  EXPECT_EQ(count_with_extension(dir, ".tmp"), 0);
  reaper.put(key, record_for(key));
  EXPECT_EQ(reaper.get(key).tier, ResultCache::Tier::kDisk);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheFleet, TwoProcessConcurrentStoreIsByteIdentical) {
  // Two replicas store the same key into one directory at once — the
  // determinism contract makes their records byte-identical, and the
  // pid-suffixed tmp + dir-locked rename make the overlap harmless: one
  // record file, exact bytes, no scratch left behind.
  const std::string dir = temp_dir("twoproc");
  const CacheKey key{"exp/shared", 20, 3, "batched", ""};
  const std::string record = record_for(key, "identical-bytes");
  ResultCache mine(dir, 0);  // created before the fork so both see the dir

  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Dawdle with the .tmp written so the stores genuinely overlap.
    fleet::fault::configure_for_test("slow-write=50");
    ResultCache peer(dir, 0);
    peer.put(key, record);
    _exit(std::filesystem::exists(peer.file_path(key)) ? 0 : 1);
  }
  mine.put(key, record);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  EXPECT_EQ(count_with_extension(dir, ".json"), 1);
  EXPECT_EQ(count_with_extension(dir, ".tmp"), 0);
  EXPECT_EQ(read_file(mine.file_path(key)), record + "\n");
  const auto hit = mine.get(key);
  EXPECT_EQ(hit.tier, ResultCache::Tier::kDisk);
  EXPECT_EQ(hit.record, record);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheFleet, LeaseCountersFlowThroughStats) {
  const std::string dir = temp_dir("leasestats");
  ResultCache cache(dir, 0, 0, /*lease_stale_ms=*/1000);
  const CacheKey key{"exp/lease", 10, 1, "batched", ""};

  // First acquire wins; with the lease file present a second cache (another
  // "replica") reads busy; a stale lease is taken over and counted.
  {
    const fleet::ComputeLease lease = cache.try_acquire_lease(key);
    EXPECT_EQ(lease.state(), fleet::ComputeLease::State::kAcquired);
    ResultCache other(dir, 0, 0, 1000);
    EXPECT_EQ(other.try_acquire_lease(key).state(), fleet::ComputeLease::State::kBusy);
  }
  {
    std::ofstream out(cache.lease_path(key));
    out << "424242\n";
  }
  backdate(cache.lease_path(key), 60);
  EXPECT_EQ(cache.try_acquire_lease(key).state(), fleet::ComputeLease::State::kAcquired);
  cache.record_lease_wait();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lease_takeovers, 1u);
  EXPECT_EQ(stats.lease_waits, 1u);

  // No disk tier: the lease machinery reports disabled, never blocks.
  ResultCache memory_only("", 4);
  EXPECT_EQ(memory_only.try_acquire_lease(key).state(), fleet::ComputeLease::State::kDisabled);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vlcsa::service
