#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace vlcsa::netlist {
namespace {

TEST(Netlist, InputsAndOutputsAreNamedPorts) {
  Netlist nl("m");
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  const Signal y = nl.and_(a, b);
  nl.add_output("y", y, "grp");
  ASSERT_EQ(nl.inputs().size(), 2u);
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.inputs()[0].name, "a");
  EXPECT_EQ(nl.outputs()[0].name, "y");
  EXPECT_EQ(nl.outputs()[0].group, "grp");
  EXPECT_EQ(nl.find_input("b"), b);
  EXPECT_EQ(nl.find_output("y"), y);
  EXPECT_FALSE(nl.find_input("zz").has_value());
}

TEST(Netlist, ConstantsAreCached) {
  Netlist nl;
  EXPECT_EQ(nl.constant(true), nl.constant(true));
  EXPECT_EQ(nl.constant(false), nl.constant(false));
  EXPECT_NE(nl.constant(true), nl.constant(false));
}

TEST(Netlist, RejectsInvalidFanin) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  EXPECT_THROW(nl.and_(a, Signal{}), std::invalid_argument);
  EXPECT_THROW(nl.make_gate(GateKind::kNot, a, a), std::invalid_argument);
  EXPECT_THROW(nl.make_gate(GateKind::kAnd2, a, Signal{9999}), std::invalid_argument);
}

TEST(Netlist, FaninsMustPrecedeGate) {
  // Creation order is the topological order; a forward reference is a bug.
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal g = nl.not_(a);
  EXPECT_EQ(nl.gate(g).fanin[0], a);
  EXPECT_LT(a.id, g.id);
}

TEST(Netlist, LogicGateCountExcludesInputsAndConstants) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal c = nl.constant(true);
  const Signal y = nl.and_(a, c);
  nl.add_output("y", y);
  EXPECT_EQ(nl.logic_gate_count(), 1u);
  EXPECT_EQ(nl.num_gates(), 3u);
}

TEST(Netlist, KindHistogram) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("o1", nl.and_(a, b));
  nl.add_output("o2", nl.and_(a, b));
  nl.add_output("o3", nl.xor_(a, b));
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h[static_cast<int>(GateKind::kAnd2)], 2u);
  EXPECT_EQ(h[static_cast<int>(GateKind::kXor2)], 1u);
  EXPECT_EQ(h[static_cast<int>(GateKind::kInput)], 2u);
}

TEST(Netlist, FanoutCountsIncludeOutputs) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal n1 = nl.not_(a);
  const Signal n2 = nl.not_(a);
  nl.add_output("o", n1);
  nl.add_output("o2", n1);
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[a.id], 2u);   // two NOT gates
  EXPECT_EQ(fo[n1.id], 2u);  // two output ports
  EXPECT_EQ(fo[n2.id], 0u);  // dangling
  EXPECT_EQ(nl.max_input_fanout(), 2u);
}

TEST(Netlist, AndOrReduceTrees) {
  Netlist nl;
  std::vector<Signal> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(nl.add_input("x" + std::to_string(i)));
  const Signal all = nl.and_reduce(xs);
  const Signal any = nl.or_reduce(xs);
  nl.add_output("all", all);
  nl.add_output("any", any);
  // 5 leaves -> 4 binary gates each.
  EXPECT_EQ(nl.logic_gate_count(), 8u);
}

TEST(Netlist, EmptyReduceYieldsConstants) {
  Netlist nl;
  EXPECT_EQ(nl.gate(nl.and_reduce({})).kind, GateKind::kConst1);
  EXPECT_EQ(nl.gate(nl.or_reduce({})).kind, GateKind::kConst0);
}

TEST(GateKind, FaninCounts) {
  EXPECT_EQ(fanin_count(GateKind::kInput), 0);
  EXPECT_EQ(fanin_count(GateKind::kNot), 1);
  EXPECT_EQ(fanin_count(GateKind::kXor2), 2);
  EXPECT_EQ(fanin_count(GateKind::kMux2), 3);
}

TEST(GateKind, Commutativity) {
  EXPECT_TRUE(is_commutative(GateKind::kAnd2));
  EXPECT_TRUE(is_commutative(GateKind::kXnor2));
  EXPECT_FALSE(is_commutative(GateKind::kMux2));
  EXPECT_FALSE(is_commutative(GateKind::kNot));
}

}  // namespace
}  // namespace vlcsa::netlist
