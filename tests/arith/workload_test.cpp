#include "arith/workload.hpp"

#include <gtest/gtest.h>

namespace vlcsa::arith {
namespace {

TEST(BuiltinPrime, KnownValues) {
  EXPECT_EQ(builtin_prime(16).to_u64(), 65521u);
  EXPECT_EQ(builtin_prime(32).to_u64(), (std::uint64_t{1} << 31) - 1);
  EXPECT_EQ(builtin_prime(64).to_u64(), (std::uint64_t{1} << 61) - 1);
  EXPECT_EQ(builtin_prime(128).highest_set_bit(), 126);  // 2^127 - 1
  // 2^255 - 19: bits 4..254 set except the pattern of -19's low bits.
  const ApInt p256 = builtin_prime(256);
  EXPECT_EQ(p256.highest_set_bit(), 254);
  EXPECT_EQ(p256.extract(0, 8), 0xedu);  // 2^255 - 19 ends in ...11101101
  EXPECT_THROW((void)builtin_prime(48), std::invalid_argument);
}

TEST(ModField, RejectsBadModulus) {
  EXPECT_THROW(ModField(ApInt(32), nullptr), std::invalid_argument);
  EXPECT_THROW(ModField(ApInt::all_ones(32), nullptr), std::invalid_argument);
}

class ModField32Test : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kP = (std::uint64_t{1} << 31) - 1;
  ModField field_{builtin_prime(32), nullptr};
  vlcsa::arith::BlockRng rng_{42};

  ApInt elem(std::uint64_t v) { return ApInt::from_u64(32, v % kP); }
};

TEST_F(ModField32Test, AddMatchesNative) {
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t ua = rng_() % kP;
    const std::uint64_t ub = rng_() % kP;
    EXPECT_EQ(field_.add(elem(ua), elem(ub)).to_u64(), (ua + ub) % kP);
  }
}

TEST_F(ModField32Test, SubMatchesNative) {
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t ua = rng_() % kP;
    const std::uint64_t ub = rng_() % kP;
    EXPECT_EQ(field_.sub(elem(ua), elem(ub)).to_u64(), (ua + kP - ub) % kP);
  }
}

TEST_F(ModField32Test, MulMatchesNative) {
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t ua = rng_() % kP;
    const std::uint64_t ub = rng_() % kP;
    const unsigned __int128 ref = static_cast<unsigned __int128>(ua) * ub % kP;
    EXPECT_EQ(field_.mul(elem(ua), elem(ub)).to_u64(), static_cast<std::uint64_t>(ref));
  }
}

TEST_F(ModField32Test, PowMatchesSquareAndMultiplyReference) {
  auto pow_ref = [](std::uint64_t base, std::uint64_t exp) {
    unsigned __int128 acc = 1, b = base % kP;
    while (exp != 0) {
      if (exp & 1) acc = acc * b % kP;
      b = b * b % kP;
      exp >>= 1;
    }
    return static_cast<std::uint64_t>(acc);
  };
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t base = rng_() % kP;
    const std::uint64_t exp = rng_() % 10000;
    EXPECT_EQ(field_.pow(elem(base), ApInt::from_u64(32, exp)).to_u64(), pow_ref(base, exp));
  }
}

TEST_F(ModField32Test, FermatLittleTheorem) {
  // 2^31 - 1 is prime: a^(p-1) = 1 (mod p) for a != 0.  This exercises the
  // full square-and-multiply ladder end to end.
  const ApInt p_minus_1 = ApInt::from_u64(32, kP - 1);
  for (const std::uint64_t a : {2ull, 3ull, 65537ull, 123456789ull}) {
    EXPECT_EQ(field_.pow(elem(a), p_minus_1).to_u64(), 1u) << "a = " << a;
  }
}

TEST_F(ModField32Test, PowZeroExponentIsOne) {
  EXPECT_EQ(field_.pow(elem(12345), ApInt(32)).to_u64(), 1u);
}

TEST_F(ModField32Test, RandomElementIsCanonical) {
  for (int i = 0; i < 100; ++i) {
    const ApInt e = field_.random_element(rng_);
    EXPECT_LT(e.compare_unsigned(field_.modulus()), 0);
  }
}

TEST(ModFieldObserver, EveryAdditionIsReported) {
  std::uint64_t reported = 0;
  ModField field(builtin_prime(32),
                 [&reported](const ApInt&, const ApInt&) { ++reported; });
  vlcsa::arith::BlockRng rng(1);
  const ApInt a = field.random_element(rng);
  const ApInt b = field.random_element(rng);
  (void)field.mul(a, b);
  EXPECT_EQ(reported, field.additions());
  EXPECT_GT(reported, 0u);
}

TEST(CryptoWorkload, RunsAndRecordsChains) {
  for (const auto kind :
       {CryptoKind::kRsaLike, CryptoKind::kDiffieHellmanLike, CryptoKind::kEcFieldLike}) {
    CryptoWorkloadConfig config;
    config.width = 64;
    config.kind = kind;
    config.operations = 1;
    config.exponent_bits = 8;
    CarryChainProfiler profiler(64, ChainMetric::kAllChains);
    const auto additions = run_crypto_workload(config, profiler);
    EXPECT_GT(additions, 0u) << to_string(kind);
    EXPECT_EQ(profiler.additions(), additions);
    EXPECT_GT(profiler.total(), 0u);
  }
}

TEST(CryptoWorkload, ProducesLongSignExtensionChains) {
  // The whole point of the Fig 6.2 substitute: modular reduction via
  // two's-complement subtraction creates chains near the datapath width.
  CryptoWorkloadConfig config;
  config.width = 64;
  config.kind = CryptoKind::kRsaLike;
  config.operations = 2;
  CarryChainProfiler profiler(64, ChainMetric::kAllChains);
  run_crypto_workload(config, profiler);
  EXPECT_GT(profiler.fraction_at_least(32), 0.001);
}

TEST(CryptoWorkload, DeterministicForSameSeed) {
  CryptoWorkloadConfig config;
  config.width = 32;
  config.kind = CryptoKind::kEcFieldLike;
  config.operations = 2;
  config.seed = 77;
  CarryChainProfiler p1(32), p2(32);
  const auto n1 = run_crypto_workload(config, p1);
  const auto n2 = run_crypto_workload(config, p2);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(p1.counts(), p2.counts());
}

}  // namespace
}  // namespace vlcsa::arith
