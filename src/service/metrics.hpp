#pragma once
// Service-side traffic metrics for the experiment daemon (service.hpp): the
// counters and latency distribution behind the protocol's "metrics" request.
//
// Everything here describes *served traffic*, never experiment results —
// result records stay pure functions of (experiment, samples, seed, eval
// path) and contain no wall time; latency, qps and the in-flight gauge live
// only in metrics/run responses, which are never cached.
//
// Latency is recorded into a fixed-bucket histogram (1-2-5 series over
// microseconds, 1 us .. 2000 s) so quantile queries are O(buckets), the
// memory footprint is constant for any traffic volume, and p50/p95/p99 are a
// deterministic function of the recorded durations (each reported quantile
// is the upper bound of the bucket containing it).  All methods are
// thread-safe — the socket workers record concurrently.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vlcsa::service {

/// One (name, count) pair of the per-request-type breakdown.
struct RequestTypeCount {
  std::string name;
  std::uint64_t count = 0;
};

/// Snapshot returned by ServiceMetrics::snapshot(); plain data so the
/// response renderer (service.cpp) and tests consume the same numbers.
struct MetricsSnapshot {
  std::uint64_t requests_total = 0;
  std::uint64_t ok_total = 0;
  std::uint64_t error_total = 0;
  std::uint64_t timeouts = 0;            // run/run-batch elements cancelled by deadline
  std::uint64_t batch_elements = 0;      // run-batch elements processed (ok or error)
  std::uint64_t rejected_connections = 0;  // accept-loop backlog rejections
  std::uint64_t in_flight = 0;           // requests currently inside a handler
  double uptime_seconds = 0.0;
  double qps = 0.0;                      // requests_total / uptime
  double latency_p50_seconds = 0.0;      // bucket upper bounds (see header note)
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;      // exact, not bucketed
  std::vector<RequestTypeCount> by_type;  // registration order, see kRequestTypes
};

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Scoped in-flight gauge: constructed when a handler starts, destroyed
  /// when it returns (including via exception).
  class InFlight {
   public:
    explicit InFlight(ServiceMetrics& metrics);
    ~InFlight();
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;

   private:
    ServiceMetrics& metrics_;
  };

  /// Records one completed request line: its protocol type (a kRequestTypes
  /// name, or "invalid" for lines that never reached a handler), whether the
  /// response said ok, and the handler wall time.
  void record_request(const std::string& type, bool ok, double seconds);

  /// One run/run-batch element hit its deadline and was cancelled.
  void record_timeout();

  /// One run-batch element was processed (counted in addition to the
  /// enclosing run-batch request itself).
  void record_batch_element();

  /// The accept loop turned a connection away because the pending queue was
  /// at its backlog cap.
  void record_rejected_connection();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The request-type names the breakdown tracks ("invalid" last).
  [[nodiscard]] static const std::vector<std::string>& request_types();

 private:
  // Upper bucket bounds in microseconds (1-2-5 series); the final bucket is
  // open-ended.  Exposed indirectly through quantiles only.
  static constexpr std::array<std::uint64_t, 28> kBucketBoundsUs = {
      1,       2,       5,       10,       20,       50,       100,      200,      500,
      1000,    2000,    5000,    10000,    20000,    50000,    100000,   200000,   500000,
      1000000, 2000000, 5000000, 10000000, 20000000, 50000000, 100000000, 200000000,
      500000000, 1000000000};

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t requests_total_ = 0;
  std::uint64_t ok_total_ = 0;
  std::uint64_t error_total_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t batch_elements_ = 0;
  std::uint64_t rejected_connections_ = 0;
  std::uint64_t in_flight_ = 0;
  double latency_max_seconds_ = 0.0;
  std::array<std::uint64_t, kBucketBoundsUs.size() + 1> buckets_{};  // +1: overflow
  std::vector<std::uint64_t> by_type_;  // parallel to request_types()
};

}  // namespace vlcsa::service
