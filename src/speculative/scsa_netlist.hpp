#pragma once
// Netlist generators for the paper's structures:
//
//  * build_scsa_netlist    — the speculative adder alone (Ch. 4, Fig 4.1/4.2):
//                            window adders with shared prefix trees and
//                            carry-select output muxes.
//  * build_vlcsa_netlist   — the full variable-latency adder (Figs 5.1–5.3,
//                            6.6–6.8): speculative datapath + error detection
//                            + error recovery, with output groups "spec",
//                            "detect" and "recovery" so static timing reports
//                            the three delays the paper plots separately.
//
// This module is the C++-to-netlist generator the paper describes in Ch. 7.1
// ("C++ programs which take the adder width n and the window size k, and
// generate Verilog files"); pair it with netlist::emit_verilog for the same
// artifact.

#include "adders/prefix.hpp"
#include "netlist/netlist.hpp"
#include "speculative/scsa.hpp"

namespace vlcsa::spec {

using adders::PrefixTopology;
using netlist::Netlist;

/// Output group names used by the generators.
inline constexpr const char* kGroupSpec = "spec";
inline constexpr const char* kGroupDetect = "detect";
inline constexpr const char* kGroupRecovery = "recovery";

struct ScsaNetlistOptions {
  /// Prefix topology inside each window adder ("two small adders can be
  /// implemented using any traditional adder"; Kogge-Stone by default as in
  /// Ch. 4.1).
  PrefixTopology window_topology = PrefixTopology::kKoggeStone;
  /// Topology of the ceil(n/k)-bit recovery prefix adder (Fig 5.2).
  PrefixTopology recovery_topology = PrefixTopology::kKoggeStone;
};

/// Speculative adder only (SCSA 1 datapath; for variant 2 both S*,0 and
/// S*,1 banks are emitted).  Outputs: sum[i]/cout (group "spec"), plus
/// sum1[i]/cout1 for variant 2.
[[nodiscard]] Netlist build_scsa_netlist(const ScsaConfig& config, ScsaVariant variant,
                                         const ScsaNetlistOptions& opts = {});

/// Full VLCSA: speculative datapath + detection + recovery.
/// Outputs:
///   group "spec":     sum[i], cout           (S*,0)
///                     sum1[i], cout1         (S*,1; variant 2 only)
///   group "detect":   err0 (+ err1, variant 2), stall, valid
///   group "recovery": rec[i], rec_cout
[[nodiscard]] Netlist build_vlcsa_netlist(const ScsaConfig& config, ScsaVariant variant,
                                          const ScsaNetlistOptions& opts = {});

/// Signal-level view of a VLCSA built over *existing* operand signals, for
/// composition into larger units (the speculative multiplier's final adder,
/// multi-operand accumulators, ...).
struct VlcsaPorts {
  std::vector<netlist::Signal> sum0;  // S*,0 bank
  netlist::Signal cout0{};
  std::vector<netlist::Signal> sum1;  // S*,1 bank (== sum0 selects for variant 1)
  netlist::Signal cout1{};
  netlist::Signal err0{};
  netlist::Signal err1{};   // constant 0 for variant 1
  netlist::Signal stall{};  // err0 (v1) or err0 & err1 (v2)
  std::vector<netlist::Signal> recovered;
  netlist::Signal recovered_cout{};
};

/// Builds the complete VLCSA structure (speculation, detection, recovery)
/// over operand signals already present in `nl`.  Adds no ports.
[[nodiscard]] VlcsaPorts build_vlcsa_on_signals(Netlist& nl,
                                                std::span<const netlist::Signal> a,
                                                std::span<const netlist::Signal> b,
                                                int window, ScsaVariant variant,
                                                const ScsaNetlistOptions& opts = {});

}  // namespace vlcsa::spec
