#pragma once
// 64-way bit-sliced logic simulation.
//
// Every net carries a 64-bit word: bit j of the word is the net's value in
// test vector j, so one pass over the netlist evaluates 64 input vectors.
// Because gate creation order is topological, evaluation is a single linear
// sweep — this is what makes exhaustive netlist-vs-behavioral equivalence
// checking cheap enough to run inside unit tests.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Sets the 64 parallel values of one primary input (by input index).
  void set_input(std::size_t input_index, std::uint64_t word);

  /// Sets an input by port name; throws if absent.
  void set_input(const std::string& name, std::uint64_t word);

  /// Evaluates every gate once, in creation order.
  void run();

  /// Word value of any signal after run().
  [[nodiscard]] std::uint64_t value(Signal s) const { return values_[s.id]; }

  /// Word value of a named output after run(); throws if absent.
  [[nodiscard]] std::uint64_t output(const std::string& name) const;

  [[nodiscard]] const Netlist& netlist() const { return nl_; }

 private:
  const Netlist& nl_;
  std::vector<std::uint64_t> values_;
};

}  // namespace vlcsa::netlist
