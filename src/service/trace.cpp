#include "service/trace.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "harness/report.hpp"

namespace vlcsa::service {

namespace {

/// Floored microseconds since `origin` — both span endpoints go through
/// this, so child intervals stay contained in their parents exactly.
std::uint64_t us_since(RequestTrace::Clock::time_point origin) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        RequestTrace::Clock::now() - origin)
                                        .count());
}

}  // namespace

void RequestTrace::enable() {
  if (enabled_) return;
  enabled_ = true;
  start_ = Clock::now();
}

std::size_t RequestTrace::open(const char* name) {
  if (!enabled_) return 0;
  TraceSpan span;
  span.name = name;
  span.depth = depth_++;
  span.start_us = us_since(start_);
  spans_.push_back(std::move(span));
  // Handles are 1-based so a handle from a disabled open() (0) is inert.
  return spans_.size();
}

void RequestTrace::close(std::size_t handle) {
  if (!enabled_ || handle == 0 || handle > spans_.size()) return;
  TraceSpan& span = spans_[handle - 1];
  span.dur_us = us_since(start_) - span.start_us;
  --depth_;
}

std::string RequestTrace::render_spans() const {
  std::string out = "[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i != 0) out += ", ";
    harness::JsonObject object;
    object.add("name", span.name);
    object.add("depth", span.depth);
    object.add("start_us", span.start_us);
    object.add("dur_us", span.dur_us);
    out += object.render_line();
  }
  out += "]";
  return out;
}

std::string JsonlLog::open(const std::string& path, std::uint64_t max_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.open(path, std::ios::app);
  if (!out_) return "cannot open log file " + path;
  path_ = path;
  max_bytes_ = max_bytes;
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path, ec);
  bytes_ = ec ? 0 : static_cast<std::uint64_t>(existing);
  return {};
}

void JsonlLog::write(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return;
  if (max_bytes_ != 0 && bytes_ != 0 && bytes_ + line.size() + 1 > max_bytes_) {
    // Rotate: the current file becomes "<path>.1" (replacing the previous
    // generation) and a fresh file takes the writes.  Best effort — a failed
    // rename keeps appending rather than dropping log lines.
    out_.close();
    std::error_code ec;
    std::filesystem::rename(path_, path_ + ".1", ec);
    out_.open(path_, ec ? std::ios::app : std::ios::trunc);
    bytes_ = ec ? bytes_ : 0;
  }
  out_ << line << '\n' << std::flush;
  bytes_ += line.size() + 1;
}

TraceIdGenerator::TraceIdGenerator() {
  const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "t-%llx-",
                static_cast<unsigned long long>(now_us));
  prefix_ = buffer;
}

std::string TraceIdGenerator::next() {
  return prefix_ + std::to_string(counter_.fetch_add(1, std::memory_order_relaxed) + 1);
}

}  // namespace vlcsa::service
