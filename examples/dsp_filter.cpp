// Error-tolerant DSP with the bare speculative adder (no detection/recovery).
//
// Ch. 4 motivates SCSA for "applications where errors are tolerable, such as
// ... signal processing".  The error-magnitude argument of Ch. 3.3 — a wrong
// speculation is a window-carry off-by-one, i.e. an error of weight 2^pos
// for some window boundary pos at or below the operands' magnitude — holds
// for *unsigned* operands.  (Two's-complement operands put sign-extension
// bits in the high windows, where an off-by-one is catastrophic; that is
// exactly why Ch. 6 adds detection for practical inputs rather than running
// open-loop.)  This example therefore smooths an unsigned (offset-binary,
// as ADCs produce) sensor stream with an all-positive 31-tap kernel:
//   * exact accumulation (reference),
//   * SCSA 1 accumulation with an aggressively small window,
//   * a control adder with the same wrong-answer *rate* but a random-bit
//     error position, to show why SCSA's error shape matters.
//
//   $ ./build/examples/dsp_filter

#include <cmath>
#include <iostream>
#include <random>
#include <vector>

#include "arith/apint.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa.hpp"

using namespace vlcsa;
using arith::ApInt;

namespace {

constexpr int kWidth = 32;  // accumulator width

/// Adds two 32-bit unsigned values through the SCSA 1 speculative datapath.
std::uint64_t scsa_add(const spec::ScsaModel& model, std::uint64_t x, std::uint64_t y,
                       std::uint64_t* errors) {
  const auto ev = model.evaluate(ApInt::from_u64(kWidth, x), ApInt::from_u64(kWidth, y));
  if (!ev.spec0_correct()) ++*errors;
  return ev.spec0.to_u64();
}

/// Control: errs equally often but flips one *random* bit — the per-output
/// failure mode the paper contrasts in Ch. 3.3.
std::uint64_t bitflip_add(std::uint64_t x, std::uint64_t y, double error_rate,
                          vlcsa::arith::BlockRng& rng, std::uint64_t* errors) {
  std::uint64_t sum = (x + y) & 0xffffffffu;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng) < error_rate) {
    ++*errors;
    sum ^= std::uint64_t{1} << (rng() % kWidth);
  }
  return sum;
}

double snr_db(const std::vector<double>& reference, const std::vector<double>& test) {
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = reference[i] - test[i];
    noise += e * e;
  }
  if (noise == 0.0) return 999.0;
  return 10.0 * std::log10(signal / noise);
}

}  // namespace

int main() {
  // All-positive 31-tap Hamming smoothing kernel in Q15.
  constexpr int kTaps = 31;
  std::vector<std::uint64_t> h(kTaps);
  double kernel_sum = 0.0;
  for (int i = 0; i < kTaps; ++i) {
    kernel_sum += 0.54 - 0.46 * std::cos(2.0 * M_PI * i / (kTaps - 1));
  }
  for (int i = 0; i < kTaps; ++i) {
    const double w = (0.54 - 0.46 * std::cos(2.0 * M_PI * i / (kTaps - 1))) / kernel_sum;
    h[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(std::lround(w * 32768.0));
  }

  // Offset-binary sensor stream: slow sine + noise, 16-bit unsigned.
  constexpr int kSamples = 4096;
  vlcsa::arith::BlockRng rng(2024);
  std::normal_distribution<double> noise(0.0, 0.04);
  std::vector<std::uint64_t> x(kSamples);
  for (int t = 0; t < kSamples; ++t) {
    const double v = 0.5 + 0.4 * std::sin(2.0 * M_PI * 0.01 * t) + noise(rng);
    const double clamped = std::fmin(std::fmax(v, 0.0), 1.0);
    x[static_cast<std::size_t>(t)] = static_cast<std::uint64_t>(std::lround(clamped * 65535.0));
  }

  // Aggressive speculation: k = 6 on 32 bits errs visibly often.
  const int k = 6;
  const spec::ScsaModel scsa({kWidth, k});
  std::cout << "SCSA window k = " << k << " (model error rate on uniform inputs: "
            << harness::fmt_pct(spec::scsa_error_rate(kWidth, k)) << ")\n";

  std::vector<double> exact_out, scsa_out, flip_out;
  std::uint64_t scsa_errors = 0, flip_errors = 0, adds = 0;
  vlcsa::arith::BlockRng flip_rng(7);

  // First pass to learn the SCSA per-add error rate on this operand stream,
  // so the bit-flip control errs at the *same* measured rate.
  const double flip_rate = [&] {
    std::uint64_t probe_errors = 0, probe_adds = 0;
    for (int t = kTaps - 1; t < 512; ++t) {
      std::uint64_t acc = 0;
      for (int i = 0; i < kTaps; ++i) {
        const std::uint64_t prod =
            (h[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(t - i)]) >> 15;
        acc = scsa_add(scsa, acc, prod, &probe_errors);
        ++probe_adds;
      }
    }
    return static_cast<double>(probe_errors) / static_cast<double>(probe_adds);
  }();
  std::cout << "measured per-add error rate on this stream: "
            << harness::fmt_pct(flip_rate, 3) << "\n";

  for (int t = kTaps - 1; t < kSamples; ++t) {
    std::uint64_t acc_exact = 0, acc_scsa = 0, acc_flip = 0;
    for (int i = 0; i < kTaps; ++i) {
      const std::uint64_t prod =
          (h[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(t - i)]) >> 15;
      acc_exact = (acc_exact + prod) & 0xffffffffu;
      acc_scsa = scsa_add(scsa, acc_scsa, prod, &scsa_errors);
      acc_flip = bitflip_add(acc_flip, prod, flip_rate, flip_rng, &flip_errors);
      ++adds;
    }
    exact_out.push_back(static_cast<double>(acc_exact) / 65536.0);
    scsa_out.push_back(static_cast<double>(acc_scsa) / 65536.0);
    flip_out.push_back(static_cast<double>(acc_flip) / 65536.0);
  }

  std::cout << "additions: " << adds << "\n";
  std::cout << "SCSA speculative adds wrong:     " << scsa_errors << " ("
            << harness::fmt_pct(static_cast<double>(scsa_errors) / static_cast<double>(adds), 3)
            << ")\n";
  std::cout << "random-bit-flip adds wrong:      " << flip_errors << " ("
            << harness::fmt_pct(static_cast<double>(flip_errors) / static_cast<double>(adds), 3)
            << ")\n";
  std::cout << "filter SNR with SCSA adder:      "
            << harness::fmt_fixed(snr_db(exact_out, scsa_out), 1) << " dB\n";
  std::cout << "filter SNR with bit-flip adder:  "
            << harness::fmt_fixed(snr_db(exact_out, flip_out), 1) << " dB\n";
  std::cout << "\nSame error *rate*, very different damage: SCSA's errors are\n"
               "window-carry off-by-ones bounded by the operands' magnitude\n"
               "(Ch. 3.3); random-position flips reach the high-order bits and\n"
               "wreck the output.\n";
  return 0;
}
