// Quickstart: build a 64-bit VLCSA 2, run additions through the
// variable-latency model, inspect the error-detection signals, and emit the
// synthesizable Verilog the generator flow produces.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "arith/apint.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/verilog.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlcsa.hpp"

using namespace vlcsa;
using arith::ApInt;

namespace {

void show(const spec::VlcsaModel& adder, std::int64_t x, std::int64_t y) {
  const ApInt a = ApInt::from_i64(64, x);
  const ApInt b = ApInt::from_i64(64, y);
  const auto step = adder.step(a, b);
  std::cout << "  " << x << " + " << y << " = " << step.result.to_i64() << "  ["
            << step.cycles << " cycle" << (step.cycles > 1 ? "s" : "")
            << ", ERR0=" << step.eval.err0 << " ERR1=" << step.eval.err1
            << (step.stalled ? ", recovered" : ", speculative") << "]\n";
}

}  // namespace

int main() {
  // 1. Size the window from the analytical error model: smallest k whose
  //    predicted error rate meets 0.01% for a 64-bit adder (Table 7.4).
  const int n = 64;
  const int k = spec::min_window_for_error_rate(n, 1e-4);
  std::cout << "window size for 64-bit @ 0.01%: k = " << k << " (model P_err = "
            << harness::fmt_pct(spec::scsa_error_rate(n, k)) << ")\n\n";

  // 2. Behavioral variable-latency adder (VLCSA 2 handles signed inputs).
  const spec::VlcsaModel adder({n, k, spec::ScsaVariant::kScsa2});
  std::cout << "additions through the variable-latency adder:\n";
  show(adder, 1, 2);
  show(adder, 123456789, 987654321);
  show(adder, 7, -3);                    // sign-extension chain: S*,1 path
  show(adder, -5000000000LL, 4999999999LL);
  // Force a 2-cycle recovery: a carry chain that crosses a whole window and
  // dies before the MSB (generate at bit 0, propagate through bits 1..30).
  {
    ApInt a(64), b(64);
    a.deposit(0, 32, 0xffffffffu);
    b.deposit(0, 32, 0x00000001u);
    const auto step = adder.step(a, b);
    std::cout << "  0xffffffff + 1 = 0x" << step.result.to_hex() << "  [" << step.cycles
              << " cycles, " << (step.stalled ? "recovered" : "speculative") << "]\n";
  }

  // 3. The generator flow: netlist -> synthesis metrics -> Verilog.
  const auto netlist = spec::build_vlcsa_netlist({n, k}, spec::ScsaVariant::kScsa2);
  const auto result = harness::synthesize(netlist);
  std::cout << "\nsynthesized " << result.name << ": " << result.gates << " gates, area "
            << harness::fmt_fixed(result.area, 0) << " [inv], delays spec/detect/recovery = "
            << harness::fmt_fixed(result.delay_of("spec"), 1) << " / "
            << harness::fmt_fixed(result.delay_of("detect"), 1) << " / "
            << harness::fmt_fixed(result.delay_of("recovery"), 1) << " [tau]\n";

  const std::string verilog = netlist::to_verilog(netlist);
  std::cout << "\nfirst lines of the generated Verilog (" << verilog.size()
            << " bytes total):\n";
  std::cout << verilog.substr(0, verilog.find('\n', verilog.find("output")) + 1);
  std::cout << "  ...\nendmodule\n";
  return 0;
}
