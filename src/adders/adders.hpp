#pragma once
// Public entry points for the traditional adder generators.  These are the
// comparison baselines of Ch. 7 (Kogge-Stone for Figs 7.2–7.5, the
// DesignWare substitute for Figs 7.6–7.11) and the building blocks the
// speculative structures are assembled from.
//
// Every builder creates its own primary inputs "a[i]"/"b[i]" (plus "cin"
// when requested) and outputs "sum[i]"/"cout", so the returned netlist is a
// complete synthesizable module.  Lower-level cores that operate on existing
// signals live in prefix.hpp and ripple.hpp for composition.

#include <string>

#include "adders/prefix.hpp"
#include "netlist/netlist.hpp"

namespace vlcsa::adders {

enum class AdderKind {
  kRipple,
  kCarrySelect,
  kCarrySkip,
  kKoggeStone,
  kBrentKung,
  kSklansky,
  kHanCarlson,
  kHybridKsCarrySelect,  // carry-select blocks with shared-prefix conditional sums
  kDesignWare,           // best-of-family substitute (see DESIGN.md)
};

[[nodiscard]] const char* to_string(AdderKind kind);

struct AdderOptions {
  bool with_cin = false;
  /// Block size for carry-select / carry-skip / hybrid; 0 = round(sqrt(n)).
  int block_size = 0;
};

/// Builds the complete adder netlist (module name "<kind>_<n>").
[[nodiscard]] Netlist build_adder_netlist(AdderKind kind, int n, const AdderOptions& opts = {});

/// Which family the DesignWare substitute selected, with its metrics.
struct DesignWareChoice {
  AdderKind winner = AdderKind::kKoggeStone;
  double delay = 0.0;
  double area = 0.0;
};

/// The DesignWare substitute: synthesizes (optimizer + STA) every candidate
/// family at width n and returns the minimum-delay design (ties broken by
/// area).  Mirrors "the DesignWare adder is synthesized for the minimal
/// achievable delay" (Ch. 7.5).
[[nodiscard]] Netlist build_designware_adder(int n, DesignWareChoice* choice = nullptr);

// ---- cores over existing signals (for composition) -------------------------

/// Ripple-carry sum over existing signals; returns per-bit sums, sets *cout.
[[nodiscard]] std::vector<Signal> ripple_sum(Netlist& nl, std::span<const Signal> a,
                                             std::span<const Signal> b, Signal cin,
                                             Signal* cout);

}  // namespace vlcsa::adders
