#include "speculative/multiplier.hpp"

#include <gtest/gtest.h>

#include <random>

namespace vlcsa::spec {
namespace {

using arith::ApInt;

TEST(SpeculativeMultiplier, MatchesNativeMultiplication32) {
  const SpeculativeMultiplier mul(32, 9);
  vlcsa::arith::BlockRng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ua = rng() & 0xffffffffu;
    const std::uint64_t ub = rng() & 0xffffffffu;
    const auto result =
        mul.multiply(ApInt::from_u64(32, ua), ApInt::from_u64(32, ub));
    ASSERT_EQ(result.product.to_u64(), ua * ub) << ua << " * " << ub;
    ASSERT_EQ(result.product.extract(32, 32), (static_cast<unsigned __int128>(ua) * ub) >> 32);
  }
}

TEST(SpeculativeMultiplier, EdgeOperands) {
  const SpeculativeMultiplier mul(16, 6);
  const auto check = [&](std::uint64_t a, std::uint64_t b) {
    const auto r = mul.multiply(ApInt::from_u64(16, a), ApInt::from_u64(16, b));
    EXPECT_EQ(r.product.to_u64(), a * b) << a << " * " << b;
  };
  check(0, 0);
  check(0, 0xffff);
  check(1, 0xffff);
  check(0xffff, 0xffff);
  check(0x8000, 2);
  check(3, 0x5555);
}

TEST(SpeculativeMultiplier, WideOperandsViaSchoolbookReference) {
  const int n = 64;
  const SpeculativeMultiplier mul(n, 12);
  vlcsa::arith::BlockRng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = ApInt::random(n, rng);
    const auto b = ApInt::random(n, rng);
    // Schoolbook reference at 2n bits.
    ApInt expected(2 * n);
    const ApInt wide_a = a.zext(2 * n);
    for (int j = 0; j < n; ++j) {
      if (b.bit(j)) expected = expected + wide_a.shl(j);
    }
    const auto result = mul.multiply(a, b);
    ASSERT_EQ(result.product, expected);
  }
}

TEST(SpeculativeMultiplier, VariableLatencyBehaviour) {
  const SpeculativeMultiplier mul(32, 6, ScsaVariant::kScsa1);
  vlcsa::arith::BlockRng rng(11);
  int one_cycle = 0, two_cycle = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto r = mul.multiply(ApInt::random(32, rng), ApInt::random(32, rng));
    (r.cycles == 1 ? one_cycle : two_cycle)++;
    ASSERT_EQ(r.cycles, r.stalled ? 2 : 1);
  }
  EXPECT_GT(one_cycle, 0);
  EXPECT_GT(two_cycle, 0);  // k = 6 at 64 bits stalls often enough
}

TEST(SpeculativeMultiplier, RejectsWidthMismatch) {
  const SpeculativeMultiplier mul(32, 8);
  EXPECT_THROW((void)mul.multiply(ApInt(16), ApInt(32)), std::invalid_argument);
}

}  // namespace
}  // namespace vlcsa::spec
