#pragma once
// Analytical error models (Ch. 3.2) and the window/parameter sizing rules
// used to build Tables 7.3 and 7.4.
//
// For SCSA under unsigned uniform inputs the speculation is wrong exactly
// when some window i produces group-generate 1 while window i+1 produces
// group-propagate 1 (the carry then crosses a whole window but is truncated).
// Eq. (3.13) sums that pair probability over all window pairs:
//     P_err(n, k) = (ceil(n/k) - 1) * 2^-(k+1) * (1 - 2^-k)
// Two refinements are provided beyond the paper:
//   * an exact-layout variant that uses the true (smaller) first-window size;
//   * exact rates by dynamic programming over the window Markov chain (the
//     union bound in (3.13) double-counts inputs with several bad pairs).

#include <vector>

namespace vlcsa::spec {

/// Eq. (3.13) exactly as printed.
[[nodiscard]] double scsa_error_rate(int n, int k);

/// Eq. (3.13) with the true first-window size from WindowLayout.
[[nodiscard]] double scsa_error_rate_exact_layout(int n, int k);

/// Exact P(some window pair is generate-then-propagate) for unsigned uniform
/// inputs, via DP over windows (no union-bound slack).
[[nodiscard]] double scsa_exact_error_rate(int n, int k);

/// The Table 7.4 sizing rule: smallest k with scsa_error_rate(n,k) <=
/// slack * target.  The paper quotes "0.01%" for configurations whose model
/// rate is 0.011–0.012%, i.e. it rounds at display precision; slack = 1.25
/// reproduces all eight published (n, k) pairs (see DESIGN.md).
[[nodiscard]] int min_window_for_error_rate(int n, double target, double slack = 1.25);

/// Published SCSA window sizes (Table 7.4).
struct ScsaParameters {
  int n;
  int k_rate_01;  // k for P_err ~ 0.01%
  int k_rate_25;  // k for P_err ~ 0.25%
};
[[nodiscard]] const std::vector<ScsaParameters>& published_scsa_parameters();

/// Published VLCSA 2 window sizes for 2's-complement Gaussian inputs
/// (Table 7.5, simulation-derived; width-independent because sigma = 2^32
/// bounds the operand structure): k = 13 for ~0.01%, k = 9 for ~0.25%.
struct Vlcsa2Parameters {
  int k_rate_01;
  int k_rate_25;
};
[[nodiscard]] Vlcsa2Parameters published_vlcsa2_parameters();

// ---- VLSA baseline (Verma et al. [17]) -------------------------------------

/// Union-bound error model for the VLSA speculative adder: the carry into
/// bit j is computed from the l bits ending at bit j, so bit j+1 errs when
/// those l bits all propagate and a real carry enters from below:
///     P_err(n, l) ~ (n - l) * 2^-(l+1)
[[nodiscard]] double vlsa_error_rate(int n, int l);

/// Exact VLSA error rate for unsigned uniform inputs via DP over bit
/// positions (state: trailing propagate-run length, incoming carry).
[[nodiscard]] double vlsa_exact_error_rate(int n, int l);

/// Smallest l with vlsa_exact_error_rate(n,l) <= slack * target.
[[nodiscard]] int min_vlsa_chain_for_error_rate(int n, double target, double slack = 1.25);

/// Published speculative-chain lengths of [17] for a 0.01% error rate
/// (Table 7.3: n -> l in {64:17, 128:18, 256:20, 512:21}).  Used verbatim in
/// the comparison benches, since [17]'s own sizing rule is not public.
[[nodiscard]] int vlsa_published_chain_length(int n);

}  // namespace vlcsa::spec
