// Tests for the engine's opt-in run profiling (harness/engine.hpp
// RunProfile/RunProfileCollector): counter totals must be consistent across
// thread counts, eval paths and backends, the batched/scalar sample split
// must account for every requested sample, and the rendered profile record
// (harness/report.hpp render_run_profile) must parse back through the strict
// JSON parser with every documented field present.

#include "harness/engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "arith/planeops.hpp"
#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"

namespace vlcsa::harness {
namespace {

namespace planeops = arith::planeops;

/// Runs the named error-rate experiment with a collector attached and
/// returns the snapshot (plus the result's sample count through `samples`).
RunProfile profiled_run(const char* name, std::uint64_t samples, int threads,
                        EvalPath path, std::uint64_t* result_samples = nullptr) {
  const auto* experiment = find_error_rate_experiment(name);
  EXPECT_NE(experiment, nullptr) << name;
  RunOptions options;
  options.samples = samples;
  options.seed = 3;
  options.threads = threads;
  RunProfileCollector collector;
  options.profile = &collector;
  const ErrorRateResult result = run_experiment(*experiment, options, path);
  if (result_samples != nullptr) *result_samples = result.samples;
  return collector.snapshot();
}

TEST(RunProfile, TotalsAccountForEveryRequestedSample) {
  constexpr std::uint64_t kSamples = 20000;
  std::uint64_t result_samples = 0;
  const RunProfile profile =
      profiled_run("fig7.1/n64-k6", kSamples, 1, EvalPath::kBatched, &result_samples);
  EXPECT_EQ(result_samples, kSamples);
  EXPECT_EQ(profile.samples, kSamples);
  // Every sample went through exactly one of the two pipelines.
  EXPECT_EQ(profile.batched_samples + profile.scalar_samples, kSamples);
  EXPECT_GT(profile.shards, 0u);
  EXPECT_GT(profile.batch_blocks, 0u);
  EXPECT_GT(profile.batched_samples, 0u);
  EXPECT_GT(profile.rng_words, 0u);
  EXPECT_GE(profile.fill_seconds, 0.0);
  EXPECT_GE(profile.eval_seconds, 0.0);
  EXPECT_GE(profile.merge_seconds, 0.0);
  EXPECT_EQ(profile.threads, 1);
  EXPECT_GT(profile.lane_words, 0);
  EXPECT_FALSE(profile.backend.empty());
}

TEST(RunProfile, CountersAreThreadCountInvariant) {
  constexpr std::uint64_t kSamples = 20000;
  const RunProfile one = profiled_run("fig7.1/n64-k6", kSamples, 1, EvalPath::kBatched);
  const RunProfile four = profiled_run("fig7.1/n64-k6", kSamples, 4, EvalPath::kBatched);
  // Work counters describe the run, not the schedule: identical shard plan
  // and RNG consumption at any pool size (timings naturally differ).
  EXPECT_EQ(one.shards, four.shards);
  EXPECT_EQ(one.samples, four.samples);
  EXPECT_EQ(one.batch_blocks, four.batch_blocks);
  EXPECT_EQ(one.batched_samples, four.batched_samples);
  EXPECT_EQ(one.scalar_samples, four.scalar_samples);
  EXPECT_EQ(one.rng_words, four.rng_words);
  EXPECT_EQ(one.threads, 1);
  // The profile reports the pool actually used: 20000 samples is 2 shards
  // (16384-sample default), so a 4-thread request runs on 2 workers.
  EXPECT_EQ(four.threads, 2);
}

TEST(RunProfile, ScalarPathReportsNoBatchWork) {
  constexpr std::uint64_t kSamples = 4000;
  const RunProfile profile = profiled_run("fig7.1/n64-k6", kSamples, 1, EvalPath::kScalar);
  EXPECT_EQ(profile.samples, kSamples);
  EXPECT_EQ(profile.batch_blocks, 0u);
  EXPECT_EQ(profile.batched_samples, 0u);
  EXPECT_EQ(profile.scalar_samples, kSamples);
  EXPECT_EQ(profile.lane_words, 0);
}

TEST(RunProfile, BackendLabelTracksThePlaneopsDispatch) {
  const planeops::Backend original = planeops::active_backend();
  ASSERT_TRUE(planeops::set_backend("scalar"));
  const RunProfile scalar = profiled_run("fig7.1/n64-k6", 8000, 1, EvalPath::kBatched);
  ASSERT_TRUE(planeops::set_backend(original));
  EXPECT_EQ(scalar.backend, "scalar");
  // The RNG stream is backend-invariant (the determinism contract), but the
  // block count is not: the default lane width is dispatch-aware, so wider
  // backends run fewer, larger blocks over the same samples.
  const RunProfile dispatched = profiled_run("fig7.1/n64-k6", 8000, 1, EvalPath::kBatched);
  EXPECT_EQ(to_string(planeops::active_backend()), dispatched.backend);
  EXPECT_EQ(scalar.rng_words, dispatched.rng_words);
  EXPECT_EQ(scalar.samples, dispatched.samples);
  EXPECT_EQ(scalar.batched_samples + scalar.scalar_samples,
            dispatched.batched_samples + dispatched.scalar_samples);
}

TEST(RunProfile, ChainProfileRunsAreProfiledToo) {
  const auto* experiment = find_chain_profile_experiment("fig6.1/uniform-unsigned");
  ASSERT_NE(experiment, nullptr);
  RunOptions options;
  options.samples = 8000;
  options.seed = 5;
  options.threads = 2;
  RunProfileCollector collector;
  options.profile = &collector;
  (void)run_experiment(*experiment, options);
  const RunProfile profile = collector.snapshot();
  EXPECT_EQ(profile.samples, 8000u);
  EXPECT_GT(profile.shards, 0u);
  EXPECT_GT(profile.rng_words, 0u);
  // 8000 samples fit one shard, so the 2-thread request runs on 1 worker.
  EXPECT_EQ(profile.threads, 1);
}

TEST(RunProfile, RenderedRecordParsesWithEveryField) {
  const RunProfile profile = profiled_run("fig7.1/n64-k6", 4000, 1, EvalPath::kBatched);
  const JsonParse parsed = parse_json(render_run_profile(profile));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value.kind(), JsonValue::Kind::kObject);
  for (const char* field :
       {"shards", "samples", "batch_blocks", "batched_samples", "scalar_samples",
        "rng_words", "fill_seconds", "eval_seconds", "merge_seconds", "threads",
        "lane_words", "backend"}) {
    EXPECT_NE(parsed.value.find(field), nullptr) << field;
  }
  std::uint64_t samples = 0;
  ASSERT_TRUE(parsed.value.find("samples")->to_u64(samples));
  EXPECT_EQ(samples, 4000u);
}

}  // namespace
}  // namespace vlcsa::harness
