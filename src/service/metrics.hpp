#pragma once
// Service-side traffic metrics for the experiment daemon (service.hpp): the
// counters and latency distribution behind the protocol's "metrics" request.
//
// Everything here describes *served traffic*, never experiment results —
// result records stay pure functions of (experiment, samples, seed, eval
// path) and contain no wall time; latency, qps and the in-flight gauge live
// only in metrics/run responses, which are never cached.
//
// Latency is recorded into a fixed-bucket histogram (1-2-5 series over
// microseconds, 1 us .. 2000 s) so quantile queries are O(buckets), the
// memory footprint is constant for any traffic volume, and p50/p95/p99 are a
// deterministic function of the recorded durations (each reported quantile
// is the upper bound of the bucket containing it).  All methods are
// thread-safe — the socket workers record concurrently.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/cache.hpp"

namespace vlcsa::service {

/// One (name, count) pair of the per-request-type breakdown.
struct RequestTypeCount {
  std::string name;
  std::uint64_t count = 0;
};

/// One stage's latency histogram (per-stage request breakdown, fed from the
/// trace spans — see ServiceMetrics::record_stage).  `buckets` is parallel
/// to latency_bucket_bounds_seconds() plus one overflow slot.
struct StageLatency {
  std::string name;
  std::vector<std::uint64_t> buckets;
  double sum_seconds = 0.0;
  std::uint64_t count = 0;
};

/// Snapshot returned by ServiceMetrics::snapshot(); plain data so the
/// response renderer (service.cpp) and tests consume the same numbers.
struct MetricsSnapshot {
  std::uint64_t requests_total = 0;
  std::uint64_t ok_total = 0;
  std::uint64_t error_total = 0;
  std::uint64_t timeouts = 0;            // run/run-batch elements cancelled by deadline
  std::uint64_t batch_elements = 0;      // run-batch elements processed (ok or error)
  std::uint64_t sweep_requests = 0;      // run/run-batch requests declaring origin "sweep"
  std::uint64_t sweep_cells = 0;         // sweep cells those requests carried
  std::uint64_t rejected_connections = 0;  // accept-loop backlog rejections
  std::uint64_t in_flight = 0;           // requests currently inside a handler
  std::uint64_t draining = 0;            // 1 while a graceful drain is under way
  double uptime_seconds = 0.0;
  double qps = 0.0;                      // requests_total / uptime (lifetime)
  double qps_60s = 0.0;                  // rate over the last 60 s ring
  double latency_p50_seconds = 0.0;      // bucket upper bounds (see header note)
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;      // exact, not bucketed
  double latency_sum_seconds = 0.0;      // exact sum (histogram _sum)
  std::vector<std::uint64_t> latency_buckets;  // per-bucket counts (+overflow)
  std::vector<RequestTypeCount> by_type;  // registration order, see kRequestTypes
  std::vector<StageLatency> stages;       // per-stage latency, stage_names() order
};

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Scoped in-flight gauge: constructed when a handler starts, destroyed
  /// when it returns (including via exception).
  class InFlight {
   public:
    explicit InFlight(ServiceMetrics& metrics);
    ~InFlight();
    InFlight(const InFlight&) = delete;
    InFlight& operator=(const InFlight&) = delete;

   private:
    ServiceMetrics& metrics_;
  };

  /// Records one completed request line: its protocol type (a kRequestTypes
  /// name, or "invalid" for lines that never reached a handler), whether the
  /// response said ok, and the handler wall time.
  void record_request(const std::string& type, bool ok, double seconds);

  /// One run/run-batch element hit its deadline and was cancelled.
  void record_timeout();

  /// One run-batch element was processed (counted in addition to the
  /// enclosing run-batch request itself).
  void record_batch_element();

  /// One run/run-batch request declared "origin": "sweep", carrying `cells`
  /// grid cells (1 for a run, the element count for a run-batch) — the
  /// daemon-side view of sweep traffic an operator watches from Prometheus
  /// while a grid hammers a replica.
  void record_sweep_request(std::uint64_t cells);

  /// The accept loop turned a connection away because the pending queue was
  /// at its backlog cap.
  void record_rejected_connection();

  /// Flips the drain gauge (begin_drain sets it; it never clears in practice
  /// — a draining daemon exits).
  void set_draining(bool draining);

  /// Records one stage duration (a trace span) into the per-stage latency
  /// histograms.  `stage` must be a stage_names() entry; unknown names are
  /// ignored so the histogram label set stays fixed for scrapers.
  void record_stage(const std::string& stage, double seconds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The request-type names the breakdown tracks ("invalid" last).
  [[nodiscard]] static const std::vector<std::string>& request_types();

  /// The stage names record_stage accepts — the trace span names the
  /// service emits (service.cpp), which double as the `stage` label values
  /// of the Prometheus exposition.
  [[nodiscard]] static const std::vector<std::string>& stage_names();

  /// Upper bucket bounds of every latency histogram, in seconds (the 1-2-5
  /// microsecond series below); the final implicit bucket is open-ended.
  [[nodiscard]] static std::vector<double> latency_bucket_bounds_seconds();

 private:
  // Upper bucket bounds in microseconds (1-2-5 series); the final bucket is
  // open-ended.  Exposed indirectly through quantiles only.
  static constexpr std::array<std::uint64_t, 28> kBucketBoundsUs = {
      1,       2,       5,       10,       20,       50,       100,      200,      500,
      1000,    2000,    5000,    10000,    20000,    50000,    100000,   200000,   500000,
      1000000, 2000000, 5000000, 10000000, 20000000, 50000000, 100000000, 200000000,
      500000000, 1000000000};

  using Buckets = std::array<std::uint64_t, kBucketBoundsUs.size() + 1>;  // +1: overflow

  /// The bucket a duration falls in (index into Buckets).
  [[nodiscard]] static std::size_t bucket_index(double seconds);

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t requests_total_ = 0;
  std::uint64_t ok_total_ = 0;
  std::uint64_t error_total_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t batch_elements_ = 0;
  std::uint64_t sweep_requests_ = 0;
  std::uint64_t sweep_cells_ = 0;
  std::uint64_t rejected_connections_ = 0;
  std::uint64_t in_flight_ = 0;
  bool draining_ = false;
  double latency_max_seconds_ = 0.0;
  double latency_sum_seconds_ = 0.0;
  Buckets buckets_{};
  std::vector<std::uint64_t> by_type_;  // parallel to request_types()

  // Last-60-seconds request ring for qps_60s: slot = second % 60, tagged
  // with second + 1 (0 = never written) so stale slots from an idle gap are
  // recognized at snapshot time instead of being advanced on every record.
  std::array<std::uint64_t, 60> second_counts_{};
  std::array<std::uint64_t, 60> second_stamps_{};

  /// One stage's histogram state (parallel to stage_names()).
  struct StageState {
    Buckets buckets{};
    double sum_seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<StageState> stages_;
};

/// Renders a metrics snapshot + cache stats in the Prometheus text
/// exposition format, version 0.0.4 (the "metrics-prom" request's body —
/// see DESIGN.md).  Counter/gauge names are prefixed "vlcsa_"; both latency
/// histograms use cumulative le-labeled buckets in seconds.
[[nodiscard]] std::string render_prometheus_text(const MetricsSnapshot& metrics,
                                                 const CacheStats& cache);

}  // namespace vlcsa::service
