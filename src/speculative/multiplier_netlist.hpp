#pragma once
// Gate-level speculative multiplier (future work, Ch. 8): an n x n unsigned
// array of partial products, a Wallace-style column-compression tree of
// full/half adders, and a 2n-bit VLCSA as the final carry-propagate adder.
// The VLCSA contributes output groups "spec"/"detect"/"recovery" exactly as
// in the plain adder netlists, so the synthesis harness reports the
// variable-latency delays of the complete multiplier.
//
// Outputs:
//   group "spec":     product[i] (2n bits, S*,0 bank), product1[i] (variant 2)
//   group "detect":   err0 (+ err1), stall, valid
//   group "recovery": rec[i]

#include "netlist/netlist.hpp"
#include "speculative/scsa_netlist.hpp"

namespace vlcsa::spec {

struct MultiplierNetlistConfig {
  int width = 16;      // operand width n (product is 2n bits)
  int window = 9;      // VLCSA window size at 2n bits
  ScsaVariant variant = ScsaVariant::kScsa2;
};

[[nodiscard]] netlist::Netlist build_multiplier_netlist(
    const MultiplierNetlistConfig& config, const ScsaNetlistOptions& opts = {});

}  // namespace vlcsa::spec
