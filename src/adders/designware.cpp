// The DesignWare-substitute baseline (see DESIGN.md "Substitutions").
//
// Synopsys DesignWare's DW01_add resolves, under a tight delay constraint,
// to a delay-optimized parallel-prefix (or hybrid) architecture chosen by
// the tool.  The open equivalent implemented here synthesizes every
// candidate family through the same optimizer + static timing flow and keeps
// the fastest result, breaking ties by area.  The paper itself reports that
// DesignWare beat the authors' own hybrid Kogge-Stone carry-select adder;
// that hybrid is included in the candidate set.

#include <array>
#include <limits>

#include "adders/adders.hpp"
#include "netlist/opt.hpp"
#include "netlist/timing.hpp"

namespace vlcsa::adders {

Netlist build_designware_adder(int n, DesignWareChoice* choice) {
  static constexpr std::array<AdderKind, 6> kCandidates = {
      AdderKind::kKoggeStone,   AdderKind::kSklansky,
      AdderKind::kHanCarlson,   AdderKind::kBrentKung,
      AdderKind::kCarrySelect,  AdderKind::kHybridKsCarrySelect,
  };

  Netlist best("designware_" + std::to_string(n));
  AdderKind best_kind = AdderKind::kKoggeStone;
  double best_delay = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();

  for (const AdderKind kind : kCandidates) {
    Netlist candidate = netlist::optimize(build_adder_netlist(kind, n));
    const auto timing = netlist::analyze_timing(candidate);
    const auto area = netlist::analyze_area(candidate);
    const bool faster = timing.critical_delay < best_delay;
    const bool tie_smaller =
        timing.critical_delay == best_delay && area.total < best_area;
    if (faster || tie_smaller) {
      best_delay = timing.critical_delay;
      best_area = area.total;
      best_kind = kind;
      best = std::move(candidate);
    }
  }

  best.set_name("designware_" + std::to_string(n));
  if (choice != nullptr) {
    choice->winner = best_kind;
    choice->delay = best_delay;
    choice->area = best_area;
  }
  return best;
}

}  // namespace vlcsa::adders
