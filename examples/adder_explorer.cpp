// Adder explorer — the "C++ programs which ... generate Verilog files" flow
// of Ch. 7.1 as a command-line tool.  Builds any generator in the library,
// prints synthesis metrics, optionally writes the structural Verilog, and
// runs any named Monte Carlo experiment from the registry on the parallel
// sharded engine.
//
//   $ ./build/examples/adder_explorer --design=vlcsa2 --width=64 --window=13
//   $ ./build/examples/adder_explorer --design=kogge-stone --width=128 --verilog=ks128.v
//   $ ./build/examples/adder_explorer --list
//   $ ./build/examples/adder_explorer --list-experiments
//   $ ./build/examples/adder_explorer --experiment=table7.1/n64 --threads=4

#include <fstream>
#include <iostream>
#include <string>

#include "adders/adders.hpp"
#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/verilog.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

using namespace vlcsa;

namespace {

const char* kDesigns[] = {"ripple",      "carry-select", "carry-skip",  "kogge-stone",
                          "brent-kung",  "sklansky",     "han-carlson", "hybrid-ks-carry-select",
                          "designware",  "scsa1",        "scsa2",       "vlcsa1",
                          "vlcsa2",      "vlsa"};

void print_usage() {
  std::cout << "usage: adder_explorer [--design=NAME] [--width=N] [--window=K]\n"
               "                      [--chain=L] [--verilog=FILE] [--list]\n"
               "                      [--experiment=NAME] [--samples=N] [--seed=S]\n"
               "                      [--threads=T] [--list-experiments]\n"
               "  --design      one of the generators (default kogge-stone)\n"
               "  --width       adder width in bits (default 64)\n"
               "  --window      SCSA/VLCSA window size (default: sized for 0.01%)\n"
               "  --chain       VLSA speculative chain length (default: published)\n"
               "  --verilog     write structural Verilog to FILE\n"
               "  --list        list available designs\n"
               "  --experiment  run a registry experiment instead of building a design\n"
               "  --samples     experiment sample count (default: the experiment's own)\n"
               "  --seed        experiment seed (default 1)\n"
               "  --threads     worker threads, 0 = all hardware threads (default 0)\n"
               "  --list-experiments  list registry experiment names\n";
}

netlist::Netlist build(const std::string& design, int width, int window, int chain) {
  using adders::AdderKind;
  if (design == "scsa1" || design == "scsa2") {
    const auto variant = design == "scsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_scsa_netlist({width, window}, variant);
  }
  if (design == "vlcsa1" || design == "vlcsa2") {
    const auto variant = design == "vlcsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_vlcsa_netlist({width, window}, variant);
  }
  if (design == "vlsa") return spec::build_vlsa_netlist({width, chain});
  for (const auto kind :
       {AdderKind::kRipple, AdderKind::kCarrySelect, AdderKind::kCarrySkip,
        AdderKind::kKoggeStone, AdderKind::kBrentKung, AdderKind::kSklansky,
        AdderKind::kHanCarlson, AdderKind::kHybridKsCarrySelect, AdderKind::kDesignWare}) {
    if (design == to_string(kind)) return adders::build_adder_netlist(kind, width);
  }
  throw std::invalid_argument("unknown design: " + design + " (try --list)");
}

void list_experiments() {
  std::cout << "error-rate experiments:\n";
  for (const auto& e : harness::error_rate_experiments()) {
    std::cout << "  " << e.name << "  (" << to_string(e.model) << ", n=" << e.width
              << ", k=" << e.window << ")\n";
  }
  std::cout << "carry-chain profile experiments:\n";
  for (const auto& e : harness::chain_profile_experiments()) {
    std::cout << "  " << e.name << "  (n=" << e.width << ")\n";
  }
}

int run_experiment_by_name(const std::string& name, std::uint64_t samples, std::uint64_t seed,
                           int threads) {
  if (const auto* e = harness::find_error_rate_experiment(name)) {
    const std::uint64_t n = samples == 0 ? e->default_samples : samples;
    std::cout << e->name << ": " << e->description << "\n"
              << n << " samples, seed " << seed << "\n\n";
    const auto result = harness::run_experiment(*e, n, seed, threads);
    harness::Table table({"metric", "value"});
    table.add_row({"samples", std::to_string(result.samples)});
    table.add_row({"actual error rate", harness::fmt_pct(result.actual_rate(), 3)});
    table.add_row({"nominal (stall) rate", harness::fmt_pct(result.nominal_rate(), 3)});
    table.add_row({"either-wrong rate", harness::fmt_pct(result.either_wrong_rate(), 3)});
    table.add_row({"false negatives", std::to_string(result.false_negatives)});
    table.add_row({"emitted wrong", std::to_string(result.emitted_wrong)});
    table.add_row({"avg cycles (eq. 5.2)", harness::fmt_fixed(result.average_cycles(), 4)});
    table.print(std::cout);
    return 0;
  }
  if (const auto* e = harness::find_chain_profile_experiment(name)) {
    const std::uint64_t n = samples == 0 ? e->default_samples : samples;
    std::cout << e->name << ": " << e->description << "\n"
              << n << " samples, seed " << seed << "\n\n";
    const auto profiler = harness::run_experiment(*e, n, seed, threads);
    harness::Table table({"metric", "value"});
    table.add_row({"additions", std::to_string(profiler.additions())});
    table.add_row({"chains", std::to_string(profiler.total())});
    table.add_row({"mean chain length", harness::fmt_fixed(profiler.mean_length(), 2)});
    table.add_row({"chains >= width/2",
                   harness::fmt_pct(profiler.fraction_at_least(profiler.width() / 2), 2)});
    table.print(std::cout);
    return 0;
  }
  std::cerr << "unknown experiment: " << name << " (try --list-experiments)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design = "kogge-stone";
  std::string verilog_path;
  std::string experiment;
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  int threads = 0;
  int width = 64;
  int window = 0;
  int chain = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const char* d : kDesigns) std::cout << "  " << d << "\n";
      return 0;
    }
    if (arg == "--list-experiments") {
      list_experiments();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    const auto value = [&arg](const std::string& prefix) { return arg.substr(prefix.size()); };
    if (arg.rfind("--design=", 0) == 0) {
      design = value("--design=");
    } else if (arg.rfind("--width=", 0) == 0) {
      width = std::stoi(value("--width="));
    } else if (arg.rfind("--window=", 0) == 0) {
      window = std::stoi(value("--window="));
    } else if (arg.rfind("--chain=", 0) == 0) {
      chain = std::stoi(value("--chain="));
    } else if (arg.rfind("--verilog=", 0) == 0) {
      verilog_path = value("--verilog=");
    } else if (arg.rfind("--experiment=", 0) == 0) {
      experiment = value("--experiment=");
    } else if (arg.rfind("--samples=", 0) == 0) {
      samples = std::stoull(value("--samples="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoi(value("--threads="));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage();
      return 2;
    }
  }

  try {
    if (!experiment.empty()) {
      return run_experiment_by_name(experiment, samples, seed, threads);
    }

    if (window == 0) window = spec::min_window_for_error_rate(width, 1e-4);
    if (chain == 0) {
      chain = (width == 64 || width == 128 || width == 256 || width == 512)
                  ? spec::vlsa_published_chain_length(width)
                  : std::min(width, window + 3);
    }

    const auto netlist = build(design, width, window, chain);
    const auto result = harness::synthesize(netlist);

    harness::Table table({"metric", "value"});
    table.add_row({"design", result.name});
    table.add_row({"gates (optimized)", std::to_string(result.gates)});
    table.add_row({"area [inv]", harness::fmt_fixed(result.area, 0)});
    table.add_row({"critical delay [tau]", harness::fmt_fixed(result.delay, 1)});
    for (const auto& [group, delay] : result.group_delay) {
      if (!group.empty()) {
        table.add_row({"delay of '" + group + "' [tau]", harness::fmt_fixed(delay, 1)});
      }
    }
    table.add_row({"max primary-input fanout", std::to_string(result.max_input_fanout)});
    table.print(std::cout);

    if (!verilog_path.empty()) {
      std::ofstream out(verilog_path);
      if (!out) throw std::runtime_error("cannot open " + verilog_path);
      netlist::emit_verilog(netlist::optimize(netlist), out);
      std::cout << "wrote Verilog to " << verilog_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
