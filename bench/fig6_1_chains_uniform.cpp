// Fig 6.1 — carry-chain length statistics for unsigned uniform inputs on a
// 32-bit adder (paper: 10^6 additions; default here 10^6, override with
// --samples=N).

#include <iostream>

#include "arith/distributions.hpp"
#include "bench_util.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.1",
                        "Carry-chain length statistics, unsigned uniform inputs, 32-bit "
                        "adder, " + std::to_string(args.samples) + " additions.");

  arith::CarryChainProfiler profiler(32, arith::ChainMetric::kAllChains);
  arith::UniformUnsignedSource source(32);
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < args.samples; ++i) {
    const auto [a, b] = source.next(rng);
    profiler.record(a, b);
  }
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: geometric decay (P(len = L | chain) = 2^-L), chains\n"
               "concentrated at short lengths — the premise of speculation (Ch. 3).\n";
  return 0;
}
