#pragma once
// Static timing analysis and area accounting over the netlist IR, using the
// normalized logical-effort library.  This pair of numbers (critical-path
// delay, cell area) is what every delay/area figure in Ch. 7 reports.

#include <map>
#include <string>
#include <vector>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

struct TimingReport {
  /// Worst arrival over all primary outputs.
  double critical_delay = 0.0;
  /// Worst arrival per output group ("" = ungrouped outputs).
  std::map<std::string, double> group_delay;
  /// Arrival time of every signal.
  std::vector<double> arrival;
  /// Signals of the overall critical path, input first.
  std::vector<Signal> critical_path;

  /// Worst arrival of a group; 0 when the group has no outputs.
  [[nodiscard]] double delay_of(const std::string& group) const {
    const auto it = group_delay.find(group);
    return it == group_delay.end() ? 0.0 : it->second;
  }
};

/// Computes arrival times: arrival(gate) = max fanin arrival + d(gate),
/// d(gate) = parasitic + effort * fanout.  Primary inputs arrive behind a
/// driver buffer, so PI fanout costs time (the paper's per-bit speculative
/// adders pay exactly this penalty).
[[nodiscard]] TimingReport analyze_timing(const Netlist& nl,
                                          const CellLibrary& lib = CellLibrary::standard());

struct AreaReport {
  double total = 0.0;                       // minimal-inverter units
  std::array<std::uint32_t, kNumGateKinds> kind_counts{};
  std::uint32_t logic_gates = 0;
};

[[nodiscard]] AreaReport analyze_area(const Netlist& nl,
                                      const CellLibrary& lib = CellLibrary::standard());

}  // namespace vlcsa::netlist
