// Table 7.5 — VLCSA 2 window sizes for 2's-complement Gaussian inputs
// (mu = 0, sigma = 2^32), found by simulation exactly as the paper does:
// the smallest k whose nominal (stall) rate meets the target.  Paper values:
// k = 13 for 0.01% and k = 9 for 0.25%, independent of adder width (the
// sigma bounds the operands' structure, so width does not matter).

#include <cmath>
#include <iostream>

#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 100000);
  harness::print_banner(std::cout, "Table 7.5",
                        "VLCSA 2 window sizes from simulation, 2's-complement Gaussian "
                        "(mu=0, sigma=2^32), " + std::to_string(args.samples) +
                            " samples per candidate window.");

  const arith::GaussianParams params{0.0, std::ldexp(1.0, 32)};
  harness::Table table({"adder width", "k @ 0.01%", "stall rate", "k @ 0.25%", "stall rate"});
  for (const int n : {64, 128, 256, 512}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const double target : {1e-4, 2.5e-3}) {
      const auto found = harness::find_window_for_nominal_rate(
          n, spec::ScsaVariant::kScsa2, arith::InputDistribution::kGaussianTwos, params,
          target, 1.25, args.samples, args.seed, 4, 24, args.threads);
      row.push_back(std::to_string(found.window));
      row.push_back(harness::fmt_pct(found.result.nominal_rate()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const auto published = spec::published_vlcsa2_parameters();
  std::cout << "\nPaper values: k = " << published.k_rate_01 << " (0.01%) and k = "
            << published.k_rate_25 << " (0.25%) at every width.  Expect the found\n"
               "windows to be near those and visibly width-insensitive.\n";
  return 0;
}
