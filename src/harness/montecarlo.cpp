#include "harness/montecarlo.hpp"

#include "harness/engine.hpp"

namespace vlcsa::harness {

void accumulate_vlcsa(const spec::VlcsaStep& step, spec::ScsaVariant variant,
                      ErrorRateResult& out) {
  const auto& ev = step.eval;
  const bool primary_wrong = variant == spec::ScsaVariant::kScsa1 ? !ev.spec0_correct()
                                                                  : !ev.either_correct();
  ++out.samples;
  if (primary_wrong) ++out.actual_errors;
  if (step.stalled) ++out.nominal_errors;
  if (primary_wrong && !step.stalled) ++out.false_negatives;
  if (!ev.either_correct()) ++out.either_wrong;
  if (step.result != ev.exact || step.cout != ev.exact_cout) ++out.emitted_wrong;
  out.total_cycles += static_cast<std::uint64_t>(step.cycles);
}

void accumulate_vlsa(const spec::VlsaEvaluation& ev, ErrorRateResult& out) {
  const bool wrong = !ev.spec_correct();
  ++out.samples;
  if (wrong) ++out.actual_errors;
  if (ev.err) ++out.nominal_errors;
  if (wrong && !ev.err) ++out.false_negatives;
  if (wrong) ++out.either_wrong;
  // Recovery is exact: emitted result is spec when !err else recovered.
  if (wrong && !ev.err) ++out.emitted_wrong;
  out.total_cycles += ev.err ? 2 : 1;
}

ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                          std::uint64_t samples, std::uint64_t seed, int threads) {
  const spec::VlcsaModel model(config);
  return run_sharded(
      RunOptions{samples, seed, threads, kDefaultShardSize},
      [] { return ErrorRateResult{}; },
      [&] {
        return [&model, variant = config.variant,
                shard_source = source.clone()](std::mt19937_64& rng, ErrorRateResult& out) {
          const auto [a, b] = shard_source->next(rng);
          accumulate_vlcsa(model.step(a, b), variant, out);
        };
      });
}

ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                         std::uint64_t samples, std::uint64_t seed, int threads) {
  const spec::VlsaModel model(config);
  return run_sharded(
      RunOptions{samples, seed, threads, kDefaultShardSize},
      [] { return ErrorRateResult{}; },
      [&] {
        return [&model, shard_source = source.clone()](std::mt19937_64& rng,
                                                       ErrorRateResult& out) {
          const auto [a, b] = shard_source->next(rng);
          accumulate_vlsa(model.evaluate(a, b), out);
        };
      });
}

EmpiricalWindowSearch find_window_for_nominal_rate(int width, spec::ScsaVariant variant,
                                                   arith::InputDistribution dist,
                                                   arith::GaussianParams params, double target,
                                                   double slack, std::uint64_t samples,
                                                   std::uint64_t seed, int k_lo, int k_hi,
                                                   int threads) {
  EmpiricalWindowSearch best;
  for (int k = k_lo; k <= k_hi; ++k) {
    auto source = arith::make_source(dist, width, params);
    const spec::VlcsaConfig config{width, k, variant};
    const auto result = run_vlcsa(config, *source, samples, seed, threads);
    if (result.nominal_rate() <= slack * target) {
      best.window = k;
      best.result = result;
      return best;
    }
    // Keep the last attempt so callers can report the near-miss.
    best.window = k;
    best.result = result;
  }
  return best;
}

}  // namespace vlcsa::harness
