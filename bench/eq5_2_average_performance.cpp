// Eq. (5.2) end to end — the paper's headline "on average, variable latency
// addition using SCSA-based speculative adders is about 10% faster than the
// DesignWare adder".  This bench combines both halves of that claim:
//   clock period  — from static timing: T_clk(VLCSA) = max(spec, detect),
//                   T_clk(DW) = its critical path;
//   cycle count   — from the pipeline model: N + stalls for VLCSA, N for DW.
// Wall-clock ratio = (1 + stall_rate) * T_clk(VLCSA) / T_clk(DW).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/pipeline.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 100000);
  harness::print_banner(std::cout, "Eq. (5.2) average performance",
                        "Wall-clock time of VLCSA vs the DesignWare substitute: "
                        "T = cycles x T_clk, " + std::to_string(args.samples) +
                            " additions per stream.");

  harness::Table table({"n", "inputs", "design", "k", "T_clk", "avg cycles",
                        "time/add", "vs DesignWare"});
  for (const int n : {64, 128, 256, 512}) {
    const auto dw = harness::synthesize(adders::build_designware_adder(n));

    struct Case {
      const char* label;
      arith::InputDistribution dist;
      spec::ScsaVariant variant;
      int k;
    };
    const Case cases[] = {
        {"uniform", arith::InputDistribution::kUniformUnsigned, spec::ScsaVariant::kScsa1,
         spec::min_window_for_error_rate(n, 2.5e-3)},
        {"gaussian-2c", arith::InputDistribution::kGaussianTwos, spec::ScsaVariant::kScsa2,
         spec::published_vlcsa2_parameters().k_rate_25},
    };
    for (const auto& c : cases) {
      const auto synth = harness::synthesize(spec::build_vlcsa_netlist(
          spec::ScsaConfig{n, c.k}, c.variant));
      const double tclk = std::max(synth.delay_of("spec"), synth.delay_of("detect"));
      const spec::VlcsaPipeline pipe({n, c.k, c.variant});
      auto source = arith::make_source(c.dist, n, arith::GaussianParams{0.0, std::ldexp(1.0, 32)});
      const auto stats = pipe.run(*source, args.samples, args.seed);
      const double time_per_add = stats.cycles_per_add() * tclk;
      table.add_row({std::to_string(n), c.label,
                     c.variant == spec::ScsaVariant::kScsa1 ? "VLCSA 1" : "VLCSA 2",
                     std::to_string(c.k), harness::fmt_fixed(tclk, 1),
                     harness::fmt_fixed(stats.cycles_per_add(), 4),
                     harness::fmt_fixed(time_per_add, 1),
                     harness::fmt_delta_pct(time_per_add, dw.delay)});
    }
    table.add_row({std::to_string(n), "-", "DesignWare", "-",
                   harness::fmt_fixed(dw.delay, 1), "1.0000",
                   harness::fmt_fixed(dw.delay, 1), "+0.0%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: VLCSA time/add ~10%+ below DesignWare on both input\n"
               "classes — the stall penalty (0.1-0.3% of adds) is negligible next to\n"
               "the shorter clock (Ch. 5.3, 7.5).\n";
  return 0;
}
