#pragma once
// Parser for the structural Verilog subset produced by emit_verilog,
// closing the loop on the paper's generator flow: netlists can be emitted,
// re-parsed, and formally checked equivalent (round-trip tests do exactly
// that).  Supported constructs: scalar/vector input/output/wire
// declarations and continuous assignments of the emitted shapes
// (constants, buf, ~x, x OP y, ~(x OP y), s ? a : b).

#include <string>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

/// Parses one module.  Throws std::invalid_argument with a line-numbered
/// message on anything outside the supported subset.
/// Output groups are not representable in Verilog and come back empty.
[[nodiscard]] Netlist parse_verilog(const std::string& text);

}  // namespace vlcsa::netlist
