#include "netlist/equivalence.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "netlist/bdd.hpp"

namespace vlcsa::netlist {

namespace {

/// Splits "base[idx]" into (base, idx); idx = -1 for scalar names.
std::pair<std::string, int> split_indexed(const std::string& name) {
  const auto lb = name.find('[');
  if (lb == std::string::npos || name.back() != ']') return {name, -1};
  const std::string idx = name.substr(lb + 1, name.size() - lb - 2);
  if (idx.empty()) return {name, -1};
  for (const char c : idx) {
    if (c < '0' || c > '9') return {name, -1};
  }
  return {name.substr(0, lb), std::stoi(idx)};
}

/// Interleaving variable order: by bit index first, then base name; scalars
/// (cin etc.) in front.
std::vector<std::string> ordered_input_names(const Netlist& nl) {
  std::vector<std::string> names;
  names.reserve(nl.inputs().size());
  for (const auto& port : nl.inputs()) names.push_back(port.name);
  std::stable_sort(names.begin(), names.end(), [](const std::string& x, const std::string& y) {
    const auto [bx, ix] = split_indexed(x);
    const auto [by, iy] = split_indexed(y);
    if (ix != iy) return ix < iy;
    return bx < by;
  });
  return names;
}

/// Builds BDDs for every output of `nl` under the given input-name -> BDD
/// variable mapping.  Returns output name -> BDD.
std::map<std::string, BddManager::NodeRef> build_output_bdds(
    BddManager& mgr, const Netlist& nl, const std::map<std::string, int>& var_of_input) {
  std::vector<BddManager::NodeRef> ref(nl.num_gates(), BddManager::kFalse);
  std::size_t input_idx = 0;
  for (std::uint32_t i = 0; i < nl.num_gates(); ++i) {
    const Gate& g = nl.gates()[i];
    const auto in = [&](int pin) { return ref[g.fanin[static_cast<std::size_t>(pin)].id]; };
    switch (g.kind) {
      case GateKind::kConst0: ref[i] = BddManager::kFalse; break;
      case GateKind::kConst1: ref[i] = BddManager::kTrue; break;
      case GateKind::kInput:
        ref[i] = mgr.var(var_of_input.at(nl.inputs()[input_idx++].name));
        break;
      case GateKind::kBuf: ref[i] = in(0); break;
      case GateKind::kNot: ref[i] = mgr.not_(in(0)); break;
      case GateKind::kAnd2: ref[i] = mgr.and_(in(0), in(1)); break;
      case GateKind::kOr2: ref[i] = mgr.or_(in(0), in(1)); break;
      case GateKind::kNand2: ref[i] = mgr.not_(mgr.and_(in(0), in(1))); break;
      case GateKind::kNor2: ref[i] = mgr.not_(mgr.or_(in(0), in(1))); break;
      case GateKind::kXor2: ref[i] = mgr.xor_(in(0), in(1)); break;
      case GateKind::kXnor2: ref[i] = mgr.not_(mgr.xor_(in(0), in(1))); break;
      case GateKind::kMux2: ref[i] = mgr.ite(in(0), in(2), in(1)); break;
    }
  }
  std::map<std::string, BddManager::NodeRef> outputs;
  for (const auto& port : nl.outputs()) outputs[port.name] = ref[port.signal.id];
  return outputs;
}

}  // namespace

EquivalenceResult prove_equivalent(const Netlist& a, const Netlist& b,
                                   const std::map<std::string, std::string>& output_map,
                                   std::size_t node_limit) {
  // Input sets must match by name.
  std::set<std::string> in_a, in_b;
  for (const auto& p : a.inputs()) in_a.insert(p.name);
  for (const auto& p : b.inputs()) in_b.insert(p.name);
  if (in_a != in_b) {
    throw std::invalid_argument("prove_equivalent: input port sets differ");
  }

  // Shared variable order.
  const auto order = ordered_input_names(a);
  std::map<std::string, int> var_of_input;
  for (std::size_t i = 0; i < order.size(); ++i) {
    var_of_input[order[i]] = static_cast<int>(i);
  }

  BddManager mgr(static_cast<int>(order.size()));
  mgr.set_node_limit(node_limit);

  EquivalenceResult result;
  try {
    const auto bdd_a = build_output_bdds(mgr, a, var_of_input);
    const auto bdd_b = build_output_bdds(mgr, b, var_of_input);

    for (const auto& [name_a, ref_a] : bdd_a) {
      // With an explicit map only the mapped outputs are compared; without
      // one, identically named outputs are.
      std::string name_b;
      if (!output_map.empty()) {
        const auto it = output_map.find(name_a);
        if (it == output_map.end()) continue;
        name_b = it->second;
      } else {
        name_b = name_a;
      }
      const auto it_b = bdd_b.find(name_b);
      if (it_b == bdd_b.end()) continue;  // not comparable
      ++result.outputs_compared;
      if (ref_a == it_b->second) continue;  // canonical: equal refs <=> equal functions
      // Extract a witness from the difference function.
      const auto diff = mgr.xor_(ref_a, it_b->second);
      const auto assignment = mgr.find_satisfying(diff);
      result.verdict = Verdict::kNotEquivalent;
      result.mismatch_output = name_a;
      if (assignment) {
        for (std::size_t v = 0; v < order.size(); ++v) {
          result.counterexample.emplace_back(order[v], (*assignment)[v]);
        }
      }
      result.bdd_nodes = mgr.node_count();
      return result;
    }
  } catch (const std::runtime_error&) {
    result.verdict = Verdict::kResourceLimit;
    result.bdd_nodes = mgr.node_count();
    return result;
  }

  if (result.outputs_compared == 0) {
    throw std::invalid_argument("prove_equivalent: no comparable outputs");
  }
  result.verdict = Verdict::kEquivalent;
  result.bdd_nodes = mgr.node_count();
  return result;
}

}  // namespace vlcsa::netlist
