#include "harness/cli.hpp"

#include <charconv>
#include <functional>
#include <limits>
#include <vector>

namespace vlcsa::harness {

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return false;
  out = value;
  return true;
}

bool parse_nonnegative_int(const std::string& text, int& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if (value > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) return false;
  out = static_cast<int>(value);
  return true;
}

bool match_value_flag(const std::string& arg, const std::string& name,
                      const std::function<bool(const std::string&)>& apply,
                      std::string& error) {
  if (arg.rfind(name + "=", 0) == 0) {
    const std::string value = arg.substr(name.size() + 1);
    if (!apply(value) && error.empty()) {
      error = "invalid value for " + name + ": '" + value + "'";
    }
    return true;
  }
  if (arg == name) {
    error = name + " requires a value (" + name + "=...)";
    return true;
  }
  return false;
}

std::string parse_value_flags(int argc, const char* const* argv,
                              const std::vector<ValueFlag>& flags,
                              std::string_view tolerate_prefix) {
  std::string error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!tolerate_prefix.empty() && arg.rfind(tolerate_prefix, 0) == 0) continue;
    bool handled = false;
    for (const ValueFlag& flag : flags) {
      if (match_value_flag(arg, flag.name, flag.apply, error)) {
        if (!error.empty()) return error;
        handled = true;
        break;
      }
    }
    if (!handled) return "unknown argument: " + arg;
  }
  return {};
}

namespace {

/// Which front-end mode a value flag belongs to — flags given in the wrong
/// mode are rejected, not silently ignored (e.g. `--design=... --json=f`
/// would otherwise run the netlist path and never write f).
enum class FlagMode { kEither, kBuild, kExperiment };

struct ModeFlag {
  const char* name;
  FlagMode mode;
  std::function<bool(const std::string&)> apply;  // validates and stores
};

}  // namespace

ExplorerParse parse_explorer_args(int argc, const char* const* argv) {
  ExplorerParse parse;
  ExplorerOptions& opt = parse.options;

  const auto store_string = [](std::string& field) {
    return [&field](const std::string& value) {
      if (value.empty()) return false;
      field = value;
      return true;
    };
  };
  const auto store_int = [](int& field) {
    return [&field](const std::string& value) { return parse_nonnegative_int(value, field); };
  };
  const auto store_u64 = [](std::uint64_t& field) {
    return [&field](const std::string& value) { return parse_u64(value, field); };
  };

  const std::vector<ModeFlag> flags = {
      {"--experiment", FlagMode::kEither, store_string(opt.experiment)},
      {"--design", FlagMode::kBuild, store_string(opt.design)},
      {"--width", FlagMode::kBuild, store_int(opt.width)},
      {"--window", FlagMode::kBuild, store_int(opt.window)},
      {"--chain", FlagMode::kBuild, store_int(opt.chain)},
      {"--verilog", FlagMode::kBuild, store_string(opt.verilog_path)},
      {"--samples", FlagMode::kExperiment, store_u64(opt.samples)},
      {"--seed", FlagMode::kExperiment, store_u64(opt.seed)},
      {"--threads", FlagMode::kExperiment, store_int(opt.threads)},
      {"--json", FlagMode::kExperiment, store_string(opt.json_path)},
      {"--batch", FlagMode::kExperiment,
       [&opt](const std::string& value) {
         // "on"/"off" toggles; the canonical EvalPath names ("batched",
         // "scalar" — the service protocol's eval_path spelling) also work.
         EvalPath path = opt.path;
         if (value == "on") {
           path = EvalPath::kBatched;
         } else if (value == "off") {
           path = EvalPath::kScalar;
         } else if (!parse_eval_path(value, path)) {
           return false;
         }
         opt.path = path;
         opt.path_explicit = true;
         return true;
       }},
  };

  std::vector<const ModeFlag*> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      opt.show_help = true;
      continue;
    }
    if (arg == "--list") {
      opt.list_designs = true;
      continue;
    }
    if (arg == "--list-experiments") {
      opt.list_experiments = true;
      continue;
    }
    if (arg == "--profile") {
      opt.profile = true;
      continue;
    }
    bool handled = false;
    for (const ModeFlag& flag : flags) {
      if (match_value_flag(arg, flag.name, flag.apply, parse.error)) {
        if (!parse.error.empty()) return parse;
        seen.push_back(&flag);
        handled = true;
        break;
      }
    }
    if (!handled) {
      parse.error = "unknown argument: " + arg + " (try --help)";
      return parse;
    }
  }

  // Informational modes ignore the rest of the line (they exit early).
  if (opt.show_help || opt.list_designs || opt.list_experiments) return parse;

  // Mode consistency: a flag for the mode that is not running is a mistake.
  const bool experiment_mode = !opt.experiment.empty();
  for (const ModeFlag* flag : seen) {
    if (flag->mode == FlagMode::kBuild && experiment_mode) {
      parse.error = std::string(flag->name) +
                    " only applies when building a design; it has no effect with --experiment";
      return parse;
    }
    if (flag->mode == FlagMode::kExperiment && !experiment_mode) {
      parse.error = std::string(flag->name) + " requires --experiment=NAME";
      return parse;
    }
  }
  if (opt.profile && !experiment_mode) {
    parse.error = "--profile requires --experiment=NAME";
    return parse;
  }
  return parse;
}

}  // namespace vlcsa::harness
