// Fig 6.3 — carry-chain length statistics for 2's-complement uniform inputs
// (random sign x uniform magnitude) on a 32-bit adder.  Runs the registry's
// "fig6.3/uniform-twos-complement" experiment on the parallel engine.

#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.3",
                        "Carry-chain length statistics, 2's-complement uniform inputs, "
                        "32-bit adder, " + std::to_string(args.samples) + " additions.");

  const auto* experiment =
      harness::find_chain_profile_experiment("fig6.3/uniform-twos-complement");
  if (experiment == nullptr) {
    std::cerr << "fig6.3/uniform-twos-complement missing from the registry\n";
    return 1;
  }
  const auto profiler =
      harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: still short-chain dominated, similar to unsigned\n"
               "uniform (Ch. 6.3's first observation): uniform magnitudes rarely\n"
               "create the small-negative-plus-small-positive pattern.\n";
  return 0;
}
