#pragma once
// Multi-operand variable-latency addition — the first of the paper's
// future-work items (Ch. 8: "generalize the speculative and reliable
// variable latency carry select addition for ... multi-operand addition").
//
// Classic structure: a carry-save (3:2 compressor) tree reduces m operands
// to a sum/carry pair with no carry propagation at all, then one VLCSA
// performs the single carry-propagate addition.  Only that final addition
// can stall, so the multi-operand unit inherits VLCSA's 1-or-2-cycle
// behaviour (plus the fixed tree latency) and its exactness guarantee.

#include <span>
#include <vector>

#include "speculative/vlcsa.hpp"

namespace vlcsa::spec {

/// One carry-save reduction step: (a, b, c) -> (sum, carry) with
/// sum = a ^ b ^ c and carry = majority(a,b,c) << 1, all modulo 2^width.
[[nodiscard]] std::pair<ApInt, ApInt> carry_save_compress(const ApInt& a, const ApInt& b,
                                                          const ApInt& c);

/// Reduces any number of operands to a (sum, carry) pair via a 3:2 tree.
/// 0 operands -> (0, 0); 1 -> (x, 0); 2 -> (x, y).
[[nodiscard]] std::pair<ApInt, ApInt> carry_save_reduce(std::span<const ApInt> operands,
                                                        int width);

struct MultiOperandResult {
  ApInt sum;          // always exact
  bool cout = false;  // carry out of the final addition
  int cycles = 1;     // final-adder cycles (1 or 2); the CSA tree is
                      // carry-free and absorbed into the first cycle
  bool stalled = false;
  int tree_levels = 0;  // 3:2 levels used (for delay accounting)
};

/// Variable-latency multi-operand adder: CSA tree + VLCSA final adder.
class MultiOperandAdder {
 public:
  explicit MultiOperandAdder(VlcsaConfig final_adder) : final_adder_(final_adder) {}

  [[nodiscard]] const VlcsaModel& final_adder() const { return final_adder_; }

  /// Adds operands (each of the configured width) modulo 2^width.
  [[nodiscard]] MultiOperandResult add(std::span<const ApInt> operands) const;

 private:
  VlcsaModel final_adder_;
};

/// Number of 3:2 levels needed to reduce m operands to 2.
[[nodiscard]] int csa_tree_levels(int operands);

}  // namespace vlcsa::spec
