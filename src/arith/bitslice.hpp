#pragma once
// Bit-sliced sample batches: 64 Monte Carlo samples per machine word.
//
// The netlist simulator has always been 64-way bit-sliced (one word = one
// net's value across 64 test vectors).  This header brings the same layout
// to the *behavioral* models: a BitSlicedBatch stores 64 operand pairs as
// bit-planes — plane[bit] is a word whose bit j is sample j's value of
// operand bit `bit` — so window generate/propagate, speculative carries and
// detection flags become word-parallel boolean algebra over the planes.
//
// Layout ("bit-plane" = column of the 64 x width sample matrix):
//
//            bit 0   bit 1   ...   bit n-1
//  sample 0 [  .       .              .   ]   row    = one operand (ApInt)
//  sample 1 [  .       .              .   ]   column = one plane (uint64_t)
//    ...
//  sample 63[  .       .              .   ]
//
// The row<->column conversion is the classic 64x64 bit-matrix transpose
// (6 log-steps per block), shared with the netlist-simulator test harness.

#include <cstdint>
#include <vector>

#include "arith/apint.hpp"

namespace vlcsa::arith {

/// Number of samples carried per word — one lane per bit.
inline constexpr int kBatchLanes = 64;

/// In-place transpose of a 64x64 bit matrix.  block[i] is row i; bit j of
/// row i moves to bit i of row j.
void transpose_64x64(std::uint64_t block[64]);

/// Transposes `count` (<= 64) width-bit samples into bit-planes:
/// planes[bit] bit j = samples[j].bit(bit) for j < count, 0 for j >= count.
/// `planes` must hold `width` words.
void transpose_to_planes(const ApInt* samples, int count, int width, std::uint64_t* planes);

/// Copies an already-transposed 64x64 block (rows = bits of limb `limb`)
/// into the plane array of a `width`-bit layout, dropping rows beyond the
/// width.  Shared by transpose_to_planes and the operand sources' direct
/// raw-limb fill paths.
void block_to_planes(const std::uint64_t block[64], int limb, int width,
                     std::uint64_t* planes);

/// Reads lane `lane` of a plane array back into an ApInt (the inverse of
/// transpose_to_planes for one sample; used by tests and diagnostics).
[[nodiscard]] ApInt plane_lane(const std::uint64_t* planes, int width, int lane);

/// 64 operand pairs in bit-plane form, ready for word-parallel evaluation.
class BitSlicedBatch {
 public:
  explicit BitSlicedBatch(int width)
      : width_(width),
        a_(static_cast<std::size_t>(width), 0),
        b_(static_cast<std::size_t>(width), 0) {}

  [[nodiscard]] int width() const { return width_; }

  [[nodiscard]] const std::uint64_t* a() const { return a_.data(); }
  [[nodiscard]] const std::uint64_t* b() const { return b_.data(); }
  [[nodiscard]] std::uint64_t* a() { return a_.data(); }
  [[nodiscard]] std::uint64_t* b() { return b_.data(); }

  /// Loads operand pairs row-wise (sample j = (a[j], b[j])); pairs beyond
  /// `count` are zero.  Both vectors must have the same size <= 64.
  void load(const std::vector<ApInt>& a, const std::vector<ApInt>& b);

  /// Sample `lane` reconstructed as an ApInt pair (tests/diagnostics).
  [[nodiscard]] std::pair<ApInt, ApInt> lane(int lane) const;

 private:
  int width_;
  std::vector<std::uint64_t> a_;  // a_[bit] = plane of operand-a bit `bit`
  std::vector<std::uint64_t> b_;
};

/// Word-level Kogge-Stone prefix over bit-planes: given per-bit generate and
/// propagate planes g/p (each `n` words), writes carry[i] = carry *out* of
/// bit i assuming carry-in 0 at bit 0, independently in each of the 64
/// lanes.  This is the batch pipeline's exact-adder reference.
/// `carry` must hold n words and may not alias g or p.  `pp_scratch` is the
/// group-propagate working array — callers keep one per evaluation state so
/// the hot loop never allocates; it is resized as needed and clobbered.
void kogge_stone_carries(const std::uint64_t* g, const std::uint64_t* p, int n,
                         std::uint64_t* carry, std::vector<std::uint64_t>& pp_scratch);

}  // namespace vlcsa::arith
