#pragma once
// Sweep orchestration: the grid runner every comparison-table campaign goes
// through (ROADMAP item 1's adder-zoo atlas multiplies the paper's grids by
// several model families — this is the machinery that runs them).
//
// A sweep is declared as one JSON spec: which experiments (exact names or
// "prefix/" selections from the registry, optionally narrowed by
// model/width/window/distribution filters), crossed with explicit samples
// and seeds axes.  parse_sweep_spec expands the spec into a deterministic
// cell list — same spec, same cells, same order, same ids — which is what
// makes a sweep resumable by construction: every cell maps onto the result
// cache's key space (experiment|samples|seed|eval_path), so re-running the
// same spec against a warm cache answers prior work as cache hits and only
// computes the frontier.
//
// run_sweep executes the cells through an injected transport (one
// request-line/reply-line roundtrip — the vlcsa_sweep front end wires it to
// an in-process ExperimentService or a daemon via ServiceClient), batching
// cells into "run-batch" chunks stamped with "origin": "sweep" and
// "trace": true so every reply carries the spans and per-cell RunProfile the
// observability rollups are built from.  Instrumentation is first-class:
//   - a line-atomic JSONL event log (JsonlLog) with one sweep-start line,
//     one cell-start and exactly one terminal (cell-done / cell-cached /
//     cell-error) per cell, and one closing sweep-done summary whose counts
//     reconcile with the per-cell events (validate_sweep_event_log checks
//     both properties — the CI sweep smoke gates on it);
//   - a live progress line (done/cached/failed, cells/s, nearest-rank ETA);
//   - a vlcsa-sweep-1 JSON report (render_sweep_report) with per-cell
//     records plus aggregate stage and profile totals, mirroring the
//     loadgen report idiom.
//
// Determinism contract: everything here is orchestration + observability.
// Cell result records come back verbatim from the service/cache layer and
// are never modified — wall times, spans and profiles live only in the
// event log and report, exactly like trace data in reply envelopes.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace vlcsa::harness {

/// One expanded grid cell: a fully resolved (experiment, samples, seed,
/// eval_path) point, in deterministic expansion order.
struct SweepCell {
  std::string id;          // "experiment|samples|seed|eval_path" (cache-key shaped)
  std::size_t index = 0;   // position in expansion order
  std::string experiment;
  std::uint64_t samples = 0;  // resolved against the experiment default
  std::uint64_t seed = 1;
  std::string eval_path;   // "batched"/"scalar"; chain-profile cells are "scalar"
  bool error_rate = false; // family: whether eval_path is sent to the service
};

/// A parsed, validated, fully expanded sweep.
struct SweepSpec {
  std::string name;              // "name" field; defaults to "sweep"
  std::vector<SweepCell> cells;  // expansion order = experiments × samples × seeds
};

struct SweepSpecParse {
  SweepSpec spec;
  std::string error;  // "" = parsed and expanded

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses one sweep spec (strict, json.hpp): unknown fields, empty or
/// duplicate axis values, selections matching no experiment, filters that
/// eliminate everything, and eval_path/filters applied to chain-profile
/// experiments are all errors.  Spec shape:
///
///   {"name": STR?, "experiments": [NAME-or-"prefix/", ...],
///    "models": [STR, ...]?, "widths": [INT, ...]?, "windows": [INT, ...]?,
///    "distributions": [STR, ...]?,          // error-rate-only filters
///    "samples": [INT, ...]?,                // default: experiment default
///    "seeds": [INT, ...]?,                  // default: [1]
///    "eval_path": "batched"|"scalar"?}      // error-rate cells only
[[nodiscard]] SweepSpecParse parse_sweep_spec(const std::string& text);

/// One request-line → reply-line roundtrip; returns "" on success, else a
/// transport error.  The sweep runner is transport-agnostic: vlcsa_sweep
/// wires this to an owned in-process ExperimentService::handle_line or a
/// daemon ServiceClient::roundtrip_with_retry.
using SweepTransport =
    std::function<std::string(const std::string& request_line, std::string& reply_line)>;

struct SweepOptions {
  std::size_t chunk = 16;          // cells per run-batch request (>= 1)
  std::uint64_t timeout_ms = 0;    // per-chunk "timeout_ms"; 0 = server default
  bool progress = true;            // live progress line on *progress_out
  std::string mode = "in-process"; // reported only ("in-process"/"daemon")
  std::string endpoint;            // reported only (socket path / host:port)
  std::string event_log_path;      // JSONL event log; empty = off
  std::uint64_t event_log_max_bytes = 0;  // JsonlLog rotation cap; 0 = unbounded
  std::string trace_prefix;        // per-chunk trace-id prefix; default "sw"
  std::ostream* progress_out = nullptr;  // default std::cerr
};

/// What one cell produced.
struct SweepCellResult {
  SweepCell cell;
  bool ok = false;
  bool cached = false;     // cache tier was not "miss" (resumed / coalesced work)
  std::string cache;       // hit-memory / hit-disk / coalesced / miss
  std::string record;      // the verbatim result record (ok cells)
  std::string profile;     // rendered RunProfile (computed cells)
  std::string error;       // error text (failed cells)
  std::string code;        // machine-readable error code (failed cells)
  std::string trace_id;    // the chunk's trace id
  double wall_ms = 0.0;    // this cell's "element" span duration
};

/// Aggregate RunProfile rollup over every computed cell that carried one.
struct SweepProfileTotals {
  std::uint64_t cells = 0;  // cells whose reply carried a profile
  std::uint64_t shards = 0;
  std::uint64_t samples = 0;
  std::uint64_t batch_blocks = 0;
  std::uint64_t batched_samples = 0;
  std::uint64_t scalar_samples = 0;
  std::uint64_t rng_words = 0;
  double fill_seconds = 0.0;
  double eval_seconds = 0.0;
  double merge_seconds = 0.0;
  std::uint64_t threads_max = 0;
  std::string backend;  // last backend seen (uniform within one host)
};

struct SweepResult {
  std::string error;  // "" = the sweep ran to completion (cells may still fail)
  std::vector<SweepCellResult> cells;  // one entry per cell that got a terminal
  std::uint64_t computed_cells = 0;  // cache "miss": the engine actually ran
  std::uint64_t resumed_cells = 0;   // cache hit: prior work answered the cell
  std::uint64_t failed_cells = 0;
  double wall_seconds = 0.0;
  // Sum of every reply span (depth >= 1) by stage name, milliseconds —
  // where the sweep's server-side time went.
  std::vector<std::pair<std::string, double>> stage_totals_ms;
  SweepProfileTotals profile_totals;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs every cell of `spec` through `transport` in expansion order,
/// chunked into run-batch requests, writing the event log and progress as
/// configured.  A transport failure aborts the sweep (the affected chunk's
/// cells terminate as cell-error; later cells get no events); per-cell
/// errors are recorded and the sweep continues.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options,
                                    const SweepTransport& transport);

/// Renders the vlcsa-sweep-1 report object (one JSON line): sweep identity
/// and mode, cell accounting, per-cell records, aggregate stage totals and
/// the RunProfile rollup.  DESIGN.md documents the schema.
[[nodiscard]] std::string render_sweep_report(const SweepSpec& spec,
                                              const SweepOptions& options,
                                              const SweepResult& result);

/// What validate_sweep_event_log found.
struct SweepLogValidation {
  std::string error;  // "" = the log is well-formed
  std::uint64_t cells = 0;     // planned cells (sweep-start)
  std::uint64_t computed = 0;  // cell-done terminals
  std::uint64_t resumed = 0;   // cell-cached terminals
  std::uint64_t failed = 0;    // cell-error terminals

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Validates one sweep event log: exactly one sweep-start (first) and one
/// sweep-done (last); every cell-start followed by exactly one terminal
/// event for that cell id; no terminal without a start; and a sweep-done
/// summary whose computed/resumed/failed counts reconcile with the per-cell
/// terminals (and sum to the planned cell count when the sweep completed).
[[nodiscard]] SweepLogValidation validate_sweep_event_log(std::istream& in);

}  // namespace vlcsa::harness
