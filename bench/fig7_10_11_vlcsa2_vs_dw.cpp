// Figs 7.10 / 7.11 — delay and area of the full VLCSA 2 (the 2's-complement
// Gaussian variant) vs the DesignWare substitute, at the Table 7.5 window
// sizes (k = 13 for 0.01%, k = 9 for 0.25%).

#include <algorithm>
#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

namespace {

struct Point {
  double correct;
  double recovery;
  double area;
};

Point measure(int n, int k) {
  const auto r = vlcsa::harness::synthesize(
      spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa2));
  return {std::max(r.delay_of("spec"), r.delay_of("detect")), r.delay_of("recovery"),
          r.area};
}

}  // namespace

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figures 7.10 / 7.11",
                        "VLCSA 2 vs DesignWare-substitute at the Table 7.5 window "
                        "sizes: delays [tau], area [inv].");

  const auto params = spec::published_vlcsa2_parameters();
  harness::Table delay({"n", "DesignWare", "correct @0.01%", "vs DW", "recovery @0.01%",
                        "correct @0.25%", "vs DW", "recovery @0.25%"});
  harness::Table area({"n", "DesignWare", "VLCSA2 @0.01%", "vs DW", "VLCSA2 @0.25%",
                       "vs DW"});
  for (const int n : {64, 128, 256, 512}) {
    const auto dw = harness::synthesize(adders::build_designware_adder(n));
    const auto p01 = measure(n, params.k_rate_01);
    const auto p25 = measure(n, params.k_rate_25);
    delay.add_row({std::to_string(n), harness::fmt_fixed(dw.delay, 1),
                   harness::fmt_fixed(p01.correct, 1),
                   harness::fmt_delta_pct(p01.correct, dw.delay),
                   harness::fmt_fixed(p01.recovery, 1), harness::fmt_fixed(p25.correct, 1),
                   harness::fmt_delta_pct(p25.correct, dw.delay),
                   harness::fmt_fixed(p25.recovery, 1)});
    area.add_row({std::to_string(n), harness::fmt_fixed(dw.area, 0),
                  harness::fmt_fixed(p01.area, 0), harness::fmt_delta_pct(p01.area, dw.area),
                  harness::fmt_fixed(p25.area, 0),
                  harness::fmt_delta_pct(p25.area, dw.area)});
  }
  std::cout << "Fig 7.10 — delay:\n";
  delay.print(std::cout);
  std::cout << "\nFig 7.11 — area:\n";
  area.print(std::cout);
  std::cout << "\nPaper shape: VLCSA 2's correct-path delay still ~10% below\n"
               "DesignWare; area above VLCSA 1 (second mux bank + ERR1) with\n"
               "requirements 1..62% (0.01%) and -17..29% (0.25%) vs DesignWare,\n"
               "shrinking as width grows (Ch. 7.5.3).\n";
  return 0;
}
