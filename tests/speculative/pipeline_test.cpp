#include "speculative/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "speculative/error_model.hpp"

namespace vlcsa::spec {
namespace {

TEST(VlcsaPipeline, CyclesEqualAdditionsPlusStalls) {
  const VlcsaPipeline pipe({64, 8, ScsaVariant::kScsa1});
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto stats = pipe.run(*source, 20000, 3);
  EXPECT_EQ(stats.additions, 20000u);
  EXPECT_EQ(stats.cycles, stats.additions + stats.stalls);
  EXPECT_EQ(stats.wrong_results, 0u);
  EXPECT_NEAR(stats.cycles_per_add(), 1.0 + static_cast<double>(stats.stalls) / 20000.0,
              1e-12);
  EXPECT_NEAR(stats.throughput() * stats.cycles_per_add(), 1.0, 1e-12);
}

TEST(VlcsaPipeline, StallRateMatchesModel) {
  const int n = 64, k = 7;
  const VlcsaPipeline pipe({n, k, ScsaVariant::kScsa1});
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
  const auto stats = pipe.run(*source, 200000, 5);
  const double expected = scsa_exact_error_rate(n, k);
  const double sigma = std::sqrt(expected * (1 - expected) / 200000.0);
  EXPECT_NEAR(static_cast<double>(stats.stalls) / 200000.0, expected, 5 * sigma + 1e-4);
}

TEST(VlcsaPipeline, TotalTimeScalesWithClockPeriod) {
  const VlcsaPipeline pipe({32, 8, ScsaVariant::kScsa1});
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 32);
  const auto stats = pipe.run(*source, 1000, 7);
  EXPECT_DOUBLE_EQ(stats.total_time(2.0), 2.0 * static_cast<double>(stats.cycles));
}

TEST(VlcsaPipeline, Variant2BeatsVariant1OnGaussian) {
  auto make_source = [] {
    return arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                              arith::GaussianParams{0.0, std::ldexp(1.0, 32)});
  };
  const VlcsaPipeline p1({64, 14, ScsaVariant::kScsa1});
  const VlcsaPipeline p2({64, 14, ScsaVariant::kScsa2});
  auto s1 = make_source();
  auto s2 = make_source();
  const auto r1 = p1.run(*s1, 20000, 11);
  const auto r2 = p2.run(*s2, 20000, 11);
  EXPECT_LT(r2.cycles, r1.cycles);
  EXPECT_EQ(r1.wrong_results, 0u);
  EXPECT_EQ(r2.wrong_results, 0u);
}

TEST(VlcsaPipeline, EmptyStream) {
  const VlcsaPipeline pipe({32, 8, ScsaVariant::kScsa2});
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 32);
  const auto stats = pipe.run(*source, 0, 1);
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_DOUBLE_EQ(stats.cycles_per_add(), 0.0);
  EXPECT_DOUBLE_EQ(stats.throughput(), 0.0);
}

}  // namespace
}  // namespace vlcsa::spec
