// Table 7.3 — design parameters for a 0.01% error rate: SCSA window size k
// (from the analytical model, sizing rule in DESIGN.md) vs the speculative
// carry chain length l of VLSA [17] (published design points, with our exact
// DP model's rate at those points for reference).

#include <iostream>

#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Table 7.3",
                        "SCSA window size vs VLSA chain length for a 0.01% error rate.");

  harness::Table table({"adder width", "window size (SCSA)", "P_err @ k",
                        "chain length (VLSA [17])", "P_err @ l (exact DP)"});
  for (const int n : {64, 128, 256, 512}) {
    const int k = spec::min_window_for_error_rate(n, 1e-4);
    const int l = spec::vlsa_published_chain_length(n);
    table.add_row({std::to_string(n), std::to_string(k),
                   harness::fmt_pct(spec::scsa_error_rate(n, k)), std::to_string(l),
                   harness::fmt_pct(spec::vlsa_exact_error_rate(n, l))});
  }
  table.print(std::cout);
  std::cout << "\nPaper values: k = 14/15/16/17, l = 17/18/20/21.  SCSA speculates on\n"
               "windows rather than per-bit, so it needs a shorter lookahead for the\n"
               "same error rate (Ch. 3/4.3).\n";
  return 0;
}
