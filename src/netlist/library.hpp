#pragma once
// Normalized technology model — the substitute for the UMC 65 nm standard
// cell library used in the paper (see DESIGN.md "Substitutions").
//
// Delay follows the logical-effort model: a gate driving h unit loads takes
//   d = parasitic + effort * h        [units of tau]
// Area is measured in minimal-inverter equivalents (transistor-count based).
// The paper's conclusions are ratio claims; this model preserves the depth,
// fanout and size relations that produce those ratios.

#include <cmath>

#include "netlist/gate.hpp"

namespace vlcsa::netlist {

struct CellParams {
  double effort = 0.0;     // logical effort g
  double parasitic = 0.0;  // parasitic delay p
  double area = 0.0;       // in minimal-inverter units
};

class CellLibrary {
 public:
  /// Loads beyond this per driver are assumed to go through an inserted
  /// buffer chain (what synthesis does); each chain stage drives kMaxFanout.
  static constexpr double kMaxFanout = 4.0;

  /// The default normalized library (values in DESIGN.md).
  [[nodiscard]] static const CellLibrary& standard();

  [[nodiscard]] const CellParams& params(GateKind kind) const {
    return cells_[static_cast<std::size_t>(kind)];
  }

  /// Delay of a gate driving `fanout` unit loads, including the implicit
  /// buffer chain when the fanout exceeds kMaxFanout.  Unbuffered linear
  /// loading would make every high-fanout select/carry net pay O(fanout)
  /// delay, which no synthesized design does; the chain model keeps the
  /// penalty logarithmic, as after buffer insertion.
  [[nodiscard]] double delay(GateKind kind, double fanout) const {
    const auto& c = params(kind);
    const auto& buf = params(GateKind::kBuf);
    double load = fanout;
    double chain = 0.0;
    while (load > kMaxFanout) {
      load = std::ceil(load / kMaxFanout);
      chain += buf.parasitic + buf.effort * kMaxFanout;
    }
    return c.parasitic + c.effort * load + chain;
  }

  [[nodiscard]] double area(GateKind kind) const { return params(kind).area; }

  /// Effort/parasitic of the driver modeled behind each primary input.  A
  /// primary input driving f gate pins arrives at p + g*f: this is how the
  /// "large fanout at the primary inputs" cost of per-bit speculation
  /// (Ch. 1/2) enters the timing model.
  [[nodiscard]] const CellParams& input_driver() const { return input_driver_; }

  CellLibrary();  // default-constructs the standard values; tests may mutate copies

  /// Overrides one cell (for sensitivity/ablation studies).
  void set_params(GateKind kind, CellParams p) { cells_[static_cast<std::size_t>(kind)] = p; }

 private:
  CellParams cells_[kNumGateKinds];
  CellParams input_driver_;
};

}  // namespace vlcsa::netlist
