#include "arith/bitslice.hpp"

#include <algorithm>
#include <stdexcept>

namespace vlcsa::arith {

void transpose_64x64(std::uint64_t block[64]) {
  // Recursive block swap (Hacker's Delight 7-3 style, oriented for a true
  // main-diagonal transpose): at each level, swap the high-column half of
  // the upper row group with the low-column half of the lower row group,
  // for sub-block sizes 32, 16, ..., 1.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((block[k] >> j) ^ block[k | j]) & m;
      block[k] ^= t << j;
      block[k | j] ^= t;
    }
  }
}

void transpose_to_planes(const ApInt* samples, int count, int width, std::uint64_t* planes) {
  if (count < 0 || count > kBatchLanes) {
    throw std::invalid_argument("transpose_to_planes: count must be in [0, 64]");
  }
  for (int j = 0; j < count; ++j) {
    if (samples[j].width() != width) {
      throw std::invalid_argument("transpose_to_planes: sample width mismatch");
    }
  }
  const int limbs = (width + ApInt::kLimbBits - 1) / ApInt::kLimbBits;
  std::uint64_t block[64];
  for (int limb = 0; limb < limbs; ++limb) {
    for (int j = 0; j < count; ++j) block[j] = samples[j].limb(limb);
    for (int j = count; j < 64; ++j) block[j] = 0;
    transpose_64x64(block);
    block_to_planes(block, limb, width, planes);
  }
}

void block_to_planes(const std::uint64_t block[64], int limb, int width,
                     std::uint64_t* planes) {
  const int base = limb * ApInt::kLimbBits;
  const int top = std::min(width - base, ApInt::kLimbBits);
  for (int bit = 0; bit < top; ++bit) planes[base + bit] = block[bit];
}

ApInt plane_lane(const std::uint64_t* planes, int width, int lane) {
  ApInt out(width);
  for (int bit = 0; bit < width; ++bit) {
    out.set_bit(bit, ((planes[bit] >> lane) & 1) != 0);
  }
  return out;
}

void BitSlicedBatch::load(const std::vector<ApInt>& a, const std::vector<ApInt>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("BitSlicedBatch::load: operand counts differ");
  }
  const int count = static_cast<int>(a.size());
  transpose_to_planes(a.data(), count, width_, a_.data());
  transpose_to_planes(b.data(), count, width_, b_.data());
}

std::pair<ApInt, ApInt> BitSlicedBatch::lane(int lane) const {
  return {plane_lane(a_.data(), width_, lane), plane_lane(b_.data(), width_, lane)};
}

void kogge_stone_carries(const std::uint64_t* g, const std::uint64_t* p, int n,
                         std::uint64_t* carry, std::vector<std::uint64_t>& pp_scratch) {
  // carry[] starts as the per-bit generate planes and is widened in log
  // steps; pp[] tracks the matching group propagate.  After the last step
  // carry[i] spans [0, i], i.e. the exact carry out of bit i with cin 0.
  pp_scratch.resize(static_cast<std::size_t>(n));
  std::uint64_t* pp = pp_scratch.data();
  for (int i = 0; i < n; ++i) {
    carry[i] = g[i];
    pp[i] = p[i];
  }
  for (int d = 1; d < n; d <<= 1) {
    for (int i = n - 1; i >= d; --i) {
      carry[i] |= pp[i] & carry[i - d];
      pp[i] &= pp[i - d];
    }
  }
}

}  // namespace vlcsa::arith
