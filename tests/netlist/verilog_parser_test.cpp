#include "netlist/verilog_parser.hpp"

#include <gtest/gtest.h>

#include "adders/adders.hpp"
#include "netlist/equivalence.hpp"
#include "netlist/opt.hpp"
#include "netlist/verilog.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::netlist {
namespace {

TEST(VerilogParser, ParsesMinimalModule) {
  const std::string text = R"(
module tiny (a, b, y);
  input a;
  input b;
  output y;

  wire n2;
  assign n2 = a & b;
  assign y = n2;
endmodule
)";
  const Netlist nl = parse_verilog(text);
  EXPECT_EQ(nl.name(), "tiny");
  ASSERT_EQ(nl.inputs().size(), 2u);
  ASSERT_EQ(nl.outputs().size(), 1u);
  // "assign y = n2" becomes a buffer whose fanin is the AND gate.
  const Gate& out = nl.gate(nl.outputs()[0].signal);
  ASSERT_EQ(out.kind, GateKind::kBuf);
  EXPECT_EQ(nl.gate(out.fanin[0]).kind, GateKind::kAnd2);
}

TEST(VerilogParser, ParsesVectorsConstantsAndMux) {
  const std::string text = R"(
module m (a, s, y);
  input [1:0] a;
  input s;
  output [1:0] y;
  wire n4;
  wire n5;
  assign n4 = s ? a[1] : a[0];
  assign n5 = ~(a[0] ^ 1'b1);
  assign y[0] = n4;
  assign y[1] = n5;
endmodule
)";
  const Netlist nl = parse_verilog(text);
  ASSERT_EQ(nl.inputs().size(), 3u);  // a[0], a[1], s
  ASSERT_EQ(nl.outputs().size(), 2u);
  EXPECT_TRUE(nl.find_input("a[1]").has_value());
  EXPECT_TRUE(nl.find_output("y[1]").has_value());
}

TEST(VerilogParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_verilog("assign x = 1;"), std::invalid_argument);
  EXPECT_THROW((void)parse_verilog("module m (a);\n  input a;\n  frobnicate;\nendmodule\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_verilog("module m (y);\n  output y;\nendmodule\n"),
               std::invalid_argument);  // output never assigned
  EXPECT_THROW(
      (void)parse_verilog("module m (a, y);\n  input a;\n  output y;\n  assign y = q;\nendmodule\n"),
      std::invalid_argument);  // undefined net
  EXPECT_THROW((void)parse_verilog("module m (a);\n  input a;\n"), std::invalid_argument);
}

struct RoundTripCase {
  std::string name;
  Netlist netlist;
};

class VerilogRoundTripTest : public ::testing::Test {};

/// Emit -> parse -> formally prove the parsed module equals the original.
void check_round_trip(const Netlist& original) {
  const std::string text = to_verilog(original);
  const Netlist parsed = parse_verilog(text);
  EXPECT_EQ(parsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(parsed.outputs().size(), original.outputs().size());
  const auto result = prove_equivalent(parsed, original);
  EXPECT_TRUE(result.equivalent())
      << original.name() << " round-trip differs at " << result.mismatch_output;
}

TEST_F(VerilogRoundTripTest, KoggeStone32) {
  check_round_trip(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 32));
}

TEST_F(VerilogRoundTripTest, CarrySelect24) {
  check_round_trip(adders::build_adder_netlist(adders::AdderKind::kCarrySelect, 24));
}

TEST_F(VerilogRoundTripTest, OptimizedBrentKung16WithCin) {
  adders::AdderOptions opts;
  opts.with_cin = true;
  check_round_trip(optimize(adders::build_adder_netlist(adders::AdderKind::kBrentKung, 16, opts)));
}

TEST_F(VerilogRoundTripTest, Vlcsa2Netlist) {
  check_round_trip(
      spec::build_vlcsa_netlist(spec::ScsaConfig{32, 8}, spec::ScsaVariant::kScsa2));
}

TEST_F(VerilogRoundTripTest, VlsaNetlist) {
  check_round_trip(spec::build_vlsa_netlist(spec::VlsaConfig{24, 6}));
}

TEST(VerilogParser, RoundTripPreservesModuleName) {
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kRipple, 4);
  const auto parsed = parse_verilog(to_verilog(nl));
  EXPECT_EQ(parsed.name(), "ripple_4");
}

}  // namespace
}  // namespace vlcsa::netlist
