#include "adders/prefix.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/testutil.hpp"
#include "netlist/simulator.hpp"

namespace vlcsa::adders {
namespace {

using arith::ApInt;
using netlist::Netlist;
using netlist::Signal;
using netlist::Simulator;

struct PrefixCase {
  PrefixTopology topology;
  int width;
};

class PrefixNetworkTest : public ::testing::TestWithParam<PrefixCase> {};

TEST_P(PrefixNetworkTest, ComputesInclusivePrefixes) {
  const auto [topology, width] = GetParam();
  Netlist nl;
  std::vector<Signal> a, b;
  for (int i = 0; i < width; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < width; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  const auto prefix = build_prefix_network(nl, make_pg_leaves(nl, a, b), topology);
  ASSERT_EQ(prefix.size(), static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    nl.add_output("G[" + std::to_string(i) + "]", prefix[static_cast<std::size_t>(i)].g);
    nl.add_output("P[" + std::to_string(i) + "]", prefix[static_cast<std::size_t>(i)].p);
  }

  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(10 + static_cast<unsigned>(width));
  std::vector<ApInt> av, bv;
  for (int v = 0; v < 64; ++v) {
    av.push_back(ApInt::random(width, rng));
    bv.push_back(ApInt::random(width, rng));
  }
  testutil::load_operands(sim, av, bv, width);
  sim.run();

  for (std::size_t v = 0; v < 64; ++v) {
    const arith::PropagateGenerate pg(av[v], bv[v]);
    for (int i = 0; i < width; ++i) {
      const bool g = (sim.output("G[" + std::to_string(i) + "]") >> v) & 1;
      const bool p = (sim.output("P[" + std::to_string(i) + "]") >> v) & 1;
      ASSERT_EQ(g, pg.group_generate(0, i + 1))
          << to_string(topology) << " width " << width << " bit " << i;
      ASSERT_EQ(p, pg.group_propagate(0, i + 1))
          << to_string(topology) << " width " << width << " bit " << i;
    }
  }
}

std::vector<PrefixCase> prefix_cases() {
  std::vector<PrefixCase> cases;
  for (const auto topo : all_prefix_topologies()) {
    for (const int width : {1, 2, 3, 5, 8, 13, 16, 17, 31, 32, 33, 64}) {
      cases.push_back({topo, width});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologiesAndWidths, PrefixNetworkTest,
                         ::testing::ValuesIn(prefix_cases()),
                         [](const auto& info) {
                           std::string name = to_string(info.param.topology);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_w" + std::to_string(info.param.width);
                         });

TEST(PrefixNetworkDepth, KoggeStoneIsLogDepthBrentKungIsNot) {
  // Structural sanity: count prefix levels by gate-depth proxy (gate count
  // relations).  Kogge-Stone spends more area for its minimal depth.
  auto gates_of = [](PrefixTopology topo) {
    Netlist nl;
    std::vector<Signal> a, b;
    for (int i = 0; i < 64; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
    for (int i = 0; i < 64; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
    const auto prefix = build_prefix_network(nl, make_pg_leaves(nl, a, b), topo);
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      nl.add_output("G" + std::to_string(i), prefix[i].g);
    }
    return nl.logic_gate_count();
  };
  EXPECT_GT(gates_of(PrefixTopology::kKoggeStone), gates_of(PrefixTopology::kBrentKung));
  EXPECT_GT(gates_of(PrefixTopology::kKoggeStone), gates_of(PrefixTopology::kHanCarlson));
}

TEST(PrefixSum, CinIsFoldedIntoBitZero) {
  const int width = 16;
  Netlist nl;
  std::vector<Signal> a, b;
  for (int i = 0; i < width; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < width; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  const Signal cin = nl.add_input("cin");
  const auto result = prefix_sum(nl, a, b, cin, PrefixTopology::kKoggeStone);
  for (int i = 0; i < width; ++i) {
    nl.add_output("sum[" + std::to_string(i) + "]", result.sum[static_cast<std::size_t>(i)]);
  }
  nl.add_output("cout", result.cout);
  testutil::check_adder_netlist(nl, width, /*with_cin=*/true);
}

class ConditionalSumsTest : public ::testing::TestWithParam<int> {};

TEST_P(ConditionalSumsTest, BothBanksAndGroupSignalsAreExact) {
  const int width = GetParam();
  Netlist nl;
  std::vector<Signal> a, b;
  for (int i = 0; i < width; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < width; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  const auto cond = conditional_window_sums(nl, a, b, PrefixTopology::kKoggeStone);
  for (int i = 0; i < width; ++i) {
    nl.add_output("s0[" + std::to_string(i) + "]", cond.sum0[static_cast<std::size_t>(i)]);
    nl.add_output("s1[" + std::to_string(i) + "]", cond.sum1[static_cast<std::size_t>(i)]);
  }
  nl.add_output("c0", cond.cout0);
  nl.add_output("c1", cond.cout1);
  nl.add_output("gg", cond.group_g);
  nl.add_output("gp", cond.group_p);

  Simulator sim(nl);
  vlcsa::arith::BlockRng rng(20 + static_cast<unsigned>(width));
  std::vector<ApInt> av, bv;
  for (int v = 0; v < 64; ++v) {
    av.push_back(ApInt::random(width, rng));
    bv.push_back(ApInt::random(width, rng));
  }
  testutil::load_operands(sim, av, bv, width);
  sim.run();

  for (std::size_t v = 0; v < 64; ++v) {
    const auto r0 = ApInt::add(av[v], bv[v], false);
    const auto r1 = ApInt::add(av[v], bv[v], true);
    ASSERT_EQ(testutil::read_bus(sim, "s0", width, v), r0.sum);
    ASSERT_EQ(testutil::read_bus(sim, "s1", width, v), r1.sum);
    ASSERT_EQ(((sim.output("c0") >> v) & 1) != 0, r0.carry_out);
    ASSERT_EQ(((sim.output("c1") >> v) & 1) != 0, r1.carry_out);
    const arith::PropagateGenerate pg(av[v], bv[v]);
    ASSERT_EQ(((sim.output("gg") >> v) & 1) != 0, pg.group_generate(0, width));
    ASSERT_EQ(((sim.output("gp") >> v) & 1) != 0, pg.group_propagate(0, width));
  }
}

INSTANTIATE_TEST_SUITE_P(WindowWidths, ConditionalSumsTest,
                         ::testing::Values(1, 2, 5, 9, 13, 14, 16, 17, 21));

}  // namespace
}  // namespace vlcsa::adders
