// Plane-kernel layer tests: every available backend (scalar always; AVX2 /
// NEON when the host supports them) must compute bit-identical results to
// the scalar oracle on every kernel, including ragged tails, aliased
// destinations, and the shape-sensitive Kogge-Stone / shifted-and kernels.
// Also covers the dispatch surface: backend naming, availability, and the
// set_backend contract.

#include "arith/planeops.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

namespace vlcsa::arith::planeops {
namespace {

/// Restores whatever backend was active when the test started (so a process
/// pinned via VLCSA_FORCE_BACKEND stays pinned for the tests that follow).
class BackendGuard {
 public:
  BackendGuard() : prev_(active_backend()) {}
  ~BackendGuard() { set_backend(prev_); }

 private:
  Backend prev_;
};

/// Every Backend enum value — keep in sync with planeops.hpp (the exhaustive
/// round-trip test below fails to compile a new value into coverage, but a
/// value missing from this list would silently skip it).
const Backend kAllBackends[] = {Backend::kScalar, Backend::kAvx2, Backend::kAvx512,
                                Backend::kNeon};

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b : kAllBackends) {
    if (backend_available(b)) out.push_back(b);
  }
  return out;
}

PlaneVec random_words(std::mt19937_64& rng, std::size_t m) {
  PlaneVec out(m);
  for (auto& word : out) word = rng();
  return out;
}

const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 13, 64, 257};

TEST(PlaneOpsDispatchTest, ScalarAlwaysAvailableAndNamed) {
  EXPECT_TRUE(backend_available(Backend::kScalar));
  EXPECT_STREQ(to_string(Backend::kScalar), "scalar");
  EXPECT_STREQ(to_string(Backend::kAvx2), "avx2");
  EXPECT_STREQ(to_string(Backend::kAvx512), "avx512");
  EXPECT_STREQ(to_string(Backend::kNeon), "neon");
}

// Exhaustive enum <-> name round trip: every Backend value must parse back
// from its to_string name.  On hosts without the ISA the named switch must be
// *rejected cleanly* — returning false with dispatch untouched — never
// silently mapped to auto/scalar (the env-var path's fallback is a separate,
// deliberately loud behavior).
TEST(PlaneOpsDispatchTest, EveryBackendNameRoundTripsOrIsRejectedCleanly) {
  BackendGuard guard;
  for (const Backend b : kAllBackends) {
    const std::string_view name = to_string(b);
    EXPECT_NE(name, "?") << static_cast<int>(b);
    if (backend_available(b)) {
      ASSERT_TRUE(set_backend(name)) << name;
      EXPECT_EQ(active_backend(), b) << name;
      ASSERT_TRUE(set_backend(b)) << name;
      EXPECT_EQ(active_backend(), b) << name;
    } else {
      ASSERT_TRUE(set_backend(Backend::kScalar));
      EXPECT_FALSE(set_backend(name)) << name << " must be rejected, not mapped to auto";
      EXPECT_EQ(active_backend(), Backend::kScalar) << name;
      EXPECT_FALSE(set_backend(b)) << name;
      EXPECT_EQ(active_backend(), Backend::kScalar) << name;
    }
  }
}

TEST(PlaneOpsDispatchTest, SetBackendRoundTripsAndRejectsUnknown) {
  BackendGuard guard;
  for (const Backend b : available_backends()) {
    ASSERT_TRUE(set_backend(b)) << to_string(b);
    EXPECT_EQ(active_backend(), b);
    ASSERT_TRUE(set_backend(std::string_view(to_string(b)))) << to_string(b);
    EXPECT_EQ(active_backend(), b);
  }
  const Backend before = active_backend();
  EXPECT_FALSE(set_backend("sse9000"));
  EXPECT_EQ(active_backend(), before);  // failed switches leave dispatch alone
  EXPECT_TRUE(set_backend("auto"));
}

TEST(PlaneOpsDispatchTest, UnavailableBackendIsRejected) {
  BackendGuard guard;
  for (const Backend b : {Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (!backend_available(b)) {
      const Backend before = active_backend();
      EXPECT_FALSE(set_backend(b)) << to_string(b);
      EXPECT_EQ(active_backend(), before);
    }
  }
}

class PlaneOpsBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << to_string(GetParam()) << " backend not supported on this host";
    }
    ASSERT_TRUE(set_backend(GetParam()));
  }
  void TearDown() override { set_backend(prev_); }

 private:
  Backend prev_ = active_backend();  // captured before SetUp switches
};

TEST_P(PlaneOpsBackendTest, BulkOpsMatchScalarSemantics) {
  std::mt19937_64 rng(1);
  for (const std::size_t m : kSizes) {
    const PlaneVec x = random_words(rng, m);
    const PlaneVec y = random_words(rng, m);
    const PlaneVec z = random_words(rng, m);
    PlaneVec dst(m, 0);
    bulk_and(x.data(), y.data(), dst.data(), m);
    for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(dst[i], x[i] & y[i]) << "and @" << i;
    bulk_or(x.data(), y.data(), dst.data(), m);
    for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(dst[i], x[i] | y[i]) << "or @" << i;
    bulk_xor(x.data(), y.data(), dst.data(), m);
    for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(dst[i], x[i] ^ y[i]) << "xor @" << i;
    bulk_andnot(x.data(), y.data(), dst.data(), m);
    for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(dst[i], x[i] & ~y[i]) << "andnot @" << i;
    bulk_select(z.data(), x.data(), y.data(), dst.data(), m);
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(dst[i], (z[i] & x[i]) | (~z[i] & y[i])) << "select @" << i;
    }
    PlaneVec g(m, 0), p(m, 0);
    bulk_gp(x.data(), y.data(), g.data(), p.data(), m);
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(g[i], x[i] & y[i]) << "gp/g @" << i;
      ASSERT_EQ(p[i], x[i] ^ y[i]) << "gp/p @" << i;
    }
    // Aliased destination (dst == x) is part of the contract.
    PlaneVec aliased = x;
    bulk_xor(aliased.data(), y.data(), aliased.data(), m);
    for (std::size_t i = 0; i < m; ++i) ASSERT_EQ(aliased[i], x[i] ^ y[i]) << "alias @" << i;
  }
}

TEST_P(PlaneOpsBackendTest, PopcountSumMatchesPerWordPopcount) {
  std::mt19937_64 rng(2);
  for (const std::size_t m : kSizes) {
    const PlaneVec x = random_words(rng, m);
    std::uint64_t expected = 0;
    for (const std::uint64_t word : x) {
      expected += static_cast<std::uint64_t>(std::popcount(word));
    }
    EXPECT_EQ(popcount_sum(x.data(), m), expected) << "m=" << m;
  }
  const PlaneVec ones(9, ~std::uint64_t{0});
  EXPECT_EQ(popcount_sum(ones.data(), ones.size()), 9u * 64u);
}

TEST_P(PlaneOpsBackendTest, KoggeStoneMatchesSequentialCarryChain) {
  std::mt19937_64 rng(3);
  for (const int n : {1, 2, 3, 5, 8, 17, 64, 130}) {
    for (const int lane_words : {1, 2, 3, 4, 8, 16}) {
      const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
      const PlaneVec a = random_words(rng, m);
      const PlaneVec b = random_words(rng, m);
      PlaneVec g(m), p(m), carry(m), pp(m);
      bulk_gp(a.data(), b.data(), g.data(), p.data(), m);
      kogge_stone(g.data(), p.data(), n, lane_words, carry.data(), pp.data());
      // Reference: the sequential carry recurrence per lane word.
      PlaneVec expected(m);
      for (int w = 0; w < lane_words; ++w) {
        std::uint64_t c = 0;
        for (int i = 0; i < n; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(i) * static_cast<std::size_t>(lane_words) +
              static_cast<std::size_t>(w);
          c = g[idx] | (p[idx] & c);
          expected[idx] = c;
        }
      }
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_EQ(carry[i], expected[i]) << "n=" << n << " W=" << lane_words << " @" << i;
      }
    }
  }
}

TEST_P(PlaneOpsBackendTest, ShiftedSelfAndMatchesScalarSweep) {
  std::mt19937_64 rng(4);
  for (const int n : {1, 2, 5, 16, 64, 130}) {
    for (const int lane_words : {1, 2, 4, 8, 16}) {
      for (const int step : {1, 2, 3, n}) {
        if (step > n) continue;
        const std::size_t m =
            static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
        PlaneVec x = random_words(rng, m);
        PlaneVec expected = x;
        const std::size_t off =
            static_cast<std::size_t>(step) * static_cast<std::size_t>(lane_words);
        for (std::size_t i = m; i-- > off;) expected[i] &= expected[i - off];
        for (std::size_t i = 0; i < off; ++i) expected[i] = 0;
        shifted_self_and(x.data(), n, lane_words, step);
        for (std::size_t i = 0; i < m; ++i) {
          ASSERT_EQ(x[i], expected[i])
              << "n=" << n << " W=" << lane_words << " step=" << step << " @" << i;
        }
      }
    }
  }
}

TEST_P(PlaneOpsBackendTest, TransposeMatchesNaiveBitGather) {
  std::mt19937_64 rng(5);
  alignas(kPlaneAlignment) std::uint64_t block[64];
  for (auto& row : block) row = rng();
  std::uint64_t expected[64] = {};
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      expected[c] |= ((block[r] >> c) & 1) << r;
    }
  }
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], expected[i]) << "row " << i;
  // Involution.
  transpose_64x64(block);
  std::mt19937_64 rng2(5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], rng2()) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(Backends, PlaneOpsBackendTest,
                         ::testing::Values(Backend::kScalar, Backend::kAvx2,
                                           Backend::kAvx512, Backend::kNeon),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(PlaneVecTest, StorageIsCacheLineAligned) {
  for (const std::size_t m : {1u, 3u, 64u, 1000u}) {
    const PlaneVec v(m, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kPlaneAlignment, 0u) << m;
  }
}

}  // namespace
}  // namespace vlcsa::arith::planeops
