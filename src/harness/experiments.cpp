#include "harness/experiments.hpp"

#include <cmath>
#include <stdexcept>

#include "harness/engine.hpp"
#include "speculative/error_model.hpp"

namespace vlcsa::harness {

namespace {

const arith::GaussianParams kPaperGaussian{0.0, std::ldexp(1.0, 32)};   // Ch. 7 inputs
const arith::GaussianParams kFig6Gaussian{0.0, std::ldexp(1.0, 20)};    // 32-bit figures

std::string point_name(const std::string& artifact, const std::string& point) {
  return artifact + "/" + point;
}

/// Tables 7.1 / 7.2 — the published (n, k) design points against
/// 2's-complement Gaussian inputs, for each VLCSA variant.
void register_table7_1_and_7_2(std::vector<ErrorRateExperiment>& out) {
  for (const auto& row : spec::published_scsa_parameters()) {
    out.push_back({point_name("table7.1", "n" + std::to_string(row.n)),
                   "VLCSA 1 error rates, 2's-complement Gaussian (mu=0, sigma=2^32)",
                   ModelKind::kVlcsa1, row.n, row.k_rate_01,
                   arith::InputDistribution::kGaussianTwos, kPaperGaussian, 200000});
  }
  for (const auto& row : spec::published_scsa_parameters()) {
    out.push_back({point_name("table7.2", "n" + std::to_string(row.n)),
                   "VLCSA 2 error rates, 2's-complement Gaussian (mu=0, sigma=2^32)",
                   ModelKind::kVlcsa2, row.n, row.k_rate_01,
                   arith::InputDistribution::kGaussianTwos, kPaperGaussian, 200000});
  }
}

/// Table 7.4 — analytical window sizing at both error-rate targets, checked
/// against unsigned uniform inputs.
void register_table7_4(std::vector<ErrorRateExperiment>& out) {
  for (const int n : {64, 128, 256, 512}) {
    for (const auto& [tag, target] :
         {std::pair<const char*, double>{"rate0.01", 1e-4}, {"rate0.25", 2.5e-3}}) {
      out.push_back({point_name("table7.4", "n" + std::to_string(n) + "-" + tag),
                     "VLCSA 1 at the analytically sized window, unsigned uniform inputs",
                     ModelKind::kVlcsa1, n, spec::min_window_for_error_rate(n, target),
                     arith::InputDistribution::kUniformUnsigned, {}, 200000});
    }
  }
}

/// Fig 7.1 — the model-validation grid: widths × window sizes, uniform inputs.
void register_fig7_1(std::vector<ErrorRateExperiment>& out) {
  for (const int n : {64, 128, 256, 512}) {
    for (int k = 6; k <= 16; k += 2) {
      out.push_back({point_name("fig7.1", "n" + std::to_string(n) + "-k" + std::to_string(k)),
                     "SCSA error-model validation point, unsigned uniform inputs",
                     ModelKind::kVlcsa1, n, k, arith::InputDistribution::kUniformUnsigned,
                     {},
                     200000});
    }
  }
}

/// Eq. (5.2) — the average-latency streams behind the headline wall-clock
/// comparison: VLCSA 1 on uniform inputs and VLCSA 2 on Gaussian inputs,
/// both at the 0.25% design points.
void register_eq5_2(std::vector<ErrorRateExperiment>& out) {
  for (const int n : {64, 128, 256, 512}) {
    out.push_back({point_name("eq5.2", "n" + std::to_string(n) + "-uniform"),
                   "VLCSA 1 average latency, unsigned uniform inputs, 0.25% sizing",
                   ModelKind::kVlcsa1, n, spec::min_window_for_error_rate(n, 2.5e-3),
                   arith::InputDistribution::kUniformUnsigned, {}, 100000});
    out.push_back({point_name("eq5.2", "n" + std::to_string(n) + "-gaussian-2c"),
                   "VLCSA 2 average latency, 2's-complement Gaussian inputs, 0.25% sizing",
                   ModelKind::kVlcsa2, n, spec::published_vlcsa2_parameters().k_rate_25,
                   arith::InputDistribution::kGaussianTwos, kPaperGaussian, 100000});
  }
}

/// VLSA baseline points (Table 7.3's published chain lengths).
void register_vlsa_baseline(std::vector<ErrorRateExperiment>& out) {
  for (const int n : {64, 128, 256, 512}) {
    out.push_back({point_name("vlsa", "n" + std::to_string(n)),
                   "VLSA [17] baseline at the published chain length, uniform inputs",
                   ModelKind::kVlsa, n, spec::vlsa_published_chain_length(n),
                   arith::InputDistribution::kUniformUnsigned, {}, 200000});
  }
}

std::vector<ErrorRateExperiment> build_error_rate_registry() {
  std::vector<ErrorRateExperiment> out;
  register_table7_1_and_7_2(out);
  register_table7_4(out);
  register_fig7_1(out);
  register_eq5_2(out);
  register_vlsa_baseline(out);
  return out;
}

std::vector<ChainProfileExperiment> build_chain_profile_registry() {
  std::vector<ChainProfileExperiment> out;
  ChainProfileExperiment base;
  base.width = 32;

  base.name = point_name("fig6.1", "uniform-unsigned");
  base.description = "Carry-chain lengths, unsigned uniform inputs, 32-bit adder";
  base.dist = arith::InputDistribution::kUniformUnsigned;
  out.push_back(base);

  for (const auto kind : {arith::CryptoKind::kRsaLike, arith::CryptoKind::kDiffieHellmanLike,
                          arith::CryptoKind::kEcFieldLike}) {
    ChainProfileExperiment crypto;
    crypto.name = point_name("fig6.2", to_string(kind));
    crypto.description =
        "Carry-chain lengths from an instrumented crypto workload "
        "(16-bit prime field on a 32-bit datapath)";
    crypto.width = 32;
    crypto.workload = ChainProfileExperiment::Workload::kCrypto;
    crypto.crypto_kind = kind;
    crypto.crypto_field_bits = 16;
    crypto.crypto_exponent_bits = 24;
    crypto.default_samples = 4;  // top-level crypto operations, not additions
    out.push_back(crypto);
  }

  base.name = point_name("fig6.3", "uniform-twos-complement");
  base.description = "Carry-chain lengths, 2's-complement uniform inputs, 32-bit adder";
  base.dist = arith::InputDistribution::kUniformTwos;
  out.push_back(base);

  base.name = point_name("fig6.4", "gaussian-unsigned");
  base.description =
      "Carry-chain lengths, unsigned Gaussian inputs (mu=0, sigma=2^20), 32-bit adder";
  base.dist = arith::InputDistribution::kGaussianUnsigned;
  base.params = kFig6Gaussian;
  out.push_back(base);

  base.name = point_name("fig6.5", "gaussian-twos-complement");
  base.description =
      "Carry-chain lengths, 2's-complement Gaussian inputs (mu=0, sigma=2^20), 32-bit adder";
  base.dist = arith::InputDistribution::kGaussianTwos;
  out.push_back(base);
  return out;
}

template <typename Experiment>
const Experiment* find_by_name(const std::vector<Experiment>& experiments,
                               std::string_view name) {
  for (const auto& experiment : experiments) {
    if (experiment.name == name) return &experiment;
  }
  return nullptr;
}

template <typename Experiment>
std::vector<const Experiment*> find_by_prefix(const std::vector<Experiment>& experiments,
                                              std::string_view prefix) {
  std::vector<const Experiment*> out;
  for (const auto& experiment : experiments) {
    if (std::string_view(experiment.name).substr(0, prefix.size()) == prefix) {
      out.push_back(&experiment);
    }
  }
  return out;
}

}  // namespace

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kVlcsa1:
      return "VLCSA 1";
    case ModelKind::kVlcsa2:
      return "VLCSA 2";
    case ModelKind::kVlsa:
      return "VLSA";
  }
  throw std::logic_error("unknown ModelKind");
}

bool parse_model_kind(std::string_view text, ModelKind& out) {
  for (const ModelKind kind : {ModelKind::kVlcsa1, ModelKind::kVlcsa2, ModelKind::kVlsa}) {
    if (text == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

ErrorRateResult run_experiment(const ErrorRateExperiment& experiment, std::uint64_t samples,
                               std::uint64_t seed, int threads, EvalPath path) {
  return run_experiment(experiment, RunOptions{samples, seed, threads, kDefaultShardSize},
                        path);
}

ErrorRateResult run_experiment(const ErrorRateExperiment& experiment,
                               const RunOptions& options, EvalPath path) {
  const auto source = arith::make_source(experiment.dist, experiment.width, experiment.params);
  switch (experiment.model) {
    case ModelKind::kVlcsa1:
      return run_vlcsa({experiment.width, experiment.window, spec::ScsaVariant::kScsa1},
                       *source, options, path);
    case ModelKind::kVlcsa2:
      return run_vlcsa({experiment.width, experiment.window, spec::ScsaVariant::kScsa2},
                       *source, options, path);
    case ModelKind::kVlsa:
      return run_vlsa({experiment.width, experiment.window}, *source, options, path);
  }
  throw std::logic_error("unknown ModelKind");
}

arith::CarryChainProfiler run_experiment(const ChainProfileExperiment& experiment,
                                         std::uint64_t samples, std::uint64_t seed,
                                         int threads) {
  return run_experiment(experiment, RunOptions{samples, seed, threads, kDefaultShardSize});
}

arith::CarryChainProfiler run_experiment(const ChainProfileExperiment& experiment,
                                         const RunOptions& options) {
  const auto make_profiler = [&] {
    return arith::CarryChainProfiler(experiment.width, arith::ChainMetric::kAllChains);
  };
  if (experiment.workload == ChainProfileExperiment::Workload::kCrypto) {
    // One sample = one top-level crypto operation; the shard RNG seeds each
    // operation's workload, so the profile is thread-count-invariant like
    // every other experiment.
    return run_sharded(options, make_profiler, [&] {
      return [&experiment](arith::BlockRng& rng, arith::CarryChainProfiler& acc) {
        arith::CryptoWorkloadConfig config;
        config.width = experiment.width;
        config.field_bits = experiment.crypto_field_bits;
        config.kind = experiment.crypto_kind;
        config.operations = 1;
        config.exponent_bits = experiment.crypto_exponent_bits;
        config.seed = rng();
        run_crypto_workload(config, acc);
      };
    });
  }
  return run_sharded(options, make_profiler, [&] {
    return [shard_source = arith::make_source(experiment.dist, experiment.width,
                                              experiment.params)](
               arith::BlockRng& rng, arith::CarryChainProfiler& acc) {
      const auto [a, b] = shard_source->next(rng);
      acc.record(a, b);
    };
  });
}

const std::vector<ErrorRateExperiment>& error_rate_experiments() {
  static const std::vector<ErrorRateExperiment> registry = build_error_rate_registry();
  return registry;
}

const std::vector<ChainProfileExperiment>& chain_profile_experiments() {
  static const std::vector<ChainProfileExperiment> registry = build_chain_profile_registry();
  return registry;
}

const ErrorRateExperiment* find_error_rate_experiment(std::string_view name) {
  return find_by_name(error_rate_experiments(), name);
}

const ChainProfileExperiment* find_chain_profile_experiment(std::string_view name) {
  return find_by_name(chain_profile_experiments(), name);
}

std::vector<const ErrorRateExperiment*> error_rate_experiments_with_prefix(
    std::string_view prefix) {
  return find_by_prefix(error_rate_experiments(), prefix);
}

std::vector<const ChainProfileExperiment*> chain_profile_experiments_with_prefix(
    std::string_view prefix) {
  return find_by_prefix(chain_profile_experiments(), prefix);
}

}  // namespace vlcsa::harness
