// Tests for the fleet-mode primitives (service/fleet.hpp): the advisory
// directory lock, the cross-process compute lease with staleness takeover,
// the graceful-drain registry, the retry backoff schedule, and the
// VLCSA_FAULT injection hook the fleet scenarios are built on.

#include "service/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace vlcsa::service::fleet {
namespace {

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_fleet_test_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void backdate(const std::string& path, int seconds) {
  const auto stamp = std::filesystem::last_write_time(path);
  std::filesystem::last_write_time(path, stamp - std::chrono::seconds(seconds));
}

TEST(DirLock, AcquireCreatesFileAndReleaseKeepsIt) {
  const std::string dir = temp_dir("dirlock");
  const std::string lock_path = dir + "/.vlcsa.lock";
  DirLock lock;
  EXPECT_FALSE(lock.held());
  ASSERT_TRUE(lock.acquire(lock_path));
  EXPECT_TRUE(lock.held());
  EXPECT_TRUE(std::filesystem::exists(lock_path));
  lock.release();
  EXPECT_FALSE(lock.held());
  // The lock file is shared state between replicas, never deleted.
  EXPECT_TRUE(std::filesystem::exists(lock_path));
}

TEST(DirLock, UnwritableDirectoryDegradesToUnlocked) {
  DirLock lock;
  EXPECT_FALSE(lock.acquire("/nonexistent-vlcsa/dir/.lock"));
  EXPECT_FALSE(lock.held());
}

TEST(ComputeLease, AcquireBusyRelease) {
  const std::string dir = temp_dir("lease");
  const std::string lease_path = dir + "/key.json.lease";

  ComputeLease first;
  EXPECT_EQ(first.try_acquire(lease_path, /*stale_ms=*/30000), ComputeLease::State::kAcquired);
  EXPECT_FALSE(first.took_over());
  EXPECT_TRUE(std::filesystem::exists(lease_path));
  EXPECT_GE(lease_age_ms(lease_path), 0);

  // A second contender sees a fresh lease: busy, and nothing is disturbed.
  ComputeLease second;
  EXPECT_EQ(second.try_acquire(lease_path, /*stale_ms=*/30000), ComputeLease::State::kBusy);
  EXPECT_TRUE(std::filesystem::exists(lease_path));

  first.release();
  EXPECT_FALSE(std::filesystem::exists(lease_path));
  EXPECT_EQ(lease_age_ms(lease_path), -1);

  // Released: the second contender can now acquire.
  EXPECT_EQ(second.try_acquire(lease_path, /*stale_ms=*/30000), ComputeLease::State::kAcquired);
}

TEST(ComputeLease, StaleLeaseIsTakenOver) {
  const std::string dir = temp_dir("stale");
  const std::string lease_path = dir + "/key.json.lease";
  {
    std::ofstream out(lease_path);
    out << "99999\n";  // a crashed holder's pid
  }
  backdate(lease_path, 60);

  ComputeLease lease;
  EXPECT_EQ(lease.try_acquire(lease_path, /*stale_ms=*/1000), ComputeLease::State::kAcquired);
  EXPECT_TRUE(lease.took_over());
}

TEST(ComputeLease, ZeroStaleMsNeverTakesOver) {
  const std::string dir = temp_dir("nostale");
  const std::string lease_path = dir + "/key.json.lease";
  {
    std::ofstream out(lease_path);
    out << "99999\n";
  }
  backdate(lease_path, 3600);

  ComputeLease lease;
  EXPECT_EQ(lease.try_acquire(lease_path, /*stale_ms=*/0), ComputeLease::State::kBusy);
  EXPECT_FALSE(lease.took_over());
  EXPECT_TRUE(std::filesystem::exists(lease_path));
}

TEST(ComputeLease, DestructionReleases) {
  const std::string dir = temp_dir("raii");
  const std::string lease_path = dir + "/key.json.lease";
  {
    ComputeLease lease;
    ASSERT_EQ(lease.try_acquire(lease_path, 30000), ComputeLease::State::kAcquired);
  }
  EXPECT_FALSE(std::filesystem::exists(lease_path));
}

TEST(ComputeLease, MoveTransfersOwnership) {
  const std::string dir = temp_dir("move");
  const std::string lease_path = dir + "/key.json.lease";
  ComputeLease source;
  ASSERT_EQ(source.try_acquire(lease_path, 30000), ComputeLease::State::kAcquired);
  {
    const ComputeLease sink = std::move(source);
    EXPECT_EQ(sink.state(), ComputeLease::State::kAcquired);
    EXPECT_EQ(source.state(), ComputeLease::State::kDisabled);
    EXPECT_TRUE(std::filesystem::exists(lease_path));
  }
  EXPECT_FALSE(std::filesystem::exists(lease_path));
}

TEST(WaitForLeaseRelease, SeesReleaseStalenessAndCancellation) {
  const std::string dir = temp_dir("wait");
  const std::string lease_path = dir + "/key.json.lease";

  // Absent lease: released immediately.
  EXPECT_EQ(wait_for_lease_release(lease_path, 30000, nullptr), LeaseWaitResult::kReleased);

  // A lease older than the bound reports stale.
  {
    std::ofstream out(lease_path);
    out << "1\n";
  }
  backdate(lease_path, 60);
  EXPECT_EQ(wait_for_lease_release(lease_path, 1000, nullptr), LeaseWaitResult::kStale);

  // A fresh lease parks the waiter until its own cancel token flips.
  std::filesystem::remove(lease_path);
  {
    std::ofstream out(lease_path);
    out << "1\n";
  }
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true);
  });
  EXPECT_EQ(wait_for_lease_release(lease_path, 0, &cancel), LeaseWaitResult::kCancelled);
  canceller.join();

  // ... and until the holder releases.
  cancel.store(false);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::filesystem::remove(lease_path);
  });
  EXPECT_EQ(wait_for_lease_release(lease_path, 0, &cancel), LeaseWaitResult::kReleased);
  releaser.join();
}

TEST(DrainState, RegistersAndCancelsActiveRuns) {
  DrainState drain;
  EXPECT_FALSE(drain.draining());
  EXPECT_EQ(drain.active_runs(), 0u);

  std::atomic<bool> a{false};
  std::atomic<bool> b{false};
  {
    const DrainState::RunScope scope_a(drain, &a);
    EXPECT_EQ(drain.active_runs(), 1u);
    {
      const DrainState::RunScope scope_b(drain, &b);
      EXPECT_EQ(drain.active_runs(), 2u);
      drain.begin();
      drain.begin();  // idempotent
      EXPECT_TRUE(drain.draining());
      drain.cancel_active_runs();
      EXPECT_TRUE(a.load());
      EXPECT_TRUE(b.load());
    }
    EXPECT_EQ(drain.active_runs(), 1u);
  }
  EXPECT_EQ(drain.active_runs(), 0u);
  drain.cancel_active_runs();  // empty registry: no-op, no dangling tokens
}

TEST(BackoffSchedule, DeterministicSeedGivesBoundedDoublingDelays) {
  RetryPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 1000;
  policy.jitter_seed = 7;

  BackoffSchedule a(policy);
  BackoffSchedule b(policy);
  int previous_cap = 0;
  for (int retry = 1; retry <= 8; ++retry) {
    const int delay = a.next_delay_ms();
    EXPECT_EQ(delay, b.next_delay_ms());  // same seed, same schedule
    // Exponential envelope: base*2^(retry-1) capped at max, jittered into
    // [0.5, 1.0] of that.
    const int cap = static_cast<int>(
        std::min<long long>(1000, 100LL << (retry - 1)));
    EXPECT_GE(delay, cap / 2) << "retry " << retry;
    EXPECT_LE(delay, cap) << "retry " << retry;
    EXPECT_GE(cap, previous_cap);
    previous_cap = cap;
  }
}

TEST(BackoffSchedule, DegenerateBoundsAreClamped) {
  RetryPolicy policy;
  policy.base_ms = 0;   // clamped to 1
  policy.max_ms = -5;   // clamped up to base
  policy.jitter_seed = 1;
  BackoffSchedule schedule(policy);
  for (int i = 0; i < 4; ++i) {
    const int delay = schedule.next_delay_ms();
    EXPECT_GE(delay, 1);
    EXPECT_LE(delay, 1);
  }
}

TEST(FaultSpec, ParsesSitesAndParameters) {
  fault::configure_for_test("crash-before-rename,slow-write=250");
  EXPECT_TRUE(fault::enabled("crash-before-rename"));
  EXPECT_TRUE(fault::enabled("slow-write"));
  EXPECT_FALSE(fault::enabled("torn-read"));
  EXPECT_EQ(fault::param_ms("slow-write", 1000), 250);
  EXPECT_EQ(fault::param_ms("crash-before-rename", 1000), 1000);  // no =ms given

  std::string record = "0123456789";
  fault::maybe_tear("torn-read", record);
  EXPECT_EQ(record, "0123456789");  // site off: untouched

  fault::configure_for_test("torn-read");
  fault::maybe_tear("torn-read", record);
  EXPECT_EQ(record, "01234");  // truncated to half

  fault::configure_for_test("");
  EXPECT_FALSE(fault::enabled("crash-before-rename"));
  EXPECT_FALSE(fault::enabled("slow-write"));
}

}  // namespace
}  // namespace vlcsa::service::fleet
