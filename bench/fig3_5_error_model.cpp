// Fig 3.5 — predicted SCSA error rates from the analytical model (eq. 3.13)
// for adder widths 64..512 and window sizes 4..18.  Pure model evaluation;
// no sampling.

#include <iostream>

#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figure 3.5",
                        "Predicted SCSA error rates (eq. 3.13) vs window size for "
                        "n = 64/128/256/512, unsigned uniform inputs.");

  harness::Table table({"window size k", "n=64", "n=128", "n=256", "n=512"});
  for (int k = 4; k <= 18; ++k) {
    table.add_row({std::to_string(k),
                   harness::fmt_sci(spec::scsa_error_rate(64, k)),
                   harness::fmt_sci(spec::scsa_error_rate(128, k)),
                   harness::fmt_sci(spec::scsa_error_rate(256, k)),
                   harness::fmt_sci(spec::scsa_error_rate(512, k))});
  }
  table.print(std::cout);

  std::cout << "\nPaper's worked example: n = 256, k = 16 -> P_err ~ "
            << harness::fmt_pct(spec::scsa_error_rate(256, 16)) << " (paper: ~0.01%)\n";
  return 0;
}
