#include "speculative/scsa.hpp"

#include <stdexcept>

namespace vlcsa::spec {

const char* to_string(ScsaVariant variant) {
  switch (variant) {
    case ScsaVariant::kScsa1: return "scsa1";
    case ScsaVariant::kScsa2: return "scsa2";
  }
  return "?";
}

ScsaModel::ScsaModel(ScsaConfig config)
    : config_(config), layout_(config.width, config.window) {}

ScsaEvaluation ScsaModel::evaluate(const ApInt& a, const ApInt& b) const {
  if (a.width() != config_.width || b.width() != config_.width) {
    throw std::invalid_argument("ScsaModel: operand width mismatch");
  }
  const int m = layout_.count();

  ScsaEvaluation ev;
  ev.spec0 = ApInt(config_.width);
  ev.spec1 = ApInt(config_.width);
  ev.recovered = ApInt(config_.width);
  ev.window_g.resize(static_cast<std::size_t>(m));
  ev.window_p.resize(static_cast<std::size_t>(m));

  const auto exact = ApInt::add(a, b);
  ev.exact = exact.sum;
  ev.exact_cout = exact.carry_out;

  // Per-window conditional sums and group signals, in machine words.
  std::vector<std::uint64_t> sum0(static_cast<std::size_t>(m));
  std::vector<std::uint64_t> sum1(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::uint64_t aw = a.extract(pos, size);
    const std::uint64_t bw = b.extract(pos, size);
    const std::uint64_t mask =
        size >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << size) - 1);
    const std::uint64_t raw = aw + bw;  // size <= 63: no machine overflow
    sum0[static_cast<std::size_t>(i)] = raw & mask;
    sum1[static_cast<std::size_t>(i)] = (raw + 1) & mask;
    ev.window_g[static_cast<std::size_t>(i)] = ((raw >> size) & 1) != 0;
    ev.window_p[static_cast<std::size_t>(i)] = (aw ^ bw) == mask;
  }

  // Speculative carries: S*,0 uses the previous window's group generate;
  // S*,1 uses the previous window's carry-out-assuming-carry-in-1 (G | P).
  // Exception (deviation from the thesis's literal equations, see
  // DESIGN.md): window 0's carry-in is the known constant 0, so its
  // carry-out G0 is *exact* — window 1's S*,1 select uses it directly
  // instead of G0 | P0.  Without this, a small remainder-sized first window
  // (e.g. 2 bits at n = 512, k = 17) makes P(window-0 propagates) large and
  // VLCSA 2 stalls on ~ERR0/4 of all inputs instead of ~0.01%.
  // Exact recovery threads the true window carries (Fig 5.2's prefix adder).
  bool carry0 = false, carry1 = false, carry_exact = false;
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::size_t w = static_cast<std::size_t>(i);
    ev.spec0.deposit(pos, size, carry0 ? sum1[w] : sum0[w]);
    ev.spec1.deposit(pos, size, carry1 ? sum1[w] : sum0[w]);
    ev.recovered.deposit(pos, size, carry_exact ? sum1[w] : sum0[w]);
    const bool g = ev.window_g[w];
    const bool p = ev.window_p[w];
    ev.spec0_cout = g || (p && carry0);
    ev.spec1_cout = g || (p && carry1);
    ev.recovered_cout = g || (p && carry_exact);
    carry0 = g;
    carry1 = (i == 0) ? g : (g || p);
    carry_exact = g || (p && carry_exact);
  }

  // Detection (Figs 5.1 and 6.7).  ERR1 starts at window pair (1, 2): the
  // i = 0 term is unnecessary once window 1's S*,1 select is exact.
  for (int i = 0; i + 1 < m; ++i) {
    const std::size_t w = static_cast<std::size_t>(i);
    ev.err0 = ev.err0 || (ev.window_g[w] && ev.window_p[w + 1]);
    if (i >= 1) ev.err1 = ev.err1 || (ev.window_p[w] && !ev.window_p[w + 1]);
  }
  return ev;
}

}  // namespace vlcsa::spec
