#pragma once
// Gate vocabulary of the netlist IR.
//
// The cell set mirrors the paper's implementation sketches: everything is
// built from 2-input logic, inverters and 2:1 muxes (the error-detection
// blocks of Figs 5.1/6.7 are explicitly "2-input AND and OR gates"; the
// carry-select structures are muxes).  Wider operators are composed as
// balanced trees by the builder helpers.

#include <cstdint>

namespace vlcsa::netlist {

enum class GateKind : std::uint8_t {
  kConst0,  // constant 0, no fanin
  kConst1,  // constant 1, no fanin
  kInput,   // primary input, no fanin
  kBuf,     // x
  kNot,     // !x
  kAnd2,    // x & y
  kOr2,     // x | y
  kNand2,   // !(x & y)
  kNor2,    // !(x | y)
  kXor2,    // x ^ y
  kXnor2,   // !(x ^ y)
  kMux2,    // fanin[0] ? fanin[2] : fanin[1]   (sel, d0, d1)
};

/// Number of fanin pins for a gate kind.
[[nodiscard]] constexpr int fanin_count(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kInput:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kXor2:
    case GateKind::kXnor2:
      return 2;
    case GateKind::kMux2:
      return 3;
  }
  return 0;
}

/// True for the two-input gates whose function is symmetric in the inputs
/// (used by structural hashing to canonicalize fanin order).
[[nodiscard]] constexpr bool is_commutative(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kXor2:
    case GateKind::kXnor2:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] const char* to_string(GateKind kind);

/// Total number of gate kinds (for per-kind histograms).
inline constexpr int kNumGateKinds = 12;

}  // namespace vlcsa::netlist
