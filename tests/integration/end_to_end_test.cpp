// Cross-module integration tests: each one walks a full pipeline the way the
// bench binaries and examples do, at reduced scale.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "adders/adders.hpp"
#include "arith/workload.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/verilog.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa {
namespace {

TEST(EndToEnd, Fig71PipelineModelVsMonteCarlo) {
  // Analytical model vs simulated nominal rate across a small (n, k) grid —
  // the Fig 7.1 pipeline at reduced sample count.
  for (const int n : {64, 128}) {
    for (const int k : {6, 8, 10}) {
      auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
      const auto result = harness::run_vlcsa(
          spec::VlcsaConfig{n, k, spec::ScsaVariant::kScsa1}, *source, 100000, 5);
      const double model = spec::scsa_exact_error_rate(n, k);
      const double sigma = std::sqrt(model * (1 - model) / 100000.0);
      EXPECT_NEAR(result.nominal_rate(), model, 5 * sigma + 2e-4)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(EndToEnd, Table74PipelineSizesThenValidates) {
  // Size windows analytically, then confirm by simulation that the achieved
  // rate is near the target (the Table 7.4 pipeline).
  const double target = 2.5e-3;
  const int n = 128;
  const int k = spec::min_window_for_error_rate(n, target);
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
  const auto result =
      harness::run_vlcsa(spec::VlcsaConfig{n, k, spec::ScsaVariant::kScsa1}, *source,
                         200000, 9);
  EXPECT_LT(result.nominal_rate(), 2.0 * target);
}

TEST(EndToEnd, SynthesisComparisonPipeline) {
  // The Fig 7.8-style flow: build VLCSA 1 and the DesignWare substitute at
  // one width, synthesize both, compare "correctly speculated" delay.
  const int n = 64;
  const int k = spec::min_window_for_error_rate(n, 1e-4);
  const auto vlcsa = harness::synthesize(
      spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
  const auto dw = harness::synthesize(adders::build_designware_adder(n));
  const double correctly_spec =
      std::max(vlcsa.delay_of(spec::kGroupSpec), vlcsa.delay_of(spec::kGroupDetect));
  EXPECT_LT(correctly_spec, dw.delay);
}

TEST(EndToEnd, CryptoWorkloadShowsBimodalChainsAndVlcsa2Wins) {
  // Fig 6.2 + Table 7.2 story: the crypto workload exhibits long chains;
  // VLCSA 2 stalls less than VLCSA 1 on the same operand stream.
  arith::CarryChainProfiler profiler(64, arith::ChainMetric::kAllChains);
  arith::CryptoWorkloadConfig config;
  config.width = 64;
  config.field_bits = 16;  // 16-bit residues on a 64-bit datapath
  config.kind = arith::CryptoKind::kEcFieldLike;
  config.operations = 8;
  run_crypto_workload(config, profiler);
  EXPECT_GT(profiler.fraction_at_least(40), 0.0005);  // long chains present

  // Replay the same mechanism through the VLCSA models via a Gaussian proxy.
  auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                                   arith::GaussianParams{0.0, std::ldexp(1.0, 32)});
  const auto v1 = harness::run_vlcsa(spec::VlcsaConfig{64, 14, spec::ScsaVariant::kScsa1},
                                     *source, 20000, 3);
  auto source2 = arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                                    arith::GaussianParams{0.0, std::ldexp(1.0, 32)});
  const auto v2 = harness::run_vlcsa(spec::VlcsaConfig{64, 14, spec::ScsaVariant::kScsa2},
                                     *source2, 20000, 3);
  EXPECT_LT(v2.nominal_rate(), 0.1 * v1.nominal_rate());
}

TEST(EndToEnd, VerilogEmissionOfEveryGeneratedStructure) {
  // The paper's deliverable: generator -> Verilog.  Smoke-check module
  // structure for one instance of each generator family.
  const auto check = [](const netlist::Netlist& nl) {
    const std::string v = netlist::to_verilog(nl);
    EXPECT_NE(v.find("module "), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input [63:0] a;"), std::string::npos);
  };
  check(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 64));
  check(spec::build_scsa_netlist(spec::ScsaConfig{64, 14}, spec::ScsaVariant::kScsa1));
  check(spec::build_vlcsa_netlist(spec::ScsaConfig{64, 14}, spec::ScsaVariant::kScsa2));
  check(spec::build_vlsa_netlist(spec::VlsaConfig{64, 17}));
  check(adders::build_designware_adder(64));
}

TEST(EndToEnd, ReportTableRendersBenchRow) {
  harness::Table table({"n", "k", "P_err (model)", "P_err (sim)"});
  table.add_row({"64", "14", harness::fmt_pct(spec::scsa_error_rate(64, 14)),
                 harness::fmt_pct(1.2e-4)});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("0.01%"), std::string::npos);
}

}  // namespace
}  // namespace vlcsa
