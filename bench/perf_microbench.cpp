// Google-benchmark microbenches for the library's hot paths: big-integer
// addition, behavioral SCSA/VLSA evaluation, bit-sliced netlist simulation,
// the optimizer, and static timing — the costs that bound every Monte Carlo
// and synthesis experiment above.

#include <benchmark/benchmark.h>

#include <random>

#include "adders/adders.hpp"
#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "arith/distributions.hpp"
#include "harness/montecarlo.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/timing.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlsa.hpp"

namespace {

using namespace vlcsa;
using arith::ApInt;

void BM_ApIntAdd(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApInt::add(a, b));
  }
}
BENCHMARK(BM_ApIntAdd)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_ScsaEvaluate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::ScsaModel model(
      spec::ScsaConfig{width, spec::min_window_for_error_rate(width, 1e-4)});
  std::mt19937_64 rng(2);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScsaEvaluate)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The bit-sliced counterpart: one pass evaluates 64 samples, so items/sec is
// directly comparable with BM_ScsaEvaluate.
void BM_ScsaEvaluateBatch64(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::ScsaModel model(
      spec::ScsaConfig{width, spec::min_window_for_error_rate(width, 1e-4)});
  std::mt19937_64 rng(2);
  arith::BitSlicedBatch batch(width);
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  source->fill_batch(rng, batch);
  spec::ScsaBatchEvaluation ev;
  for (auto _ : state) {
    model.evaluate_batch(batch, ev);
    benchmark::DoNotOptimize(ev.spec0_wrong);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ScsaEvaluateBatch64)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_VlsaEvaluate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::VlsaModel model(
      spec::VlsaConfig{width, spec::vlsa_published_chain_length(width)});
  std::mt19937_64 rng(3);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlsaEvaluate)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_VlsaEvaluateBatch64(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::VlsaModel model(
      spec::VlsaConfig{width, spec::vlsa_published_chain_length(width)});
  std::mt19937_64 rng(3);
  arith::BitSlicedBatch batch(width);
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  source->fill_batch(rng, batch);
  spec::VlsaBatchEvaluation ev;
  for (auto _ : state) {
    model.evaluate_batch(batch, ev);
    benchmark::DoNotOptimize(ev.spec_wrong);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VlsaEvaluateBatch64)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_NetlistSimulate64Vectors(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl =
      netlist::optimize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width));
  netlist::Simulator sim(nl);
  std::mt19937_64 rng(4);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, rng());
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.value(nl.outputs().back().signal));
  }
  state.SetItemsProcessed(state.iterations() * 64);  // vectors per pass
}
BENCHMARK(BM_NetlistSimulate64Vectors)->Arg(64)->Arg(256);

void BM_OptimizeKoggeStone(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::optimize(nl));
  }
}
BENCHMARK(BM_OptimizeKoggeStone)->Arg(64)->Arg(256);

void BM_StaticTiming(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl =
      netlist::optimize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width));
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::analyze_timing(nl));
  }
}
BENCHMARK(BM_StaticTiming)->Arg(64)->Arg(256);

// The acceptance benchmark for the batch pipeline: the full error-rate
// sampling loop (operand generation + model + counters) per EvalPath.
// items/sec between the Scalar and Batched variants is the end-to-end
// speedup; the target is >= 5x (ISSUE 2 / ROADMAP batching item).
template <harness::EvalPath kPath>
void BM_ErrorRateSamples(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  constexpr std::uint64_t kSamples = 1 << 13;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, kSamples, seed++, 1, kPath));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_ErrorRateSamples<harness::EvalPath::kScalar>)
    ->Name("BM_ErrorRateSamplesScalar")->Arg(64)->Arg(512);
BENCHMARK(BM_ErrorRateSamples<harness::EvalPath::kBatched>)
    ->Name("BM_ErrorRateSamplesBatched")->Arg(64)->Arg(512);

// Same comparison on the Ch. 7 workload (Gaussian two's-complement
// operands), where sample generation is the larger share of the cost.
template <harness::EvalPath kPath>
void BM_ErrorRateSamplesGauss(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, width);
  const spec::VlcsaConfig config{width, 13, spec::ScsaVariant::kScsa2};
  constexpr std::uint64_t kSamples = 1 << 13;
  std::uint64_t seed = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, kSamples, seed++, 1, kPath));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_ErrorRateSamplesGauss<harness::EvalPath::kScalar>)
    ->Name("BM_ErrorRateSamplesGaussScalar")->Arg(64)->Arg(512);
BENCHMARK(BM_ErrorRateSamplesGauss<harness::EvalPath::kBatched>)
    ->Name("BM_ErrorRateSamplesGaussBatched")->Arg(64)->Arg(512);

void BM_MonteCarloVlcsa(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, 1000, seed++, 1));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloVlcsa)->Arg(64)->Arg(512);

// The sharded engine end to end: 64k samples per iteration, thread count as
// the sweep axis — wall-clock should drop near-linearly while the merged
// result stays bit-identical (tests/harness/engine_test.cpp enforces that).
void BM_MonteCarloVlcsaParallel(benchmark::State& state) {
  const int width = 64;
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  const int threads = static_cast<int>(state.range(0));
  constexpr std::uint64_t kSamples = 1 << 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, kSamples, 7, threads));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_MonteCarloVlcsaParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
