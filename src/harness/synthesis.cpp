#include "harness/synthesis.hpp"

namespace vlcsa::harness {

SynthesisResult synthesize(const netlist::Netlist& nl, bool run_optimizer,
                           const netlist::CellLibrary& lib) {
  const netlist::Netlist optimized = run_optimizer ? netlist::optimize(nl) : netlist::prune(nl);
  const auto timing = netlist::analyze_timing(optimized, lib);
  const auto area = netlist::analyze_area(optimized, lib);

  SynthesisResult out;
  out.name = nl.name();
  out.delay = timing.critical_delay;
  out.area = area.total;
  out.group_delay = timing.group_delay;
  out.gates = optimized.logic_gate_count();
  out.max_input_fanout = optimized.max_input_fanout();
  return out;
}

}  // namespace vlcsa::harness
