// Table 7.4 — SCSA/VLCSA 1 window sizes for target error rates 0.01% and
// 0.25% (unsigned uniform inputs), from the analytical sizing rule, each
// validated by Monte Carlo via the registry's "table7.4/" experiments on
// the parallel sharded engine.

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiments.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 200000);
  harness::print_banner(std::cout, "Table 7.4",
                        "SCSA window sizes for error rates 0.01% / 0.25% (analytical "
                        "sizing + Monte Carlo check, " + std::to_string(args.samples) +
                            " samples per cell).");

  harness::Table table({"adder width", "k @ 0.01%", "model", "simulated", "k @ 0.25%",
                        "model", "simulated"});
  for (const int n : {64, 128, 256, 512}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const char* tag : {"rate0.01", "rate0.25"}) {
      const auto* experiment = harness::find_error_rate_experiment(
          "table7.4/n" + std::to_string(n) + "-" + tag);
      if (experiment == nullptr) {
        std::cerr << "table7.4/n" << n << "-" << tag << " missing from the registry\n";
        return 1;
      }
      const auto result =
          harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
      row.push_back(std::to_string(experiment->window));
      row.push_back(harness::fmt_pct(spec::scsa_error_rate(n, experiment->window)));
      row.push_back(harness::fmt_pct(result.nominal_rate()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nPaper values: k = 14/15/16/17 (0.01%) and 10/11/12/13 (0.25%); the\n"
               "sizing rule reproduces all eight (see DESIGN.md on the paper's display\n"
               "rounding).\n";
  return 0;
}
