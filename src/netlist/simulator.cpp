#include "netlist/simulator.hpp"

#include <stdexcept>

namespace vlcsa::netlist {

Simulator::Simulator(const Netlist& nl) : nl_(nl), values_(nl.num_gates(), 0) {}

void Simulator::set_input(std::size_t input_index, std::uint64_t word) {
  values_.at(nl_.inputs().at(input_index).signal.id) = word;
}

void Simulator::set_input(const std::string& name, std::uint64_t word) {
  const auto s = nl_.find_input(name);
  if (!s) throw std::invalid_argument("Simulator: no input named " + name);
  values_[s->id] = word;
}

void Simulator::run() {
  const auto& gates = nl_.gates();
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    auto in = [&](int pin) { return values_[g.fanin[static_cast<std::size_t>(pin)].id]; };
    switch (g.kind) {
      case GateKind::kConst0: values_[i] = 0; break;
      case GateKind::kConst1: values_[i] = ~std::uint64_t{0}; break;
      case GateKind::kInput: break;  // set externally
      case GateKind::kBuf: values_[i] = in(0); break;
      case GateKind::kNot: values_[i] = ~in(0); break;
      case GateKind::kAnd2: values_[i] = in(0) & in(1); break;
      case GateKind::kOr2: values_[i] = in(0) | in(1); break;
      case GateKind::kNand2: values_[i] = ~(in(0) & in(1)); break;
      case GateKind::kNor2: values_[i] = ~(in(0) | in(1)); break;
      case GateKind::kXor2: values_[i] = in(0) ^ in(1); break;
      case GateKind::kXnor2: values_[i] = ~(in(0) ^ in(1)); break;
      case GateKind::kMux2: values_[i] = (in(0) & in(2)) | (~in(0) & in(1)); break;
    }
  }
}

std::uint64_t Simulator::output(const std::string& name) const {
  const auto s = nl_.find_output(name);
  if (!s) throw std::invalid_argument("Simulator: no output named " + name);
  return values_[s->id];
}

}  // namespace vlcsa::netlist
