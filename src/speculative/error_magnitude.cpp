#include "speculative/error_magnitude.hpp"

#include <algorithm>
#include <cmath>

namespace vlcsa::spec {

namespace {

/// |exact - spec| over the unsigned n-bit interpretation.
ApInt absolute_difference(const ApInt& exact, const ApInt& spec) {
  return exact.compare_unsigned(spec) >= 0 ? exact - spec : spec - exact;
}

/// Unsigned value as a double (fine for ratio purposes up to ~2^1024).
double to_double_unsigned(const ApInt& v) {
  double acc = 0.0;
  for (int i = 0; i < v.num_limbs(); ++i) {
    acc += std::ldexp(static_cast<double>(v.limb(i)), 64 * i);
  }
  return acc;
}

}  // namespace

ErrorMagnitudeStats measure_error_magnitude(const ScsaConfig& config,
                                            arith::OperandSource& source,
                                            std::uint64_t samples, std::uint64_t seed) {
  const ScsaModel model(config);
  arith::BlockRng rng = arith::make_stream_rng(seed);
  ErrorMagnitudeStats stats;
  stats.samples = samples;
  double sum_relative = 0.0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto [a, b] = source.next(rng);
    const auto ev = model.evaluate(a, b);
    if (ev.spec0_correct()) continue;
    ++stats.errors;
    const ApInt diff = absolute_difference(ev.exact, ev.spec0);
    const int log2_mag = std::max(diff.highest_set_bit(), 0);
    stats.magnitude_log2[static_cast<std::size_t>(std::min(log2_mag, 63))] += 1;
    const double exact_value = to_double_unsigned(ev.exact);
    const double relative =
        exact_value == 0.0 ? 1.0 : to_double_unsigned(diff) / exact_value;
    sum_relative += relative;
    stats.max_relative_error = std::max(stats.max_relative_error, relative);
  }
  if (stats.errors > 0) {
    stats.mean_relative_error = sum_relative / static_cast<double>(stats.errors);
  }
  return stats;
}

}  // namespace vlcsa::spec
