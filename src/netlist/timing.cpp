#include "netlist/timing.hpp"

#include <algorithm>

namespace vlcsa::netlist {

TimingReport analyze_timing(const Netlist& nl, const CellLibrary& lib) {
  TimingReport report;
  const auto fanout = nl.fanout_counts();
  report.arrival.assign(nl.num_gates(), 0.0);

  // Records, for critical-path extraction, which fanin determined the arrival.
  std::vector<Signal> worst_fanin(nl.num_gates(), Signal{});

  const auto& gates = nl.gates();
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind) {
      case GateKind::kConst0:
      case GateKind::kConst1:
        report.arrival[i] = 0.0;
        break;
      case GateKind::kInput:
        // Primary inputs arrive behind a driver buffer, so PI fanout costs
        // time (with the same buffer-chain relief as internal nets).
        report.arrival[i] = lib.delay(GateKind::kBuf, static_cast<double>(fanout[i]));
        break;
      default: {
        double worst = 0.0;
        Signal worst_sig{};
        const int pins = fanin_count(g.kind);
        for (int pin = 0; pin < pins; ++pin) {
          const Signal s = g.fanin[static_cast<std::size_t>(pin)];
          if (report.arrival[s.id] >= worst) {
            worst = report.arrival[s.id];
            worst_sig = s;
          }
        }
        report.arrival[i] = worst + lib.delay(g.kind, static_cast<double>(fanout[i]));
        worst_fanin[i] = worst_sig;
        break;
      }
    }
  }

  Signal critical_endpoint{};
  for (const auto& port : nl.outputs()) {
    const double t = report.arrival[port.signal.id];
    auto [it, inserted] = report.group_delay.try_emplace(port.group, t);
    if (!inserted) it->second = std::max(it->second, t);
    if (t >= report.critical_delay) {
      report.critical_delay = t;
      critical_endpoint = port.signal;
    }
  }

  if (critical_endpoint.valid()) {
    std::vector<Signal> path;
    for (Signal s = critical_endpoint; s.valid(); s = worst_fanin[s.id]) path.push_back(s);
    report.critical_path.assign(path.rbegin(), path.rend());
  }
  return report;
}

AreaReport analyze_area(const Netlist& nl, const CellLibrary& lib) {
  AreaReport report;
  report.kind_counts = nl.kind_histogram();
  for (const auto& g : nl.gates()) {
    report.total += lib.area(g.kind);
    switch (g.kind) {
      case GateKind::kConst0:
      case GateKind::kConst1:
      case GateKind::kInput:
        break;
      default:
        ++report.logic_gates;
    }
  }
  return report;
}

}  // namespace vlcsa::netlist
