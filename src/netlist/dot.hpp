#pragma once
// Graphviz DOT export of a netlist, for inspecting generated structures
// (window adders, detection trees, prefix networks).  Inputs render as
// boxes, outputs as double circles colored by output group, gates as
// ellipses labeled with their cell kind.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

/// Writes a `digraph` for the whole netlist.  Intended for small netlists
/// (a window adder, a detector); a 512-bit VLCSA renders but is unreadable.
void emit_dot(const Netlist& nl, std::ostream& os);

[[nodiscard]] std::string to_dot(const Netlist& nl);

}  // namespace vlcsa::netlist
