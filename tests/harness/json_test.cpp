// Tests for the strict JSON parser (harness/json.hpp): RFC 8259 grammar
// edges, strictness (duplicate keys, trailing garbage, control characters,
// lone surrogates, depth), exact integer extraction, and a randomized
// writer→parser round-trip fuzz over JsonObject records — the property the
// service protocol and result cache rely on.

#include "harness/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>

#include "harness/report.hpp"

namespace vlcsa::harness {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonParse parse = parse_json(text);
  EXPECT_TRUE(parse.ok()) << text << " -> " << parse.error;
  return parse.value;
}

std::string parse_error(const std::string& text) {
  const JsonParse parse = parse_json(text);
  EXPECT_FALSE(parse.ok()) << text << " unexpectedly parsed";
  return parse.error;
}

TEST(JsonParser, Scalars) {
  EXPECT_EQ(parse_ok("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_ok("0").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(parse_ok("-12").as_double(), -12.0);
  EXPECT_DOUBLE_EQ(parse_ok("0.25").as_double(), 0.25);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_ok("-2.5E-2").as_double(), -0.025);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, WhitespaceAroundValue) {
  EXPECT_EQ(parse_ok(" \t\r\n 7 \n").as_double(), 7.0);
}

TEST(JsonParser, NumberGrammarIsStrict) {
  parse_error("01");      // leading zero
  parse_error("+1");      // leading plus
  parse_error(".5");      // bare fraction
  parse_error("1.");      // digit required after point
  parse_error("1e");      // digit required in exponent
  parse_error("0x10");    // no hex
  parse_error("NaN");     // not JSON
  parse_error("Infinity");
  parse_error("-");
}

TEST(JsonParser, NumberTokenPreserved) {
  EXPECT_EQ(parse_ok("18446744073709551615").number_text(), "18446744073709551615");
  EXPECT_EQ(parse_ok("1e3").number_text(), "1e3");
}

TEST(JsonParser, ExactU64Extraction) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_ok("0").to_u64(value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_ok("18446744073709551615").to_u64(value));
  EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_ok("18446744073709551616").to_u64(value));  // overflow
  EXPECT_FALSE(parse_ok("-1").to_u64(value));
  EXPECT_FALSE(parse_ok("1.0").to_u64(value));   // not written as an integer
  EXPECT_FALSE(parse_ok("1e3").to_u64(value));   // ditto
  EXPECT_FALSE(parse_ok("\"1\"").to_u64(value)); // wrong kind
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(), "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parse_ok(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_ok(R"("\u00e9")").as_string(), "\xc3\xa9");      // 2-byte UTF-8
  EXPECT_EQ(parse_ok(R"("\u20ac")").as_string(), "\xe2\x82\xac");  // 3-byte UTF-8
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");  // surrogate pair, 4-byte UTF-8
  EXPECT_EQ(parse_ok(R"("\u0000")").as_string(), std::string(1, '\0'));
  EXPECT_EQ(parse_ok("\"caf\xc3\xa9\"").as_string(), "caf\xc3\xa9");  // raw UTF-8 passthrough
}

TEST(JsonParser, StringStrictness) {
  parse_error("\"unterminated");
  parse_error("\"bad\\x escape\"");
  parse_error("\"ctrl\nchar\"");           // raw control character
  parse_error(R"("\ud83d")");              // lone high surrogate
  parse_error(R"("\ude00")");              // lone low surrogate
  parse_error(R"("\ud83dx")");             // high surrogate not followed by \u
  parse_error(R"("\ud83dA")");        // high surrogate + non-surrogate
  parse_error(R"("\u12")");                // truncated hex
}

TEST(JsonParser, Arrays) {
  const JsonValue value = parse_ok("[1, \"two\", [true], {}]");
  ASSERT_EQ(value.items().size(), 4u);
  EXPECT_EQ(value.items()[0].as_double(), 1.0);
  EXPECT_EQ(value.items()[1].as_string(), "two");
  EXPECT_TRUE(value.items()[2].items()[0].as_bool());
  EXPECT_EQ(value.items()[3].kind(), JsonValue::Kind::kObject);
  EXPECT_TRUE(parse_ok("[]").items().empty());
  parse_error("[1,]");
  parse_error("[1 2]");
  parse_error("[");
}

TEST(JsonParser, ObjectsPreserveOrderAndFind) {
  const JsonValue value = parse_ok(R"({"b": 1, "a": {"nested": true}})");
  ASSERT_EQ(value.members().size(), 2u);
  EXPECT_EQ(value.members()[0].first, "b");
  EXPECT_EQ(value.members()[1].first, "a");
  ASSERT_NE(value.find("a"), nullptr);
  EXPECT_TRUE(value.find("a")->find("nested")->as_bool());
  EXPECT_EQ(value.find("missing"), nullptr);
  EXPECT_TRUE(parse_ok("{}").members().empty());
}

TEST(JsonParser, ObjectStrictness) {
  parse_error(R"({"a": 1, "a": 2})");  // duplicate key
  parse_error(R"({"a" 1})");
  parse_error(R"({"a": 1,})");
  parse_error(R"({1: 2})");
  parse_error("{");
}

TEST(JsonParser, TrailingGarbageRejected) {
  parse_error("{} x");
  parse_error("1 2");
  parse_error("truefalse");
  parse_error("");
  parse_error("   ");
}

TEST(JsonParser, DepthLimited) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 2; ++i) deep += "[";
  const std::string error = parse_error(deep);
  EXPECT_NE(error.find("nesting"), std::string::npos);
  // One below the limit still parses.
  std::string fine;
  for (int i = 0; i < kMaxJsonDepth - 1; ++i) fine += "[";
  fine += "1";
  for (int i = 0; i < kMaxJsonDepth - 1; ++i) fine += "]";
  parse_ok(fine);
}

TEST(JsonParser, WrongKindAccessorsThrow) {
  const JsonValue value = parse_ok("1");
  EXPECT_THROW((void)value.as_string(), std::logic_error);
  EXPECT_THROW((void)value.as_bool(), std::logic_error);
  EXPECT_THROW((void)value.items(), std::logic_error);
  EXPECT_THROW((void)value.members(), std::logic_error);
  EXPECT_EQ(value.find("x"), nullptr);  // find is lenient: nullptr, not throw
}

TEST(JsonParser, ParsesJsonObjectPrettyOutput) {
  JsonObject object;
  object.add("name", "table7.1/n64");
  object.add("samples", std::uint64_t{200000});
  object.add("rate", 0.2501);
  std::ostringstream os;
  object.write(os);
  const JsonValue value = parse_ok(os.str());
  EXPECT_EQ(value.find("name")->as_string(), "table7.1/n64");
  std::uint64_t samples = 0;
  EXPECT_TRUE(value.find("samples")->to_u64(samples));
  EXPECT_EQ(samples, 200000u);
  EXPECT_DOUBLE_EQ(value.find("rate")->as_double(), 0.2501);
}

// Writer→parser round-trip fuzz: randomized flat records through
// JsonObject::render_line() must parse back to exactly the written values —
// strings byte-for-byte (including control characters and quotes), u64
// counters exactly, doubles bit-exactly (%.17g round-trips IEEE doubles).
TEST(JsonRoundTrip, RandomizedRecords) {
  std::mt19937_64 rng(20260728);
  const auto random_string = [&rng] {
    std::uniform_int_distribution<int> length(0, 24);
    std::uniform_int_distribution<int> byte(0, 255);
    std::string out;
    const int n = length(rng);
    for (int i = 0; i < n; ++i) {
      // Bias toward the troublesome range: controls, quotes, backslashes.
      const int roll = byte(rng);
      if (roll < 32) {
        out += static_cast<char>(roll);  // control chars
      } else if (roll < 64) {
        out += (roll % 2 == 0) ? '"' : '\\';
      } else {
        out += static_cast<char>('a' + roll % 26);
      }
    }
    return out;
  };

  for (int iteration = 0; iteration < 200; ++iteration) {
    JsonObject record;
    std::vector<std::string> keys;
    std::vector<int> kinds;
    std::vector<std::string> strings;
    std::vector<std::uint64_t> integers;
    std::vector<double> doubles;
    std::vector<bool> bools;

    std::uniform_int_distribution<int> field_count(1, 8);
    std::uniform_int_distribution<int> kind(0, 3);
    const int fields = field_count(rng);
    for (int f = 0; f < fields; ++f) {
      // Keys must be unique (the parser rejects duplicates by design).
      const std::string key = "k" + std::to_string(f) + random_string();
      bool duplicate = false;
      for (const auto& existing : keys) duplicate = duplicate || existing == key;
      if (duplicate) continue;
      keys.push_back(key);
      kinds.push_back(kind(rng));
      switch (kinds.back()) {
        case 0: {
          strings.push_back(random_string());
          record.add(key, strings.back());
          break;
        }
        case 1: {
          integers.push_back(rng());
          record.add(key, integers.back());
          break;
        }
        case 2: {
          // Finite doubles across magnitudes, sign included.
          const double mantissa =
              std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
          const int exponent = std::uniform_int_distribution<int>(-300, 300)(rng);
          doubles.push_back(std::ldexp(mantissa, exponent % 60) * std::pow(10.0, exponent / 60));
          record.add(key, doubles.back());
          break;
        }
        default: {
          bools.push_back((rng() & 1) != 0);
          record.add(key, bools.back());
          break;
        }
      }
    }

    const std::string line = record.render_line();
    const JsonParse parse = parse_json(line);
    ASSERT_TRUE(parse.ok()) << line << " -> " << parse.error;
    ASSERT_EQ(parse.value.members().size(), keys.size()) << line;

    std::size_t string_index = 0, integer_index = 0, double_index = 0, bool_index = 0;
    for (std::size_t f = 0; f < keys.size(); ++f) {
      const JsonValue* field = parse.value.find(keys[f]);
      ASSERT_NE(field, nullptr) << "missing key in " << line;
      switch (kinds[f]) {
        case 0:
          EXPECT_EQ(field->as_string(), strings[string_index++]);
          break;
        case 1: {
          std::uint64_t value = 0;
          ASSERT_TRUE(field->to_u64(value)) << line;
          EXPECT_EQ(value, integers[integer_index++]);
          break;
        }
        case 2:
          EXPECT_EQ(field->as_double(), doubles[double_index++]) << line;
          break;
        default:
          EXPECT_EQ(field->as_bool(), bools[bool_index] != false);
          ++bool_index;
          break;
      }
    }
  }
}

}  // namespace
}  // namespace vlcsa::harness
