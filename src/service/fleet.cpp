#include "service/fleet.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

namespace vlcsa::service::fleet {

bool DirLock::acquire(const std::string& lock_path) {
  release();
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void DirLock::release() {
  if (fd_ < 0) return;
  // Closing drops the flock; the lock file itself stays (it is contended
  // state shared with other replicas, never deleted).
  ::close(fd_);
  fd_ = -1;
}

ComputeLease::ComputeLease(ComputeLease&& other) noexcept
    : path_(std::move(other.path_)), state_(other.state_), took_over_(other.took_over_) {
  other.state_ = State::kDisabled;
  other.path_.clear();
}

ComputeLease& ComputeLease::operator=(ComputeLease&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    state_ = other.state_;
    took_over_ = other.took_over_;
    other.state_ = State::kDisabled;
    other.path_.clear();
  }
  return *this;
}

namespace {

/// O_CREAT|O_EXCL lease create; writes the holder pid for postmortems.
/// Returns true on success, false with errno preserved on failure.
bool create_lease_file(const std::string& lease_path) {
  const int fd = ::open(lease_path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const std::string content = std::to_string(::getpid()) + "\n";
  // Best effort — an empty lease file still leases; age comes from mtime.
  [[maybe_unused]] const ssize_t written = ::write(fd, content.data(), content.size());
  ::close(fd);
  return true;
}

}  // namespace

long long lease_age_ms(const std::string& lease_path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(lease_path, ec);
  if (ec) return -1;
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(age).count();
  return ms < 0 ? 0 : static_cast<long long>(ms);
}

ComputeLease::State ComputeLease::try_acquire(const std::string& lease_path, int stale_ms) {
  release();
  took_over_ = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (create_lease_file(lease_path)) {
      path_ = lease_path;
      state_ = State::kAcquired;
      fault::maybe_crash("crash-after-lease");
      return state_;
    }
    if (errno != EEXIST) {
      // Unwritable/vanished directory: no cross-process single-flight, but
      // computing without it is always safe (records are deterministic).
      state_ = State::kDisabled;
      return state_;
    }
    const long long age = lease_age_ms(lease_path);
    if (age < 0) continue;  // released between our create and stat: retry
    if (stale_ms <= 0 || age <= stale_ms) break;  // live holder
    // Stale: the holder crashed between lease and release.  Reap and retry
    // the create once — losing the re-create race to another reaper is fine
    // (kBusy, we wait on *their* lease).
    std::error_code ec;
    std::filesystem::remove(lease_path, ec);
    took_over_ = true;
  }
  state_ = State::kBusy;
  return state_;
}

void ComputeLease::release() {
  if (state_ == State::kAcquired) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  state_ = State::kDisabled;
  path_.clear();
}

LeaseWaitResult wait_for_lease_release(const std::string& lease_path, int stale_ms,
                                       const std::atomic<bool>* cancel, int poll_ms) {
  if (poll_ms < 1) poll_ms = 1;
  while (true) {
    const long long age = lease_age_ms(lease_path);
    if (age < 0) return LeaseWaitResult::kReleased;
    if (stale_ms > 0 && age > stale_ms) return LeaseWaitResult::kStale;
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return LeaseWaitResult::kCancelled;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

void DrainState::begin() { draining_.store(true, std::memory_order_relaxed); }

std::size_t DrainState::active_runs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

void DrainState::cancel_active_runs() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::atomic<bool>* token : active_) token->store(true, std::memory_order_relaxed);
}

DrainState::RunScope::RunScope(DrainState& drain, std::atomic<bool>* token)
    : drain_(drain), token_(token) {
  const std::lock_guard<std::mutex> lock(drain_.mutex_);
  drain_.active_.push_back(token_);
}

DrainState::RunScope::~RunScope() {
  const std::lock_guard<std::mutex> lock(drain_.mutex_);
  drain_.active_.erase(std::find(drain_.active_.begin(), drain_.active_.end(), token_));
}

namespace {

/// splitmix64 step — jitter only.  Backoff jitter is operational timing
/// noise: it never touches an experiment draw stream, a record, or anything
/// golden-pinned, so the repo-RNG contract (ROADMAP) does not apply and one
/// word of state beats hauling a 312-word BlockRng into every client retry.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy) : policy_(policy) {
  if (policy_.base_ms < 1) policy_.base_ms = 1;
  if (policy_.max_ms < policy_.base_ms) policy_.max_ms = policy_.base_ms;
  jitter_state_ = policy_.jitter_seed;
  if (jitter_state_ == 0) {
    jitter_state_ =
        static_cast<std::uint64_t>(::getpid()) ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
  }
}

int BackoffSchedule::next_delay_ms() {
  ++retry_;
  // base * 2^(retry-1), saturating well below int overflow before the cap.
  std::int64_t delay = policy_.base_ms;
  for (int i = 1; i < retry_ && delay < policy_.max_ms; ++i) delay *= 2;
  delay = std::min<std::int64_t>(delay, policy_.max_ms);
  // Jitter factor in [0.5, 1.0]: full-speed lockstep halves at worst.
  const std::uint64_t word = splitmix64(jitter_state_);
  const double factor = 0.5 + 0.5 * (static_cast<double>(word >> 11) * 0x1.0p-53);
  delay = static_cast<std::int64_t>(static_cast<double>(delay) * factor);
  return static_cast<int>(std::max<std::int64_t>(delay, 1));
}

namespace fault {

namespace {

struct FaultSpec {
  bool any = false;
  std::unordered_map<std::string, int> sites;  // site -> ms param (-1 = none)
};

FaultSpec parse_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    int ms = -1;
    const std::size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      const std::string value = entry.substr(eq + 1);
      entry.resize(eq);
      char* parse_end = nullptr;
      const long parsed = std::strtol(value.c_str(), &parse_end, 10);
      if (parse_end != nullptr && *parse_end == '\0' && parsed >= 0) {
        ms = static_cast<int>(parsed);
      }
    }
    spec.sites[entry] = ms;
    spec.any = true;
  }
  return spec;
}

FaultSpec& active_spec() {
  static FaultSpec spec = [] {
    const char* env = std::getenv("VLCSA_FAULT");
    return parse_spec(env == nullptr ? std::string() : std::string(env));
  }();
  return spec;
}

}  // namespace

bool enabled(const char* site) {
  const FaultSpec& spec = active_spec();
  if (!spec.any) return false;
  return spec.sites.find(site) != spec.sites.end();
}

int param_ms(const char* site, int default_ms) {
  const FaultSpec& spec = active_spec();
  const auto it = spec.sites.find(site);
  if (it == spec.sites.end() || it->second < 0) return default_ms;
  return it->second;
}

void maybe_crash(const char* site) {
  if (enabled(site)) ::_exit(kExitCode);
}

void maybe_sleep(const char* site, int default_ms) {
  if (!enabled(site)) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(param_ms(site, default_ms)));
}

void maybe_tear(const char* site, std::string& record) {
  if (!enabled(site)) return;
  record.resize(record.size() / 2);
}

void configure_for_test(const std::string& spec) { active_spec() = parse_spec(spec); }

}  // namespace fault

}  // namespace vlcsa::service::fleet
