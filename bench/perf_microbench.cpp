// Google-benchmark microbenches for the library's hot paths: big-integer
// addition, behavioral SCSA/VLSA evaluation (scalar and bit-sliced at
// several lane widths), the plane-kernel layer per backend, bit-sliced
// netlist simulation, the optimizer, and static timing — the costs that
// bound every Monte Carlo and synthesis experiment above.
//
// --json=FILE switches to the machine-readable perf record instead of the
// google-benchmark run: a curated suite timing each plane kernel (scalar vs
// the best dispatched backend), the RNG subsystem (std engine vs block
// generation, operand fill before/after the direct-to-plane path), the
// Gaussian sampling subsystem (block ziggurat vs the per-call
// std::normal_distribution it replaced, through to the table7.1-style
// error-rate loop), the end-to-end batched sampling loop against the
// PR 2 baseline (single lane word, scalar backend), and the service
// daemon's cached-hit request path (observability off vs trace log on),
// written as one JSON object (schema vlcsa-perf-5; every record names the
// planeops backend it was measured on).  CI uploads this as the
// BENCH_batch.json artifact so the perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "adders/adders.hpp"
#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "arith/distributions.hpp"
#include "arith/planeops.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/timing.hpp"
#include "service/service.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlsa.hpp"

namespace {

using namespace vlcsa;
using arith::ApInt;
namespace planeops = arith::planeops;

void BM_ApIntAdd(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  vlcsa::arith::BlockRng rng(1);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApInt::add(a, b));
  }
}
BENCHMARK(BM_ApIntAdd)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_ScsaEvaluate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::ScsaModel model(
      spec::ScsaConfig{width, spec::min_window_for_error_rate(width, 1e-4)});
  vlcsa::arith::BlockRng rng(2);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScsaEvaluate)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The bit-sliced counterpart: one pass evaluates 64 * lane_words samples, so
// items/sec is directly comparable with BM_ScsaEvaluate.  Args: (width,
// lane_words); runs on whatever planeops backend dispatch selected.
void BM_ScsaEvaluateBatch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int lane_words = static_cast<int>(state.range(1));
  const spec::ScsaModel model(
      spec::ScsaConfig{width, spec::min_window_for_error_rate(width, 1e-4)});
  vlcsa::arith::BlockRng rng(2);
  arith::BitSlicedBatch batch(width, lane_words);
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  source->fill_batch(rng, batch);
  spec::ScsaBatchEvaluation ev;
  for (auto _ : state) {
    model.evaluate_batch(batch, ev);
    benchmark::DoNotOptimize(ev.spec0_wrong.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * lane_words);
}
BENCHMARK(BM_ScsaEvaluateBatch)
    ->Args({64, 1})->Args({64, 4})->Args({128, 4})->Args({256, 4})
    ->Args({512, 1})->Args({512, 4})->Args({512, 8});

void BM_VlsaEvaluate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const spec::VlsaModel model(
      spec::VlsaConfig{width, spec::vlsa_published_chain_length(width)});
  vlcsa::arith::BlockRng rng(3);
  const ApInt a = ApInt::random(width, rng);
  const ApInt b = ApInt::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlsaEvaluate)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_VlsaEvaluateBatch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int lane_words = static_cast<int>(state.range(1));
  const spec::VlsaModel model(
      spec::VlsaConfig{width, spec::vlsa_published_chain_length(width)});
  vlcsa::arith::BlockRng rng(3);
  arith::BitSlicedBatch batch(width, lane_words);
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  source->fill_batch(rng, batch);
  spec::VlsaBatchEvaluation ev;
  for (auto _ : state) {
    model.evaluate_batch(batch, ev);
    benchmark::DoNotOptimize(ev.spec_wrong.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * lane_words);
}
BENCHMARK(BM_VlsaEvaluateBatch)->Args({64, 1})->Args({64, 4})->Args({512, 1})->Args({512, 4});

// ---- plane-kernel layer, per backend ---------------------------------------
// Args: (plane words, 0 = scalar backend / 1 = auto-dispatched best).  Each
// bench pins the requested backend for its own run and restores dispatch on
// exit, so orderings never leak between benches.

class BackendScope {
 public:
  explicit BackendScope(const char* name) : prev_(planeops::active_backend()) {
    planeops::set_backend(name);
  }
  explicit BackendScope(bool best) : BackendScope(best ? "auto" : "scalar") {}
  // Restore the pre-bench backend, so a VLCSA_FORCE_BACKEND pin survives.
  ~BackendScope() { planeops::set_backend(prev_); }

 private:
  planeops::Backend prev_;
};

void BM_PlaneKoggeStone(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int lane_words = static_cast<int>(state.range(1));
  const BackendScope scope(state.range(2) != 0);
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  vlcsa::arith::BlockRng rng(7);
  planeops::PlaneVec g(m), p(m), carry(m), pp(m);
  for (auto& word : g) word = rng();
  for (auto& word : p) word = rng();
  for (auto _ : state) {
    planeops::kogge_stone(g.data(), p.data(), n, lane_words, carry.data(), pp.data());
    benchmark::DoNotOptimize(carry.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * lane_words);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_PlaneKoggeStone)
    ->Args({64, 4, 0})->Args({64, 4, 1})->Args({512, 4, 0})->Args({512, 4, 1});

void BM_PlaneBulkGp(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const BackendScope scope(state.range(1) != 0);
  vlcsa::arith::BlockRng rng(8);
  planeops::PlaneVec a(m), b(m), g(m), p(m);
  for (auto& word : a) word = rng();
  for (auto& word : b) word = rng();
  for (auto _ : state) {
    planeops::bulk_gp(a.data(), b.data(), g.data(), p.data(), m);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(m) * 8 * 2);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_PlaneBulkGp)->Args({2048, 0})->Args({2048, 1});

void BM_PlaneTranspose64x64(benchmark::State& state) {
  const BackendScope scope(state.range(0) != 0);
  vlcsa::arith::BlockRng rng(9);
  alignas(64) std::uint64_t block[64];
  for (auto& row : block) row = rng();
  for (auto _ : state) {
    planeops::transpose_64x64(block);
    benchmark::DoNotOptimize(&block[0]);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_PlaneTranspose64x64)->Arg(0)->Arg(1);

void BM_PlanePopcountSum(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const BackendScope scope(state.range(1) != 0);
  vlcsa::arith::BlockRng rng(10);
  planeops::PlaneVec x(m);
  for (auto& word : x) word = rng();
  for (auto _ : state) {
    benchmark::DoNotOptimize(planeops::popcount_sum(x.data(), m));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m) * 64);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_PlanePopcountSum)->Args({4, 0})->Args({4, 1})->Args({2048, 0})->Args({2048, 1});

// ---- RNG subsystem ---------------------------------------------------------
// The block-generating MT19937-64 vs the std engine it is sequence-identical
// to: per-call draws, bulk generate_block, and the uniform operand fill it
// feeds.  Args where present: (0 = scalar backend / 1 = auto-dispatched).

/// The pre-BlockRng uniform fill: one std::mt19937_64 draw per limb per
/// sample into the transpose blocks — exactly what
/// UniformUnsignedSource::fill_batch did at PR 4.  The baseline both the
/// BM_RngFillBatchPerCallReference bench and the --json rng section compare
/// the direct-to-plane path against.
void fill_batch_percall_reference(std::mt19937_64& rng, arith::BitSlicedBatch& batch,
                                  std::vector<std::uint64_t>& rows) {
  const int width = batch.width();
  const int lane_words = batch.lane_words();
  const int limbs = (width + 63) / 64;
  const std::uint64_t top_mask =
      width % 64 == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (width % 64)) - 1);
  rows.resize(static_cast<std::size_t>(2 * limbs) * 64);
  for (int w = 0; w < lane_words; ++w) {
    for (int j = 0; j < 64; ++j) {
      for (int op = 0; op < 2; ++op) {
        for (int limb = 0; limb < limbs; ++limb) {
          std::uint64_t word = rng();
          if (limb == limbs - 1) word &= top_mask;
          rows[static_cast<std::size_t>((op * limbs + limb) * 64 + j)] = word;
        }
      }
    }
    for (int op = 0; op < 2; ++op) {
      std::uint64_t* planes = op == 0 ? batch.a() : batch.b();
      for (int limb = 0; limb < limbs; ++limb) {
        std::uint64_t* block = rows.data() + static_cast<std::size_t>(op * limbs + limb) * 64;
        arith::transpose_64x64(block);
        arith::block_to_planes(block, limb, width, planes, lane_words, w);
      }
    }
  }
}

void BM_RngStdMt19937Draws(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) sum += rng();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RngStdMt19937Draws);

void BM_RngBlockRngDraws(benchmark::State& state) {
  const BackendScope scope(state.range(0) != 0);
  arith::BlockRng rng(1);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) sum += rng();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_RngBlockRngDraws)->Arg(0)->Arg(1);

void BM_RngGenerateBlock(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const BackendScope scope(state.range(1) != 0);
  arith::BlockRng rng(1);
  std::vector<std::uint64_t> buf(words);
  for (auto _ : state) {
    rng.generate_block(buf.data(), words);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(words));
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_RngGenerateBlock)
    ->Args({312, 0})->Args({312, 1})->Args({4096, 0})->Args({4096, 1});

// The uniform operand fill the block RNG accelerates end to end: one batch
// of 64 * lane_words operand pairs into bit-planes.  Args: (width,
// lane_words, backend).  Compare with BM_RngFillBatchPerCallReference, which
// re-implements the PR 4 per-call fill (one std::mt19937_64 draw per limb)
// on the same shapes — the ratio is the operand-generation speedup.
void BM_RngFillBatch(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int lane_words = static_cast<int>(state.range(1));
  const BackendScope scope(state.range(2) != 0);
  arith::UniformUnsignedSource source(width);
  arith::BitSlicedBatch batch(width, lane_words);
  arith::BlockRng rng(5);
  for (auto _ : state) {
    source.fill_batch(rng, batch);
    benchmark::DoNotOptimize(batch.a());
  }
  state.SetItemsProcessed(state.iterations() * 64 * lane_words);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_RngFillBatch)
    ->Args({64, 4, 0})->Args({64, 4, 1})->Args({512, 4, 0})->Args({512, 4, 1});

/// The PR 6 Gaussian operand source, reproduced as the baseline: one
/// std::normal_distribution draw per operand through the per-sample next()
/// path, with the base-class fill_batch (per-sample ApInt transposes) —
/// exactly how GaussianTwosSource generated operands before the block
/// ziggurat.  The gaussian section's speedup rows compare against this.
class PerCallNormalTwosSource final : public arith::OperandSource {
 public:
  explicit PerCallNormalTwosSource(int width) : arith::OperandSource(width) {}
  [[nodiscard]] std::string name() const override {
    return "gaussian-twos-percall-reference";
  }
  std::pair<ApInt, ApInt> next(arith::BlockRng& rng) override {
    const double a = dist_(rng);
    const double b = dist_(rng);
    return {arith::encode_signed_sample(width(), a),
            arith::encode_signed_sample(width(), b)};
  }
  [[nodiscard]] std::unique_ptr<arith::OperandSource> clone() const override {
    return std::make_unique<PerCallNormalTwosSource>(width());
  }

 private:
  std::normal_distribution<double> dist_{0.0, 4294967296.0};  // Ch. 7 params
};

// Bulk ziggurat variates from the block sampler — the per-variate floor of
// every Gaussian workload.  Arg: 0 = scalar backend / 1 = auto-dispatched
// (the backend moves the generate_block refills under the ziggurat).
void BM_RngGaussianBlock(benchmark::State& state) {
  const BackendScope scope(state.range(0) != 0);
  arith::GaussianBlockSampler sampler;
  arith::BlockRng rng(19);
  std::vector<double> variates(4096);
  for (auto _ : state) {
    sampler.fill(rng, variates.data(), variates.size());
    benchmark::DoNotOptimize(variates.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK(BM_RngGaussianBlock)->Arg(0)->Arg(1);

void BM_RngGaussianPerCallReference(benchmark::State& state) {
  arith::BlockRng rng(19);
  std::normal_distribution<double> dist(0.0, 4294967296.0);
  double sum = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) sum += dist(rng);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RngGaussianPerCallReference);

void BM_RngFillBatchPerCallReference(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int lane_words = static_cast<int>(state.range(1));
  arith::BitSlicedBatch batch(width, lane_words);
  std::mt19937_64 rng(5);
  std::vector<std::uint64_t> rows;
  for (auto _ : state) {
    fill_batch_percall_reference(rng, batch, rows);
    benchmark::DoNotOptimize(batch.a());
  }
  state.SetItemsProcessed(state.iterations() * 64 * lane_words);
}
BENCHMARK(BM_RngFillBatchPerCallReference)->Args({64, 4})->Args({512, 4});

void BM_NetlistSimulate64Vectors(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl =
      netlist::optimize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width));
  netlist::Simulator sim(nl);
  vlcsa::arith::BlockRng rng(4);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) sim.set_input(i, rng());
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.value(nl.outputs().back().signal));
  }
  state.SetItemsProcessed(state.iterations() * 64);  // vectors per pass
}
BENCHMARK(BM_NetlistSimulate64Vectors)->Arg(64)->Arg(256);

void BM_OptimizeKoggeStone(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::optimize(nl));
  }
}
BENCHMARK(BM_OptimizeKoggeStone)->Arg(64)->Arg(256);

void BM_StaticTiming(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const auto nl =
      netlist::optimize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, width));
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::analyze_timing(nl));
  }
}
BENCHMARK(BM_StaticTiming)->Arg(64)->Arg(256);

// The acceptance benchmark for the batch pipeline: the full error-rate
// sampling loop (operand generation + model + counters), one body for all
// four distribution x eval-path variants.  Batched args: (width, lane_words,
// backend: 0 scalar / 1 auto) — (W=1, scalar backend) is how PR 2 ran the
// batched pipeline, (kDefaultLaneWords, auto) is the current default, and
// the items/sec ratio between them is the SIMD layer's end-to-end delta.
// Scalar-path args: (width) only.  `window` 0 = sized for 0.01%.
void error_rate_samples(benchmark::State& state, arith::InputDistribution dist, int window,
                        std::uint64_t seed, harness::EvalPath path) {
  const int width = static_cast<int>(state.range(0));
  const bool batched = path == harness::EvalPath::kBatched;
  std::optional<BackendScope> scope;
  if (batched) scope.emplace(state.range(2) != 0);
  auto source = arith::make_source(dist, width);
  const spec::VlcsaConfig config{
      width, window > 0 ? window : spec::min_window_for_error_rate(width, 1e-4),
      spec::ScsaVariant::kScsa2};
  constexpr std::uint64_t kSamples = 1 << 13;
  harness::RunOptions options;
  options.samples = kSamples;
  options.threads = 1;
  options.lane_words = batched ? static_cast<int>(state.range(1)) : 0;
  for (auto _ : state) {
    options.seed = seed++;
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, options, path));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
  if (batched) state.SetLabel(to_string(planeops::active_backend()));
}
BENCHMARK_CAPTURE(error_rate_samples, Batched, arith::InputDistribution::kUniformUnsigned, 0,
                  5, harness::EvalPath::kBatched)
    ->Name("BM_ErrorRateSamplesBatched")
    ->Args({64, 1, 0})->Args({64, 4, 1})->Args({512, 1, 0})->Args({512, 4, 1});
BENCHMARK_CAPTURE(error_rate_samples, Scalar, arith::InputDistribution::kUniformUnsigned, 0,
                  5, harness::EvalPath::kScalar)
    ->Name("BM_ErrorRateSamplesScalar")->Arg(64)->Arg(512);
// Same comparison on the Ch. 7 workload (Gaussian two's-complement
// operands), where sample generation is the larger share of the cost.
BENCHMARK_CAPTURE(error_rate_samples, GaussBatched, arith::InputDistribution::kGaussianTwos,
                  13, 6, harness::EvalPath::kBatched)
    ->Name("BM_ErrorRateSamplesGaussBatched")
    ->Args({64, 1, 0})->Args({64, 4, 1})->Args({512, 1, 0})->Args({512, 4, 1});
BENCHMARK_CAPTURE(error_rate_samples, GaussScalar, arith::InputDistribution::kGaussianTwos,
                  13, 6, harness::EvalPath::kScalar)
    ->Name("BM_ErrorRateSamplesGaussScalar")->Arg(64)->Arg(512);

void BM_MonteCarloVlcsa(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, 1000, seed++, 1));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MonteCarloVlcsa)->Arg(64)->Arg(512);

// The sharded engine end to end: 64k samples per iteration, thread count as
// the sweep axis — wall-clock should drop near-linearly while the merged
// result stays bit-identical (tests/harness/engine_test.cpp enforces that).
void BM_MonteCarloVlcsaParallel(benchmark::State& state) {
  const int width = 64;
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  const int threads = static_cast<int>(state.range(0));
  constexpr std::uint64_t kSamples = 1 << 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_vlcsa(config, *source, kSamples, 7, threads));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_MonteCarloVlcsaParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();

// The service daemon's cached-hit path (parse -> memory-tier hit -> render),
// the latency every repeated table/figure reproduction sees.  Arg 0 runs with
// observability off — the shape the determinism/overhead contract pins: a
// request line without "trace" in it must pay exactly one substring scan and
// one disabled-branch per stage, nothing else.  Arg 1 runs the same requests
// with --trace-log enabled (span collection + one JSONL line per request),
// which prices what an operator buys when they turn tracing on.
void BM_ServiceCachedHit(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  service::ServiceConfig config;
  config.threads = 1;
  std::filesystem::path trace_path;
  if (traced) {
    trace_path = std::filesystem::temp_directory_path() / "vlcsa_bench_trace.jsonl";
    config.trace_log = trace_path.string();
  }
  service::ExperimentService service(config);
  const std::string line =
      "{\"request\": \"run\", \"experiment\": \"table7.1/n64\", \"samples\": 4096, \"seed\": 3}";
  if (!service.handle_line(line).ok) {  // warm the memory tier
    state.SkipWithError("warm-up run failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle_line(line));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(traced ? "traced" : "untraced");
  if (traced) {
    std::error_code ec;  // best-effort cleanup
    std::filesystem::remove(trace_path, ec);
    std::filesystem::remove(trace_path.string() + ".1", ec);
  }
}
BENCHMARK(BM_ServiceCachedHit)->Arg(0)->Arg(1);

// ---- --json=FILE: the machine-readable perf record --------------------------

/// Wall-clock of `body` amortized over enough repetitions to cross ~60 ms,
/// reported as nanoseconds per inner item.
template <typename Body>
double time_ns_per_item(std::uint64_t items_per_rep, const Body& body) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up (allocations, dispatch resolution, caches)
  std::uint64_t reps = 1;
  for (;;) {
    const auto start = clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) body();
    const double elapsed =
        std::chrono::duration<double, std::nano>(clock::now() - start).count();
    if (elapsed >= 6e7 || reps > (1u << 24)) {
      return elapsed / (static_cast<double>(reps) * static_cast<double>(items_per_rep));
    }
    reps *= 4;
  }
}

harness::JsonObject kernel_record(const std::string& name, double scalar_ns,
                                  double best_ns, const char* best_backend) {
  harness::JsonObject record;
  record.add("kernel", name);
  record.add("scalar_ns_per_sample", scalar_ns);
  record.add("best_ns_per_sample", best_ns);
  record.add("backend", best_backend);
  record.add("speedup_vs_scalar", best_ns > 0 ? scalar_ns / best_ns : 0.0);
  return record;
}

/// ns/sample of the full batched error-rate loop over `source` at one
/// configuration.  `lane_words` 0 = the dispatch-aware default
/// (arith::default_lane_words() resolved inside the run, under `backend`).
double end_to_end_source_ns(int width, arith::OperandSource& source, int lane_words,
                            const char* backend) {
  const BackendScope scope(backend);
  const spec::VlcsaConfig config{width, spec::min_window_for_error_rate(width, 1e-4),
                                 spec::ScsaVariant::kScsa2};
  constexpr std::uint64_t kSamples = 1 << 13;
  harness::RunOptions options;
  options.samples = kSamples;
  options.threads = 1;
  options.lane_words = lane_words;
  std::uint64_t seed = 11;
  return time_ns_per_item(kSamples, [&] {
    options.seed = seed++;
    benchmark::DoNotOptimize(
        harness::run_vlcsa(config, source, options, harness::EvalPath::kBatched));
  });
}

double end_to_end_ns(int width, arith::InputDistribution dist, int lane_words,
                     const char* backend) {
  auto source = arith::make_source(dist, width);
  return end_to_end_source_ns(width, *source, lane_words, backend);
}

int write_perf_json(const std::string& path) {
  // The record's "best" rows are always measured under auto dispatch (that
  // is the comparison the artifact tracks), so label them with what auto
  // resolves to — not with a VLCSA_FORCE_BACKEND pin, which the scopes
  // below deliberately step around and then restore.
  const char* best = nullptr;
  int now_w = 0;  // dispatch-aware default lane width under auto (8 on avx512)
  {
    const BackendScope scope("auto");
    best = to_string(planeops::active_backend());
    now_w = arith::default_lane_words();
  }
  std::string kernels;
  {
    // Per-kernel scalar-vs-best at the hot shape: n=512 planes, 4 lane words.
    constexpr int kN = 512;
    constexpr int kW = 4;
    constexpr std::size_t kM = static_cast<std::size_t>(kN) * kW;
    constexpr std::uint64_t kSamplesPerPass = 64 * kW;
    vlcsa::arith::BlockRng rng(13);
    planeops::PlaneVec a(kM), b(kM), g(kM), p(kM), carry(kM), pp(kM);
    for (auto& word : a) word = rng();
    for (auto& word : b) word = rng();
    struct Kernel {
      const char* name;
      std::function<void()> body;
      std::uint64_t items;
    };
    alignas(64) std::uint64_t block[64];
    for (auto& row : block) row = rng();
    const std::vector<Kernel> suite = {
        {"bulk_gp_n512_w4",
         [&] { planeops::bulk_gp(a.data(), b.data(), g.data(), p.data(), kM); },
         kSamplesPerPass},
        {"kogge_stone_n512_w4",
         [&] { planeops::kogge_stone(g.data(), p.data(), kN, kW, carry.data(), pp.data()); },
         kSamplesPerPass},
        {"popcount_sum_2048",
         [&] { benchmark::DoNotOptimize(planeops::popcount_sum(a.data(), kM)); },
         kSamplesPerPass},
        {"transpose_64x64", [&] { planeops::transpose_64x64(block); }, 64},
    };
    bool first = true;
    for (const auto& kernel : suite) {
      double scalar_ns = 0, best_ns = 0;
      {
        const BackendScope scope("scalar");
        scalar_ns = time_ns_per_item(kernel.items, kernel.body);
      }
      {
        const BackendScope scope("auto");
        best_ns = time_ns_per_item(kernel.items, kernel.body);
      }
      if (!first) kernels += ", ";
      kernels += kernel_record(kernel.name, scalar_ns, best_ns, best).render_line();
      first = false;
    }
  }

  // The RNG subsystem: per-word generation cost of the std engine, the
  // block RNG's per-call path, and bulk generate_block, plus the uniform
  // operand fill before (per-call std draws, the PR 4 path) and after
  // (generate_block direct-to-plane).  This is the Amdahl term PR 5 lifts.
  std::string rng_section;
  {
    constexpr std::size_t kWords = 1 << 14;
    std::vector<std::uint64_t> buf(kWords);
    std::mt19937_64 std_rng(13);
    arith::BlockRng block_rng(13);
    const double std_ns = time_ns_per_item(kWords, [&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < kWords; ++i) sum += std_rng();
      benchmark::DoNotOptimize(sum);
    });
    const double percall_ns = time_ns_per_item(kWords, [&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < kWords; ++i) sum += block_rng();
      benchmark::DoNotOptimize(sum);
    });
    const auto block_ns_for = [&](const char* backend) {
      const BackendScope scope(backend);
      return time_ns_per_item(kWords, [&] {
        block_rng.generate_block(buf.data(), kWords);
        benchmark::DoNotOptimize(buf.data());
      });
    };
    const double block_scalar_ns = block_ns_for("scalar");
    const double block_best_ns = block_ns_for("auto");
    harness::JsonObject generation;
    generation.add("std_mt19937_64_ns_per_word", std_ns);
    generation.add("blockrng_percall_ns_per_word", percall_ns);
    generation.add("blockrng_block_scalar_ns_per_word", block_scalar_ns);
    generation.add("blockrng_block_ns_per_word", block_best_ns);
    generation.add("backend", best);
    generation.add("speedup_vs_std", block_best_ns > 0 ? std_ns / block_best_ns : 0.0);

    std::string fills;
    bool first = true;
    for (const int width : {64, 512}) {
      arith::UniformUnsignedSource source(width);
      arith::BitSlicedBatch batch(width, now_w);
      arith::BlockRng fill_rng(5);
      const std::uint64_t lanes = static_cast<std::uint64_t>(batch.lanes());
      const BackendScope scope("auto");  // record labels the auto-dispatched backend
      const double fill_ns = time_ns_per_item(lanes, [&] {
        source.fill_batch(fill_rng, batch);
        benchmark::DoNotOptimize(batch.a());
      });
      std::mt19937_64 old_rng(5);
      std::vector<std::uint64_t> rows;
      const double before_ns = time_ns_per_item(lanes, [&] {
        fill_batch_percall_reference(old_rng, batch, rows);
        benchmark::DoNotOptimize(batch.a());
      });
      harness::JsonObject record;
      record.add("workload", "uniform-fill-batch-n" + std::to_string(width));
      record.add("percall_std_ns_per_sample", before_ns);
      record.add("ns_per_sample", fill_ns);
      record.add("backend", best);
      record.add("lane_words", now_w);
      record.add("speedup", fill_ns > 0 ? before_ns / fill_ns : 0.0);
      if (!first) fills += ", ";
      fills += record.render_line();
      first = false;
    }
    harness::JsonObject rng_record;
    rng_record.add_json("generation", generation.render_line());
    rng_record.add_json("fill_batch", "[" + fills + "]");
    rng_section = rng_record.render_line();
  }

  // The batched model evaluation alone (no operand generation): this is the
  // layer the SIMD plane kernels accelerate, compared against the single
  // lane word + scalar backend configuration (how PR 2 evaluated batches).
  std::string model_eval;
  double model_speedup_n512 = 0.0;
  {
    bool first = true;
    for (const int width : {64, 512}) {
      const spec::ScsaModel model(
          spec::ScsaConfig{width, spec::min_window_for_error_rate(width, 1e-4)});
      vlcsa::arith::BlockRng rng(17);
      auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, width);
      spec::ScsaBatchEvaluation ev;
      const auto time_model = [&](int lane_words, const char* backend) {
        const BackendScope scope(backend);
        arith::BitSlicedBatch batch(width, lane_words);
        source->fill_batch(rng, batch);
        return time_ns_per_item(static_cast<std::uint64_t>(batch.lanes()), [&] {
          model.evaluate_batch(batch, ev);
          benchmark::DoNotOptimize(ev.err0.data());
        });
      };
      const double base_ns = time_model(1, "scalar");
      const double now_ns = time_model(now_w, "auto");
      harness::JsonObject record;
      record.add("workload", "scsa-evaluate-batch-n" + std::to_string(width));
      record.add("w1_scalar_backend_ns_per_sample", base_ns);
      record.add("ns_per_sample", now_ns);
      record.add("backend", best);
      record.add("lane_words", now_w);
      const double speedup = now_ns > 0 ? base_ns / now_ns : 0.0;
      record.add("speedup", speedup);
      if (width == 512) model_speedup_n512 = speedup;
      if (!first) model_eval += ", ";
      model_eval += record.render_line();
      first = false;
    }
  }

  // The full sampling loop (operand generation + model + counters).  The
  // baseline configuration (1 lane word, scalar backend) is how PR 2 ran
  // the batched pipeline.  Through PR 4 this row was Amdahl-bound by
  // per-call std::mt19937_64 draws; the block RNG's direct-to-plane fill
  // is what moved it (the acceptance row for PR 5: >= 2x vs the PR 4
  // record).
  std::string end_to_end;
  double end_to_end_speedup_n512 = 0.0;
  {
    bool first = true;
    for (const int width : {64, 512}) {
      const double base_ns =
          end_to_end_ns(width, arith::InputDistribution::kUniformUnsigned, 1, "scalar");
      const double now_ns =
          end_to_end_ns(width, arith::InputDistribution::kUniformUnsigned, 0, "auto");
      harness::JsonObject record;
      record.add("workload", "vlcsa2-uniform-n" + std::to_string(width));
      record.add("w1_scalar_backend_ns_per_sample", base_ns);
      record.add("ns_per_sample", now_ns);  // default lane words, dispatched backend
      record.add("backend", best);
      record.add("lane_words", now_w);
      const double speedup = now_ns > 0 ? base_ns / now_ns : 0.0;
      record.add("speedup", speedup);
      if (width == 512) end_to_end_speedup_n512 = speedup;
      if (!first) end_to_end += ", ";
      end_to_end += record.render_line();
      first = false;
    }
  }

  // The Gaussian sampling subsystem (the Ch. 7 workloads): per-variate cost
  // of the block ziggurat vs the per-call std::normal_distribution it
  // replaced, the two's-complement operand fill, and the full table7.1-style
  // error-rate loop against the PR 6 per-call baseline.  The n=64 end-to-end
  // speedup row is this PR's acceptance gate (>= 3x).
  std::string gaussian_section;
  double gauss_end_to_end_speedup_n64 = 0.0;
  {
    constexpr std::size_t kVariates = std::size_t{1} << 14;
    std::vector<double> variates(kVariates);
    arith::BlockRng std_rng(19);
    std::normal_distribution<double> std_dist(0.0, 4294967296.0);
    const double std_ns = time_ns_per_item(kVariates, [&] {
      double sum = 0.0;
      for (std::size_t i = 0; i < kVariates; ++i) sum += std_dist(std_rng);
      benchmark::DoNotOptimize(sum);
    });
    arith::GaussianBlockSampler sampler;
    arith::BlockRng block_rng(19);
    const auto sampler_ns_for = [&](const char* backend) {
      const BackendScope scope(backend);
      return time_ns_per_item(kVariates, [&] {
        sampler.fill(block_rng, variates.data(), kVariates);
        benchmark::DoNotOptimize(variates.data());
      });
    };
    const double zig_scalar_ns = sampler_ns_for("scalar");
    const double zig_best_ns = sampler_ns_for("auto");
    harness::JsonObject sampler_record;
    sampler_record.add("std_normal_percall_ns_per_variate", std_ns);
    sampler_record.add("ziggurat_block_scalar_ns_per_variate", zig_scalar_ns);
    sampler_record.add("ziggurat_block_ns_per_variate", zig_best_ns);
    sampler_record.add("backend", best);
    sampler_record.add("speedup_vs_std", zig_best_ns > 0 ? std_ns / zig_best_ns : 0.0);

    std::string fills;
    bool first = true;
    for (const int width : {64, 512}) {
      arith::GaussianTwosSource source(width, arith::GaussianParams{});
      PerCallNormalTwosSource reference(width);
      arith::BitSlicedBatch batch(width, now_w);
      const std::uint64_t lanes = static_cast<std::uint64_t>(batch.lanes());
      const BackendScope scope("auto");
      arith::BlockRng fill_rng(23);
      const double fill_ns = time_ns_per_item(lanes, [&] {
        source.fill_batch(fill_rng, batch);
        benchmark::DoNotOptimize(batch.a());
      });
      arith::BlockRng ref_rng(23);
      const double before_ns = time_ns_per_item(lanes, [&] {
        reference.fill_batch(ref_rng, batch);
        benchmark::DoNotOptimize(batch.a());
      });
      harness::JsonObject record;
      record.add("workload", "gaussian-twos-fill-batch-n" + std::to_string(width));
      record.add("percall_std_ns_per_sample", before_ns);
      record.add("ns_per_sample", fill_ns);
      record.add("backend", best);
      record.add("lane_words", now_w);
      record.add("speedup", fill_ns > 0 ? before_ns / fill_ns : 0.0);
      if (!first) fills += ", ";
      fills += record.render_line();
      first = false;
    }

    // End to end on the table7.1 shape (VLCSA error rates, two's-complement
    // Gaussian operands): the PR 6 baseline is the per-call source at PR 6's
    // defaults (kDefaultLaneWords, auto dispatch) — its cost was dominated
    // by per-sample std::normal draws and ApInt transposes, which is exactly
    // what the block ziggurat + direct-to-plane fill removes.
    std::string ends;
    first = true;
    for (const int width : {64, 512}) {
      PerCallNormalTwosSource reference(width);
      const double base_ns =
          end_to_end_source_ns(width, reference, arith::kDefaultLaneWords, "auto");
      auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, width);
      const double now_ns = end_to_end_source_ns(width, *source, 0, "auto");
      harness::JsonObject record;
      record.add("workload", "table7.1-gauss2c-n" + std::to_string(width));
      record.add("pr6_percall_ns_per_sample", base_ns);
      record.add("ns_per_sample", now_ns);
      record.add("backend", best);
      record.add("lane_words", now_w);
      const double speedup = now_ns > 0 ? base_ns / now_ns : 0.0;
      record.add("speedup_vs_pr6", speedup);
      if (width == 64) gauss_end_to_end_speedup_n64 = speedup;
      if (!first) ends += ", ";
      ends += record.render_line();
      first = false;
    }

    harness::JsonObject gaussian;
    gaussian.add_json("sampler", sampler_record.render_line());
    gaussian.add_json("fill_batch", "[" + fills + "]");
    gaussian.add_json("end_to_end", "[" + ends + "]");
    gaussian_section = gaussian.render_line();
  }

  // The service daemon's cached-hit request path with observability off vs
  // with the trace log enabled.  The untraced row is the overhead gate for
  // the tracing subsystem: a request that does not mention "trace" must cost
  // what it did before trace.cpp existed (one substring scan, disabled-branch
  // stage guards), so `traced_overhead_ratio` near 1.0 for the *untraced*
  // row's trajectory across PRs is the regression to watch.
  std::string service_section;
  double service_hit_ns = 0.0;
  {
    const auto cached_hit_ns = [](bool traced) {
      service::ServiceConfig config;
      config.threads = 1;
      std::filesystem::path trace_path;
      if (traced) {
        trace_path = std::filesystem::temp_directory_path() / "vlcsa_perf_trace.jsonl";
        config.trace_log = trace_path.string();
      }
      service::ExperimentService service(config);
      const std::string line =
          "{\"request\": \"run\", \"experiment\": \"table7.1/n64\", "
          "\"samples\": 4096, \"seed\": 3}";
      if (!service.handle_line(line).ok) return 0.0;  // warm the memory tier
      const double ns = time_ns_per_item(1, [&] {
        benchmark::DoNotOptimize(service.handle_line(line));
      });
      if (traced) {
        std::error_code ec;
        std::filesystem::remove(trace_path, ec);
        std::filesystem::remove(trace_path.string() + ".1", ec);
      }
      return ns;
    };
    const double off_ns = cached_hit_ns(false);
    const double on_ns = cached_hit_ns(true);
    service_hit_ns = off_ns;
    harness::JsonObject record;
    record.add("workload", "service-cached-hit");
    record.add("ns_per_request", off_ns);
    record.add("traced_ns_per_request", on_ns);
    record.add("traced_overhead_ratio", off_ns > 0 ? on_ns / off_ns : 0.0);
    service_section = record.render_line();
  }

  harness::JsonObject root;
  root.add("schema", "vlcsa-perf-5");
  root.add("backend_best", best);
  root.add("lane_words_default", now_w);
  root.add_json("kernels", "[" + kernels + "]");
  root.add_json("rng", rng_section);
  root.add_json("gaussian", gaussian_section);
  root.add_json("model_eval", "[" + model_eval + "]");
  root.add_json("end_to_end", "[" + end_to_end + "]");
  root.add_json("service", service_section);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  out << root.render_line() << "\n";
  std::cout << "wrote " << path << " (backend " << best << "; n512 model-eval speedup "
            << model_speedup_n512 << "x, end-to-end " << end_to_end_speedup_n512
            << "x; gaussian table7.1 n64 vs PR 6 " << gauss_end_to_end_speedup_n64
            << "x; service cached hit " << service_hit_ns << " ns)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strict --json=FILE extraction; everything else goes to google-benchmark.
  std::string json_path;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::cerr << "error: --json requires a file path\n";
        return 2;
      }
      continue;
    }
    rest.push_back(argv[i]);
  }
  if (!json_path.empty()) return write_perf_json(json_path);

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
