#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace vlcsa::service {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Blocking full-buffer send; MSG_NOSIGNAL so a peer that hung up yields an
/// error return instead of SIGPIPE killing the daemon.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `buffer` contains a '\n'; returns false on EOF/error before
/// a complete line.  On success `line` holds the line without the newline.
bool recv_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-line
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.empty()) {
    error = "socket path is empty";
    return false;
  }
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long (max " + std::to_string(sizeof(addr.sun_path) - 1) +
            " bytes): " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

SocketServer::SocketServer(std::string socket_path, ExperimentService& service, int workers)
    : socket_path_(std::move(socket_path)),
      service_(service),
      workers_(workers < 1 ? 1 : workers) {}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
}

std::string SocketServer::listen_or_error() {
  sockaddr_un addr{};
  std::string error;
  if (!fill_sockaddr(socket_path_, addr, error)) return error;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_message("socket");
  ::unlink(socket_path_.c_str());  // stale socket from a previous daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return errno_message("bind " + socket_path_);
  }
  if (::listen(listen_fd_, 16) < 0) return errno_message("listen " + socket_path_);
  return {};
}

void SocketServer::request_stop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = true;
  // Workers may be blocked in recv() on an open conversation and would
  // otherwise never observe the stop; half-closing every active connection
  // makes their next recv() return 0, ending the conversation.  Safe under
  // the lock: an fd is removed from active_ (and closed) under this same
  // lock, so no shutdown() can hit a recycled descriptor.
  for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  queue_cv_.notify_all();
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  std::string line;
  while (recv_line(fd, buffer, line)) {
    if (line.empty()) continue;
    const ExperimentService::Reply reply = service_.handle_line(line);
    if (!send_all(fd, reply.line + "\n")) break;
    if (reply.shutdown) {
      request_stop();
      break;
    }
  }
}

void SocketServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // queued connections are closed unserved by serve()
      fd = pending_.front();
      pending_.pop_front();
      active_.push_back(fd);
    }
    handle_connection(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(std::find(active_.begin(), active_.end(), fd));
      ::close(fd);
    }
  }
}

std::string SocketServer::serve() {
  if (listen_fd_ < 0) {
    if (std::string error = listen_or_error(); !error.empty()) return error;
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) pool.emplace_back([this] { worker_loop(); });

  // Accept with a poll timeout so a stop requested from a worker (shutdown
  // request) is noticed within one tick even with no incoming connection.
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      request_stop();
      for (auto& worker : pool) worker.join();
      return errno_message("poll");
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      request_stop();
      for (auto& worker : pool) worker.join();
      return errno_message("accept");
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }

  queue_cv_.notify_all();
  for (auto& worker : pool) worker.join();
  // Connections still queued after stop are closed unserved.
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
  return {};
}

UnixClient::~UnixClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string UnixClient::connect_or_error(const std::string& socket_path, int timeout_ms) {
  sockaddr_un addr{};
  std::string error;
  if (!fill_sockaddr(socket_path, addr, error)) return error;

  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return errno_message("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return {};
    }
    const std::string connect_error = errno_message("connect " + socket_path);
    ::close(fd_);
    fd_ = -1;
    if (Clock::now() >= deadline) return connect_error;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::string UnixClient::roundtrip(const std::string& request_line, std::string& response) {
  if (fd_ < 0) return "not connected";
  if (!send_all(fd_, request_line + "\n")) return errno_message("send");
  if (!recv_line(fd_, buffer_, response)) {
    return "connection closed before a response line arrived";
  }
  return {};
}

}  // namespace vlcsa::service
