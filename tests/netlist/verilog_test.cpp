#include "netlist/verilog.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vlcsa::netlist {
namespace {

TEST(Verilog, EmitsModuleWithScalarPorts) {
  Netlist nl("half_adder");
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("s", nl.xor_(a, b));
  nl.add_output("c", nl.and_(a, b));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module half_adder (a, b, s, c);"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output s;"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("&"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, CollapsesIndexedNamesIntoVectors) {
  Netlist nl("vec");
  const Signal a0 = nl.add_input("a[0]");
  const Signal a1 = nl.add_input("a[1]");
  nl.add_output("y[0]", nl.and_(a0, a1));
  nl.add_output("y[1]", nl.or_(a0, a1));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("input [1:0] a;"), std::string::npos);
  EXPECT_NE(v.find("output [1:0] y;"), std::string::npos);
  EXPECT_NE(v.find("assign y[0]"), std::string::npos);
  EXPECT_NE(v.find("assign y[1]"), std::string::npos);
}

TEST(Verilog, ConstantsAndMux) {
  Netlist nl("m");
  const Signal s = nl.add_input("s");
  const Signal d0 = nl.add_input("d0");
  const Signal d1 = nl.add_input("d1");
  nl.add_output("y", nl.mux(s, d0, d1));
  nl.add_output("zero", nl.constant(false));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("? "), std::string::npos);  // ternary mux
  EXPECT_NE(v.find("1'b0"), std::string::npos);
}

TEST(Verilog, SanitizesHostileNames) {
  Netlist nl("top-level design!");
  const Signal a = nl.add_input("in put");
  nl.add_output("out.put", nl.not_(a));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module top_level_design_"), std::string::npos);
  EXPECT_NE(v.find("in_put"), std::string::npos);
  EXPECT_NE(v.find("out_put"), std::string::npos);
  EXPECT_EQ(v.find("in put"), std::string::npos);
}

TEST(Verilog, EveryGateKindEmits) {
  Netlist nl("all_gates");
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("o0", nl.buf(a));
  nl.add_output("o1", nl.not_(a));
  nl.add_output("o2", nl.and_(a, b));
  nl.add_output("o3", nl.or_(a, b));
  nl.add_output("o4", nl.nand_(a, b));
  nl.add_output("o5", nl.nor_(a, b));
  nl.add_output("o6", nl.xor_(a, b));
  nl.add_output("o7", nl.xnor_(a, b));
  nl.add_output("o8", nl.mux(a, b, nl.constant(true)));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("~("), std::string::npos);   // nand/nor/xnor
  EXPECT_NE(v.find("1'b1"), std::string::npos);
  // Every output must be assigned exactly once.
  for (int i = 0; i <= 8; ++i) {
    const std::string needle = "assign o" + std::to_string(i) + " = ";
    EXPECT_NE(v.find(needle), std::string::npos) << needle;
  }
}

TEST(Verilog, VectorIndexGapsStillDeclareFullRange) {
  Netlist nl("gap");
  const Signal a = nl.add_input("a[0]");
  const Signal b = nl.add_input("a[7]");  // sparse indices
  nl.add_output("y", nl.and_(a, b));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("input [7:0] a;"), std::string::npos);
}

}  // namespace
}  // namespace vlcsa::netlist
