#include "speculative/multi_operand.hpp"

#include <gtest/gtest.h>

#include <random>

#include "arith/distributions.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;

TEST(CarrySaveCompress, PreservesSumModulo) {
  vlcsa::arith::BlockRng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto a = ApInt::random(48, rng);
    const auto b = ApInt::random(48, rng);
    const auto c = ApInt::random(48, rng);
    const auto [s, carry] = carry_save_compress(a, b, c);
    EXPECT_EQ(s + carry, (a + b) + c);
  }
}

TEST(CarrySaveReduce, EdgeCounts) {
  const int width = 32;
  vlcsa::arith::BlockRng rng(2);
  // 0 operands -> zero.
  {
    const auto [s, c] = carry_save_reduce({}, width);
    EXPECT_TRUE(s.is_zero());
    EXPECT_TRUE(c.is_zero());
  }
  // 1 operand -> itself.
  {
    const std::vector<ApInt> ops{ApInt::random(width, rng)};
    const auto [s, c] = carry_save_reduce(ops, width);
    EXPECT_EQ(s, ops[0]);
    EXPECT_TRUE(c.is_zero());
  }
  // 2 operands -> passthrough.
  {
    const std::vector<ApInt> ops{ApInt::random(width, rng), ApInt::random(width, rng)};
    const auto [s, c] = carry_save_reduce(ops, width);
    EXPECT_EQ(s + c, ops[0] + ops[1]);
  }
}

TEST(CarrySaveReduce, RejectsWidthMismatch) {
  const std::vector<ApInt> ops{ApInt(16), ApInt(32), ApInt(16)};
  EXPECT_THROW((void)carry_save_reduce(ops, 16), std::invalid_argument);
}

class CarrySaveReduceTest : public ::testing::TestWithParam<int> {};

TEST_P(CarrySaveReduceTest, SumPreservedForManyOperands) {
  const int count = GetParam();
  const int width = 40;
  vlcsa::arith::BlockRng rng(100 + static_cast<unsigned>(count));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ApInt> ops;
    ApInt expected(width);
    for (int i = 0; i < count; ++i) {
      ops.push_back(ApInt::random(width, rng));
      expected = expected + ops.back();
    }
    const auto [s, c] = carry_save_reduce(ops, width);
    EXPECT_EQ(s + c, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, CarrySaveReduceTest,
                         ::testing::Values(3, 4, 5, 7, 8, 15, 16, 31, 33));

TEST(CsaTreeLevels, MatchesKnownDepths) {
  EXPECT_EQ(csa_tree_levels(2), 0);
  EXPECT_EQ(csa_tree_levels(3), 1);
  EXPECT_EQ(csa_tree_levels(4), 2);
  EXPECT_EQ(csa_tree_levels(6), 3);
  EXPECT_EQ(csa_tree_levels(9), 4);
  // Wallace-depth growth: levels grow ~log_{3/2}(m).
  EXPECT_LE(csa_tree_levels(64), 10);
}

TEST(MultiOperandAdder, AlwaysExactOverRandomStreams) {
  const int width = 64;
  const MultiOperandAdder adder({width, 10, ScsaVariant::kScsa2});
  vlcsa::arith::BlockRng rng(7);
  int stalls = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const int count = 3 + static_cast<int>(rng() % 14);
    std::vector<ApInt> ops;
    ApInt expected(width);
    for (int i = 0; i < count; ++i) {
      ops.push_back(ApInt::random(width, rng));
      expected = expected + ops.back();
    }
    const auto result = adder.add(ops);
    ASSERT_EQ(result.sum, expected);
    ASSERT_EQ(result.cycles, result.stalled ? 2 : 1);
    stalls += result.stalled ? 1 : 0;
  }
  // CSA outputs are far from uniform; just require both paths exercised.
  EXPECT_GT(stalls, 0);
}

TEST(MultiOperandAdder, GaussianOperandsStayExact) {
  const int width = 64;
  const MultiOperandAdder adder({width, 13, ScsaVariant::kScsa2});
  arith::GaussianTwosSource source(width, arith::GaussianParams{0.0, 1048576.0});
  vlcsa::arith::BlockRng rng(9);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<ApInt> ops;
    ApInt expected(width);
    for (int i = 0; i < 8; ++i) {
      auto [a, b] = source.next(rng);
      ops.push_back(a);
      ops.push_back(b);
      expected = (expected + a) + b;
    }
    const auto result = adder.add(ops);
    ASSERT_EQ(result.sum, expected);
  }
}

}  // namespace
}  // namespace vlcsa::spec
