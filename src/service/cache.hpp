#pragma once
// Two-tier result cache for the experiment service daemon (service.hpp).
//
// A cache value is one rendered result record (a single-line JSON object,
// JsonObject::render_line()) keyed on the four inputs a record is a pure
// function of: (experiment name, resolved sample count, seed, eval path).
// The registry + sharded engine guarantee records are deterministic and
// thread-count-invariant, so a hit may be returned byte-for-byte in place of
// recomputation — the contract the service smoke test enforces with cmp.
//
// Tier 1 is an in-memory LRU of bounded entry count.  Tier 2 is an on-disk
// store (one file per key, file content = record + '\n') that survives
// daemon restarts; a disk hit is validated by re-parsing the record with the
// strict JSON parser and checking that its embedded key fields match the
// request, so a corrupted or foreign file degrades to a miss instead of
// serving wrong results.  The disk tier can be capped (`max_disk_bytes`):
// when a store pushes the directory past the cap, the oldest records (by
// last write time) are evicted until it fits again, so a long-running
// daemon's cache directory stays bounded.
//
// The disk tier is safe to share between replicas (fleet.hpp): stores write
// a per-process-unique `.tmp` and rename under an advisory directory flock,
// eviction walks run under the same flock so two replicas never double-count
// bytes, startup reaping is mtime-gated so a peer's in-flight `.tmp` is
// never swept, and `try_acquire_lease` provides cross-process single-flight
// (one replica computes a cold key, the others wait for its record).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/fleet.hpp"

namespace vlcsa::service {

/// What a result record is a pure function of.
struct CacheKey {
  std::string experiment;
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  std::string eval_path;  // "batched" / "scalar" (to_string(EvalPath))
  /// Version tag for experiment families whose draw streams have changed
  /// incompatibly (empty for families whose streams never moved — keys,
  /// file names, and record matching are byte-identical to the pre-field
  /// era then).  Currently only the crypto chain-profile workloads carry
  /// one: their internal seeding moved onto the shared seed_seq helper
  /// with the BlockRng subsystem, so records written before that swap
  /// must miss instead of being served as silently stale hits.
  std::string stream_version;
};

/// Monotonic counters, exposed through the protocol's cache-stats request.
struct CacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t coalesced_hits = 0;  // followers served by an in-flight leader
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_evictions = 0;  // record files removed by the byte cap
  std::uint64_t invalid_disk_records = 0;  // corrupt/mismatched files seen
  std::uint64_t lease_waits = 0;      // misses that waited on another replica's lease
  std::uint64_t lease_takeovers = 0;  // stale (crashed-holder) leases reaped
  std::uint64_t memory_entries = 0;  // current, not monotonic; filled by stats()
  std::uint64_t disk_bytes = 0;      // current on-disk record bytes; by stats()
};

class ResultCache {
 public:
  /// `disk_dir` empty disables the disk tier; otherwise the directory is
  /// created if absent.  `memory_capacity` 0 disables the memory tier.
  /// `max_disk_bytes` 0 leaves the disk tier unbounded; otherwise stores
  /// evict the oldest record files until total record bytes fit the cap.
  /// `lease_stale_ms` bounds how old a foreign `.tmp`/`.lease` file may be
  /// before it is presumed crashed and reaped (cross-replica staleness
  /// takeover); 0 disables takeover entirely.
  ResultCache(std::string disk_dir, std::size_t memory_capacity,
              std::uint64_t max_disk_bytes = 0, int lease_stale_ms = 30000);

  enum class Tier { kMemory, kDisk, kMiss };

  struct Lookup {
    Tier tier = Tier::kMiss;
    std::string record;  // set on hits, byte-identical to what put() stored
  };

  /// Looks `key` up memory-first; a disk hit is promoted into memory.
  [[nodiscard]] Lookup get(const CacheKey& key);

  /// Stores `record` in both tiers (best effort on disk: an unwritable
  /// directory degrades the cache, never the result).
  void put(const CacheKey& key, const std::string& record);

  [[nodiscard]] CacheStats stats() const;

  /// Counts one coalesced hit: a request that was served by waiting on an
  /// identical in-flight computation instead of recomputing.  Coalescing
  /// itself lives in the service's single-flight map (service.cpp run_one);
  /// the counter lives here so cache-stats reports all tiers together.
  void record_coalesced_hit();

  [[nodiscard]] const std::string& disk_dir() const { return disk_dir_; }
  [[nodiscard]] std::size_t memory_capacity() const { return memory_capacity_; }
  [[nodiscard]] std::uint64_t max_disk_bytes() const { return max_disk_bytes_; }

  /// The file a key is stored under: "<sanitized-key>-<fnv1a64>.json" inside
  /// disk_dir.  Exposed so tests and the CI smoke step can find records.
  [[nodiscard]] std::string file_path(const CacheKey& key) const;

  /// The key's compute-lease file (file_path + ".lease") — what
  /// try_acquire_lease creates and waiters poll.
  [[nodiscard]] std::string lease_path(const CacheKey& key) const;

  /// Cross-process single-flight: attempts the key's compute lease.
  /// kAcquired = we compute (release after put); kBusy = another replica is
  /// computing, wait on lease_path; kDisabled = no disk tier, just compute.
  /// Counts takeovers of stale leases into the stats.
  [[nodiscard]] fleet::ComputeLease try_acquire_lease(const CacheKey& key);

  /// Counts one lease wait: a miss that parked behind another replica's
  /// compute lease instead of recomputing (the cross-process analogue of
  /// record_coalesced_hit).
  void record_lease_wait();

  [[nodiscard]] int lease_stale_ms() const { return lease_stale_ms_; }

 private:
  void promote_locked(const std::string& map_key, const std::string& record);
  /// Sums the sizes of all ".json" record files in disk_dir_.
  [[nodiscard]] std::uint64_t disk_usage_bytes() const;
  /// Deletes oldest-first (by last write time) until the tier fits the cap;
  /// called with disk_mutex_ + the cross-process dir lock held.
  void enforce_disk_cap_locked();
  /// Removes `.tmp`/`.lease` scratch files older than lease_stale_ms_
  /// (crashed writers); fresh ones belong to a live peer and are kept.
  /// Called with disk_mutex_ + the dir lock held (startup).
  void reap_stale_scratch_locked();
  /// The advisory cross-process lock file (".vlcsa.lock" inside disk_dir_).
  [[nodiscard]] std::string dir_lock_path() const;

  std::string disk_dir_;
  std::size_t memory_capacity_;
  std::uint64_t max_disk_bytes_;
  int lease_stale_ms_;

  // Serializes disk-tier writes and cap enforcement (separate from mutex_ so
  // slow filesystem work never blocks memory-tier lookups).
  std::mutex disk_mutex_;
  // Approximate record bytes on disk, guarded by disk_mutex_; resynced by
  // every enforcement walk.  Lets under-cap stores skip the directory scan.
  std::uint64_t disk_bytes_estimate_ = 0;

  mutable std::mutex mutex_;
  // LRU: most recent at the front; map values point into the list.
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<std::string, std::list<std::pair<std::string, std::string>>::iterator>
      index_;
  CacheStats stats_;
};

/// The canonical flat encoding of a key ("experiment|samples|seed|path") —
/// the memory tier's map key.  Exposed for testing.
[[nodiscard]] std::string cache_map_key(const CacheKey& key);

/// True when `record` is a valid single JSON object whose "experiment",
/// "samples", "seed" and "eval_path" fields match `key` exactly — the disk
/// tier's validation predicate.  Exposed for testing.
[[nodiscard]] bool record_matches_key(const std::string& record, const CacheKey& key);

}  // namespace vlcsa::service
