#include "speculative/scsa_netlist.hpp"

#include <string>
#include <vector>

namespace vlcsa::spec {

namespace {

using adders::ConditionalSums;
using adders::GP;
using netlist::Signal;

struct SpecDatapath {
  std::vector<Signal> a, b;
  std::vector<ConditionalSums> windows;  // per-window conditional results
  // S*,0 bank.
  std::vector<Signal> sum0;
  Signal cout0{};
  // S*,1 bank (only meaningful for variant 2, but cheap to form).
  std::vector<Signal> sum1;
  Signal cout1{};
};

/// Builds the window adders and both speculative banks over existing
/// operand signals.
SpecDatapath build_spec_datapath_over(Netlist& nl, const WindowLayout& layout,
                                      std::span<const Signal> a, std::span<const Signal> b,
                                      ScsaVariant variant, const ScsaNetlistOptions& opts) {
  SpecDatapath dp;
  dp.a.assign(a.begin(), a.end());
  dp.b.assign(b.begin(), b.end());
  const int n = layout.width();
  const int m = layout.count();
  dp.windows.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout.window(i);
    const std::span<const Signal> a_win{dp.a.data() + pos, static_cast<std::size_t>(size)};
    const std::span<const Signal> b_win{dp.b.data() + pos, static_cast<std::size_t>(size)};
    dp.windows.push_back(
        adders::conditional_window_sums(nl, a_win, b_win, opts.window_topology));
  }

  dp.sum0.resize(static_cast<std::size_t>(n));
  dp.sum1.resize(static_cast<std::size_t>(n));

  // Window 0 has carry-in 0: both banks take its sum0 directly.
  // Window i > 0: bank 0 selects with the previous window's group generate
  // (the truncated speculation, eq. 4.3); bank 1 selects with the previous
  // window's carry-out-assuming-carry-in-1 (Fig 6.6) — except window 1,
  // whose S*,1 select is window 0's *exact* carry-out G0 (see scsa.cpp and
  // DESIGN.md on this deviation from the thesis's literal equations).
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout.window(i);
    const ConditionalSums& win = dp.windows[static_cast<std::size_t>(i)];
    Signal sel0{}, sel1{};
    if (i > 0) {
      const ConditionalSums& prev = dp.windows[static_cast<std::size_t>(i - 1)];
      sel0 = prev.cout0;  // == prev group generate
      sel1 = (i == 1) ? prev.cout0 : prev.cout1;
    }
    for (int j = 0; j < size; ++j) {
      const std::size_t bit = static_cast<std::size_t>(pos + j);
      const Signal s0 = win.sum0[static_cast<std::size_t>(j)];
      const Signal s1 = win.sum1[static_cast<std::size_t>(j)];
      dp.sum0[bit] = (i == 0) ? s0 : nl.mux(sel0, s0, s1);
      dp.sum1[bit] = (i == 0) ? s0 : nl.mux(sel1, s0, s1);
    }
    dp.cout0 = (i == 0) ? win.cout0 : nl.mux(sel0, win.cout0, win.cout1);
    dp.cout1 = (i == 0) ? win.cout0 : nl.mux(sel1, win.cout0, win.cout1);
  }

  (void)variant;  // both banks are formed; variant decides which get ports
  return dp;
}

void add_spec_outputs(Netlist& nl, const SpecDatapath& dp, ScsaVariant variant) {
  for (std::size_t i = 0; i < dp.sum0.size(); ++i) {
    nl.add_output("sum[" + std::to_string(i) + "]", dp.sum0[i], kGroupSpec);
  }
  nl.add_output("cout", dp.cout0, kGroupSpec);
  if (variant == ScsaVariant::kScsa2) {
    for (std::size_t i = 0; i < dp.sum1.size(); ++i) {
      nl.add_output("sum1[" + std::to_string(i) + "]", dp.sum1[i], kGroupSpec);
    }
    nl.add_output("cout1", dp.cout1, kGroupSpec);
  }
}

/// ERR0 (Fig 5.1): OR over window pairs of P(i+1) & G(i).  The OR tree is
/// DeMorgan-paired so detection stays no slower than speculation — the
/// property Ch. 5.1 builds the whole design on.
Signal build_err0(Netlist& nl, const SpecDatapath& dp) {
  std::vector<Signal> terms;
  for (std::size_t i = 0; i + 1 < dp.windows.size(); ++i) {
    terms.push_back(nl.and_(dp.windows[i + 1].group_p, dp.windows[i].group_g_light));
  }
  return nl.or_reduce_fast(terms);
}

/// ERR1 (Fig 6.7): OR over window pairs of ~P(i+1) & P(i) — a propagate run
/// that dies before reaching the MSB window.  The i = 0 term is omitted
/// because window 1's S*,1 select is exact (see build_spec_datapath).
Signal build_err1(Netlist& nl, const SpecDatapath& dp) {
  std::vector<Signal> terms;
  for (std::size_t i = 1; i + 1 < dp.windows.size(); ++i) {
    terms.push_back(nl.and_(nl.not_(dp.windows[i + 1].group_p), dp.windows[i].group_p));
  }
  return nl.or_reduce_fast(terms);
}

/// Error recovery (Fig 5.2): a ceil(n/k)-bit prefix adder over the window
/// group (G, P) signals yields the true carry into every window; the
/// already-computed conditional sums are then re-selected.
struct RecoverySignals {
  std::vector<Signal> sum;
  Signal cout{};
};

RecoverySignals build_recovery_signals(Netlist& nl, const WindowLayout& layout,
                                       const SpecDatapath& dp, PrefixTopology topology) {
  const int m = layout.count();
  std::vector<GP> leaves;
  leaves.reserve(static_cast<std::size_t>(m));
  for (const auto& win : dp.windows) leaves.push_back(GP{win.group_g, win.group_p});
  const std::vector<GP> prefix = adders::build_prefix_network(nl, std::move(leaves), topology);

  RecoverySignals rec;
  rec.sum.resize(static_cast<std::size_t>(layout.width()));
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout.window(i);
    const ConditionalSums& win = dp.windows[static_cast<std::size_t>(i)];
    const Signal carry_in = (i == 0) ? Signal{} : prefix[static_cast<std::size_t>(i - 1)].g;
    for (int j = 0; j < size; ++j) {
      const Signal s0 = win.sum0[static_cast<std::size_t>(j)];
      const Signal s1 = win.sum1[static_cast<std::size_t>(j)];
      rec.sum[static_cast<std::size_t>(pos + j)] =
          (i == 0) ? nl.buf(s0) : nl.mux(carry_in, s0, s1);
    }
  }
  rec.cout = prefix[static_cast<std::size_t>(m - 1)].g;
  return rec;
}

/// Operand inputs a[i]/b[i].
std::pair<std::vector<Signal>, std::vector<Signal>> make_operand_inputs(Netlist& nl, int n) {
  std::vector<Signal> a, b;
  a.reserve(static_cast<std::size_t>(n));
  b.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < n; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  return {std::move(a), std::move(b)};
}

}  // namespace

Netlist build_scsa_netlist(const ScsaConfig& config, ScsaVariant variant,
                           const ScsaNetlistOptions& opts) {
  const WindowLayout layout(config.width, config.window);
  Netlist nl(std::string(to_string(variant)) + "_" + std::to_string(config.width) + "_k" +
             std::to_string(config.window));
  const auto [a, b] = make_operand_inputs(nl, config.width);
  const SpecDatapath dp = build_spec_datapath_over(nl, layout, a, b, variant, opts);
  add_spec_outputs(nl, dp, variant);
  return nl;
}

VlcsaPorts build_vlcsa_on_signals(Netlist& nl, std::span<const Signal> a,
                                  std::span<const Signal> b, int window,
                                  ScsaVariant variant, const ScsaNetlistOptions& opts) {
  const WindowLayout layout(static_cast<int>(a.size()), window);
  const SpecDatapath dp = build_spec_datapath_over(nl, layout, a, b, variant, opts);

  VlcsaPorts ports;
  ports.sum0 = dp.sum0;
  ports.cout0 = dp.cout0;
  ports.sum1 = dp.sum1;
  ports.cout1 = dp.cout1;
  ports.err0 = build_err0(nl, dp);
  if (variant == ScsaVariant::kScsa2) {
    ports.err1 = build_err1(nl, dp);
    ports.stall = nl.and_(ports.err0, ports.err1);
  } else {
    ports.err1 = nl.constant(false);
    ports.stall = ports.err0;
  }
  const RecoverySignals rec = build_recovery_signals(nl, layout, dp, opts.recovery_topology);
  ports.recovered = rec.sum;
  ports.recovered_cout = rec.cout;
  return ports;
}

Netlist build_vlcsa_netlist(const ScsaConfig& config, ScsaVariant variant,
                            const ScsaNetlistOptions& opts) {
  const std::string base = variant == ScsaVariant::kScsa1 ? "vlcsa1" : "vlcsa2";
  Netlist nl(base + "_" + std::to_string(config.width) + "_k" +
             std::to_string(config.window));
  const auto [a, b] = make_operand_inputs(nl, config.width);
  const VlcsaPorts ports = build_vlcsa_on_signals(nl, a, b, config.window, variant, opts);

  for (std::size_t i = 0; i < ports.sum0.size(); ++i) {
    nl.add_output("sum[" + std::to_string(i) + "]", ports.sum0[i], kGroupSpec);
  }
  nl.add_output("cout", ports.cout0, kGroupSpec);
  if (variant == ScsaVariant::kScsa2) {
    for (std::size_t i = 0; i < ports.sum1.size(); ++i) {
      nl.add_output("sum1[" + std::to_string(i) + "]", ports.sum1[i], kGroupSpec);
    }
    nl.add_output("cout1", ports.cout1, kGroupSpec);
  }
  nl.add_output("err0", ports.err0, kGroupDetect);
  if (variant == ScsaVariant::kScsa2) nl.add_output("err1", ports.err1, kGroupDetect);
  nl.add_output("stall", ports.stall, kGroupDetect);
  nl.add_output("valid", nl.not_(ports.stall), kGroupDetect);
  for (std::size_t i = 0; i < ports.recovered.size(); ++i) {
    nl.add_output("rec[" + std::to_string(i) + "]", ports.recovered[i], kGroupRecovery);
  }
  nl.add_output("rec_cout", ports.recovered_cout, kGroupRecovery);
  return nl;
}

}  // namespace vlcsa::spec
