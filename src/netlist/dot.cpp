#include "netlist/dot.hpp"

#include <map>
#include <ostream>
#include <sstream>

namespace vlcsa::netlist {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* group_color(const std::string& group) {
  if (group == "spec") return "lightblue";
  if (group == "detect") return "orange";
  if (group == "recovery") return "palegreen";
  return "lightgray";
}

}  // namespace

void emit_dot(const Netlist& nl, std::ostream& os) {
  os << "digraph \"" << escape(nl.name()) << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";

  for (std::uint32_t i = 0; i < nl.num_gates(); ++i) {
    const Gate& g = nl.gates()[i];
    if (g.kind == GateKind::kInput) continue;  // declared below with port names
    os << "  n" << i << " [";
    switch (g.kind) {
      case GateKind::kConst0:
        os << "shape=plaintext, label=\"0\"";
        break;
      case GateKind::kConst1:
        os << "shape=plaintext, label=\"1\"";
        break;
      default:
        os << "shape=ellipse, label=\"" << to_string(g.kind) << "\"";
        break;
    }
    os << "];\n";
  }
  for (const auto& port : nl.inputs()) {
    os << "  n" << port.signal.id << " [shape=box, style=filled, fillcolor=khaki, label=\""
       << escape(port.name) << "\"];\n";
  }

  for (std::uint32_t i = 0; i < nl.num_gates(); ++i) {
    const Gate& g = nl.gates()[i];
    const int pins = fanin_count(g.kind);
    for (int pin = 0; pin < pins; ++pin) {
      os << "  n" << g.fanin[static_cast<std::size_t>(pin)].id << " -> n" << i;
      if (g.kind == GateKind::kMux2) {
        os << " [label=\"" << (pin == 0 ? "sel" : (pin == 1 ? "0" : "1")) << "\"]";
      }
      os << ";\n";
    }
  }

  // Output markers (sequential node ids; port names go into labels only).
  int out_counter = 0;
  for (const auto& port : nl.outputs()) {
    os << "  o" << out_counter << " [shape=doublecircle, style=filled, fillcolor="
       << group_color(port.group) << ", label=\"" << escape(port.name) << "\"];\n";
    os << "  n" << port.signal.id << " -> o" << out_counter << ";\n";
    ++out_counter;
  }
  os << "}\n";
}

std::string to_dot(const Netlist& nl) {
  std::ostringstream os;
  emit_dot(nl, os);
  return os.str();
}

}  // namespace vlcsa::netlist
