#include "speculative/pipeline.hpp"

namespace vlcsa::spec {

PipelineStats VlcsaPipeline::run(arith::OperandSource& source, std::uint64_t count,
                                 std::uint64_t seed) const {
  arith::BlockRng rng = arith::make_stream_rng(seed);
  PipelineStats stats;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto [a, b] = source.next(rng);
    const auto step = model_.step(a, b);
    ++stats.additions;
    stats.cycles += static_cast<std::uint64_t>(step.cycles);
    if (step.stalled) ++stats.stalls;
    if (step.result != step.eval.exact || step.cout != step.eval.exact_cout) {
      ++stats.wrong_results;
    }
  }
  return stats;
}

}  // namespace vlcsa::spec
