// Tests for the request-tracing subsystem (service/trace.hpp) and its wiring
// through the service: span nesting/ordering/containment, the disabled
// collector as a no-op, JSONL log rotation, the "trace": true reply echo,
// the --trace-log and --access-log line shapes (every line must parse back
// through the repo's strict JSON parser), the --slow-ms flag, and the
// determinism boundary the ISSUE pins — a traced run's cached record is
// byte-identical to an untraced one.

#include "service/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"
#include "service/service.hpp"

namespace vlcsa::service {
namespace {

using harness::JsonParse;
using harness::JsonValue;
using harness::parse_json;

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_trace_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string temp_file(const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() / ("vlcsa_trace_test_" + tag);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".1");
  return path.string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string field(const JsonValue& object, const char* name) {
  const JsonValue* value = object.find(name);
  return value != nullptr && value->kind() == JsonValue::Kind::kString ? value->as_string()
                                                                       : std::string();
}

TEST(RequestTrace, DisabledCollectorIsANoOp) {
  RequestTrace trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.open("parse"), 0u);
  trace.close(0);  // handle from a disabled open must be ignored
  {
    const RequestTrace::Scope scope(trace, "render");
  }
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.render_spans(), "[]");
}

TEST(RequestTrace, SpansNestWithDepthOrderingAndContainment) {
  RequestTrace trace;
  trace.enable();
  const std::size_t root = trace.open("request");
  {
    const RequestTrace::Scope parse(trace, "parse");
  }
  {
    const RequestTrace::Scope run(trace, "engine-run");
    const RequestTrace::Scope inner(trace, "render");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  trace.close(root);

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "parse");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "engine-run");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[3].name, "render");
  EXPECT_EQ(spans[3].depth, 2);

  // Spans appear in open order; siblings do not overlap.
  EXPECT_LE(spans[1].start_us + spans[1].dur_us, spans[2].start_us);

  // Containment: both endpoints floor from one origin, so every child's
  // interval sits inside its parent's — the invariant the loadgen span-tree
  // validator leans on.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const TraceSpan& parent = spans[i].depth == 1 ? spans[0] : spans[i - 1];
    EXPECT_GE(spans[i].start_us, parent.start_us) << spans[i].name;
    EXPECT_LE(spans[i].start_us + spans[i].dur_us, parent.start_us + parent.dur_us)
        << spans[i].name;
  }
}

TEST(RequestTrace, RenderSpansParsesStrictly) {
  RequestTrace trace;
  trace.enable();
  const std::size_t root = trace.open("request");
  {
    const RequestTrace::Scope parse(trace, "parse");
  }
  trace.close(root);

  const JsonParse parsed = parse_json(trace.render_spans());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value.kind(), JsonValue::Kind::kArray);
  ASSERT_EQ(parsed.value.items().size(), 2u);
  for (const JsonValue& span : parsed.value.items()) {
    EXPECT_EQ(span.kind(), JsonValue::Kind::kObject);
    EXPECT_NE(span.find("name"), nullptr);
    EXPECT_NE(span.find("depth"), nullptr);
    EXPECT_NE(span.find("start_us"), nullptr);
    EXPECT_NE(span.find("dur_us"), nullptr);
  }
}

TEST(JsonlLog, WritesLinesAndRotatesAtTheCap) {
  const std::string path = temp_file("rotate.jsonl");
  JsonlLog log;
  ASSERT_EQ(log.open(path, 64), "");
  EXPECT_TRUE(log.enabled());

  const std::string line = R"({"n": 1, "pad": "xxxxxxxxxxxxxxxxxxxxxxxx"})";  // ~45 bytes
  log.write(line);   // fits
  log.write(line);   // would pass 64 -> rotate first
  log.write(line);   // would pass 64 again -> rotate again

  const std::vector<std::string> current = read_lines(path);
  const std::vector<std::string> previous = read_lines(path + ".1");
  ASSERT_EQ(current.size(), 1u);
  ASSERT_EQ(previous.size(), 1u);
  EXPECT_EQ(current[0], line);
  EXPECT_EQ(previous[0], line);
}

TEST(JsonlLog, WriteLandingExactlyOnTheCapDoesNotRotate) {
  const std::string path = temp_file("rotate_exact.jsonl");
  const std::string line = R"({"n": 1})";  // 9 bytes + newline
  // Cap sized so two writes land exactly on it: rotation triggers only when
  // a write would *pass* the cap, so the file is allowed to fill completely.
  JsonlLog log;
  ASSERT_EQ(log.open(path, 2 * (line.size() + 1)), "");
  log.write(line);
  log.write(line);  // lands exactly on max_bytes — must NOT rotate
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
  EXPECT_EQ(read_lines(path).size(), 2u);

  log.write(line);  // would pass the cap — now it rotates
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  EXPECT_EQ(read_lines(path + ".1").size(), 2u);
  EXPECT_EQ(read_lines(path).size(), 1u);
}

TEST(JsonlLog, RotationReplacesAPreExistingDotOne) {
  const std::string path = temp_file("rotate_stale.jsonl");
  {
    // A leftover previous generation from an earlier daemon run.
    std::ofstream stale(path + ".1");
    stale << "{\"stale\": true}\n";
  }
  const std::string line = R"({"n": 1, "pad": "xxxxxxxxxxxxxxxxxxxxxxxx"})";
  JsonlLog log;
  ASSERT_EQ(log.open(path, 64), "");
  log.write(line);
  log.write(line);  // passes the cap — rotation must replace the stale .1

  const std::vector<std::string> previous = read_lines(path + ".1");
  ASSERT_EQ(previous.size(), 1u);
  EXPECT_EQ(previous[0], line);  // not the stale sentinel
  EXPECT_EQ(read_lines(path).size(), 1u);
}

TEST(JsonlLog, ConcurrentWritersNeverTearLines) {
  const std::string path = temp_file("rotate_concurrent.jsonl");
  JsonlLog log;
  ASSERT_EQ(log.open(path), "");  // unbounded: every line survives

  // Two writers with different line lengths interleave; line-level locking
  // must keep every write a whole line (a torn write would interleave the
  // two shapes mid-line and fail to parse).
  constexpr int kPerWriter = 500;
  const auto writer = [&log](int id) {
    for (int n = 0; n < kPerWriter; ++n) {
      log.write("{\"writer\": " + std::to_string(id) + ", \"n\": " + std::to_string(n) +
                (id == 0 ? ", \"pad\": \"xxxxxxxxxxxxxxxx\"}" : "}"));
    }
  };
  std::thread a(writer, 0);
  std::thread b(writer, 1);
  a.join();
  b.join();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u * kPerWriter);
  std::array<std::vector<bool>, 2> seen;
  seen[0].assign(kPerWriter, false);
  seen[1].assign(kPerWriter, false);
  for (const std::string& line : lines) {
    const JsonParse parsed = parse_json(line);
    ASSERT_TRUE(parsed.ok()) << "torn line: " << line;
    const JsonValue* writer_id = parsed.value.find("writer");
    const JsonValue* n = parsed.value.find("n");
    ASSERT_NE(writer_id, nullptr);
    ASSERT_NE(n, nullptr);
    seen[static_cast<std::size_t>(writer_id->as_double())]
        [static_cast<std::size_t>(n->as_double())] = true;
  }
  for (const auto& writer_seen : seen) {
    for (const bool hit : writer_seen) EXPECT_TRUE(hit);
  }
}

TEST(JsonlLog, OpenFailureReportsThePath) {
  JsonlLog log;
  const std::string error = log.open("/nonexistent-dir/sub/trace.jsonl");
  EXPECT_NE(error.find("/nonexistent-dir"), std::string::npos) << error;
  EXPECT_FALSE(log.enabled());
}

TEST(TraceIdGenerator, IdsAreUniqueAndPrefixed) {
  TraceIdGenerator ids;
  const std::string a = ids.next();
  const std::string b = ids.next();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("t-", 0), 0u) << a;
  // Same generator, same prefix; only the counter differs.
  EXPECT_EQ(a.substr(0, a.rfind('-')), b.substr(0, b.rfind('-')));
}

TEST(ExperimentService, TraceEchoCarriesIdAndSpans) {
  ServiceConfig config;
  config.threads = 1;
  ExperimentService service(config);
  const auto reply = service.handle_line(
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "trace": true})");
  const JsonParse parsed = parse_json(reply.line);
  ASSERT_TRUE(parsed.ok()) << reply.line << " -> " << parsed.error;
  EXPECT_EQ(field(parsed.value, "status"), "ok");
  EXPECT_FALSE(field(parsed.value, "trace_id").empty());

  const JsonValue* spans = parsed.value.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->kind(), JsonValue::Kind::kArray);
  std::vector<std::string> names;
  for (const JsonValue& span : spans->items()) names.push_back(field(span, "name"));
  // A cold run covers the whole staged path.
  const std::vector<std::string> expected = {"request",    "parse",        "cache-lookup",
                                             "engine-run", "record-write", "render"};
  EXPECT_EQ(names, expected);

  // "trace": false and an untraced request both stay echo-free.
  for (const char* line :
       {R"({"request": "metrics", "trace": false})", R"({"request": "metrics"})"}) {
    const JsonParse quiet = parse_json(service.handle_line(line).line);
    ASSERT_TRUE(quiet.ok());
    EXPECT_EQ(quiet.value.find("spans"), nullptr) << line;
  }
}

TEST(ExperimentService, SuppliedTraceIdIsEchoedVerbatim) {
  ExperimentService service({"", 64, 1});
  const auto reply = service.handle_line(
      R"({"request": "list", "trace": true, "trace_id": "corr-42"})");
  const JsonParse parsed = parse_json(reply.line);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(field(parsed.value, "trace_id"), "corr-42");
}

TEST(ExperimentService, TraceEnvelopeFieldsAreStrictlyValidated) {
  ExperimentService service({"", 64, 1});
  const auto expect_error = [&](const char* line, const char* needle) {
    const JsonParse parsed = parse_json(service.handle_line(line).line);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(field(parsed.value, "status"), "error") << line;
    EXPECT_NE(field(parsed.value, "error").find(needle), std::string::npos)
        << line << " -> " << field(parsed.value, "error");
  };
  expect_error(R"({"request": "metrics", "trace": "yes"})", "'trace' must be a boolean");
  expect_error(R"({"request": "metrics", "trace_id": 7})", "'trace_id' must be a string");
  expect_error(R"({"request": "metrics", "trace_id": ""})", "'trace_id' must be non-empty");
}

TEST(ExperimentService, TraceLogLinesParseStrictlyWithExpectedSpans) {
  const std::string trace_path = temp_file("tracelog.jsonl");
  ServiceConfig config;
  config.threads = 1;
  config.trace_log = trace_path;
  ExperimentService service(config);
  ASSERT_EQ(service.log_error(), "");

  const char* run = R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})";
  EXPECT_TRUE(service.handle_line(run).ok);  // miss
  EXPECT_TRUE(service.handle_line(run).ok);  // memory hit

  const std::vector<std::string> lines = read_lines(trace_path);
  ASSERT_EQ(lines.size(), 2u);

  const auto span_names = [](const JsonValue& entry) {
    std::vector<std::string> names;
    const JsonValue* spans = entry.find("spans");
    EXPECT_NE(spans, nullptr);
    if (spans != nullptr) {
      for (const JsonValue& span : spans->items()) {
        names.push_back(span.find("name")->as_string());
      }
    }
    return names;
  };

  const JsonParse miss = parse_json(lines[0]);
  ASSERT_TRUE(miss.ok()) << lines[0] << " -> " << miss.error;
  EXPECT_EQ(field(miss.value, "type"), "run");
  EXPECT_EQ(field(miss.value, "experiment"), "fig7.1/n64-k6");
  EXPECT_EQ(field(miss.value, "cache"), "miss");
  EXPECT_EQ(field(miss.value, "status"), "ok");
  EXPECT_FALSE(field(miss.value, "trace_id").empty());
  EXPECT_NE(miss.value.find("ts"), nullptr);
  EXPECT_NE(miss.value.find("wall_ms"), nullptr);
  EXPECT_EQ(span_names(miss.value),
            (std::vector<std::string>{"request", "parse", "cache-lookup", "engine-run",
                                      "record-write", "render"}));

  // A traced cold run carries the engine profile; totals must be coherent.
  const JsonValue* profile = miss.value.find("profile");
  ASSERT_NE(profile, nullptr);
  std::uint64_t samples = 0;
  ASSERT_TRUE(profile->find("samples")->to_u64(samples));
  EXPECT_EQ(samples, 2000u);

  const JsonParse hit = parse_json(lines[1]);
  ASSERT_TRUE(hit.ok()) << lines[1] << " -> " << hit.error;
  EXPECT_EQ(field(hit.value, "cache"), "hit-memory");
  EXPECT_EQ(span_names(hit.value),
            (std::vector<std::string>{"request", "parse", "cache-lookup", "render"}));
  EXPECT_EQ(hit.value.find("profile"), nullptr);  // no engine run on a hit
}

TEST(ExperimentService, AccessLogLinesParseStrictlyAndFlagSlowRequests) {
  const std::string access_path = temp_file("accesslog.jsonl");
  ServiceConfig config;
  config.threads = 1;
  config.access_log = access_path;
  config.slow_ms = 1;  // a cold 50k-sample run is well past 1 ms
  ExperimentService service(config);
  ASSERT_EQ(service.log_error(), "");

  EXPECT_TRUE(
      service
          .handle_line(
              R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 50000})")
          .ok);
  EXPECT_FALSE(service.handle_line(R"({"request": "describe"})").ok);

  const std::vector<std::string> lines = read_lines(access_path);
  ASSERT_EQ(lines.size(), 2u);

  const JsonParse run = parse_json(lines[0]);
  ASSERT_TRUE(run.ok()) << lines[0] << " -> " << run.error;
  EXPECT_EQ(field(run.value, "type"), "run");
  EXPECT_EQ(field(run.value, "status"), "ok");
  EXPECT_EQ(field(run.value, "cache"), "miss");
  const JsonValue* slow = run.value.find("slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_TRUE(slow->as_bool());
  // Access lines are compact: no span tree (that is the trace log's job).
  EXPECT_EQ(run.value.find("spans"), nullptr);

  const JsonParse error = parse_json(lines[1]);
  ASSERT_TRUE(error.ok()) << lines[1] << " -> " << error.error;
  EXPECT_EQ(field(error.value, "type"), "describe");
  EXPECT_EQ(field(error.value, "status"), "error");
  EXPECT_EQ(field(error.value, "code"), "bad-request");
}

TEST(ExperimentService, UnopenableLogSurfacesThroughLogError) {
  ServiceConfig config;
  config.trace_log = "/nonexistent-dir/sub/trace.jsonl";
  ExperimentService service(config);
  EXPECT_NE(service.log_error().find("/nonexistent-dir"), std::string::npos)
      << service.log_error();
}

TEST(ExperimentService, TracedRunCachesAByteIdenticalRecord) {
  // The ISSUE's determinism gate: observability output lives in replies and
  // logs only — a traced run and an untraced run must write the same bytes
  // to the disk cache.
  const std::string dir_plain = temp_dir("plain");
  const std::string dir_traced = temp_dir("traced");
  const std::string trace_path = temp_file("identity.jsonl");
  {
    ExperimentService service({dir_plain, 64, 1});
    EXPECT_TRUE(
        service
            .handle_line(
                R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})")
            .ok);
  }
  {
    ServiceConfig config;
    config.cache_dir = dir_traced;
    config.threads = 1;
    config.trace_log = trace_path;
    ExperimentService service(config);
    EXPECT_TRUE(service
                    .handle_line(R"({"request": "run", "experiment": "fig7.1/n64-k6", )"
                                 R"("samples": 2000, "trace": true})")
                    .ok);
  }
  const auto read_single = [](const std::string& dir) {
    std::string content;
    int count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() != ".json") continue;  // skip .vlcsa.lock
      ++count;
      std::ifstream in(entry.path(), std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    EXPECT_EQ(count, 1) << dir;
    return content;
  };
  EXPECT_EQ(read_single(dir_plain), read_single(dir_traced));
}

}  // namespace
}  // namespace vlcsa::service
