// Fig 6.5 — carry-chain length statistics for 2's-complement Gaussian inputs
// on a 32-bit adder: the distribution that motivates VLCSA 2.  Expect a
// second mode of chains reaching the MSB (small negative + small positive
// operands whose sum flips sign).

#include <cmath>
#include <iostream>

#include "arith/distributions.hpp"
#include "bench_util.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.5",
                        "Carry-chain length statistics, 2's-complement Gaussian inputs "
                        "(mu=0, sigma=2^20), 32-bit adder, " +
                            std::to_string(args.samples) + " additions.");

  arith::CarryChainProfiler profiler(32, arith::ChainMetric::kAllChains);
  arith::GaussianTwosSource source(32, arith::GaussianParams{0.0, std::ldexp(1.0, 20)});
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < args.samples; ++i) {
    const auto [a, b] = source.next(rng);
    profiler.record(a, b);
  }
  bench::print_chain_histogram(profiler);
  std::cout << "\nfraction of chains reaching >= 24 bits: "
            << harness::fmt_pct(profiler.fraction_at_least(24), 2)
            << "\nExpected shape: bimodal — short chains plus a mode hugging the MSB\n"
               "(sign-extension chains), matching the crypto workload of Fig 6.2.\n";
  return 0;
}
