#pragma once
// VLCSA 1 / VLCSA 2 — the reliable variable-latency adders (Chs. 5, 6.7).
//
// Operation per the paper: inputs are applied; the speculative result and
// the detection signals are ready within one clock.  If detection does not
// stall, the speculative result is emitted (1 cycle).  Otherwise the adder
// stalls one extra cycle and emits the recovery result (2 cycles).  The
// recovery path is guaranteed exact, so the emitted result is always
// correct — "reliable" in the paper's sense.  Average latency follows
// eq. (5.2)/(6.1): T_ave = (1 + P_err) * T_clk with P_err the *stall* rate.

#include <cstdint>

#include "speculative/scsa.hpp"

namespace vlcsa::spec {

struct VlcsaConfig {
  int width = 64;
  int window = 14;
  ScsaVariant variant = ScsaVariant::kScsa1;
};

/// One variable-latency addition.
struct VlcsaStep {
  ApInt result;
  bool cout = false;
  int cycles = 1;        // 1 (speculative) or 2 (recovered)
  bool stalled = false;  // detection fired
  ScsaEvaluation eval;   // full signal detail for tests/analysis
};

/// One whole batch (64 * lane_words) of variable-latency additions, as
/// lane-mask groups (bit j of word w = sample w*64 + j).  Cycle counts per
/// lane follow from `stalled`: 2 where set, 1 elsewhere.
struct VlcsaBatchStep {
  arith::planeops::PlaneVec stalled;        // detection fired -> recovery cycle
  arith::planeops::PlaneVec emitted_wrong;  // final emitted result wrong (must be 0)
  ScsaBatchEvaluation eval;

  [[nodiscard]] int lane_words() const { return static_cast<int>(stalled.size()); }
};

class VlcsaModel {
 public:
  explicit VlcsaModel(VlcsaConfig config)
      : config_(config), scsa_(ScsaConfig{config.width, config.window}) {}

  [[nodiscard]] const VlcsaConfig& config() const { return config_; }
  [[nodiscard]] const ScsaModel& scsa() const { return scsa_; }

  [[nodiscard]] VlcsaStep step(const ApInt& a, const ApInt& b) const;

  /// Bit-sliced step over 64 operand pairs (thread-safe; scratch in `out`).
  void step_batch(const BitSlicedBatch& batch, VlcsaBatchStep& out) const;

 private:
  VlcsaConfig config_;
  ScsaModel scsa_;
};

/// Aggregate latency bookkeeping for a stream of additions.
struct LatencyStats {
  std::uint64_t operations = 0;
  std::uint64_t stalls = 0;
  std::uint64_t total_cycles = 0;

  void record(const VlcsaStep& step) {
    ++operations;
    if (step.stalled) ++stalls;
    total_cycles += static_cast<std::uint64_t>(step.cycles);
  }

  [[nodiscard]] double stall_rate() const {
    return operations == 0 ? 0.0
                           : static_cast<double>(stalls) / static_cast<double>(operations);
  }
  /// Eq. (5.2): average cycles per addition, in units of T_clk.
  [[nodiscard]] double average_cycles() const {
    return operations == 0
               ? 0.0
               : static_cast<double>(total_cycles) / static_cast<double>(operations);
  }
};

}  // namespace vlcsa::spec
