#include "speculative/scsa.hpp"

#include <stdexcept>

namespace vlcsa::spec {

const char* to_string(ScsaVariant variant) {
  switch (variant) {
    case ScsaVariant::kScsa1: return "scsa1";
    case ScsaVariant::kScsa2: return "scsa2";
  }
  return "?";
}

ScsaModel::ScsaModel(ScsaConfig config)
    : config_(config), layout_(config.width, config.window) {}

ScsaEvaluation ScsaModel::evaluate(const ApInt& a, const ApInt& b) const {
  if (a.width() != config_.width || b.width() != config_.width) {
    throw std::invalid_argument("ScsaModel: operand width mismatch");
  }
  const int m = layout_.count();

  ScsaEvaluation ev;
  ev.spec0 = ApInt(config_.width);
  ev.spec1 = ApInt(config_.width);
  ev.recovered = ApInt(config_.width);
  ev.window_g.resize(static_cast<std::size_t>(m));
  ev.window_p.resize(static_cast<std::size_t>(m));

  const auto exact = ApInt::add(a, b);
  ev.exact = exact.sum;
  ev.exact_cout = exact.carry_out;

  // Per-window conditional sums and group signals, in machine words.
  std::vector<std::uint64_t> sum0(static_cast<std::size_t>(m));
  std::vector<std::uint64_t> sum1(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::uint64_t aw = a.extract(pos, size);
    const std::uint64_t bw = b.extract(pos, size);
    const std::uint64_t mask =
        size >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << size) - 1);
    const std::uint64_t raw = aw + bw;  // size <= 63: no machine overflow
    sum0[static_cast<std::size_t>(i)] = raw & mask;
    sum1[static_cast<std::size_t>(i)] = (raw + 1) & mask;
    ev.window_g[static_cast<std::size_t>(i)] = ((raw >> size) & 1) != 0;
    ev.window_p[static_cast<std::size_t>(i)] = (aw ^ bw) == mask;
  }

  // Speculative carries: S*,0 uses the previous window's group generate;
  // S*,1 uses the previous window's carry-out-assuming-carry-in-1 (G | P).
  // Exception (deviation from the thesis's literal equations, see
  // DESIGN.md): window 0's carry-in is the known constant 0, so its
  // carry-out G0 is *exact* — window 1's S*,1 select uses it directly
  // instead of G0 | P0.  Without this, a small remainder-sized first window
  // (e.g. 2 bits at n = 512, k = 17) makes P(window-0 propagates) large and
  // VLCSA 2 stalls on ~ERR0/4 of all inputs instead of ~0.01%.
  // Exact recovery threads the true window carries (Fig 5.2's prefix adder).
  bool carry0 = false, carry1 = false, carry_exact = false;
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::size_t w = static_cast<std::size_t>(i);
    ev.spec0.deposit(pos, size, carry0 ? sum1[w] : sum0[w]);
    ev.spec1.deposit(pos, size, carry1 ? sum1[w] : sum0[w]);
    ev.recovered.deposit(pos, size, carry_exact ? sum1[w] : sum0[w]);
    const bool g = ev.window_g[w];
    const bool p = ev.window_p[w];
    ev.spec0_cout = g || (p && carry0);
    ev.spec1_cout = g || (p && carry1);
    ev.recovered_cout = g || (p && carry_exact);
    carry0 = g;
    carry1 = (i == 0) ? g : (g || p);
    carry_exact = g || (p && carry_exact);
  }

  // Detection (Figs 5.1 and 6.7).  ERR1 starts at window pair (1, 2): the
  // i = 0 term is unnecessary once window 1's S*,1 select is exact.
  for (int i = 0; i + 1 < m; ++i) {
    const std::size_t w = static_cast<std::size_t>(i);
    ev.err0 = ev.err0 || (ev.window_g[w] && ev.window_p[w + 1]);
    if (i >= 1) ev.err1 = ev.err1 || (ev.window_p[w] && !ev.window_p[w + 1]);
  }
  return ev;
}

void ScsaModel::evaluate_batch(const BitSlicedBatch& batch, ScsaBatchEvaluation& out) const {
  if (batch.width() != config_.width) {
    throw std::invalid_argument("ScsaModel: batch width mismatch");
  }
  const int n = config_.width;
  const int m = layout_.count();
  const std::uint64_t* a = batch.a();
  const std::uint64_t* b = batch.b();

  out.g.resize(static_cast<std::size_t>(n));
  out.p.resize(static_cast<std::size_t>(n));
  out.carry.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.g[static_cast<std::size_t>(i)] = a[i] & b[i];
    out.p[static_cast<std::size_t>(i)] = a[i] ^ b[i];
  }
  arith::kogge_stone_carries(out.g.data(), out.p.data(), n, out.carry.data(), out.pp);

  // One sweep over the windows.  A speculative result differs from the
  // exact sum iff some window's carry-in select differs from the true carry
  // into that window: a select mismatch flips that window's conditional sum
  // (adding 1 modulo 2^size always changes it), and when every select
  // matches, the carry-out expression G | (P & c) matches too.  Selects per
  // scsa.hpp: S*,0 uses G_{i-1}; S*,1 uses G_0 for window 1 (the window-0
  // carry-out is exact) and G_{i-1} | P_{i-1} beyond.
  std::uint64_t spec0_wrong = 0, spec1_wrong = 0, err0 = 0, err1 = 0;
  std::uint64_t prev_g = 0, prev_p = 0;
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    std::uint64_t wg = 0;
    std::uint64_t wp = ~std::uint64_t{0};
    for (int bit = pos; bit < pos + size; ++bit) {
      const std::size_t idx = static_cast<std::size_t>(bit);
      wg = out.g[idx] | (out.p[idx] & wg);
      wp &= out.p[idx];
    }
    if (i > 0) {
      const std::uint64_t exact_in = out.carry[static_cast<std::size_t>(pos - 1)];
      const std::uint64_t sel0 = prev_g;
      const std::uint64_t sel1 = i == 1 ? prev_g : (prev_g | prev_p);
      spec0_wrong |= sel0 ^ exact_in;
      spec1_wrong |= sel1 ^ exact_in;
      // Detection pairs (Figs 5.1 and 6.7), same indexing as the scalar
      // loop: ERR0 over pairs (0,1)..(m-2,m-1), ERR1 starting at (1,2).
      err0 |= prev_g & wp;
      if (i >= 2) err1 |= prev_p & ~wp;
    }
    prev_g = wg;
    prev_p = wp;
  }
  out.spec0_wrong = spec0_wrong;
  out.spec1_wrong = spec1_wrong;
  out.err0 = err0;
  out.err1 = err1;
}

}  // namespace vlcsa::spec
