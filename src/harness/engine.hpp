#pragma once
// Parallel sharded Monte Carlo engine.
//
// Every table/figure reproduction in the repo is a Monte Carlo run:
// draw `samples` operand pairs, push each through a behavioral model,
// fold per-sample observations into an accumulator.  This header provides
// that loop once, sharded across a thread pool, with a reproducibility
// contract the tests enforce:
//
//  * The sample stream is split into fixed-size shards.  Shard i draws from
//    its own RNG stream derived via std::seed_seq from (seed, i) — never
//    from the thread that happens to execute it.
//  * Each shard folds into its own accumulator; shard accumulators are
//    merged in shard-index order with operator+= after all workers join.
//
// Together these make the final accumulator bit-identical for any thread
// count (including 1), so `threads` is purely a wall-clock knob.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "arith/planeops.hpp"
#include "arith/rng.hpp"

namespace vlcsa::harness {

/// Samples per shard.  Small enough that typical runs (2*10^5 samples)
/// spread across every core, large enough that per-shard setup (source
/// clone, RNG warm-up) stays negligible.
inline constexpr std::uint64_t kDefaultShardSize = 1 << 14;

/// Thrown by run_sharded_blocks when RunOptions::cancel fired before the run
/// completed.  No merged accumulator exists at that point — callers (the
/// service's per-request timeout path) must treat the run as never having
/// produced a result, so a cancelled run can never write a partial record.
struct RunCancelled : std::runtime_error {
  RunCancelled() : std::runtime_error("run cancelled") {}
};

/// Plain snapshot of one run's execution profile (RunProfileCollector).
/// Pure observability: nothing here feeds a result record — records stay
/// functions of (experiment, samples, seed, eval path) only.  The counter
/// fields (shards, samples, blocks, rng_words) are exact and invariant
/// across thread counts and backends for a fixed lane width; the time
/// fields are cpu-seconds summed over shards (fill/eval) plus the
/// single-threaded merge, and naturally vary run to run.
struct RunProfile {
  std::uint64_t shards = 0;           // shards executed
  std::uint64_t samples = 0;          // samples folded, all shards
  std::uint64_t batch_blocks = 0;     // bit-sliced blocks evaluated
  std::uint64_t batched_samples = 0;  // samples through the batch pipeline
  std::uint64_t scalar_samples = 0;   // per-sample path (scalar runs + tails)
  std::uint64_t rng_words = 0;        // BlockRng words consumed, all shards
  double fill_seconds = 0.0;          // operand fill_batch time (summed)
  double eval_seconds = 0.0;          // model step/evaluate_batch time (summed)
  double merge_seconds = 0.0;         // shard-order accumulator merge
  int threads = 0;                    // worker pool size actually used
  int lane_words = 0;                 // batch lane width (0 = per-sample path)
  std::string backend;                // active planeops backend name
};

/// Opt-in profiling sink threaded through RunOptions::profile.  All methods
/// are thread-safe (relaxed atomics — counters are independent, and every
/// field is published by the join before snapshot() runs); a null pointer in
/// RunOptions disables profiling at a single branch per shard/block, so the
/// default path pays nothing.
class RunProfileCollector {
 public:
  void add_shard(std::uint64_t rng_words, std::uint64_t samples) {
    shards_.fetch_add(1, std::memory_order_relaxed);
    rng_words_.fetch_add(rng_words, std::memory_order_relaxed);
    samples_.fetch_add(samples, std::memory_order_relaxed);
  }
  void add_batch(std::uint64_t blocks, std::uint64_t samples) {
    batch_blocks_.fetch_add(blocks, std::memory_order_relaxed);
    batched_samples_.fetch_add(samples, std::memory_order_relaxed);
  }
  void add_scalar_samples(std::uint64_t samples) {
    scalar_samples_.fetch_add(samples, std::memory_order_relaxed);
  }
  void add_fill_ns(std::uint64_t ns) { fill_ns_.fetch_add(ns, std::memory_order_relaxed); }
  void add_eval_ns(std::uint64_t ns) { eval_ns_.fetch_add(ns, std::memory_order_relaxed); }
  void add_merge_ns(std::uint64_t ns) { merge_ns_.fetch_add(ns, std::memory_order_relaxed); }
  void set_threads(int threads) { threads_.store(threads, std::memory_order_relaxed); }
  void set_lane_words(int lane_words) {
    lane_words_.store(lane_words, std::memory_order_relaxed);
  }
  void set_backend(const char* backend) {
    backend_.store(backend, std::memory_order_relaxed);
  }

  [[nodiscard]] RunProfile snapshot() const {
    RunProfile out;
    out.shards = shards_.load(std::memory_order_relaxed);
    out.samples = samples_.load(std::memory_order_relaxed);
    out.batch_blocks = batch_blocks_.load(std::memory_order_relaxed);
    out.batched_samples = batched_samples_.load(std::memory_order_relaxed);
    out.scalar_samples = scalar_samples_.load(std::memory_order_relaxed);
    out.rng_words = rng_words_.load(std::memory_order_relaxed);
    out.fill_seconds = static_cast<double>(fill_ns_.load(std::memory_order_relaxed)) * 1e-9;
    out.eval_seconds = static_cast<double>(eval_ns_.load(std::memory_order_relaxed)) * 1e-9;
    out.merge_seconds = static_cast<double>(merge_ns_.load(std::memory_order_relaxed)) * 1e-9;
    out.threads = threads_.load(std::memory_order_relaxed);
    out.lane_words = lane_words_.load(std::memory_order_relaxed);
    const char* backend = backend_.load(std::memory_order_relaxed);
    if (backend != nullptr) out.backend = backend;
    return out;
  }

 private:
  std::atomic<std::uint64_t> shards_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> batch_blocks_{0};
  std::atomic<std::uint64_t> batched_samples_{0};
  std::atomic<std::uint64_t> scalar_samples_{0};
  std::atomic<std::uint64_t> rng_words_{0};
  std::atomic<std::uint64_t> fill_ns_{0};
  std::atomic<std::uint64_t> eval_ns_{0};
  std::atomic<std::uint64_t> merge_ns_{0};
  std::atomic<int> threads_{0};
  std::atomic<int> lane_words_{0};
  std::atomic<const char*> backend_{nullptr};
};

/// Controls one sharded run.  `threads == 0` means "all hardware threads".
/// `lane_words == 0` means "the default batch width" (arith::default_lane_words());
/// like `threads`, it is purely a throughput knob — merged counters are
/// bit-identical at any lane width (scalar tails keep the RNG stream equal
/// to per-sample draws).
struct RunOptions {
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  int threads = 0;
  std::uint64_t shard_size = kDefaultShardSize;
  int lane_words = 0;
  /// Cooperative cancellation: when non-null, workers re-check the token
  /// before claiming each shard (block granularity) and the run throws
  /// RunCancelled instead of returning a merged accumulator.  The token is
  /// only read — the setter (e.g. the service's deadline watchdog) owns it.
  const std::atomic<bool>* cancel = nullptr;
  /// Opt-in execution profiling: when non-null, the engine (and the batch
  /// kernels in montecarlo.cpp) record shard/block counts, RNG consumption
  /// and stage timings into it.  Null costs one branch per shard/block and
  /// nothing else; profiling never changes any counter or the RNG stream.
  RunProfileCollector* profile = nullptr;
};

/// `requested` if positive, else std::thread::hardware_concurrency()
/// (clamped to at least 1 — hardware_concurrency may return 0).
[[nodiscard]] int resolve_threads(int requested);

/// The per-shard RNG stream: all 128 bits of (seed, shard_index) feed the
/// seed_seq, so distinct shards and distinct seeds never collide.  The
/// engine draws from the block-generating arith::BlockRng (sequence-
/// identical to std::mt19937_64, so shard streams are unchanged from the
/// std-engine era); this is a thin alias over arith::make_stream_rng.
[[nodiscard]] arith::BlockRng make_shard_rng(std::uint64_t seed, std::uint64_t shard_index);

/// Runs `options.samples` samples sharded across a thread pool, handing each
/// shard to its kernel as one block.
///
/// `make_accumulator()` produces an empty accumulator; the accumulator type
/// must be copyable and define `operator+=` as the merge.  `make_kernel()`
/// is invoked once per *shard* (from worker threads — it must be safe to
/// call concurrently) and must return a callable
///
///     void kernel(arith::BlockRng& rng, Accumulator& acc, std::uint64_t count)
///
/// that draws and folds in exactly `count` samples.  Block granularity is
/// what lets the bit-sliced pipeline consume 64 samples per machine word
/// inside a shard (with its own scalar tail for count % 64); per-sample
/// kernels should use run_sharded below.  Per-shard kernel construction is
/// what keeps stateful sample sources (e.g. std::normal_distribution's
/// cached second variate) from leaking state across shard boundaries.
template <typename AccumulatorFactory, typename BlockKernelFactory>
[[nodiscard]] auto run_sharded_blocks(const RunOptions& options,
                                      AccumulatorFactory&& make_accumulator,
                                      BlockKernelFactory&& make_kernel)
    -> std::decay_t<std::invoke_result_t<AccumulatorFactory&>> {
  using Accumulator = std::decay_t<std::invoke_result_t<AccumulatorFactory&>>;

  Accumulator merged = make_accumulator();
  const std::uint64_t shard_size =
      options.shard_size == 0 ? kDefaultShardSize : options.shard_size;
  const std::uint64_t shard_count = (options.samples + shard_size - 1) / shard_size;
  if (shard_count == 0) return merged;

  std::vector<Accumulator> partials(static_cast<std::size_t>(shard_count), merged);
  std::atomic<std::uint64_t> next_shard{0};
  std::atomic<bool> cancelled{false};
  std::mutex failure_mutex;
  std::exception_ptr failure;

  const auto worker = [&] {
    try {
      for (std::uint64_t shard = next_shard.fetch_add(1); shard < shard_count;
           shard = next_shard.fetch_add(1)) {
        if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
        auto kernel = make_kernel();
        auto rng = make_shard_rng(options.seed, shard);
        const std::uint64_t begin = shard * shard_size;
        const std::uint64_t count = std::min(shard_size, options.samples - begin);
        // Fold into a local accumulator and publish once per shard: adjacent
        // shard accumulators share cache lines, so writing partials[] per
        // sample would false-share between workers.
        Accumulator acc = partials[static_cast<std::size_t>(shard)];
        kernel(rng, acc, count);
        partials[static_cast<std::size_t>(shard)] = std::move(acc);
        if (options.profile != nullptr) options.profile->add_shard(rng.words_drawn(), count);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };

  const std::uint64_t pool_size = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(resolve_threads(options.threads)), shard_count);
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (std::uint64_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (failure) std::rethrow_exception(failure);
  // Cancellation outranks the partial work already folded: the caller asked
  // for `samples` samples and anything less must not look like a result.
  if (cancelled.load(std::memory_order_relaxed)) throw RunCancelled{};

  if (options.profile != nullptr) {
    options.profile->set_threads(static_cast<int>(pool_size));
    options.profile->set_backend(
        arith::planeops::to_string(arith::planeops::active_backend()));
    const auto merge_start = std::chrono::steady_clock::now();
    for (const Accumulator& partial : partials) merged += partial;
    options.profile->add_merge_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count()));
  } else {
    for (const Accumulator& partial : partials) merged += partial;
  }
  return merged;
}

/// Per-sample variant: `make_kernel()` returns
///
///     void kernel(arith::BlockRng& rng, Accumulator& acc)
///
/// drawing one sample per call.  Thin wrapper over run_sharded_blocks, so
/// both granularities share the same sharding/merge machinery and therefore
/// the same reproducibility contract.
template <typename AccumulatorFactory, typename KernelFactory>
[[nodiscard]] auto run_sharded(const RunOptions& options, AccumulatorFactory&& make_accumulator,
                               KernelFactory&& make_kernel)
    -> std::decay_t<std::invoke_result_t<AccumulatorFactory&>> {
  using Accumulator = std::decay_t<std::invoke_result_t<AccumulatorFactory&>>;
  return run_sharded_blocks(options, std::forward<AccumulatorFactory>(make_accumulator), [&] {
    return [kernel = make_kernel(), profile = options.profile](
               arith::BlockRng& rng, Accumulator& acc, std::uint64_t count) mutable {
      for (std::uint64_t i = 0; i < count; ++i) kernel(rng, acc);
      if (profile != nullptr) profile->add_scalar_samples(count);
    };
  });
}

}  // namespace vlcsa::harness
