#include "speculative/error_model.hpp"

#include <cmath>
#include <stdexcept>

#include "speculative/window.hpp"

namespace vlcsa::spec {

namespace {

/// P(group propagate = 1) for a window of `size` uniform bits: every bit
/// propagates, each with probability 1/2.  (Eq. 3.10)
double p_group_propagate(int size) { return std::ldexp(1.0, -size); }

/// P(group generate = 1) for a window of `size` uniform bits.  (Eq. 3.11)
double p_group_generate(int size) { return 0.5 * (1.0 - std::ldexp(1.0, -size)); }

}  // namespace

double scsa_error_rate(int n, int k) {
  if (n < 1 || k < 1) throw std::invalid_argument("scsa_error_rate: bad parameters");
  const int m = (n + k - 1) / k;
  return static_cast<double>(m - 1) * std::ldexp(1.0, -(k + 1)) *
         (1.0 - std::ldexp(1.0, -k));
}

double scsa_error_rate_exact_layout(int n, int k) {
  const WindowLayout layout(n, std::min(k, 63));
  double total = 0.0;
  for (int i = 0; i + 1 < layout.count(); ++i) {
    total += p_group_generate(layout.window(i).size) *
             p_group_propagate(layout.window(i + 1).size);
  }
  return total;
}

double scsa_exact_error_rate(int n, int k) {
  const WindowLayout layout(n, std::min(k, 63));
  const int m = layout.count();
  // Window classes: G (group generate), P (group propagate), K (neither).
  // Error iff some window pair is (G, P).  Track P(no error so far, last
  // window class = c).
  double fg = 0.0, fp = 0.0, fk = 1.0;  // virtual window -1 is a kill
  for (int i = 0; i < m; ++i) {
    const double pg = p_group_generate(layout.window(i).size);
    const double pp = p_group_propagate(layout.window(i).size);
    const double pk = 1.0 - pg - pp;
    const double safe = fg + fp + fk;
    const double ng = safe * pg;
    const double np = (fp + fk) * pp;  // G -> P is the error transition
    const double nk = safe * pk;
    fg = ng;
    fp = np;
    fk = nk;
  }
  return 1.0 - (fg + fp + fk);
}

int min_window_for_error_rate(int n, double target, double slack) {
  if (target <= 0.0) throw std::invalid_argument("target error rate must be > 0");
  for (int k = 1; k <= std::min(n, 63); ++k) {
    if (scsa_error_rate(n, k) <= slack * target) return k;
  }
  return std::min(n, 63);
}

const std::vector<ScsaParameters>& published_scsa_parameters() {
  static const std::vector<ScsaParameters> kTable = {
      {64, 14, 10},
      {128, 15, 11},
      {256, 16, 12},
      {512, 17, 13},
  };
  return kTable;
}

Vlcsa2Parameters published_vlcsa2_parameters() { return Vlcsa2Parameters{13, 9}; }

double vlsa_error_rate(int n, int l) {
  if (n < 1 || l < 1) throw std::invalid_argument("vlsa_error_rate: bad parameters");
  if (l >= n) return 0.0;
  return static_cast<double>(n - l) * std::ldexp(1.0, -(l + 1));
}

double vlsa_exact_error_rate(int n, int l) {
  if (n < 1 || l < 1) throw std::invalid_argument("vlsa_exact_error_rate: bad parameters");
  if (l >= n) return 0.0;
  // DP over bit positions.  State: (carry out of current bit, trailing
  // propagate-run length capped at l).  During an all-propagate run the
  // carry out equals the carry that entered the run, so the spec carry for
  // the bit above is wrong exactly when a run reaches length l while the
  // carried value is 1.
  const std::size_t states = static_cast<std::size_t>(l + 1) * 2;
  std::vector<double> cur(states, 0.0), next(states, 0.0);
  const auto idx = [l](int carry, int run) {
    return static_cast<std::size_t>(run) * 2 + static_cast<std::size_t>(carry);
  };
  cur[idx(0, 0)] = 1.0;
  double error = 0.0;
  for (int bit = 0; bit < n; ++bit) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int carry = 0; carry <= 1; ++carry) {
      for (int run = 0; run <= l; ++run) {
        const double prob = cur[idx(carry, run)];
        if (prob == 0.0) continue;
        // propagate (1/2): run grows, carry rides through
        {
          const int new_run = std::min(run + 1, l);
          if (new_run == l && carry == 1) {
            error += prob * 0.5;  // absorbed: speculation is wrong somewhere
          } else {
            next[idx(carry, new_run)] += prob * 0.5;
          }
        }
        // generate (1/4): run resets, carry = 1
        next[idx(1, 0)] += prob * 0.25;
        // kill (1/4): run resets, carry = 0
        next[idx(0, 0)] += prob * 0.25;
      }
    }
    std::swap(cur, next);
  }
  return error;
}

int min_vlsa_chain_for_error_rate(int n, double target, double slack) {
  if (target <= 0.0) throw std::invalid_argument("target error rate must be > 0");
  for (int l = 1; l < n; ++l) {
    if (vlsa_exact_error_rate(n, l) <= slack * target) return l;
  }
  return n;
}

int vlsa_published_chain_length(int n) {
  switch (n) {
    case 64: return 17;
    case 128: return 18;
    case 256: return 20;
    case 512: return 21;
    default:
      throw std::invalid_argument("vlsa_published_chain_length: only 64/128/256/512");
  }
}

}  // namespace vlcsa::spec
