// vlcsa_loadgen — load generator for the experiment service daemon: replays
// a recorded request trace (one protocol request line per file line) against
// a running vlcsa_serve at configurable concurrency and reports
// client-observed latency quantiles and error counts as one machine-readable
// JSON object — the SLO harness CI pins the service smoke on (BENCH_service
// artifact).  Runbook in docs/OPERATIONS.md.
//
//   $ ./build/examples/vlcsa_loadgen --socket=/tmp/vlcsa.sock
//         --trace=trace.jsonl --repeat=10 --concurrency=8
//         --json=BENCH_service.json --slo-p99-ms=250
//
// Every worker owns one connection and pulls the next trace line off a
// shared counter, so the replay order interleaves exactly like production
// traffic would.  Exit status: 0 = replay clean (and SLO met, when given),
// 1 = protocol errors / SLO exceeded / transport failure, 2 = usage error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "harness/cli.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"
#include "service/fleet.hpp"
#include "service/metrics.hpp"
#include "service/server.hpp"

using namespace vlcsa;

namespace {

void print_usage() {
  std::cout
      << "usage: vlcsa_loadgen (--socket=PATH | --tcp=HOST:PORT) --trace=FILE\n"
         "                     [--repeat=N] [--concurrency=N] [--json=FILE]\n"
         "                     [--timeout-ms=N] [--connect-timeout-ms=N]\n"
         "                     [--slo-p99-ms=MS] [--trace-log=FILE]\n"
         "                     [--retries=N] [--retry-base-ms=T]\n"
         "  --socket      Unix domain socket vlcsa_serve listens on\n"
         "  --tcp         TCP endpoint vlcsa_serve listens on\n"
         "  --trace       request trace: one protocol request line per line\n"
         "                (shutdown requests are rejected — a load test must\n"
         "                not stop the daemon it measures)\n"
         "  --repeat      replay the whole trace this many times (default 1)\n"
         "  --concurrency worker connections replaying in parallel (default 1)\n"
         "  --json        also write the report object to this file\n"
         "  --timeout-ms  per-roundtrip I/O deadline (default 0 = wait forever)\n"
         "  --connect-timeout-ms  keep retrying each connect this long\n"
         "                        (default 2000)\n"
         "  --slo-p99-ms  fail (exit 1) when client-observed p99 exceeds this\n"
         "                (default 0 = no SLO check)\n"
         "  --trace-log   the daemon's --trace-log file: stamp every replayed\n"
         "                request with a unique trace_id, then check each one\n"
         "                resolved to a complete span tree in that log and\n"
         "                report the per-stage time breakdown (stage_totals_ms)\n"
         "  --retries     per-request retry budget: redial and retry on refused\n"
         "                connects, transport failures, and overloaded/draining\n"
         "                replies, with exponential backoff + jitter (default 0;\n"
         "                retries are counted in the report's retries_seen)\n"
         "  --retry-base-ms  first backoff step, doubling per retry (default 100)\n"
         "exit status: 0 clean replay, 1 errors/SLO miss/trace-log validation\n"
         "             failure, 2 usage error\n";
}

bool parse_host_port(const std::string& value, std::string& host, int& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) return false;
  host = value.substr(0, colon);
  return harness::parse_nonnegative_int(value.substr(colon + 1), port) && port <= 65535;
}

struct WorkerResult {
  std::vector<double> latencies_seconds;
  std::uint64_t ok = 0;
  std::uint64_t error_status = 0;     // well-formed {"status": "error"} replies
  std::uint64_t protocol_errors = 0;  // transport failures / malformed replies
  std::uint64_t retries = 0;          // backoff retries taken (--retries)
  std::string first_error;            // what the first protocol error said
};

/// The exact q-quantile of a sorted sample (nearest-rank method).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  return sorted[std::min(index, sorted.size()) - 1];
}

/// One span as read back from a daemon trace-log line.
struct LoggedSpan {
  std::string name;
  std::uint64_t depth = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Checks one trace-log line's span array for well-formedness: exactly one
/// depth-0 root named "request" (first in the array), depths that follow the
/// open order (a span's depth equals its parents on the stack), every child
/// interval contained in its parent's, and every non-root span named after a
/// registered service stage.  Returns "" or what is wrong, and accumulates
/// per-stage microseconds into `stage_totals_us` (pre-seeded with every
/// stage_names() entry, so a stage the daemon never hit — e.g. lease-wait on
/// a single-replica run — still reports as a zero row instead of vanishing).
std::string check_span_tree(const std::vector<LoggedSpan>& spans,
                            std::vector<std::pair<std::string, std::uint64_t>>& stage_totals_us) {
  if (spans.empty()) return "no spans";
  if (spans.front().depth != 0 || spans.front().name != "request") {
    return "first span is not a depth-0 'request' root";
  }
  std::vector<const LoggedSpan*> stack;
  for (const LoggedSpan& span : spans) {
    if (&span != &spans.front() && span.depth == 0) return "more than one root span";
    while (stack.size() > span.depth) stack.pop_back();
    if (stack.size() != span.depth) {
      return "span '" + span.name + "' skips a nesting level";
    }
    if (!stack.empty()) {
      const LoggedSpan& parent = *stack.back();
      if (span.start_us < parent.start_us ||
          span.start_us + span.dur_us > parent.start_us + parent.dur_us) {
        return "span '" + span.name + "' is not contained in its parent '" + parent.name + "'";
      }
      bool found = false;
      for (auto& [name, total] : stage_totals_us) {
        if (name == span.name) {
          total += span.dur_us;
          found = true;
          break;
        }
      }
      // Any stage the service can emit was pre-seeded, so an unmatched name
      // is a span this validator does not know — fail loudly instead of
      // silently folding it in (the gate that let lease-wait go unvalidated
      // when the fleet PR introduced it).
      if (!found) {
        return "span '" + span.name + "' is not a registered service stage";
      }
    }
    stack.push_back(&span);
  }
  return {};
}

/// Reads the spans array of one parsed trace-log line into LoggedSpan form;
/// "" or what is wrong with it.
std::string read_spans(const harness::JsonValue& line, std::vector<LoggedSpan>& out) {
  const harness::JsonValue* spans = line.find("spans");
  if (spans == nullptr || spans->kind() != harness::JsonValue::Kind::kArray) {
    return "missing array field 'spans'";
  }
  for (const harness::JsonValue& item : spans->items()) {
    if (item.kind() != harness::JsonValue::Kind::kObject) return "span is not an object";
    LoggedSpan span;
    const harness::JsonValue* name = item.find("name");
    if (name == nullptr || name->kind() != harness::JsonValue::Kind::kString) {
      return "span without a string 'name'";
    }
    span.name = name->as_string();
    const harness::JsonValue* depth = item.find("depth");
    const harness::JsonValue* start = item.find("start_us");
    const harness::JsonValue* dur = item.find("dur_us");
    if (depth == nullptr || !depth->to_u64(span.depth) || start == nullptr ||
        !start->to_u64(span.start_us) || dur == nullptr || !dur->to_u64(span.dur_us)) {
      return "span '" + span.name + "' without numeric depth/start_us/dur_us";
    }
    out.push_back(std::move(span));
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;
  std::string trace_path;
  std::string json_path;
  std::string daemon_trace_log;
  int repeat = 1;
  int concurrency = 1;
  int io_timeout_ms = 0;
  int connect_timeout_ms = 2000;
  int slo_p99_ms = 0;
  service::fleet::RetryPolicy retry_policy;
  bool retry_base_given = false;

  const std::vector<harness::ValueFlag> flags = {
      {"--socket",
       [&](const std::string& value) {
         if (value.empty()) return false;
         socket_path = value;
         return true;
       }},
      {"--tcp",
       [&](const std::string& value) { return parse_host_port(value, tcp_host, tcp_port); }},
      {"--trace",
       [&](const std::string& value) {
         if (value.empty()) return false;
         trace_path = value;
         return true;
       }},
      {"--json",
       [&](const std::string& value) {
         if (value.empty()) return false;
         json_path = value;
         return true;
       }},
      {"--repeat",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, repeat) && repeat > 0;
       }},
      {"--concurrency",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, concurrency) && concurrency > 0;
       }},
      {"--timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, io_timeout_ms);
       }},
      {"--connect-timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, connect_timeout_ms);
       }},
      {"--slo-p99-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, slo_p99_ms);
       }},
      {"--trace-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         daemon_trace_log = value;
         return true;
       }},
      {"--retries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, retry_policy.attempts);
       }},
      {"--retry-base-ms",
       [&](const std::string& value) {
         retry_base_given = true;
         return harness::parse_nonnegative_int(value, retry_policy.base_ms) &&
                retry_policy.base_ms > 0;
       }},
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
  }
  if (const std::string error = harness::parse_value_flags(
          argc, const_cast<const char* const*>(argv), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  const bool tcp = tcp_port >= 0;
  if (socket_path.empty() == !tcp) {
    std::cerr << "error: exactly one of --socket=PATH or --tcp=HOST:PORT is required\n";
    return 2;
  }
  if (trace_path.empty()) {
    std::cerr << "error: --trace=FILE is required\n";
    return 2;
  }
  if (retry_base_given && retry_policy.attempts == 0) {
    std::cerr << "error: --retry-base-ms requires --retries\n";
    return 2;
  }

  // Load and vet the trace up front: every line must be a parseable request
  // object, and none may be a shutdown (a load test must not stop the daemon
  // it measures mid-replay).
  std::vector<std::string> trace;
  std::vector<bool> injectable;  // parallel to trace: can take a trace_id
  {
    std::ifstream in(trace_path);
    if (!in) {
      std::cerr << "error: cannot open trace file " << trace_path << "\n";
      return 2;
    }
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const harness::JsonParse parsed = harness::parse_json(line);
      if (!parsed.ok()) {
        std::cerr << "error: " << trace_path << ":" << line_number
                  << ": malformed request: " << parsed.error << "\n";
        return 2;
      }
      const harness::JsonValue* request = parsed.value.find("request");
      if (request != nullptr && request->kind() == harness::JsonValue::Kind::kString &&
          request->as_string() == "shutdown") {
        std::cerr << "error: " << trace_path << ":" << line_number
                  << ": shutdown requests are not replayable\n";
        return 2;
      }
      // A trace_id can be stamped onto a non-empty object line that does not
      // carry one already (splicing after the opening brace keeps the rest
      // of the line byte-identical to what was recorded).
      injectable.push_back(parsed.value.kind() == harness::JsonValue::Kind::kObject &&
                           !parsed.value.members().empty() && line.front() == '{' &&
                           parsed.value.find("trace_id") == nullptr);
      trace.push_back(line);
    }
  }
  if (trace.empty()) {
    std::cerr << "error: trace file " << trace_path << " has no request lines\n";
    return 2;
  }

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(trace.size()) * static_cast<std::uint64_t>(repeat);
  std::atomic<std::uint64_t> next{0};
  std::vector<WorkerResult> results(static_cast<std::size_t>(concurrency));

  // Per-run trace-id prefix: wall-clock millisecond stamp keeps ids from
  // successive loadgen runs distinct in a shared daemon log; the request
  // index makes each replayed instance unique within this run.
  std::string id_prefix;
  if (!daemon_trace_log.empty()) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "lg-%llx-",
                  static_cast<unsigned long long>(
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()));
    id_prefix = stamp;
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<std::size_t>(w)];
      service::ServiceClient client;
      const std::string connect_error =
          tcp ? client.connect_tcp_or_error(tcp_host, tcp_port, connect_timeout_ms)
              : client.connect_or_error(socket_path, connect_timeout_ms);
      if (!connect_error.empty() && retry_policy.attempts == 0) {
        // With a retry budget the per-request loop redials; without one the
        // worker is dead on arrival.
        ++result.protocol_errors;
        result.first_error = connect_error;
        return;
      }
      if (connect_error.empty() && io_timeout_ms > 0) {
        if (const std::string error = client.set_io_timeout_ms(io_timeout_ms);
            !error.empty()) {
          ++result.protocol_errors;
          result.first_error = error;
          return;
        }
      }
      while (true) {
        const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= total_requests) return;
        std::string request = trace[index % trace.size()];
        if (!id_prefix.empty() && injectable[index % trace.size()]) {
          request.insert(1, "\"trace_id\": \"" + id_prefix + std::to_string(index) + "\", ");
        }
        std::string response;
        const auto sent = Clock::now();
        const std::string error =
            retry_policy.attempts > 0
                ? client.roundtrip_with_retry(request, response, retry_policy,
                                              &result.retries)
                : client.roundtrip(request, response);
        result.latencies_seconds.push_back(
            std::chrono::duration<double>(Clock::now() - sent).count());
        if (!error.empty()) {
          ++result.protocol_errors;
          if (result.first_error.empty()) result.first_error = error;
          return;  // the connection is gone; this worker is done
        }
        const harness::JsonParse parsed = harness::parse_json(response);
        const harness::JsonValue* status =
            parsed.ok() ? parsed.value.find("status") : nullptr;
        if (status == nullptr || status->kind() != harness::JsonValue::Kind::kString) {
          ++result.protocol_errors;
          if (result.first_error.empty()) {
            result.first_error = "response without a string 'status': " + response;
          }
        } else if (status->as_string() == "ok") {
          ++result.ok;
        } else {
          ++result.error_status;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  std::uint64_t ok = 0;
  std::uint64_t error_status = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t retries_seen = 0;
  std::string first_error;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_seconds.begin(),
                     result.latencies_seconds.end());
    ok += result.ok;
    error_status += result.error_status;
    protocol_errors += result.protocol_errors;
    retries_seen += result.retries;
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());

  const double p50_ms = quantile_sorted(latencies, 0.50) * 1e3;
  const double p95_ms = quantile_sorted(latencies, 0.95) * 1e3;
  const double p99_ms = quantile_sorted(latencies, 0.99) * 1e3;
  const double max_ms = latencies.empty() ? 0.0 : latencies.back() * 1e3;

  // Trace-log validation: every trace_id this run stamped must resolve to
  // exactly one log line with a complete, well-nested span tree — the check
  // CI gates on — and the span durations aggregate into the per-stage
  // breakdown the report carries.  Skipped when the replay itself already
  // failed (those ids never reached the daemon).
  std::string trace_log_error;
  std::uint64_t traced_requests = 0;
  // Pre-seeded with the service's full stage vocabulary: stages that never
  // fired stay as zero rows (stage_totals_ms keys are stable across runs)
  // and any span outside this set fails validation.
  std::vector<std::pair<std::string, std::uint64_t>> stage_totals_us;
  for (const std::string& stage : service::ServiceMetrics::stage_names()) {
    stage_totals_us.emplace_back(stage, 0);
  }
  if (!daemon_trace_log.empty() && protocol_errors == 0) {
    std::unordered_set<std::string> expected;
    for (std::uint64_t index = 0; index < total_requests; ++index) {
      if (injectable[index % trace.size()]) expected.insert(id_prefix + std::to_string(index));
    }
    std::ifstream in(daemon_trace_log);
    if (!in) {
      trace_log_error = "cannot open daemon trace log " + daemon_trace_log;
    } else {
      std::string line;
      std::size_t line_number = 0;
      while (trace_log_error.empty() && std::getline(in, line)) {
        ++line_number;
        if (line.empty()) continue;
        const harness::JsonParse parsed = harness::parse_json(line);
        if (!parsed.ok()) {
          trace_log_error = daemon_trace_log + ":" + std::to_string(line_number) +
                            ": malformed trace line: " + parsed.error;
          break;
        }
        const harness::JsonValue* id = parsed.value.find("trace_id");
        if (id == nullptr || id->kind() != harness::JsonValue::Kind::kString ||
            id->as_string().compare(0, id_prefix.size(), id_prefix) != 0) {
          continue;  // another client's request (or a pre-existing line)
        }
        if (expected.erase(id->as_string()) == 0) {
          trace_log_error = daemon_trace_log + ":" + std::to_string(line_number) +
                            ": duplicate or unexpected trace_id " + id->as_string();
          break;
        }
        ++traced_requests;
        std::vector<LoggedSpan> spans;
        std::string error = read_spans(parsed.value, spans);
        if (error.empty()) error = check_span_tree(spans, stage_totals_us);
        if (!error.empty()) {
          trace_log_error = daemon_trace_log + ":" + std::to_string(line_number) + ": " + error;
        }
      }
      if (trace_log_error.empty() && !expected.empty()) {
        trace_log_error = std::to_string(expected.size()) +
                          " replayed request(s) never appeared in " + daemon_trace_log +
                          " (first missing: " + *expected.begin() + ")";
      }
    }
  }

  harness::JsonObject report;
  report.add("schema", "vlcsa-loadgen-4");
  report.add("transport", tcp ? "tcp" : "unix");
  report.add("endpoint", tcp ? tcp_host + ":" + std::to_string(tcp_port) : socket_path);
  report.add("trace", trace_path);
  report.add("trace_lines", static_cast<std::uint64_t>(trace.size()));
  report.add("repeat", repeat);
  report.add("concurrency", concurrency);
  report.add("total_requests", total_requests);
  report.add("completed", static_cast<std::uint64_t>(latencies.size()));
  report.add("ok", ok);
  report.add("error_status", error_status);
  report.add("protocol_errors", protocol_errors);
  report.add("retries_seen", retries_seen);
  report.add("wall_seconds", wall);
  report.add("qps", wall > 0.0 ? static_cast<double>(latencies.size()) / wall : 0.0);
  report.add("latency_p50_ms", p50_ms);
  report.add("latency_p95_ms", p95_ms);
  report.add("latency_p99_ms", p99_ms);
  report.add("latency_max_ms", max_ms);
  if (slo_p99_ms > 0) {
    report.add("slo_p99_ms", slo_p99_ms);
    report.add("slo_met", p99_ms <= static_cast<double>(slo_p99_ms));
  }
  if (!daemon_trace_log.empty()) {
    report.add("trace_log", daemon_trace_log);
    report.add("traced_requests", traced_requests);
    report.add("trace_log_ok", trace_log_error.empty() && protocol_errors == 0);
    harness::JsonObject stages;
    for (const auto& [name, total_us] : stage_totals_us) {
      stages.add(name, static_cast<double>(total_us) * 1e-3);
    }
    report.add_json("stage_totals_ms", stages.render_line());
  }
  const std::string line = report.render_line();
  std::cout << line << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write report to " << json_path << "\n";
      return 1;
    }
    out << line << "\n";
  }

  if (protocol_errors > 0) {
    std::cerr << "error: " << protocol_errors << " protocol error(s); first: " << first_error
              << "\n";
    return 1;
  }
  if (slo_p99_ms > 0 && p99_ms > static_cast<double>(slo_p99_ms)) {
    std::cerr << "error: p99 " << p99_ms << " ms exceeds SLO " << slo_p99_ms << " ms\n";
    return 1;
  }
  if (!trace_log_error.empty()) {
    std::cerr << "error: trace-log validation failed: " << trace_log_error << "\n";
    return 1;
  }
  return 0;
}
