#include "service/service.hpp"

#include <chrono>
#include <exception>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"

namespace vlcsa::service {

namespace {

using harness::JsonObject;
using harness::JsonValue;

/// Machine-readable error classes (the "code" field of error responses);
/// DESIGN.md's protocol reference documents the full set.
constexpr const char* kCodeBadRequest = "bad-request";
constexpr const char* kCodeUnknownRequest = "unknown-request";
constexpr const char* kCodeUnknownExperiment = "unknown-experiment";
constexpr const char* kCodeTimeout = "timeout";
constexpr const char* kCodeInternal = "internal";

/// Upper bound on any request-supplied timeout_ms (24 hours): large enough
/// for any real run, small enough to survive the milliseconds-as-int cast —
/// an overflowing value must be rejected, never silently disable the
/// deadline.
constexpr std::uint64_t kMaxTimeoutMs = 86'400'000;

ExperimentService::Reply error_reply(const std::string& message,
                                     const char* code = kCodeBadRequest) {
  JsonObject response;
  response.add("status", "error");
  response.add("code", code);
  response.add("error", message);
  return {response.render_line(), false, false};
}

/// Strictness: every member of the request object must be expected for its
/// request type — a typo'd field is an error, never silently ignored.
std::string check_fields(const JsonValue& request,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : request.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return "unknown field '" + key + "' for this request";
  }
  return {};
}

/// Optional unsigned-integer field; "" or an error message.
std::string read_u64_field(const JsonValue& request, const char* name, std::uint64_t& out,
                           bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (!field->to_u64(out)) {
    return std::string("field '") + name + "' must be a non-negative integer";
  }
  return {};
}

/// Optional string field; "" or an error message.
std::string read_string_field(const JsonValue& request, const char* name, std::string& out,
                              bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (field->kind() != JsonValue::Kind::kString) {
    return std::string("field '") + name + "' must be a string";
  }
  out = field->as_string();
  return {};
}

/// ["a", "b", ...] — string-array rendering for list responses.
std::string render_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + harness::json_escape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

/// [{...}, {...}] — array of pre-rendered objects (run-batch results).
std::string render_object_array(const std::vector<std::string>& rendered) {
  std::string out = "[";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i != 0) out += ", ";
    out += rendered[i];
  }
  out += "]";
  return out;
}

const char* tier_name(ResultCache::Tier tier) {
  switch (tier) {
    case ResultCache::Tier::kMemory: return "hit-memory";
    case ResultCache::Tier::kDisk: return "hit-disk";
    case ResultCache::Tier::kMiss: return "miss";
  }
  return "?";
}

/// Stream version of the Gaussian operand streams.  Bumped whenever the
/// Gaussian variate stream changes incompatibly — v2 is the move of
/// GaussianUnsignedSource/GaussianTwosSource from per-sample
/// std::normal_distribution onto the block ziggurat
/// (arith::GaussianBlockSampler), which redefines every Gaussian-input
/// counter.  Applies to error-rate experiments AND distribution chain
/// profiles with a Gaussian dist; uniform streams were untouched by that
/// swap and stay unversioned (keys unchanged).
constexpr const char* kGaussStreamVersion = "gauss-rng-v2";

bool gaussian_dist(arith::InputDistribution dist) {
  return dist == arith::InputDistribution::kGaussianUnsigned ||
         dist == arith::InputDistribution::kGaussianTwos;
}

// The cached result record: a pure function of (experiment, samples, seed,
// eval path) — no wall time, no thread count — so a fresh recomputation at
// any --threads setting reproduces it byte-for-byte.  The embedded
// experiment/samples/seed/eval_path fields are what the disk tier validates
// against the key (cache.hpp).
std::string error_rate_record(const harness::ErrorRateExperiment& experiment,
                              std::uint64_t seed, harness::EvalPath path,
                              const harness::ErrorRateResult& result) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "error-rate");
  record.add("model", to_string(experiment.model));
  record.add("width", experiment.width);
  record.add("window", experiment.window);
  record.add("distribution", arith::to_string(experiment.dist));
  record.add("samples", result.samples);
  record.add("seed", seed);
  record.add("eval_path", to_string(path));
  // Gaussian experiments are stream-versioned (see kGaussStreamVersion):
  // records from an incompatible sampler era must miss, not hit stale.
  if (gaussian_dist(experiment.dist)) record.add("stream_version", kGaussStreamVersion);
  record.add("actual_errors", result.actual_errors);
  record.add("nominal_errors", result.nominal_errors);
  record.add("false_negatives", result.false_negatives);
  record.add("either_wrong", result.either_wrong);
  record.add("emitted_wrong", result.emitted_wrong);
  record.add("total_cycles", result.total_cycles);
  record.add("actual_rate", result.actual_rate());
  record.add("nominal_rate", result.nominal_rate());
  record.add("either_wrong_rate", result.either_wrong_rate());
  record.add("avg_cycles", result.average_cycles());
  return record.render_line();
}

/// Stream version of the crypto chain-profile workloads.  Bumped whenever
/// their internal draw streams change incompatibly — v2 is the move of
/// run_crypto_workload's seeding onto the shared seed_seq discipline
/// (arith::make_stream_rng) that shipped with the BlockRng subsystem.
/// Distribution profiles and every error-rate experiment are sequence-
/// identical across that swap and stay unversioned (keys unchanged).
constexpr const char* kCryptoStreamVersion = "crypto-rng-v2";

std::string chain_profile_record(const harness::ChainProfileExperiment& experiment,
                                 std::uint64_t samples, std::uint64_t seed,
                                 const arith::CarryChainProfiler& profiler) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "chain-profile");
  record.add("width", experiment.width);
  const bool crypto = experiment.workload == harness::ChainProfileExperiment::Workload::kCrypto;
  record.add("workload", crypto ? "crypto" : "distribution");
  record.add("source",
             crypto ? std::string(to_string(experiment.crypto_kind))
                    : arith::to_string(experiment.dist));
  record.add("samples", samples);
  record.add("seed", seed);
  // Chain profiling has no batched pipeline; key the scalar path so the
  // cache key shape is uniform across both families.
  record.add("eval_path", to_string(harness::EvalPath::kScalar));
  // Crypto workloads are stream-versioned (see kCryptoStreamVersion), and so
  // are Gaussian distribution profiles (see kGaussStreamVersion): records
  // from an incompatible seeding/sampler era must miss, not hit stale.
  if (crypto) {
    record.add("stream_version", kCryptoStreamVersion);
  } else if (gaussian_dist(experiment.dist)) {
    record.add("stream_version", kGaussStreamVersion);
  }
  record.add("additions", profiler.additions());
  record.add("chains", profiler.total());
  record.add("mean_chain_length", profiler.mean_length());
  record.add("fraction_at_least_half_width",
             profiler.fraction_at_least(experiment.width / 2));
  return record.render_line();
}

}  // namespace

/// One validated run request (or run-batch element).
struct ExperimentService::RunSpec {
  std::string experiment;
  std::uint64_t samples = 0;
  bool samples_given = false;
  std::uint64_t seed = 1;
  harness::EvalPath path = harness::EvalPath::kBatched;
  bool path_given = false;
  std::uint64_t timeout_ms = 0;  // request-level override; 0 = not given
  bool timeout_given = false;
};

/// What running one spec produced: either `error` (+ `code`) or a record.
struct ExperimentService::RunOutcome {
  std::string error;  // empty = success
  const char* code = kCodeBadRequest;
  ResultCache::Tier tier = ResultCache::Tier::kMiss;
  bool coalesced = false;
  std::string record;
};

namespace {

/// Parses/validates one run spec's fields.  `allowed` differs between a
/// top-level run request ("request"/"timeout_ms" permitted) and a run-batch
/// element (bare spec only); "" or an error message.
std::string read_run_spec(const JsonValue& request,
                          std::initializer_list<std::string_view> allowed,
                          ExperimentService::RunSpec& out) {
  if (std::string error = check_fields(request, allowed); !error.empty()) return error;
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", out.experiment, given);
      !error.empty()) {
    return error;
  }
  if (!given || out.experiment.empty()) return "run requires field 'experiment'";
  if (std::string error = read_u64_field(request, "samples", out.samples, out.samples_given);
      !error.empty()) {
    return error;
  }
  if (out.samples_given && out.samples == 0) {
    return "field 'samples' must be positive (omit it for the experiment default)";
  }
  if (std::string error = read_u64_field(request, "seed", out.seed, given); !error.empty()) {
    return error;
  }
  std::string path_text;
  if (std::string error = read_string_field(request, "eval_path", path_text, out.path_given);
      !error.empty()) {
    return error;
  }
  if (out.path_given && !harness::parse_eval_path(path_text, out.path)) {
    return "field 'eval_path' must be \"batched\" or \"scalar\"";
  }
  if (std::string error =
          read_u64_field(request, "timeout_ms", out.timeout_ms, out.timeout_given);
      !error.empty()) {
    return error;
  }
  if (out.timeout_given && out.timeout_ms == 0) {
    return "field 'timeout_ms' must be positive (omit it for the server default)";
  }
  if (out.timeout_given && out.timeout_ms > kMaxTimeoutMs) {
    return "field 'timeout_ms' must be at most 86400000 (24 hours)";
  }
  return {};
}

/// Arms the deadline watchdog for one request and guarantees the disarm:
/// run_one rethrows engine/cache failures (and a leader rethrow escapes the
/// handler), so only a destructor reliably unregisters the watchdog entry
/// before the stack-local cancel token it points at dies.
class ArmedDeadline {
 public:
  ArmedDeadline(DeadlineWatchdog& watchdog, DeadlineWatchdog::Clock::time_point start,
                int timeout_ms, std::atomic<bool>* token)
      : watchdog_(watchdog) {
    if (timeout_ms > 0) {
      id_ = watchdog_.arm(start + std::chrono::milliseconds(timeout_ms), token);
      token_ = token;
    }
  }
  ~ArmedDeadline() {
    if (id_ != 0) watchdog_.disarm(id_);
  }
  ArmedDeadline(const ArmedDeadline&) = delete;
  ArmedDeadline& operator=(const ArmedDeadline&) = delete;

  /// The armed token, or nullptr when no deadline applies.
  [[nodiscard]] const std::atomic<bool>* token() const { return token_; }

 private:
  DeadlineWatchdog& watchdog_;
  DeadlineWatchdog::Id id_ = 0;
  std::atomic<bool>* token_ = nullptr;
};

}  // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.memory_entries, config_.cache_max_bytes) {}

std::vector<std::string> ExperimentService::request_names() {
  return {"run", "run-batch", "list", "describe", "cache-stats", "metrics", "shutdown"};
}

ExperimentService::Reply ExperimentService::handle_line(const std::string& line) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const ServiceMetrics::InFlight in_flight(metrics_);

  std::string type = "invalid";
  Reply reply;
  const harness::JsonParse parse = harness::parse_json(line);
  if (!parse.ok()) {
    reply = error_reply("malformed request: " + parse.error);
  } else if (parse.value.kind() != JsonValue::Kind::kObject) {
    reply = error_reply("request must be a JSON object");
  } else {
    const JsonValue* request_field = parse.value.find("request");
    if (request_field == nullptr || request_field->kind() != JsonValue::Kind::kString) {
      reply = error_reply("missing string field 'request'");
    } else {
      // The dispatch table: one row per request type.  request_names() and
      // DESIGN.md's protocol reference must list exactly these names — the
      // protocol-doc test diffs all three.
      struct Row {
        const char* name;
        Reply (ExperimentService::*handler)(const JsonValue&);
      };
      static constexpr Row kDispatch[] = {
          {"run", &ExperimentService::handle_run},
          {"run-batch", &ExperimentService::handle_run_batch},
          {"list", &ExperimentService::handle_list},
          {"describe", &ExperimentService::handle_describe},
          {"cache-stats", &ExperimentService::handle_cache_stats},
          {"metrics", &ExperimentService::handle_metrics},
          {"shutdown", &ExperimentService::handle_shutdown},
      };
      const std::string& request = request_field->as_string();
      const Row* row = nullptr;
      for (const Row& candidate : kDispatch) {
        if (request == candidate.name) {
          row = &candidate;
          break;
        }
      }
      if (row == nullptr) {
        reply = error_reply(
            "unknown request '" + request +
                "' (expected run, run-batch, list, describe, cache-stats, metrics or shutdown)",
            kCodeUnknownRequest);
      } else {
        type = row->name;
        // A daemon must outlive any single request: anything a handler
        // throws (engine failures, rethrown leader exceptions from the
        // single-flight latch) becomes an error reply, never a dead server.
        try {
          reply = (this->*row->handler)(parse.value);
        } catch (const std::exception& error) {
          reply = error_reply(std::string("internal error: ") + error.what(), kCodeInternal);
        }
      }
    }
  }

  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  metrics_.record_request(type, reply.ok, wall);
  return reply;
}

int ExperimentService::effective_timeout_ms(const RunSpec& spec) const {
  if (spec.timeout_given) return static_cast<int>(spec.timeout_ms);
  return config_.timeout_ms;
}

ExperimentService::RunOutcome ExperimentService::run_one(const RunSpec& run,
                                                         const std::atomic<bool>* cancel) {
  RunOutcome out;
  const auto* error_rate = harness::find_error_rate_experiment(run.experiment);
  const auto* chain_profile =
      error_rate == nullptr ? harness::find_chain_profile_experiment(run.experiment) : nullptr;
  if (error_rate == nullptr && chain_profile == nullptr) {
    out.error = "unknown experiment '" + run.experiment + "' (try \"list\")";
    out.code = kCodeUnknownExperiment;
    return out;
  }
  if (chain_profile != nullptr && run.path_given) {
    out.error = "field 'eval_path' only applies to error-rate experiments; '" + run.experiment +
                "' is a chain-profile experiment";
    return out;
  }

  CacheKey key;
  key.experiment = run.experiment;
  key.samples = run.samples_given
                    ? run.samples
                    : (error_rate != nullptr ? error_rate->default_samples
                                             : chain_profile->default_samples);
  key.seed = run.seed;
  key.eval_path = to_string(error_rate != nullptr ? run.path : harness::EvalPath::kScalar);
  if (chain_profile != nullptr &&
      chain_profile->workload == harness::ChainProfileExperiment::Workload::kCrypto) {
    key.stream_version = kCryptoStreamVersion;
  } else if (chain_profile != nullptr && gaussian_dist(chain_profile->dist)) {
    key.stream_version = kGaussStreamVersion;
  } else if (error_rate != nullptr && gaussian_dist(error_rate->dist)) {
    key.stream_version = kGaussStreamVersion;
  }

  // A deadline that already fired answers without touching the cache, so a
  // timed-out batch drains its remaining elements in microseconds.
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    metrics_.record_timeout();  // counted like any other timeout-coded reply
    out.error = "timeout: deadline expired before the run started";
    out.code = kCodeTimeout;
    return out;
  }

  // Single-flight: one leader per key does the cache lookup and (on a miss)
  // the one computation; requests arriving while that is in flight wait on
  // the leader's future instead of re-sampling the same experiment in
  // parallel.  The latch is taken before the lookup so the cache counters
  // see exactly one event per non-coalesced request.
  const std::string map_key = cache_map_key(key);
  std::promise<std::string> promise;
  std::shared_future<std::string> future;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(map_key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_.emplace(map_key, future);
      leader = true;
    }
  }

  ResultCache::Lookup lookup;
  try {
    if (leader) {
      try {
        lookup = cache_.get(key);
        if (lookup.tier == ResultCache::Tier::kMiss) {
          harness::RunOptions options;
          options.samples = key.samples;
          options.seed = key.seed;
          options.threads = config_.threads;
          options.cancel = cancel;
          if (error_rate != nullptr) {
            const auto result = harness::run_experiment(*error_rate, options, run.path);
            lookup.record = error_rate_record(*error_rate, key.seed, run.path, result);
          } else {
            const auto profiler = harness::run_experiment(*chain_profile, options);
            lookup.record = chain_profile_record(*chain_profile, key.samples, key.seed, profiler);
          }
          // Only a completed run reaches put(): RunCancelled throws past it,
          // so a timed-out run never writes a partial cache record.
          cache_.put(key, lookup.record);
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(inflight_mutex_);
          inflight_.erase(map_key);
        }
        promise.set_exception(std::current_exception());
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(map_key);
      }
      promise.set_value(lookup.record);
    } else {
      out.coalesced = true;
      // A follower enforces its *own* deadline: the leader may have a longer
      // deadline (or none), so the wait is bounded by this request's token.
      // The leader keeps computing — only this reply times out.
      if (cancel != nullptr) {
        while (future.wait_for(std::chrono::milliseconds(5)) != std::future_status::ready) {
          if (cancel->load(std::memory_order_relaxed)) {
            metrics_.record_timeout();
            out.error = "timeout: deadline expired while waiting for a coalesced run";
            out.code = kCodeTimeout;
            return out;
          }
        }
      }
      lookup.record = future.get();  // rethrows if the leader failed
    }
  } catch (const harness::RunCancelled&) {
    // Either our own deadline fired, or we coalesced onto a leader whose
    // deadline fired — the computation is gone either way.
    metrics_.record_timeout();
    out.error = "timeout: run cancelled before completion";
    out.code = kCodeTimeout;
    return out;
  }

  out.tier = lookup.tier;
  out.record = std::move(lookup.record);
  return out;
}

ExperimentService::Reply ExperimentService::handle_run(const JsonValue& request) {
  RunSpec run;
  if (std::string error = read_run_spec(
          request, {"request", "experiment", "samples", "seed", "eval_path", "timeout_ms"},
          run);
      !error.empty()) {
    return error_reply(error);
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  std::atomic<bool> cancel{false};
  const ArmedDeadline deadline(watchdog_, start, effective_timeout_ms(run), &cancel);
  const RunOutcome outcome = run_one(run, deadline.token());
  if (!outcome.error.empty()) return error_reply(outcome.error, outcome.code);

  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "run");
  response.add("experiment", run.experiment);
  response.add("cache", outcome.coalesced ? "coalesced" : tier_name(outcome.tier));
  response.add("wall_seconds", wall);
  response.add_json("record", outcome.record);
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_run_batch(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request", "runs", "timeout_ms"});
      !error.empty()) {
    return error_reply(error);
  }
  const JsonValue* runs = request.find("runs");
  if (runs == nullptr || runs->kind() != JsonValue::Kind::kArray) {
    return error_reply("run-batch requires array field 'runs'");
  }
  std::uint64_t timeout_ms = 0;
  bool timeout_given = false;
  if (std::string error = read_u64_field(request, "timeout_ms", timeout_ms, timeout_given);
      !error.empty()) {
    return error_reply(error);
  }
  if (timeout_given && timeout_ms == 0) {
    return error_reply("field 'timeout_ms' must be positive (omit it for the server default)");
  }
  if (timeout_given && timeout_ms > kMaxTimeoutMs) {
    return error_reply("field 'timeout_ms' must be at most 86400000 (24 hours)");
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  // One deadline for the whole batch: the request either finishes inside it
  // or drains its remaining elements as per-element timeout errors.
  const int effective_ms =
      timeout_given ? static_cast<int>(timeout_ms) : config_.timeout_ms;
  std::atomic<bool> cancel{false};
  const ArmedDeadline deadline(watchdog_, start, effective_ms, &cancel);

  std::vector<std::string> results;
  results.reserve(runs->items().size());
  std::uint64_t ok_count = 0;
  std::uint64_t error_count = 0;
  for (const JsonValue& element : runs->items()) {
    metrics_.record_batch_element();
    JsonObject rendered;
    RunSpec spec;
    std::string error;
    if (element.kind() != JsonValue::Kind::kObject) {
      error = "batch element must be a JSON object (a run spec)";
    } else {
      error = read_run_spec(element, {"experiment", "samples", "seed", "eval_path"}, spec);
    }
    if (!error.empty()) {
      rendered.add("status", "error");
      rendered.add("code", kCodeBadRequest);
      rendered.add("error", error);
      ++error_count;
      results.push_back(rendered.render_line());
      continue;
    }
    RunOutcome outcome;
    try {
      outcome = run_one(spec, deadline.token());
    } catch (const std::exception& failure) {
      outcome.error = std::string("internal error: ") + failure.what();
      outcome.code = kCodeInternal;
    }
    if (!outcome.error.empty()) {
      rendered.add("status", "error");
      rendered.add("code", outcome.code);
      rendered.add("error", outcome.error);
      rendered.add("experiment", spec.experiment);
      ++error_count;
    } else {
      rendered.add("status", "ok");
      rendered.add("experiment", spec.experiment);
      rendered.add("cache", outcome.coalesced ? "coalesced" : tier_name(outcome.tier));
      rendered.add_json("record", outcome.record);
      ++ok_count;
    }
    results.push_back(rendered.render_line());
  }

  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "run-batch");
  response.add("count", static_cast<std::uint64_t>(results.size()));
  response.add("ok", ok_count);
  response.add("errors", error_count);
  response.add("wall_seconds", wall);
  response.add_json("results", render_object_array(results));
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_list(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request", "prefix"}); !error.empty()) {
    return error_reply(error);
  }
  std::string prefix;
  bool given = false;
  if (std::string error = read_string_field(request, "prefix", prefix, given);
      !error.empty()) {
    return error_reply(error);
  }

  std::vector<std::string> error_rate;
  for (const auto* experiment : harness::error_rate_experiments_with_prefix(prefix)) {
    error_rate.push_back(experiment->name);
  }
  std::vector<std::string> chain_profile;
  for (const auto* experiment : harness::chain_profile_experiments_with_prefix(prefix)) {
    chain_profile.push_back(experiment->name);
  }

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "list");
  response.add_json("error_rate", render_string_array(error_rate));
  response.add_json("chain_profile", render_string_array(chain_profile));
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_describe(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request", "experiment"}); !error.empty()) {
    return error_reply(error);
  }
  std::string name;
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", name, given);
      !error.empty()) {
    return error_reply(error);
  }
  if (!given || name.empty()) return error_reply("describe requires field 'experiment'");

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "describe");
  if (const auto* experiment = harness::find_error_rate_experiment(name)) {
    response.add("experiment", experiment->name);
    response.add("kind", "error-rate");
    response.add("model", to_string(experiment->model));
    response.add("width", experiment->width);
    response.add("window", experiment->window);
    response.add("distribution", arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  if (const auto* experiment = harness::find_chain_profile_experiment(name)) {
    const bool crypto =
        experiment->workload == harness::ChainProfileExperiment::Workload::kCrypto;
    response.add("experiment", experiment->name);
    response.add("kind", "chain-profile");
    response.add("width", experiment->width);
    response.add("workload", crypto ? "crypto" : "distribution");
    response.add("source", crypto ? std::string(to_string(experiment->crypto_kind))
                                  : arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  return error_reply("unknown experiment '" + name + "' (try \"list\")",
                     kCodeUnknownExperiment);
}

ExperimentService::Reply ExperimentService::handle_cache_stats(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request"}); !error.empty()) {
    return error_reply(error);
  }
  const CacheStats stats = cache_.stats();
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "cache-stats");
  response.add("memory_hits", stats.memory_hits);
  response.add("disk_hits", stats.disk_hits);
  response.add("misses", stats.misses);
  response.add("stores", stats.stores);
  response.add("evictions", stats.evictions);
  response.add("disk_evictions", stats.disk_evictions);
  response.add("invalid_disk_records", stats.invalid_disk_records);
  response.add("memory_entries", stats.memory_entries);
  response.add("memory_capacity", static_cast<std::uint64_t>(cache_.memory_capacity()));
  response.add("disk_dir", cache_.disk_dir());
  response.add("disk_bytes", stats.disk_bytes);
  response.add("disk_max_bytes", cache_.max_disk_bytes());
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_metrics(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request"}); !error.empty()) {
    return error_reply(error);
  }
  const MetricsSnapshot snapshot = metrics_.snapshot();
  const CacheStats cache_stats = cache_.stats();
  const std::uint64_t hits = cache_stats.memory_hits + cache_stats.disk_hits;
  const std::uint64_t lookups = hits + cache_stats.misses;

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "metrics");
  // The snapshot taken before this request finished — "metrics" itself is
  // not yet in any counter (it records on return like every request).
  response.add("requests_total", snapshot.requests_total);
  response.add("ok_total", snapshot.ok_total);
  response.add("error_total", snapshot.error_total);
  response.add("timeouts", snapshot.timeouts);
  response.add("batch_elements", snapshot.batch_elements);
  response.add("rejected_connections", snapshot.rejected_connections);
  response.add("in_flight", snapshot.in_flight);
  response.add("uptime_seconds", snapshot.uptime_seconds);
  response.add("qps", snapshot.qps);
  response.add("cache_hits", hits);
  response.add("cache_misses", cache_stats.misses);
  response.add("cache_hit_ratio",
               lookups == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(lookups));
  response.add("latency_p50_seconds", snapshot.latency_p50_seconds);
  response.add("latency_p95_seconds", snapshot.latency_p95_seconds);
  response.add("latency_p99_seconds", snapshot.latency_p99_seconds);
  response.add("latency_max_seconds", snapshot.latency_max_seconds);
  JsonObject by_type;
  for (const RequestTypeCount& entry : snapshot.by_type) {
    by_type.add(entry.name, entry.count);
  }
  response.add_json("requests_by_type", by_type.render_line());
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_shutdown(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request"}); !error.empty()) {
    return error_reply(error);
  }
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "shutdown");
  return {response.render_line(), true};
}

std::uint64_t serve_stdio(std::istream& in, std::ostream& out, ExperimentService& service) {
  std::uint64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    const ExperimentService::Reply reply = service.handle_line(line);
    out << reply.line << '\n' << std::flush;
    ++handled;
    if (reply.shutdown) break;
  }
  return handled;
}

}  // namespace vlcsa::service
