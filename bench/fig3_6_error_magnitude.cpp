// Fig 3.6 / Ch. 3.3 — error magnitude of the bare speculative adder.  The
// paper makes the argument by example (a wrong window carry shifts the
// result by one window weight: relative error 1/2^7 in Fig 3.6); this bench
// quantifies it over full Monte Carlo runs and contrasts the distribution of
// log2 |error| against the window boundaries.

#include <iostream>

#include "arith/distributions.hpp"
#include "harness/report.hpp"
#include "speculative/error_magnitude.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 500000);
  harness::print_banner(std::cout, "Figure 3.6 / Ch. 3.3",
                        "SCSA error magnitude, unsigned uniform inputs, " +
                            std::to_string(args.samples) + " samples per configuration.");

  harness::Table table({"n", "k", "error rate", "mean |err|/|exact|", "max |err|/|exact|",
                        "dominant log2|err|"});
  for (const auto& [n, k] : {std::pair{32, 6}, {32, 8}, {64, 8}, {64, 10}, {128, 12}}) {
    auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
    const auto stats =
        spec::measure_error_magnitude(spec::ScsaConfig{n, k}, *source, args.samples, args.seed);
    int dominant = 0;
    std::uint64_t best = 0;
    for (int l = 0; l < 64; ++l) {
      if (stats.magnitude_log2[static_cast<std::size_t>(l)] > best) {
        best = stats.magnitude_log2[static_cast<std::size_t>(l)];
        dominant = l;
      }
    }
    table.add_row({std::to_string(n), std::to_string(k), harness::fmt_pct(stats.error_rate()),
                   harness::fmt_sci(stats.mean_relative_error),
                   harness::fmt_sci(stats.max_relative_error),
                   stats.errors == 0 ? "-" : ("2^" + std::to_string(dominant))});
  }
  table.print(std::cout);
  std::cout << "\nExpected: mean relative errors in the 1e-3..1e-1 range and |err|\n"
               "concentrated at window-boundary weights — a wrong speculation is a\n"
               "window off-by-one, never a lone high-order bit flip (Ch. 3.3).\n";
  return 0;
}
