#pragma once
// Monte Carlo experiment engine: runs operand streams through the behavioral
// models and aggregates the error/latency statistics the paper's tables
// report.  All runs are reproducible from a seed.
//
// Terminology (kept deliberately explicit because the paper conflates two
// notions under "error rate"):
//  * actual error   — the speculative result (including carry-out) differs
//                     from the exact sum;
//  * nominal error  — the detection logic flags (ERR for VLCSA 1, ERR0&ERR1
//                     for VLCSA 2); this is the *stall* rate and is what
//                     eq. (3.13) models.  Detection overestimates, so
//                     nominal >= actual always (a tested invariant).

#include <cstdint>
#include <random>
#include <string_view>

#include "arith/distributions.hpp"
#include "harness/engine.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlcsa.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::harness {

using arith::OperandSource;

/// How an experiment pushes samples through the behavioral model.
///  * kBatched — bit-sliced: 64 * lane_words samples per model pass, with
///    the plane arrays streamed through the dispatched planeops backend
///    (and a scalar tail for shard sizes not divisible by the batch size);
///  * kScalar  — one sample at a time (the original path, kept as the
///    differential-testing oracle).
/// Both produce bit-identical ErrorRateResult counters at any thread count,
/// lane width, and planeops backend — tested invariants.
enum class EvalPath {
  kBatched,
  kScalar,
};

[[nodiscard]] const char* to_string(EvalPath path);

/// Inverse of to_string(EvalPath) ("batched"/"scalar" — the spelling the
/// service protocol and cache keys use).  Returns false on unknown text
/// without touching `out`.
[[nodiscard]] bool parse_eval_path(std::string_view text, EvalPath& out);

struct ErrorRateResult {
  std::uint64_t samples = 0;
  std::uint64_t actual_errors = 0;      // primary speculative result wrong
  std::uint64_t nominal_errors = 0;     // detection flagged (stall)
  std::uint64_t false_negatives = 0;    // wrong but not flagged (must be 0)
  std::uint64_t either_wrong = 0;       // VLCSA 2: neither S*,0 nor S*,1 exact
  std::uint64_t emitted_wrong = 0;      // final emitted result wrong (must be 0)
  std::uint64_t total_cycles = 0;

  /// Shard-merge for the parallel engine: plain counter addition, so merging
  /// is exact and order-independent in value (the engine still merges in
  /// shard order for a fixed, documented reduction).
  ErrorRateResult& operator+=(const ErrorRateResult& other) {
    samples += other.samples;
    actual_errors += other.actual_errors;
    nominal_errors += other.nominal_errors;
    false_negatives += other.false_negatives;
    either_wrong += other.either_wrong;
    emitted_wrong += other.emitted_wrong;
    total_cycles += other.total_cycles;
    return *this;
  }

  /// Counter-exact comparison — what the batch-vs-scalar differential tests
  /// and the thread-count-invariance tests assert.
  [[nodiscard]] friend bool operator==(const ErrorRateResult&, const ErrorRateResult&) = default;

  [[nodiscard]] double actual_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(actual_errors) / static_cast<double>(samples);
  }
  [[nodiscard]] double nominal_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(nominal_errors) / static_cast<double>(samples);
  }
  [[nodiscard]] double either_wrong_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(either_wrong) / static_cast<double>(samples);
  }
  /// Eq. (5.2)/(6.1) measured directly.
  [[nodiscard]] double average_cycles() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(total_cycles) / static_cast<double>(samples);
  }
};

/// Folds one VLCSA step into the accumulator — the single per-sample kernel
/// every VLCSA experiment (registry, benches, window search) shares.
void accumulate_vlcsa(const spec::VlcsaStep& step, spec::ScsaVariant variant,
                      ErrorRateResult& out);

/// Folds one VLSA evaluation the same way (actual = spec wrong, nominal = ERR).
void accumulate_vlsa(const spec::VlsaEvaluation& eval, ErrorRateResult& out);

/// Folds one whole bit-sliced VLCSA batch (64 * lane_words steps) at once:
/// each counter advances by the popcount of the corresponding lane-mask
/// group, so the totals match 64 * lane_words scalar accumulate_vlcsa calls
/// exactly.
void accumulate_vlcsa_batch(const spec::VlcsaBatchStep& step, spec::ScsaVariant variant,
                            ErrorRateResult& out);

/// Folds one whole bit-sliced VLSA batch the same way.
void accumulate_vlsa_batch(const spec::VlsaBatchEvaluation& eval, ErrorRateResult& out);

/// Runs `options.samples` additions of a VLCSA configuration over an operand
/// source on the sharded engine.  The result is bit-identical for any thread
/// count AND either EvalPath (see engine.hpp and EvalPath); `source` itself
/// is never drawn from — each shard draws from a fresh clone.
[[nodiscard]] ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                                        const RunOptions& options,
                                        EvalPath path = EvalPath::kBatched);

/// Convenience overload with the default shard size.
[[nodiscard]] ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                                        std::uint64_t samples, std::uint64_t seed,
                                        int threads = 0, EvalPath path = EvalPath::kBatched);

/// Runs the VLSA baseline the same way.
[[nodiscard]] ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                                       const RunOptions& options,
                                       EvalPath path = EvalPath::kBatched);

[[nodiscard]] ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                                       std::uint64_t samples, std::uint64_t seed,
                                       int threads = 0, EvalPath path = EvalPath::kBatched);

/// Finds the smallest window size whose *nominal* (stall) rate over the given
/// distribution stays within slack * target — the simulation-driven sizing
/// the paper uses for VLCSA 2 (Table 7.5).  Search range: [k_lo, k_hi].
struct EmpiricalWindowSearch {
  int window = 0;
  ErrorRateResult result;  // stats at the chosen window
};
[[nodiscard]] EmpiricalWindowSearch find_window_for_nominal_rate(
    int width, spec::ScsaVariant variant, arith::InputDistribution dist,
    arith::GaussianParams params, double target, double slack, std::uint64_t samples,
    std::uint64_t seed, int k_lo = 4, int k_hi = 32, int threads = 0);

}  // namespace vlcsa::harness
