// Future-work extensions (Ch. 8) — multiplication and multi-operand
// addition built on the VLCSA final adder.  Reports stall rates and average
// cycles of the variable-latency final addition inside each structure, over
// uniform and Gaussian operand streams.

#include <cmath>
#include <iostream>

#include "arith/distributions.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"
#include "speculative/multi_operand.hpp"
#include "speculative/multiplier.hpp"

using namespace vlcsa;
using arith::ApInt;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 20000);
  harness::print_banner(std::cout, "Future work (Ch. 8)",
                        "Variable-latency multiplication and multi-operand addition: "
                        "stall behaviour of the VLCSA final adder, " +
                            std::to_string(args.samples) + " operations per row.");

  harness::Table table({"unit", "config", "stall rate", "avg cycles", "exactness"});
  vlcsa::arith::BlockRng rng(args.seed);

  // 32x32 multiplier, VLCSA 2 final adder at 64 bits.
  {
    const int k = spec::published_vlcsa2_parameters().k_rate_25;
    const spec::SpeculativeMultiplier mul(32, k);
    std::uint64_t stalls = 0, cycles = 0, wrong = 0;
    for (std::uint64_t i = 0; i < args.samples; ++i) {
      const std::uint64_t ua = rng() & 0xffffffffu;
      const std::uint64_t ub = rng() & 0xffffffffu;
      const auto r = mul.multiply(ApInt::from_u64(32, ua), ApInt::from_u64(32, ub));
      stalls += r.stalled ? 1 : 0;
      cycles += static_cast<std::uint64_t>(r.cycles);
      wrong += r.product.to_u64() != ua * ub ? 1 : 0;
    }
    table.add_row({"multiplier 32x32", "VLCSA2 k=" + std::to_string(k),
                   harness::fmt_pct(static_cast<double>(stalls) / args.samples),
                   harness::fmt_fixed(static_cast<double>(cycles) / args.samples, 4),
                   wrong == 0 ? "exact" : "WRONG"});
  }

  // 8-operand 64-bit accumulator, uniform and Gaussian operands.
  for (const bool gaussian : {false, true}) {
    const int k = gaussian ? spec::published_vlcsa2_parameters().k_rate_25
                           : spec::min_window_for_error_rate(64, 2.5e-3);
    const spec::MultiOperandAdder adder(
        {64, k, gaussian ? spec::ScsaVariant::kScsa2 : spec::ScsaVariant::kScsa1});
    auto source = arith::make_source(gaussian ? arith::InputDistribution::kGaussianTwos
                                              : arith::InputDistribution::kUniformUnsigned,
                                     64, arith::GaussianParams{0.0, std::ldexp(1.0, 32)});
    std::uint64_t stalls = 0, cycles = 0, wrong = 0;
    for (std::uint64_t i = 0; i < args.samples; ++i) {
      std::vector<ApInt> ops;
      ApInt expected(64);
      for (int j = 0; j < 4; ++j) {
        const auto [a, b] = source->next(rng);
        ops.push_back(a);
        ops.push_back(b);
        expected = (expected + a) + b;
      }
      const auto r = adder.add(ops);
      stalls += r.stalled ? 1 : 0;
      cycles += static_cast<std::uint64_t>(r.cycles);
      wrong += r.sum != expected ? 1 : 0;
    }
    table.add_row({"8-operand adder", std::string(gaussian ? "gaussian, VLCSA2" : "uniform, VLCSA1") +
                       " k=" + std::to_string(k),
                   harness::fmt_pct(static_cast<double>(stalls) / args.samples),
                   harness::fmt_fixed(static_cast<double>(cycles) / args.samples, 4),
                   wrong == 0 ? "exact" : "WRONG"});
  }
  table.print(std::cout);
  std::cout << "\nNote: carry-save outputs are not uniform (the carry word is even and\n"
               "correlated with the sum word), so final-adder stall rates differ from\n"
               "the raw-input rates — measured here rather than modeled.\n";
  return 0;
}
