#pragma once
// Carry-chain statistics used throughout Ch. 3 and Ch. 6 of the paper.
//
// Definition (documented because the literature varies): for one addition
// a + b with no external carry-in, a carry chain starts at every bit
// position i with generate g_i = a_i & b_i = 1.  The chain extends upward
// through the maximal run of propagate bits (p_j = a_j ^ b_j = 1 for
// j = i+1, i+2, ...) and its *length* is 1 + the length of that run — i.e.
// the number of bit positions whose carry value is determined by the
// generate at position i.  A chain of length L reaches L-1 positions above
// its origin before being absorbed.
//
// Two summary metrics are supported:
//  * kAllChains        — histogram over the lengths of *all* chains in all
//                        recorded additions (Figs 6.1–6.5 use this view);
//  * kLongestPerAdd    — histogram over the single longest chain of each
//                        addition (the classic O(log n) average result).

#include <cstdint>
#include <vector>

#include "arith/apint.hpp"

namespace vlcsa::arith {

enum class ChainMetric {
  kAllChains,
  kLongestPerAdd,
};

/// Extracts the lengths of all carry chains in one addition.
[[nodiscard]] std::vector<int> carry_chain_lengths(const ApInt& a, const ApInt& b);

/// Length of the longest carry chain in one addition (0 when no bit generates).
[[nodiscard]] int longest_carry_chain(const ApInt& a, const ApInt& b);

/// Streaming histogram of carry-chain lengths.
class CarryChainProfiler {
 public:
  explicit CarryChainProfiler(int width, ChainMetric metric = ChainMetric::kAllChains);

  /// Records the chains of one addition.
  void record(const ApInt& a, const ApInt& b);

  /// Records a pre-extracted list of chain lengths (used by instrumented
  /// workloads that already walked the operands).
  void record_lengths(const std::vector<int>& lengths);

  /// Merges another profiler's counts (the parallel engine's shard-merge
  /// operation).  Throws std::invalid_argument on width/metric mismatch.
  CarryChainProfiler& operator+=(const CarryChainProfiler& other);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] ChainMetric metric() const { return metric_; }

  /// counts()[L] = number of observed chains of length L (index 0 counts
  /// additions with no chain under kLongestPerAdd and is unused otherwise).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Total number of recorded chains (kAllChains) or additions (kLongestPerAdd).
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Number of record() calls.
  [[nodiscard]] std::uint64_t additions() const { return additions_; }

  /// Fraction of chains with length L (0 when nothing recorded).
  [[nodiscard]] double fraction(int length) const;

  /// Fraction of chains with length >= L.
  [[nodiscard]] double fraction_at_least(int length) const;

  /// Mean chain length under the active metric.
  [[nodiscard]] double mean_length() const;

 private:
  int width_;
  ChainMetric metric_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t additions_ = 0;
};

}  // namespace vlcsa::arith
