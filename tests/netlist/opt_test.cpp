#include "netlist/opt.hpp"

#include <gtest/gtest.h>

#include <random>

#include "netlist/simulator.hpp"

namespace vlcsa::netlist {
namespace {

/// Checks functional equivalence of two netlists with identical input ports
/// over `rounds` x 64 random vectors.
void expect_equivalent(const Netlist& a, const Netlist& b, int rounds = 8,
                       std::uint64_t seed = 1) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  std::mt19937_64 rng(seed);
  Simulator sa(a), sb(b);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const std::uint64_t word = rng();
      sa.set_input(i, word);
      sb.set_input(i, word);
    }
    sa.run();
    sb.run();
    for (std::size_t o = 0; o < a.outputs().size(); ++o) {
      EXPECT_EQ(sa.value(a.outputs()[o].signal), sb.value(b.outputs()[o].signal))
          << "output " << a.outputs()[o].name;
    }
  }
}

TEST(Optimize, ConstantFoldingCollapsesToConstant) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal z = nl.and_(a, nl.constant(false));
  const Signal y = nl.or_(z, nl.constant(false));
  nl.add_output("y", y);
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.logic_gate_count(), 0u);
  EXPECT_EQ(opt.gate(opt.outputs()[0].signal).kind, GateKind::kConst0);
}

TEST(Optimize, IdentityOperandsAreElided) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  nl.add_output("y", nl.and_(a, nl.constant(true)));
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.logic_gate_count(), 0u);
  EXPECT_EQ(opt.outputs()[0].signal, opt.inputs()[0].signal);
}

TEST(Optimize, DoubleInversionCancels) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  nl.add_output("y", nl.not_(nl.not_(a)));
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.logic_gate_count(), 0u);
}

TEST(Optimize, StructuralHashingMergesDuplicates) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  const Signal x1 = nl.and_(a, b);
  const Signal x2 = nl.and_(b, a);  // commuted duplicate
  nl.add_output("y", nl.xor_(x1, x2));
  const Netlist opt = optimize(nl);
  // and(a,b) == and(b,a) -> xor(x,x) -> const0.
  EXPECT_EQ(opt.gate(opt.outputs()[0].signal).kind, GateKind::kConst0);
}

TEST(Optimize, ComplementaryOperandsFold) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal na = nl.not_(a);
  nl.add_output("and0", nl.and_(a, na));
  nl.add_output("or1", nl.or_(a, na));
  nl.add_output("xor1", nl.xor_(a, na));
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.gate(opt.find_output("and0").value()).kind, GateKind::kConst0);
  EXPECT_EQ(opt.gate(opt.find_output("or1").value()).kind, GateKind::kConst1);
  EXPECT_EQ(opt.gate(opt.find_output("xor1").value()).kind, GateKind::kConst1);
}

TEST(Optimize, MuxRewrites) {
  Netlist nl;
  const Signal s = nl.add_input("s");
  const Signal d = nl.add_input("d");
  nl.add_output("same", nl.mux(s, d, d));                                // -> d
  nl.add_output("ident", nl.mux(s, nl.constant(false), nl.constant(true)));  // -> s
  nl.add_output("inv", nl.mux(s, nl.constant(true), nl.constant(false)));    // -> !s
  nl.add_output("or_", nl.mux(s, d, nl.constant(true)));                 // -> s | d
  nl.add_output("and_", nl.mux(s, nl.constant(false), d));               // -> s & d
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.find_output("same"), opt.find_input("d"));
  EXPECT_EQ(opt.find_output("ident"), opt.find_input("s"));
  EXPECT_EQ(opt.gate(opt.find_output("inv").value()).kind, GateKind::kNot);
  EXPECT_EQ(opt.gate(opt.find_output("or_").value()).kind, GateKind::kOr2);
  EXPECT_EQ(opt.gate(opt.find_output("and_").value()).kind, GateKind::kAnd2);
  expect_equivalent(nl, opt);
}

TEST(Optimize, DeadGatesAreRemovedButInputsKept) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  (void)nl.xor_(a, b);  // dangling
  nl.add_output("y", nl.and_(a, b));
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.logic_gate_count(), 1u);
  EXPECT_EQ(opt.inputs().size(), 2u);
}

TEST(Optimize, PreservesPortNamesOrderAndGroups) {
  Netlist nl("mod");
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("y0", nl.and_(a, b), "g0");
  nl.add_output("y1", nl.or_(a, b), "g1");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.name(), "mod");
  ASSERT_EQ(opt.outputs().size(), 2u);
  EXPECT_EQ(opt.outputs()[0].name, "y0");
  EXPECT_EQ(opt.outputs()[0].group, "g0");
  EXPECT_EQ(opt.outputs()[1].name, "y1");
  EXPECT_EQ(opt.outputs()[1].group, "g1");
}

TEST(Optimize, RandomNetlistsStayEquivalent) {
  std::mt19937_64 rng(4242);
  for (int netlist_trial = 0; netlist_trial < 10; ++netlist_trial) {
    Netlist nl;
    std::vector<Signal> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
    pool.push_back(nl.constant(false));
    pool.push_back(nl.constant(true));
    for (int i = 0; i < 150; ++i) {
      const auto pick = [&] { return pool[rng() % pool.size()]; };
      const int kind = static_cast<int>(rng() % 9);
      Signal s;
      switch (kind) {
        case 0: s = nl.and_(pick(), pick()); break;
        case 1: s = nl.or_(pick(), pick()); break;
        case 2: s = nl.xor_(pick(), pick()); break;
        case 3: s = nl.nand_(pick(), pick()); break;
        case 4: s = nl.nor_(pick(), pick()); break;
        case 5: s = nl.xnor_(pick(), pick()); break;
        case 6: s = nl.not_(pick()); break;
        case 7: s = nl.buf(pick()); break;
        default: s = nl.mux(pick(), pick(), pick()); break;
      }
      pool.push_back(s);
    }
    for (int o = 0; o < 5; ++o) {
      nl.add_output("y" + std::to_string(o), pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
    }
    OptStats stats;
    const Netlist opt = optimize(nl, &stats);
    EXPECT_LE(stats.gates_after, stats.gates_before);
    expect_equivalent(nl, opt, 4, 1000 + static_cast<std::uint64_t>(netlist_trial));
  }
}

TEST(Optimize, IsIdempotent) {
  std::mt19937_64 rng(7);
  Netlist nl;
  std::vector<Signal> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int i = 0; i < 60; ++i) {
    const auto pick = [&] { return pool[rng() % pool.size()]; };
    pool.push_back((i % 2 == 0) ? nl.and_(pick(), pick()) : nl.xor_(pick(), pick()));
  }
  nl.add_output("y", pool.back());
  const Netlist once = optimize(nl);
  const Netlist twice = optimize(once);
  EXPECT_EQ(once.logic_gate_count(), twice.logic_gate_count());
}

TEST(Prune, KeepsOnlyReachableCone) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  const Signal keep = nl.and_(a, b);
  (void)nl.or_(a, b);
  (void)nl.xor_(keep, b);
  nl.add_output("y", keep);
  const Netlist pruned = prune(nl);
  EXPECT_EQ(pruned.logic_gate_count(), 1u);
  expect_equivalent(nl, pruned);
}

}  // namespace
}  // namespace vlcsa::netlist
