#include "netlist/library.hpp"

namespace vlcsa::netlist {

CellLibrary::CellLibrary() {
  auto set = [this](GateKind k, double g, double p, double a) {
    cells_[static_cast<std::size_t>(k)] = CellParams{g, p, a};
  };
  // Zero-delay, zero-area pseudo cells.
  set(GateKind::kConst0, 0.0, 0.0, 0.0);
  set(GateKind::kConst1, 0.0, 0.0, 0.0);
  set(GateKind::kInput, 0.0, 0.0, 0.0);
  // Logical-effort values (classic Sutherland/Sproull/Harris numbers for the
  // static CMOS cells; AND2/OR2 modeled as NAND2/NOR2 + inverter composites).
  set(GateKind::kNot, 1.0, 1.0, 1.0);
  set(GateKind::kBuf, 2.0, 2.0, 2.0);
  set(GateKind::kNand2, 4.0 / 3.0, 2.0, 2.0);
  set(GateKind::kNor2, 5.0 / 3.0, 2.0, 2.0);
  set(GateKind::kAnd2, 7.0 / 3.0, 3.0, 3.0);
  set(GateKind::kOr2, 8.0 / 3.0, 3.0, 3.0);
  set(GateKind::kXor2, 4.0, 4.0, 4.0);
  set(GateKind::kXnor2, 4.0, 4.0, 4.0);
  set(GateKind::kMux2, 2.0, 4.0, 5.0);
  // Primary-input driver: a standard buffer.
  input_driver_ = CellParams{2.0, 2.0, 0.0};
}

const CellLibrary& CellLibrary::standard() {
  static const CellLibrary lib;
  return lib;
}

}  // namespace vlcsa::netlist
