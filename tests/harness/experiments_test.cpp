#include "harness/experiments.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vlcsa::harness {
namespace {

TEST(Experiments, RegistryIsPopulatedWithUniqueNames) {
  const auto& error_rate = error_rate_experiments();
  const auto& chains = chain_profile_experiments();
  ASSERT_FALSE(error_rate.empty());
  ASSERT_FALSE(chains.empty());
  std::set<std::string> names;
  for (const auto& e : error_rate) names.insert(e.name);
  for (const auto& e : chains) names.insert(e.name);
  EXPECT_EQ(names.size(), error_rate.size() + chains.size());
}

TEST(Experiments, TablePointsAreRegistered) {
  for (const char* name : {"table7.1/n64", "table7.2/n512", "table7.4/n128-rate0.25",
                           "fig7.1/n64-k6", "eq5.2/n64-uniform", "vlsa/n64"}) {
    EXPECT_NE(find_error_rate_experiment(name), nullptr) << name;
  }
  for (const char* name :
       {"fig6.1/uniform-unsigned", "fig6.2/rsa-like", "fig6.5/gaussian-twos-complement"}) {
    EXPECT_NE(find_chain_profile_experiment(name), nullptr) << name;
  }
  EXPECT_EQ(find_error_rate_experiment("table7.1/n63"), nullptr);
}

TEST(Experiments, PrefixQueryPreservesRegistrationOrder) {
  const auto table7_1 = error_rate_experiments_with_prefix("table7.1/");
  ASSERT_EQ(table7_1.size(), 4u);
  int last_width = 0;
  for (const auto* e : table7_1) {
    EXPECT_GT(e->width, last_width);  // published rows are width-ascending
    last_width = e->width;
    EXPECT_EQ(e->model, ModelKind::kVlcsa1);
    EXPECT_EQ(e->dist, arith::InputDistribution::kGaussianTwos);
  }
}

TEST(Experiments, Table71RunMatchesThePublishedRate) {
  const auto* e = find_error_rate_experiment("table7.1/n64");
  ASSERT_NE(e, nullptr);
  const auto result = run_experiment(*e, 40000, 13, 4);
  EXPECT_EQ(result.samples, 40000u);
  // Paper: 25.01% nominal error rate at every width.
  EXPECT_NEAR(result.nominal_rate(), 0.25, 0.02);
  EXPECT_EQ(result.false_negatives, 0u);
  EXPECT_EQ(result.emitted_wrong, 0u);
}

TEST(Experiments, ErrorRateRunIsThreadCountInvariant) {
  const auto* e = find_error_rate_experiment("table7.2/n64");
  ASSERT_NE(e, nullptr);
  const auto t1 = run_experiment(*e, 30000, 7, 1);
  const auto t8 = run_experiment(*e, 30000, 7, 8);
  EXPECT_EQ(t1.actual_errors, t8.actual_errors);
  EXPECT_EQ(t1.nominal_errors, t8.nominal_errors);
  EXPECT_EQ(t1.total_cycles, t8.total_cycles);
  EXPECT_GE(t1.nominal_errors, t1.actual_errors);
  EXPECT_EQ(t1.false_negatives, 0u);
}

TEST(Experiments, VlsaExperimentHonorsInvariants) {
  const auto* e = find_error_rate_experiment("vlsa/n64");
  ASSERT_NE(e, nullptr);
  const auto result = run_experiment(*e, 30000, 17, 4);
  EXPECT_EQ(result.false_negatives, 0u);
  EXPECT_EQ(result.emitted_wrong, 0u);
  EXPECT_GE(result.nominal_errors, result.actual_errors);
}

TEST(Experiments, ChainProfileRunIsThreadCountInvariant) {
  const auto* e = find_chain_profile_experiment("fig6.5/gaussian-twos-complement");
  ASSERT_NE(e, nullptr);
  const auto t1 = run_experiment(*e, 50000, 5, 1);
  const auto t8 = run_experiment(*e, 50000, 5, 8);
  EXPECT_EQ(t1.additions(), 50000u);
  EXPECT_EQ(t1.total(), t8.total());
  EXPECT_EQ(t1.counts(), t8.counts());
  // Sanity on the merged histogram: short chains dominate (geometric decay)
  // and the counts actually carry mass.
  EXPECT_GT(t1.total(), 0u);
  EXPECT_GT(t1.fraction(1), 0.3);
  EXPECT_GT(t1.mean_length(), 1.0);
  EXPECT_LT(t1.mean_length(), 4.0);
}

TEST(Experiments, CryptoProfileIsDeterministicInSeed) {
  const auto* e = find_chain_profile_experiment("fig6.2/rsa-like");
  ASSERT_NE(e, nullptr);
  const auto a = run_experiment(*e, 2, 9, 1);
  const auto b = run_experiment(*e, 2, 9, 4);
  EXPECT_GT(a.additions(), 0u);
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.additions(), b.additions());
}

TEST(Experiments, ProfilerMergeRejectsMismatchedShapes) {
  arith::CarryChainProfiler a(32), b(64);
  EXPECT_THROW(a += b, std::invalid_argument);
  arith::CarryChainProfiler c(32, arith::ChainMetric::kLongestPerAdd);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Experiments, ParseModelKindRoundTripsEveryValue) {
  // Exhaustive over the enum: parse must be the exact inverse of to_string.
  for (const ModelKind kind : {ModelKind::kVlcsa1, ModelKind::kVlcsa2, ModelKind::kVlsa}) {
    ModelKind parsed = ModelKind::kVlcsa1;
    ASSERT_TRUE(parse_model_kind(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(Experiments, ParseModelKindRejectsUnknownText) {
  ModelKind parsed = ModelKind::kVlsa;
  EXPECT_FALSE(parse_model_kind("VLCSA1", parsed));   // missing space
  EXPECT_FALSE(parse_model_kind("vlcsa 1", parsed));  // case-sensitive
  EXPECT_FALSE(parse_model_kind("", parsed));
  EXPECT_EQ(parsed, ModelKind::kVlsa);  // untouched on failure
}

TEST(Experiments, ParseEvalPathRoundTripsEveryValue) {
  for (const EvalPath path : {EvalPath::kBatched, EvalPath::kScalar}) {
    EvalPath parsed = EvalPath::kBatched;
    ASSERT_TRUE(parse_eval_path(to_string(path), parsed)) << to_string(path);
    EXPECT_EQ(parsed, path);
  }
}

TEST(Experiments, ParseEvalPathRejectsUnknownText) {
  EvalPath parsed = EvalPath::kScalar;
  EXPECT_FALSE(parse_eval_path("on", parsed));  // the explorer toggle, not a path name
  EXPECT_FALSE(parse_eval_path("Batched", parsed));
  EXPECT_FALSE(parse_eval_path("", parsed));
  EXPECT_EQ(parsed, EvalPath::kScalar);
}

TEST(Experiments, EveryRegisteredNameRoundTripsThroughParsers) {
  // Every registry entry's model and distribution names must survive the
  // record → parse round trip the service cache relies on.
  for (const auto& experiment : error_rate_experiments()) {
    ModelKind model = ModelKind::kVlsa;
    ASSERT_TRUE(parse_model_kind(to_string(experiment.model), model)) << experiment.name;
    EXPECT_EQ(model, experiment.model);
    arith::InputDistribution dist = arith::InputDistribution::kUniformUnsigned;
    ASSERT_TRUE(parse_distribution(arith::to_string(experiment.dist), dist))
        << experiment.name;
    EXPECT_EQ(dist, experiment.dist);
  }
}

}  // namespace
}  // namespace vlcsa::harness
