#include "speculative/window.hpp"

#include <gtest/gtest.h>

namespace vlcsa::spec {
namespace {

TEST(WindowLayout, EvenSplit) {
  const WindowLayout layout(64, 16);
  ASSERT_EQ(layout.count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(layout.window(i).size, 16);
    EXPECT_EQ(layout.window(i).pos, i * 16);
  }
}

TEST(WindowLayout, RemainderGoesToFirstWindow) {
  // 64 bits, k = 14: ceil = 5 windows; first gets 64 - 4*14 = 8 bits.
  const WindowLayout layout(64, 14);
  ASSERT_EQ(layout.count(), 5);
  EXPECT_EQ(layout.window(0).size, 8);
  EXPECT_EQ(layout.window(0).pos, 0);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(layout.window(i).size, 14);
    EXPECT_EQ(layout.window(i).pos, 8 + (i - 1) * 14);
  }
}

TEST(WindowLayout, WindowsTileTheWidthExactly) {
  for (const int n : {1, 7, 32, 64, 100, 128, 256, 511, 512}) {
    for (const int k : {1, 2, 5, 13, 14, 17, 63}) {
      const WindowLayout layout(n, k);
      int pos = 0;
      for (int i = 0; i < layout.count(); ++i) {
        EXPECT_EQ(layout.window(i).pos, pos);
        EXPECT_GE(layout.window(i).size, 1);
        EXPECT_LE(layout.window(i).size, k);
        pos += layout.window(i).size;
      }
      EXPECT_EQ(pos, n);
    }
  }
}

TEST(WindowLayout, OversizedWindowCollapsesToSingle) {
  const WindowLayout layout(16, 63);
  ASSERT_EQ(layout.count(), 1);
  EXPECT_EQ(layout.window(0).size, 16);
}

TEST(WindowLayout, RejectsBadParameters) {
  EXPECT_THROW(WindowLayout(0, 4), std::invalid_argument);
  EXPECT_THROW(WindowLayout(64, 0), std::invalid_argument);
  EXPECT_THROW(WindowLayout(64, 64), std::invalid_argument);  // > 63 word limit
}

TEST(WindowLayout, PaperConfigurations) {
  // Table 7.4 rows: every configuration must tile correctly.
  const int ns[] = {64, 128, 256, 512};
  const int ks[] = {14, 15, 16, 17};
  for (int i = 0; i < 4; ++i) {
    const WindowLayout layout(ns[i], ks[i]);
    EXPECT_EQ(layout.count(), (ns[i] + ks[i] - 1) / ks[i]);
  }
}

}  // namespace
}  // namespace vlcsa::spec
