#include "harness/montecarlo.hpp"

#include <bit>
#include <chrono>

#include "harness/engine.hpp"

namespace vlcsa::harness {

namespace {

inline std::uint64_t lanes(std::uint64_t mask) {
  return static_cast<std::uint64_t>(std::popcount(mask));
}

/// Nanoseconds between two steady_clock points (RunProfile stage timing).
inline std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                                std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

const char* to_string(EvalPath path) {
  switch (path) {
    case EvalPath::kBatched: return "batched";
    case EvalPath::kScalar: return "scalar";
  }
  return "?";
}

bool parse_eval_path(std::string_view text, EvalPath& out) {
  for (const EvalPath path : {EvalPath::kBatched, EvalPath::kScalar}) {
    if (text == to_string(path)) {
      out = path;
      return true;
    }
  }
  return false;
}

void accumulate_vlcsa(const spec::VlcsaStep& step, spec::ScsaVariant variant,
                      ErrorRateResult& out) {
  const auto& ev = step.eval;
  const bool primary_wrong = variant == spec::ScsaVariant::kScsa1 ? !ev.spec0_correct()
                                                                  : !ev.either_correct();
  ++out.samples;
  if (primary_wrong) ++out.actual_errors;
  if (step.stalled) ++out.nominal_errors;
  if (primary_wrong && !step.stalled) ++out.false_negatives;
  if (!ev.either_correct()) ++out.either_wrong;
  if (step.result != ev.exact || step.cout != ev.exact_cout) ++out.emitted_wrong;
  out.total_cycles += static_cast<std::uint64_t>(step.cycles);
}

void accumulate_vlsa(const spec::VlsaEvaluation& ev, ErrorRateResult& out) {
  const bool wrong = !ev.spec_correct();
  ++out.samples;
  if (wrong) ++out.actual_errors;
  if (ev.err) ++out.nominal_errors;
  if (wrong && !ev.err) ++out.false_negatives;
  if (wrong) ++out.either_wrong;
  // Recovery is exact: emitted result is spec when !err else recovered.
  if (wrong && !ev.err) ++out.emitted_wrong;
  out.total_cycles += ev.err ? 2 : 1;
}

void accumulate_vlcsa_batch(const spec::VlcsaBatchStep& step, spec::ScsaVariant variant,
                            ErrorRateResult& out) {
  const auto& ev = step.eval;
  const int lw = step.lane_words();
  const std::uint64_t stalls =
      arith::planeops::popcount_sum(step.stalled.data(), step.stalled.size());
  for (int w = 0; w < lw; ++w) {
    const std::size_t ws = static_cast<std::size_t>(w);
    const std::uint64_t primary_wrong =
        variant == spec::ScsaVariant::kScsa1 ? ev.spec0_wrong[ws] : ev.either_wrong(w);
    out.actual_errors += lanes(primary_wrong);
    out.false_negatives += lanes(primary_wrong & ~step.stalled[ws]);
    out.either_wrong += lanes(ev.either_wrong(w));
  }
  out.samples += static_cast<std::uint64_t>(arith::kBatchLanes) * lw;
  out.nominal_errors += stalls;
  out.emitted_wrong +=
      arith::planeops::popcount_sum(step.emitted_wrong.data(), step.emitted_wrong.size());
  // 1 cycle per lane + 1 extra per stall (eq. 5.2/6.1).
  out.total_cycles += static_cast<std::uint64_t>(arith::kBatchLanes) * lw + stalls;
}

void accumulate_vlsa_batch(const spec::VlsaBatchEvaluation& ev, ErrorRateResult& out) {
  const int lw = ev.lane_words();
  const std::uint64_t errs = arith::planeops::popcount_sum(ev.err.data(), ev.err.size());
  for (int w = 0; w < lw; ++w) {
    const std::size_t ws = static_cast<std::size_t>(w);
    out.actual_errors += lanes(ev.spec_wrong[ws]);
    out.false_negatives += lanes(ev.spec_wrong[ws] & ~ev.err[ws]);
    out.either_wrong += lanes(ev.spec_wrong[ws]);
    out.emitted_wrong += lanes(ev.spec_wrong[ws] & ~ev.err[ws]);
  }
  out.samples += static_cast<std::uint64_t>(arith::kBatchLanes) * lw;
  out.nominal_errors += errs;
  out.total_cycles += static_cast<std::uint64_t>(arith::kBatchLanes) * lw + errs;
}

ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                          const RunOptions& options, EvalPath path) {
  const spec::VlcsaModel model(config);
  const auto make_result = [] { return ErrorRateResult{}; };
  if (path == EvalPath::kScalar) {
    return run_sharded(options, make_result, [&] {
      return [&model, variant = config.variant,
              shard_source = source.clone()](arith::BlockRng& rng, ErrorRateResult& out) {
        const auto [a, b] = shard_source->next(rng);
        accumulate_vlcsa(model.step(a, b), variant, out);
      };
    });
  }
  const int lane_words = options.lane_words > 0 ? options.lane_words : arith::default_lane_words();
  if (options.profile != nullptr) options.profile->set_lane_words(lane_words);
  return run_sharded_blocks(options, make_result, [&, lane_words] {
    return [&model, variant = config.variant, shard_source = source.clone(),
            batch = arith::BitSlicedBatch(config.width, lane_words),
            step = spec::VlcsaBatchStep{},
            profile = options.profile](arith::BlockRng& rng, ErrorRateResult& out,
                                       std::uint64_t count) mutable {
      const std::uint64_t batch_lanes = static_cast<std::uint64_t>(batch.lanes());
      std::uint64_t done = 0;
      if (profile == nullptr) {
        for (; done + batch_lanes <= count; done += batch_lanes) {
          shard_source->fill_batch(rng, batch);
          model.step_batch(batch, step);
          accumulate_vlcsa_batch(step, variant, out);
        }
      } else {
        // Profiled copy of the loop above: identical draws and folds, plus
        // per-block fill/eval stage timing.  Kept separate so the default
        // path pays a single branch per shard, not two clock reads per block.
        std::uint64_t blocks = 0;
        using ProfClock = std::chrono::steady_clock;
        for (; done + batch_lanes <= count; done += batch_lanes) {
          const auto fill_start = ProfClock::now();
          shard_source->fill_batch(rng, batch);
          const auto eval_start = ProfClock::now();
          model.step_batch(batch, step);
          accumulate_vlcsa_batch(step, variant, out);
          const auto eval_end = ProfClock::now();
          profile->add_fill_ns(elapsed_ns(fill_start, eval_start));
          profile->add_eval_ns(elapsed_ns(eval_start, eval_end));
          ++blocks;
        }
        profile->add_batch(blocks, done);
        if (done < count) profile->add_scalar_samples(count - done);
      }
      // Scalar tail: same draws in the same order, so the shard's RNG stream
      // (and therefore the merged counters) match the scalar path exactly.
      for (; done < count; ++done) {
        const auto [a, b] = shard_source->next(rng);
        accumulate_vlcsa(model.step(a, b), variant, out);
      }
    };
  });
}

ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                          std::uint64_t samples, std::uint64_t seed, int threads,
                          EvalPath path) {
  return run_vlcsa(config, source, RunOptions{samples, seed, threads, kDefaultShardSize},
                   path);
}

ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                         const RunOptions& options, EvalPath path) {
  const spec::VlsaModel model(config);
  const auto make_result = [] { return ErrorRateResult{}; };
  if (path == EvalPath::kScalar) {
    return run_sharded(options, make_result, [&] {
      return [&model, shard_source = source.clone()](arith::BlockRng& rng,
                                                     ErrorRateResult& out) {
        const auto [a, b] = shard_source->next(rng);
        accumulate_vlsa(model.evaluate(a, b), out);
      };
    });
  }
  const int lane_words = options.lane_words > 0 ? options.lane_words : arith::default_lane_words();
  if (options.profile != nullptr) options.profile->set_lane_words(lane_words);
  return run_sharded_blocks(options, make_result, [&, lane_words] {
    return [&model, shard_source = source.clone(),
            batch = arith::BitSlicedBatch(config.width, lane_words),
            ev = spec::VlsaBatchEvaluation{},
            profile = options.profile](arith::BlockRng& rng, ErrorRateResult& out,
                                       std::uint64_t count) mutable {
      const std::uint64_t batch_lanes = static_cast<std::uint64_t>(batch.lanes());
      std::uint64_t done = 0;
      if (profile == nullptr) {
        for (; done + batch_lanes <= count; done += batch_lanes) {
          shard_source->fill_batch(rng, batch);
          model.evaluate_batch(batch, ev);
          accumulate_vlsa_batch(ev, out);
        }
      } else {
        // Profiled copy; see run_vlcsa for why the loop is duplicated.
        std::uint64_t blocks = 0;
        using ProfClock = std::chrono::steady_clock;
        for (; done + batch_lanes <= count; done += batch_lanes) {
          const auto fill_start = ProfClock::now();
          shard_source->fill_batch(rng, batch);
          const auto eval_start = ProfClock::now();
          model.evaluate_batch(batch, ev);
          accumulate_vlsa_batch(ev, out);
          const auto eval_end = ProfClock::now();
          profile->add_fill_ns(elapsed_ns(fill_start, eval_start));
          profile->add_eval_ns(elapsed_ns(eval_start, eval_end));
          ++blocks;
        }
        profile->add_batch(blocks, done);
        if (done < count) profile->add_scalar_samples(count - done);
      }
      for (; done < count; ++done) {
        const auto [a, b] = shard_source->next(rng);
        accumulate_vlsa(model.evaluate(a, b), out);
      }
    };
  });
}

ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                         std::uint64_t samples, std::uint64_t seed, int threads,
                         EvalPath path) {
  return run_vlsa(config, source, RunOptions{samples, seed, threads, kDefaultShardSize}, path);
}

EmpiricalWindowSearch find_window_for_nominal_rate(int width, spec::ScsaVariant variant,
                                                   arith::InputDistribution dist,
                                                   arith::GaussianParams params, double target,
                                                   double slack, std::uint64_t samples,
                                                   std::uint64_t seed, int k_lo, int k_hi,
                                                   int threads) {
  EmpiricalWindowSearch best;
  for (int k = k_lo; k <= k_hi; ++k) {
    auto source = arith::make_source(dist, width, params);
    const spec::VlcsaConfig config{width, k, variant};
    const auto result = run_vlcsa(config, *source, samples, seed, threads);
    if (result.nominal_rate() <= slack * target) {
      best.window = k;
      best.result = result;
      return best;
    }
    // Keep the last attempt so callers can report the near-miss.
    best.window = k;
    best.result = result;
  }
  return best;
}

}  // namespace vlcsa::harness
