// Tests for the service traffic metrics (service/metrics.hpp) and the
// protocol "metrics" request: counters across a scripted request sequence,
// the fixed-bucket latency quantiles, and the determinism boundary — metrics
// values appear only in responses, never in cached result records.

#include "service/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "harness/json.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"

namespace vlcsa::service {
namespace {

using harness::JsonValue;
using harness::parse_json;

std::uint64_t u64_field(const JsonValue& object, const char* name) {
  std::uint64_t value = 0;
  const JsonValue* field = object.find(name);
  EXPECT_NE(field, nullptr) << name;
  if (field != nullptr) {
    EXPECT_TRUE(field->to_u64(value)) << name;
  }
  return value;
}

TEST(ServiceMetrics, QuantilesComeFromBucketUpperBounds) {
  ServiceMetrics metrics;
  // 99 fast requests in the (500 us, 1 ms] bucket and one slow outlier in
  // the (100 ms, 200 ms] bucket: p50/p95 report 1 ms, p99 too (rank 99 of
  // 100 still lands in the fast bucket), and max is exact.
  for (int i = 0; i < 99; ++i) metrics.record_request("list", true, 0.0008);
  metrics.record_request("run", true, 0.150);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.latency_p50_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.latency_p95_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.latency_p99_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.latency_max_seconds, 0.150);
  EXPECT_EQ(snapshot.requests_total, 100u);
}

TEST(ServiceMetrics, TailQuantileReachesTheSlowBucket) {
  ServiceMetrics metrics;
  for (int i = 0; i < 90 ; ++i) metrics.record_request("list", true, 0.0008);
  for (int i = 0; i < 10; ++i) metrics.record_request("run", true, 0.150);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.latency_p50_seconds, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.latency_p95_seconds, 0.2);  // (100 ms, 200 ms] bucket bound
  EXPECT_DOUBLE_EQ(snapshot.latency_p99_seconds, 0.2);
}

TEST(ServiceMetrics, CountsByTypeWithInvalidFallback) {
  ServiceMetrics metrics;
  metrics.record_request("run", true, 0.001);
  metrics.record_request("run", false, 0.001);
  metrics.record_request("list", true, 0.001);
  metrics.record_request("invalid", false, 0.001);
  metrics.record_request("never-heard-of-it", false, 0.001);  // folds into "invalid"
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.requests_total, 5u);
  EXPECT_EQ(snapshot.ok_total, 2u);
  EXPECT_EQ(snapshot.error_total, 3u);
  std::uint64_t runs = 0, lists = 0, invalid = 0;
  for (const RequestTypeCount& entry : snapshot.by_type) {
    if (entry.name == "run") runs = entry.count;
    if (entry.name == "list") lists = entry.count;
    if (entry.name == "invalid") invalid = entry.count;
  }
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(lists, 1u);
  EXPECT_EQ(invalid, 2u);
}

TEST(ServiceMetrics, InFlightGaugeTracksScope) {
  ServiceMetrics metrics;
  EXPECT_EQ(metrics.snapshot().in_flight, 0u);
  {
    const ServiceMetrics::InFlight guard(metrics);
    EXPECT_EQ(metrics.snapshot().in_flight, 1u);
    {
      const ServiceMetrics::InFlight nested(metrics);
      EXPECT_EQ(metrics.snapshot().in_flight, 2u);
    }
  }
  EXPECT_EQ(metrics.snapshot().in_flight, 0u);
}

TEST(ServiceMetrics, DrainingGaugeFollowsSetDraining) {
  ServiceMetrics metrics;
  EXPECT_EQ(metrics.snapshot().draining, 0u);
  metrics.set_draining(true);
  EXPECT_EQ(metrics.snapshot().draining, 1u);
  const std::string text = render_prometheus_text(metrics.snapshot(), CacheStats{});
  EXPECT_NE(text.find("vlcsa_draining 1"), std::string::npos);
  metrics.set_draining(false);
  EXPECT_EQ(metrics.snapshot().draining, 0u);
}

TEST(ServiceMetrics, TypeListMatchesDispatchTablePlusInvalid) {
  // request_types() must be exactly the dispatch table's names plus the
  // "invalid" fallback slot, in order.
  const auto& types = ServiceMetrics::request_types();
  const auto names = ExperimentService::request_names();
  ASSERT_EQ(types.size(), names.size() + 1);
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_EQ(types[i], names[i]);
  EXPECT_EQ(types.back(), "invalid");
}

TEST(MetricsRequest, CountersAcrossAScriptedSequence) {
  ExperimentService service({"", 16, 1});
  // Scripted traffic: 1 ok run (miss), 1 ok repeat (hit), 1 unknown request,
  // 1 malformed line, 1 ok list.
  const char* run = R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})";
  EXPECT_TRUE(service.handle_line(run).ok);
  EXPECT_TRUE(service.handle_line(run).ok);
  EXPECT_FALSE(service.handle_line(R"({"request": "frobnicate"})").ok);
  EXPECT_FALSE(service.handle_line("garbage").ok);
  EXPECT_TRUE(service.handle_line(R"({"request": "list"})").ok);

  const ExperimentService::Reply reply =
      service.handle_line(R"({"request": "metrics"})");
  ASSERT_TRUE(reply.ok);
  const harness::JsonParse parsed = parse_json(reply.line);
  ASSERT_TRUE(parsed.ok()) << reply.line;
  const JsonValue& response = parsed.value;

  // The snapshot predates the metrics request itself.
  EXPECT_EQ(u64_field(response, "requests_total"), 5u);
  EXPECT_EQ(u64_field(response, "ok_total"), 3u);
  EXPECT_EQ(u64_field(response, "error_total"), 2u);
  EXPECT_EQ(u64_field(response, "timeouts"), 0u);
  EXPECT_EQ(u64_field(response, "in_flight"), 1u);  // the metrics request itself
  EXPECT_EQ(u64_field(response, "cache_hits"), 1u);
  EXPECT_EQ(u64_field(response, "cache_misses"), 1u);
  const JsonValue* ratio = response.find("cache_hit_ratio");
  ASSERT_NE(ratio, nullptr);

  const JsonValue* by_type = response.find("requests_by_type");
  ASSERT_NE(by_type, nullptr);
  EXPECT_EQ(u64_field(*by_type, "run"), 2u);
  EXPECT_EQ(u64_field(*by_type, "list"), 1u);
  EXPECT_EQ(u64_field(*by_type, "invalid"), 2u);  // unknown request + garbage

  // A second metrics request sees the first one counted.
  const harness::JsonParse again =
      parse_json(service.handle_line(R"({"request": "metrics"})").line);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(u64_field(again.value, "requests_total"), 6u);
  EXPECT_EQ(u64_field(*again.value.find("requests_by_type"), "metrics"), 1u);
}

TEST(MetricsRequest, BatchElementsAndStrictValidation) {
  ExperimentService service({"", 16, 1});
  const std::string batch =
      R"({"request": "run-batch", "runs": [)"
      R"({"experiment": "fig7.1/n64-k6", "samples": 2000}, )"
      R"({"experiment": "no/such"}]})";
  EXPECT_TRUE(service.handle_line(batch).ok);
  EXPECT_FALSE(service.handle_line(R"({"request": "metrics", "verbose": true})").ok);

  const harness::JsonParse parsed =
      parse_json(service.handle_line(R"({"request": "metrics"})").line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(u64_field(parsed.value, "batch_elements"), 2u);
  EXPECT_EQ(u64_field(*parsed.value.find("requests_by_type"), "run-batch"), 1u);
}

TEST(ServiceMetrics, RecentQpsMatchesLifetimeQpsEarlyInUptime) {
  // With uptime under 60 s every recorded request is inside the ring's
  // window, so the windowed rate and the lifetime average are the same
  // number — the property that makes qps_60s trustworthy from first scrape.
  ServiceMetrics metrics;
  for (int i = 0; i < 50; ++i) metrics.record_request("list", true, 0.0001);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.requests_total, 50u);
  EXPECT_GT(snapshot.qps, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.qps_60s, snapshot.qps);
}

TEST(ServiceMetrics, StageHistogramsTrackRecordedSpans) {
  ServiceMetrics metrics;
  metrics.record_stage("parse", 0.0000005);      // -> 1 us bucket
  metrics.record_stage("parse", 0.0008);         // -> 1 ms bucket
  metrics.record_stage("engine-run", 0.050);
  metrics.record_stage("not-a-stage", 1.0);      // ignored: fixed label set

  const MetricsSnapshot snapshot = metrics.snapshot();
  ASSERT_EQ(snapshot.stages.size(), ServiceMetrics::stage_names().size());
  const auto find_stage = [&](const char* name) -> const StageLatency* {
    for (const StageLatency& stage : snapshot.stages) {
      if (stage.name == name) return &stage;
    }
    return nullptr;
  };
  const StageLatency* parse = find_stage("parse");
  ASSERT_NE(parse, nullptr);
  EXPECT_EQ(parse->count, 2u);
  EXPECT_DOUBLE_EQ(parse->sum_seconds, 0.0008005);
  const StageLatency* engine = find_stage("engine-run");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->count, 1u);
  EXPECT_EQ(find_stage("not-a-stage"), nullptr);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t count : parse->buckets) bucketed += count;
  EXPECT_EQ(bucketed, 2u);
}

TEST(ServiceMetrics, PrometheusExpositionIsWellFormed) {
  ServiceMetrics metrics;
  metrics.record_request("run", true, 0.002);
  metrics.record_request("list", false, 0.0001);
  metrics.record_stage("parse", 0.00005);
  CacheStats cache;
  cache.memory_hits = 3;
  cache.disk_hits = 1;
  cache.coalesced_hits = 2;
  cache.misses = 4;

  const std::string text = render_prometheus_text(metrics.snapshot(), cache);

  // Every non-comment line is `name{labels} value` with a finite value.
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("vlcsa_", 0), 0u) << line;
    const double value = std::stod(line.substr(space + 1));
    EXPECT_FALSE(std::isnan(value)) << line;
    ++samples;
  }
  EXPECT_GT(samples, 20u);

  for (const char* needle :
       {"# TYPE vlcsa_requests_total counter", "vlcsa_requests_total 2",
        "vlcsa_requests_by_type_total{type=\"run\"} 1",
        "vlcsa_cache_hits_total{tier=\"memory\"} 3",
        "vlcsa_cache_hits_total{tier=\"coalesced\"} 2",
        "vlcsa_request_latency_seconds_bucket{le=\"+Inf\"} 2",
        "vlcsa_request_latency_seconds_count 2",
        "vlcsa_stage_latency_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 1",
        "vlcsa_qps_60s"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  // Cumulative-histogram invariant: bucket counts never decrease with le.
  std::istringstream again(text);
  std::uint64_t last = 0;
  bool in_request_histogram = false;
  while (std::getline(again, line)) {
    const bool bucket = line.rfind("vlcsa_request_latency_seconds_bucket", 0) == 0;
    if (bucket && !in_request_histogram) {
      in_request_histogram = true;
      last = 0;
    }
    if (!bucket) {
      in_request_histogram = false;
      continue;
    }
    const std::uint64_t count = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, last) << line;
    last = count;
  }
}

TEST(MetricsRequest, PromRequestWrapsTheExpositionInAnEnvelope) {
  ExperimentService service({"", 16, 1});
  EXPECT_TRUE(
      service
          .handle_line(
              R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})")
          .ok);

  const ExperimentService::Reply reply =
      service.handle_line(R"({"request": "metrics-prom"})");
  ASSERT_TRUE(reply.ok);
  const harness::JsonParse parsed = parse_json(reply.line);
  ASSERT_TRUE(parsed.ok()) << reply.line;
  const JsonValue* content_type = parsed.value.find("content_type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(content_type->as_string(), "text/plain; version=0.0.4");
  const JsonValue* body = parsed.value.find("body");
  ASSERT_NE(body, nullptr);
  ASSERT_EQ(body->kind(), JsonValue::Kind::kString);
  const std::string& text = body->as_string();
  EXPECT_NE(text.find("vlcsa_requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("vlcsa_cache_misses_total 1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');

  // Strict validation: metrics-prom takes no other fields.
  EXPECT_FALSE(service.handle_line(R"({"request": "metrics-prom", "x": 1})").ok);
}

TEST(ServiceMetrics, SweepCountersAccumulateCellsPerRequest) {
  ServiceMetrics metrics;
  EXPECT_EQ(metrics.snapshot().sweep_requests, 0u);
  EXPECT_EQ(metrics.snapshot().sweep_cells, 0u);
  metrics.record_sweep_request(2);
  metrics.record_sweep_request(1);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.sweep_requests, 2u);
  EXPECT_EQ(snapshot.sweep_cells, 3u);

  const std::string text = render_prometheus_text(snapshot, CacheStats{});
  EXPECT_NE(text.find("vlcsa_sweep_requests_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("vlcsa_sweep_cells_total 3\n"), std::string::npos);
}

}  // namespace
}  // namespace vlcsa::service
