// Figs 7.4 / 7.5 — delay and area of the complete variable-latency adders vs
// Kogge-Stone: VLSA [17] (reconstruction) and VLCSA 1, with the speculation /
// error-detection / error-recovery delays broken out per output group as the
// paper's stacked bars do.

#include <algorithm>
#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figures 7.4 / 7.5",
                        "Variable-latency adders vs Kogge-Stone at the 0.01% design "
                        "points: per-block delays [tau] and total area [inv].");

  harness::Table delay({"n", "KS", "VLSA spec", "VLSA detect", "VLSA recovery",
                        "VLCSA1 spec", "VLCSA1 detect", "VLCSA1 recovery",
                        "correct-path vs VLSA"});
  harness::Table area({"n", "Kogge-Stone", "VLSA", "vs KS", "VLCSA 1", "vs KS"});
  for (const int n : {64, 128, 256, 512}) {
    const int k = spec::min_window_for_error_rate(n, 1e-4);
    const int l = spec::vlsa_published_chain_length(n);
    const auto ks =
        harness::synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, n));
    const auto vlsa = harness::synthesize(spec::build_vlsa_netlist({n, l}));
    const auto vlcsa = harness::synthesize(
        spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
    // "Correctly speculated" delay = max(spec, detect): the single-cycle path.
    const double vlsa_correct = std::max(vlsa.delay_of("spec"), vlsa.delay_of("detect"));
    const double vlcsa_correct = std::max(vlcsa.delay_of("spec"), vlcsa.delay_of("detect"));
    delay.add_row({std::to_string(n), harness::fmt_fixed(ks.delay, 1),
                   harness::fmt_fixed(vlsa.delay_of("spec"), 1),
                   harness::fmt_fixed(vlsa.delay_of("detect"), 1),
                   harness::fmt_fixed(vlsa.delay_of("recovery"), 1),
                   harness::fmt_fixed(vlcsa.delay_of("spec"), 1),
                   harness::fmt_fixed(vlcsa.delay_of("detect"), 1),
                   harness::fmt_fixed(vlcsa.delay_of("recovery"), 1),
                   harness::fmt_delta_pct(vlcsa_correct, vlsa_correct)});
    area.add_row({std::to_string(n), harness::fmt_fixed(ks.area, 0),
                  harness::fmt_fixed(vlsa.area, 0), harness::fmt_delta_pct(vlsa.area, ks.area),
                  harness::fmt_fixed(vlcsa.area, 0),
                  harness::fmt_delta_pct(vlcsa.area, ks.area)});
  }
  std::cout << "Fig 7.4 — delays per block:\n";
  delay.print(std::cout);
  std::cout << "\nFig 7.5 — area:\n";
  area.print(std::cout);
  std::cout << "\nPaper shape: VLSA's detection is slower than its speculation (4-8%)\n"
               "while VLCSA 1's is comparable; VLCSA 1's correct-path delay is below\n"
               "VLSA's (paper: 6-19%); VLSA area is 14-32% above Kogge-Stone while\n"
               "VLCSA 1 is at or below it (Ch. 7.4.2).\n";
  return 0;
}
