#include "harness/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arith/distributions.hpp"
#include "harness/montecarlo.hpp"

namespace vlcsa::harness {
namespace {

bool identical(const ErrorRateResult& a, const ErrorRateResult& b) {
  return a.samples == b.samples && a.actual_errors == b.actual_errors &&
         a.nominal_errors == b.nominal_errors && a.false_negatives == b.false_negatives &&
         a.either_wrong == b.either_wrong && a.emitted_wrong == b.emitted_wrong &&
         a.total_cycles == b.total_cycles;
}

/// Trivial accumulator: sums raw RNG draws, so any change to shard
/// decomposition or stream derivation changes the value.
struct DrawSum {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  DrawSum& operator+=(const DrawSum& other) {
    count += other.count;
    sum += other.sum;
    return *this;
  }
};

DrawSum run_draw_sum(std::uint64_t samples, std::uint64_t seed, int threads,
                     std::uint64_t shard_size = kDefaultShardSize) {
  return run_sharded(
      RunOptions{samples, seed, threads, shard_size}, [] { return DrawSum{}; },
      [] {
        return [](vlcsa::arith::BlockRng& rng, DrawSum& acc) {
          ++acc.count;
          acc.sum += rng();
        };
      });
}

TEST(Engine, ResolveThreadsHonorsRequestAndDefaults) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-2), 1);
}

TEST(Engine, ShardRngStreamsAreDistinctAndDeterministic) {
  auto r0 = make_shard_rng(1, 0);
  auto r0_again = make_shard_rng(1, 0);
  auto r1 = make_shard_rng(1, 1);
  auto other_seed = make_shard_rng(2, 0);
  EXPECT_EQ(r0(), r0_again());
  EXPECT_NE(r0(), r1());
  EXPECT_NE(make_shard_rng(1, 0)(), other_seed());
}

TEST(Engine, ThreadCountDoesNotChangeTheResult) {
  // Samples chosen to leave a partial trailing shard.
  const std::uint64_t samples = 3 * kDefaultShardSize + 1234;
  const auto reference = run_draw_sum(samples, 42, 1);
  EXPECT_EQ(reference.count, samples);
  for (const int threads : {2, 4, 8}) {
    const auto parallel = run_draw_sum(samples, 42, threads);
    EXPECT_EQ(parallel.count, reference.count) << "threads=" << threads;
    EXPECT_EQ(parallel.sum, reference.sum) << "threads=" << threads;
  }
}

TEST(Engine, ThreadsBeyondShardCountAreHarmless) {
  const auto reference = run_draw_sum(100, 7, 1);
  const auto oversubscribed = run_draw_sum(100, 7, 16);
  EXPECT_EQ(reference.sum, oversubscribed.sum);
}

TEST(Engine, ZeroSamplesProducesEmptyAccumulator) {
  const auto result = run_draw_sum(0, 1, 4);
  EXPECT_EQ(result.count, 0u);
  EXPECT_EQ(result.sum, 0u);
}

TEST(Engine, SeedSelectsTheStream) {
  EXPECT_NE(run_draw_sum(1000, 1, 4).sum, run_draw_sum(1000, 2, 4).sum);
}

TEST(Engine, KernelExceptionsPropagate) {
  const RunOptions options{1000, 1, 4, 64};
  EXPECT_THROW(
      (void)run_sharded(
          options, [] { return DrawSum{}; },
          [] {
            return [](vlcsa::arith::BlockRng&, DrawSum&) { throw std::runtime_error("boom"); };
          }),
      std::runtime_error);
}

TEST(Engine, ErrorRateResultMergeAddsEveryCounter) {
  ErrorRateResult a;
  a.samples = 10;
  a.actual_errors = 1;
  a.nominal_errors = 2;
  a.false_negatives = 0;
  a.either_wrong = 1;
  a.emitted_wrong = 0;
  a.total_cycles = 12;
  ErrorRateResult b = a;
  b.samples = 5;
  b.total_cycles = 6;
  a += b;
  EXPECT_EQ(a.samples, 15u);
  EXPECT_EQ(a.actual_errors, 2u);
  EXPECT_EQ(a.nominal_errors, 4u);
  EXPECT_EQ(a.either_wrong, 2u);
  EXPECT_EQ(a.total_cycles, 18u);
}

TEST(Engine, VlcsaRunIsThreadCountInvariant) {
  // The tentpole guarantee: same (seed, samples) at 1, 4 and 8 threads must
  // produce the identical ErrorRateResult, field for field.
  const spec::VlcsaConfig config{64, 10, spec::ScsaVariant::kScsa2};
  auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                                   arith::GaussianParams{0.0, 4294967296.0});
  const auto t1 = run_vlcsa(config, *source, 50000, 42, 1);
  const auto t4 = run_vlcsa(config, *source, 50000, 42, 4);
  const auto t8 = run_vlcsa(config, *source, 50000, 42, 8);
  EXPECT_TRUE(identical(t1, t4));
  EXPECT_TRUE(identical(t1, t8));
  EXPECT_EQ(t1.samples, 50000u);
}

TEST(Engine, VlsaRunIsThreadCountInvariant) {
  const spec::VlsaConfig config{64, 8};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto t1 = run_vlsa(config, *source, 40000, 11, 1);
  const auto t8 = run_vlsa(config, *source, 40000, 11, 8);
  EXPECT_TRUE(identical(t1, t8));
}

TEST(Engine, InvariantsHoldUnderParallelMerge) {
  // nominal >= actual and false_negatives == 0 must survive the shard merge,
  // not just single-threaded accumulation.
  const spec::VlcsaConfig config{64, 8, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto r = run_vlcsa(config, *source, 60000, 13, 8);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.emitted_wrong, 0u);
  EXPECT_GE(r.nominal_errors, r.actual_errors);
  EXPECT_GT(r.nominal_errors, 0u);
  EXPECT_NEAR(r.average_cycles(), 1.0 + r.nominal_rate(), 1e-12);
}

TEST(Engine, ShardSizeIsPartOfTheContract) {
  // Different shard sizes give different (but individually deterministic)
  // streams — documented so nobody "tunes" it expecting identical results.
  const auto a = run_draw_sum(10000, 5, 4, 1024);
  const auto b = run_draw_sum(10000, 5, 4, 4096);
  EXPECT_EQ(a.count, b.count);
  EXPECT_NE(a.sum, b.sum);
}

TEST(Engine, SourceStreamStateDoesNotLeakAcrossShards) {
  // Gaussian sources cache a second Box-Muller variate; the engine must
  // clone per shard so the cache never straddles a shard boundary.  Run the
  // same experiment twice at different thread counts — any leak shows up as
  // a diverging stream.
  const spec::VlcsaConfig config{32, 6, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kGaussianUnsigned, 32,
                                   arith::GaussianParams{0.0, 1048576.0});
  const auto t1 = run_vlcsa(config, *source, 40000, 3, 1);
  const auto t5 = run_vlcsa(config, *source, 40000, 3, 5);
  EXPECT_TRUE(identical(t1, t5));
}

}  // namespace
}  // namespace vlcsa::harness
