#pragma once
// Arbitrary-width two's-complement / unsigned integer used by every
// behavioral model in the library.
//
// An ApInt has a fixed bit width chosen at construction.  Values are stored
// as little-endian 64-bit limbs with the invariant that bits above `width()`
// in the top limb are always zero.  All arithmetic is modular in the width
// (exactly like an n-bit hardware datapath); carry-out is reported
// explicitly where it matters.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "arith/rng.hpp"

namespace vlcsa::arith {

struct AddResult;

class ApInt {
 public:
  /// Number of value bits per limb.
  static constexpr int kLimbBits = 64;

  /// Constructs the zero value of width 1 (so containers can default-construct).
  ApInt() : ApInt(1) {}

  /// Constructs the zero value of the given width (width >= 1).
  explicit ApInt(int width);

  /// Zero of the given width.
  [[nodiscard]] static ApInt zero(int width) { return ApInt(width); }

  /// All-ones value of the given width.
  [[nodiscard]] static ApInt all_ones(int width);

  /// Value `v` zero-extended/truncated to `width` bits.
  [[nodiscard]] static ApInt from_u64(int width, std::uint64_t v);

  /// Value `v` sign-extended/truncated to `width` bits (two's complement).
  [[nodiscard]] static ApInt from_i64(int width, std::int64_t v);

  /// Parses a binary string, MSB first (e.g. "1011" == 11). The string
  /// length must not exceed `width`.
  [[nodiscard]] static ApInt from_binary(int width, const std::string& bits);

  /// Uniformly random `width`-bit pattern: one rng draw per limb, in limb
  /// order, top limb masked.  (BlockRng is sequence-identical to
  /// std::mt19937_64, so values are unchanged from the std-engine era.)
  [[nodiscard]] static ApInt random(int width, BlockRng& rng);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int num_limbs() const { return static_cast<int>(limbs_.size()); }
  [[nodiscard]] std::span<const std::uint64_t> limbs() const { return limbs_; }
  [[nodiscard]] std::uint64_t limb(int i) const { return limbs_[static_cast<std::size_t>(i)]; }

  /// Reads bit `i` (0 = LSB). Bits at or above `width()` read as 0.
  [[nodiscard]] bool bit(int i) const;

  /// Writes bit `i` (0 <= i < width()).
  void set_bit(int i, bool v);

  /// Extracts `len` bits starting at bit `pos` as a uint64 (1 <= len <= 64).
  /// Bits beyond `width()` read as zero, so windows may overhang the top.
  [[nodiscard]] std::uint64_t extract(int pos, int len) const;

  /// Deposits the low `len` bits of `v` at bit position `pos`
  /// (pos + len may overhang `width()`; overhanging bits are dropped).
  void deposit(int pos, int len, std::uint64_t v);

  /// Full n-bit addition a + b + cin; widths must match.
  [[nodiscard]] static AddResult add(const ApInt& a, const ApInt& b, bool carry_in = false);

  /// Modular arithmetic in the common width (widths must match).
  [[nodiscard]] ApInt operator+(const ApInt& rhs) const;
  [[nodiscard]] ApInt operator-(const ApInt& rhs) const;

  /// Two's-complement negation (modular).
  [[nodiscard]] ApInt negated() const;

  /// Bitwise operators (widths must match).
  [[nodiscard]] ApInt operator&(const ApInt& rhs) const;
  [[nodiscard]] ApInt operator|(const ApInt& rhs) const;
  [[nodiscard]] ApInt operator^(const ApInt& rhs) const;
  [[nodiscard]] ApInt operator~() const;

  /// Logical shifts (result keeps this width).
  [[nodiscard]] ApInt shl(int amount) const;
  [[nodiscard]] ApInt shr(int amount) const;

  /// Unsigned comparison.
  [[nodiscard]] int compare_unsigned(const ApInt& rhs) const;
  /// Signed (two's-complement) comparison.
  [[nodiscard]] int compare_signed(const ApInt& rhs) const;

  [[nodiscard]] bool operator==(const ApInt& rhs) const {
    return width_ == rhs.width_ && limbs_ == rhs.limbs_;
  }
  [[nodiscard]] bool operator!=(const ApInt& rhs) const { return !(*this == rhs); }

  [[nodiscard]] bool is_zero() const;
  /// Sign bit (MSB) under two's-complement interpretation.
  [[nodiscard]] bool sign_bit() const { return bit(width_ - 1); }

  /// Number of set bits.
  [[nodiscard]] int popcount() const;

  /// Index of the highest set bit, or -1 if zero.
  [[nodiscard]] int highest_set_bit() const;

  /// Truncates or zero-extends to a new width.
  [[nodiscard]] ApInt zext(int new_width) const;
  /// Truncates or sign-extends to a new width.
  [[nodiscard]] ApInt sext(int new_width) const;

  /// Low 64 bits of the value.
  [[nodiscard]] std::uint64_t to_u64() const { return limbs_[0]; }
  /// Two's-complement value as int64 (value must fit; checked in debug).
  [[nodiscard]] std::int64_t to_i64() const;

  /// Binary string, MSB first, exactly `width()` characters.
  [[nodiscard]] std::string to_binary() const;
  /// Hex string (no prefix), ceil(width/4) digits.
  [[nodiscard]] std::string to_hex() const;

 private:
  void normalize();  // clears bits above width in the top limb
  static void check_same_width(const ApInt& a, const ApInt& b);

  int width_;
  std::vector<std::uint64_t> limbs_;
};

/// Result of an addition with explicit carry-out.
struct AddResult {
  ApInt sum;
  bool carry_out = false;
};

std::ostream& operator<<(std::ostream& os, const ApInt& v);

/// Per-bit propagate/generate view of one addition: p = a ^ b, g = a & b.
/// This is the raw material of every speculation and detection structure in
/// the library.
struct PropagateGenerate {
  ApInt p;
  ApInt g;

  PropagateGenerate(const ApInt& a, const ApInt& b) : p(a ^ b), g(a & b) {}

  /// Group propagate over bits [pos, pos+len): all p bits set.
  /// Bits overhanging the width count as *not* propagating.
  [[nodiscard]] bool group_propagate(int pos, int len) const;

  /// Group generate over bits [pos, pos+len): a carry leaves the top of the
  /// window when the carry into the window is 0.
  [[nodiscard]] bool group_generate(int pos, int len) const;
};

}  // namespace vlcsa::arith
