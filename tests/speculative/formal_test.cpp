// Formal (BDD) proofs over the speculative structures — stronger than any
// sampling: these hold over the entire input space.

#include <gtest/gtest.h>

#include <map>

#include "adders/adders.hpp"
#include "netlist/equivalence.hpp"
#include "netlist/opt.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::spec {
namespace {

using netlist::prove_equivalent;

/// rec[i] -> sum[i], rec_cout -> cout.
std::map<std::string, std::string> recovery_to_sum_map(int width) {
  std::map<std::string, std::string> map;
  for (int i = 0; i < width; ++i) {
    map["rec[" + std::to_string(i) + "]"] = "sum[" + std::to_string(i) + "]";
  }
  map["rec_cout"] = "cout";
  return map;
}

struct FormalCase {
  int width;
  int window;
  ScsaVariant variant;
};

class VlcsaFormalTest : public ::testing::TestWithParam<FormalCase> {};

TEST_P(VlcsaFormalTest, RecoveryBankIsFormallyAnExactAdder) {
  // The reliability guarantee as a theorem: for EVERY input, the recovery
  // outputs equal a ripple adder's.  Proven, not sampled.
  const auto [n, k, variant] = GetParam();
  const auto vlcsa = build_vlcsa_netlist(ScsaConfig{n, k}, variant);
  const auto reference = adders::build_adder_netlist(adders::AdderKind::kRipple, n);
  const auto result = prove_equivalent(vlcsa, reference, recovery_to_sum_map(n));
  EXPECT_TRUE(result.equivalent())
      << "recovery differs at " << result.mismatch_output << " (n=" << n << ", k=" << k << ")";
  EXPECT_EQ(result.outputs_compared, static_cast<std::size_t>(n) + 1);
}

TEST_P(VlcsaFormalTest, OptimizerPreservesTheWholeVlcsa) {
  const auto [n, k, variant] = GetParam();
  const auto raw = build_vlcsa_netlist(ScsaConfig{n, k}, variant);
  const auto result = prove_equivalent(netlist::optimize(raw), raw);
  EXPECT_TRUE(result.equivalent()) << "optimizer broke " << result.mismatch_output;
}

INSTANTIATE_TEST_SUITE_P(Configurations, VlcsaFormalTest,
                         ::testing::Values(FormalCase{16, 4, ScsaVariant::kScsa1},
                                           FormalCase{16, 4, ScsaVariant::kScsa2},
                                           FormalCase{24, 7, ScsaVariant::kScsa2},
                                           FormalCase{32, 8, ScsaVariant::kScsa1},
                                           FormalCase{64, 14, ScsaVariant::kScsa1},
                                           FormalCase{64, 14, ScsaVariant::kScsa2}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.width) + "_k" +
                                  std::to_string(info.param.window) + "_" +
                                  to_string(info.param.variant);
                         });

TEST(VlsaFormal, RecoveryEqualsExactAdder) {
  const int n = 32, l = 8;
  const auto vlsa = build_vlsa_netlist(VlsaConfig{n, l});
  const auto reference = adders::build_adder_netlist(adders::AdderKind::kRipple, n);
  const auto result = prove_equivalent(vlsa, reference, recovery_to_sum_map(n));
  EXPECT_TRUE(result.equivalent()) << result.mismatch_output;
}

TEST(ScsaFormal, SpeculativeBankIsNotAnExactAdder) {
  // Sanity for the whole method: the speculative outputs must NOT be
  // formally equivalent to an adder (they err on some input), and the BDD
  // check must produce a working counterexample.
  const int n = 24, k = 6;
  const auto scsa = build_scsa_netlist(ScsaConfig{n, k}, ScsaVariant::kScsa1);
  const auto reference = adders::build_adder_netlist(adders::AdderKind::kRipple, n);
  const auto result = prove_equivalent(scsa, reference);
  ASSERT_EQ(result.verdict, netlist::Verdict::kNotEquivalent);
  // The witness must be a genuine speculation error per the behavioral model.
  arith::ApInt a(n), b(n);
  for (const auto& [name, value] : result.counterexample) {
    const bool is_a = name[0] == 'a';
    const int bit = std::stoi(name.substr(2, name.size() - 3));
    (is_a ? a : b).set_bit(bit, value);
  }
  const ScsaModel model(ScsaConfig{n, k});
  EXPECT_FALSE(model.evaluate(a, b).spec0_correct());
}

TEST(ScsaFormal, ExhaustiveTinyWidthBehavioralAgreement) {
  // Exhaustive truth-table check at n = 6, k = 2: every one of the 2^12
  // operand pairs, behavioral model vs direct definition of every signal.
  const int n = 6, k = 2;
  const ScsaModel model(ScsaConfig{n, k});
  for (unsigned ua = 0; ua < 64; ++ua) {
    for (unsigned ub = 0; ub < 64; ++ub) {
      const auto a = arith::ApInt::from_u64(n, ua);
      const auto b = arith::ApInt::from_u64(n, ub);
      const auto ev = model.evaluate(a, b);
      ASSERT_EQ(ev.exact.to_u64(), (ua + ub) & 0x3fu);
      ASSERT_EQ(ev.recovered, ev.exact);
      if (!ev.spec0_correct()) {
        ASSERT_TRUE(ev.err0);
      }
      if (ev.err0 && !ev.err1) {
        ASSERT_TRUE(ev.spec1_correct());
      }
      if (!ev.vlcsa2_stall()) {
        ASSERT_TRUE(ev.vlcsa2_selected_correct());
      }
    }
  }
}

TEST(ScsaFormal, ExhaustiveTinyWidthNominalRateMatchesDp) {
  // Exact DP probability vs exhaustive enumeration at n = 8, k = 3.
  const int n = 8, k = 3;
  const ScsaModel model(ScsaConfig{n, k});
  std::uint64_t flagged = 0;
  for (unsigned ua = 0; ua < 256; ++ua) {
    for (unsigned ub = 0; ub < 256; ++ub) {
      const auto ev =
          model.evaluate(arith::ApInt::from_u64(n, ua), arith::ApInt::from_u64(n, ub));
      flagged += ev.err0 ? 1 : 0;
    }
  }
  const double exhaustive = static_cast<double>(flagged) / 65536.0;
  EXPECT_NEAR(exhaustive, scsa_exact_error_rate(n, k), 1e-12);
}

}  // namespace
}  // namespace vlcsa::spec
