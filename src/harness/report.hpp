#pragma once
// Fixed-width table/series printers shared by all bench binaries, plus the
// tiny CLI parser they use for --samples/--seed overrides.  Output format is
// deliberately paper-like: one bench binary regenerates one table or figure
// as rows on stdout (see DESIGN.md "Per-experiment index").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace vlcsa::harness {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal ordered JSON object writer, enough for the machine-readable
/// result records the explorer's --json flag emits (BENCH_*.json).  Fields
/// are written in insertion order; no nesting (flat records diff cleanly
/// across perf-trajectory runs).
class JsonObject {
 public:
  void add(const std::string& key, const std::string& value);
  void add(const std::string& key, const char* value);
  void add(const std::string& key, std::uint64_t value);
  void add(const std::string& key, double value);
  void add(const std::string& key, int value);
  void add(const std::string& key, bool value);

  /// Writes "{...}\n", one field per line.
  void write(std::ostream& os) const;

 private:
  void add_raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Formats a probability as a percentage with `decimals` digits ("0.01%").
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 2);

/// Formats a double with fixed decimals.
[[nodiscard]] std::string fmt_fixed(double value, int decimals = 2);

/// Formats a ratio as a signed percentage difference ("-19%", "+16%").
[[nodiscard]] std::string fmt_delta_pct(double value, double baseline);

/// Formats a probability in scientific notation ("1.14e-04").
[[nodiscard]] std::string fmt_sci(double value);

/// Common bench CLI: --samples=N --seed=S --threads=T (order-free; unknown
/// args fatal).  threads = 0 means "all hardware threads" (engine.hpp).
struct BenchArgs {
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  int threads = 0;

  /// Parses argv; `default_samples` applies when --samples is absent.
  static BenchArgs parse(int argc, char** argv, std::uint64_t default_samples);
};

/// Prints the standard bench banner (artifact id + workload description).
void print_banner(std::ostream& os, const std::string& artifact, const std::string& description);

}  // namespace vlcsa::harness
