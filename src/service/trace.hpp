#pragma once
// Request tracing and structured JSONL logs for the experiment service
// (service.hpp): the per-request span collector behind the protocol's
// "trace": true echo and the daemon's --trace-log, the rotating JSONL sink
// shared by --trace-log/--access-log, and the process-unique trace-id
// generator.
//
// Everything here is observability output: spans, trace ids and log lines
// live only in responses and log files, never inside a cached result record
// — the determinism contract (records are pure functions of (experiment,
// samples, seed, eval path)) keeps wall time out of results, and the service
// injects trace fields into the already-rendered reply envelope so the
// embedded record bytes stay untouched.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace vlcsa::service {

/// One span of a request trace: [start_us, start_us + dur_us), microseconds
/// relative to the request's arrival, nested by depth (the root "request"
/// span is depth 0 and covers the whole line).  Both endpoints are floored
/// to the microsecond from the same clock origin, so a child's interval is
/// always contained in its parent's — the span-tree invariant
/// vlcsa_loadgen --trace-log validates.
struct TraceSpan {
  std::string name;
  int depth = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Span collector for one request.  Disabled by default — open/close are
/// no-ops costing one branch — and enabled by the service only when a sink
/// wants the spans (--trace-log configured, or the request asked for an
/// echo), which is what keeps the cached-hit hot path overhead-free
/// (perf_microbench pins this).  Not thread-safe: one request is traced by
/// the one worker thread handling it.
class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts collecting; the clock origin is the first enable() call.
  void enable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opens a span, returning its handle (0 when disabled — close() ignores
  /// handles opened while disabled).
  std::size_t open(const char* name);
  /// Closes the span `handle` opened by open().
  void close(std::size_t handle);

  /// RAII span for the common scoped case.
  class Scope {
   public:
    Scope(RequestTrace& trace, const char* name)
        : trace_(trace), handle_(trace.open(name)) {}
    ~Scope() { trace_.close(handle_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RequestTrace& trace_;
    std::size_t handle_;
  };

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }

  /// [{"name": ..., "depth": ..., "start_us": ..., "dur_us": ...}, ...] —
  /// one valid JSON array (empty when disabled), embeddable via add_json.
  [[nodiscard]] std::string render_spans() const;

 private:
  bool enabled_ = false;
  int depth_ = 0;  // current nesting depth (open spans)
  Clock::time_point start_{};
  std::vector<TraceSpan> spans_;
};

/// Append-only JSONL sink shared by --trace-log and --access-log: one line
/// per write under a mutex, flushed per line so a tail -f (or the CI smoke)
/// sees complete lines.  Optional size-capped rotation: when a write would
/// push the file past `max_bytes`, it is renamed to "<path>.1" (replacing
/// the previous generation) and reopened — one generation of history,
/// bounded disk.
class JsonlLog {
 public:
  /// Opens `path` for appending; returns "" or an error message.
  /// `max_bytes` 0 disables rotation.
  [[nodiscard]] std::string open(const std::string& path, std::uint64_t max_bytes = 0);
  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Writes one line (newline appended here); thread-safe.
  void write(const std::string& line);

 private:
  std::mutex mutex_;
  std::string path_;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t bytes_ = 0;  // current file size (tracked, not re-stat'd)
  std::ofstream out_;
};

/// Process-unique trace ids: "t-<epoch-us hex>-<counter>".  The prefix is
/// drawn from the wall clock once per generator (per daemon), so ids from
/// successive daemon runs stay distinct in a shared or rotated log; the
/// counter makes ids unique within a run.
class TraceIdGenerator {
 public:
  TraceIdGenerator();
  [[nodiscard]] std::string next();

 private:
  std::string prefix_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace vlcsa::service
