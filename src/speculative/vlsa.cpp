#include "speculative/vlsa.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace vlcsa::spec {

namespace {

/// Sliding all-propagate mask: bit j of the result is 1 iff p[j-len+1 .. j]
/// are all 1 (bits below position len-1 are 0 by construction: shifting in
/// zeros from the bottom kills windows that would overhang bit 0).
ApInt propagate_runs(const ApInt& p, int len) {
  ApInt runs = p;
  int covered = 1;
  while (covered < len) {
    const int step = std::min(covered, len - covered);
    runs = runs & runs.shl(step);  // (x << s) bit j = x bit j-s: extend downward
    covered += step;
  }
  return runs;
}

}  // namespace

VlsaModel::VlsaModel(VlsaConfig config) : config_(config) {
  if (config_.width < 1) throw std::invalid_argument("VLSA width must be >= 1");
  if (config_.chain < 1 || config_.chain > config_.width) {
    throw std::invalid_argument("VLSA chain length must be in [1, width]");
  }
}

VlsaEvaluation VlsaModel::evaluate(const ApInt& a, const ApInt& b) const {
  if (a.width() != config_.width || b.width() != config_.width) {
    throw std::invalid_argument("VlsaModel: operand width mismatch");
  }
  const int n = config_.width;
  const int l = config_.chain;

  VlsaEvaluation ev;
  const auto exact = ApInt::add(a, b);
  ev.exact = exact.sum;
  ev.exact_cout = exact.carry_out;
  ev.recovered = ev.exact;  // recovery completes the prefix tree: exact
  ev.recovered_cout = ev.exact_cout;

  const ApInt p = a ^ b;

  // The speculative carry out of bit j (G over the l bits ending at j)
  // differs from the exact carry exactly when that window is all-propagate
  // and the true carry entering the window is 1 (see error_model.hpp).
  // Word-parallel reconstruction:
  //   carry-into(j) = exact_sum(j) ^ p(j)
  //   runs(j)       = window [j-l+1, j] all-propagate
  //   carry-out-of(j-l) = carry-into(j-l+1)
  const ApInt carry_into = ev.exact ^ p;                  // bit j: carry into bit j
  const ApInt runs = propagate_runs(p, l);                // bit j: window ending at j
  // diff_at_carry(j) = spec carry-out(j) != exact carry-out(j):
  //   runs(j) & carry-into(j - l + 1)  ==  runs(j) & (carry_into << (l-1))(j)
  const ApInt diff_at_carry = runs & carry_into.shl(l - 1);

  // Sum bit i uses the carry out of bit i-1, so it flips when
  // diff_at_carry(i-1); bit 0 never flips (carry-in is 0).
  ev.spec = ev.exact ^ diff_at_carry.shl(1);
  // The reported carry-out uses diff_at_carry(n-1).
  ev.spec_cout = ev.exact_cout ^ diff_at_carry.bit(n - 1);

  ev.err = !runs.is_zero();
  return ev;
}

void VlsaModel::evaluate_batch(const arith::BitSlicedBatch& batch,
                               VlsaBatchEvaluation& out) const {
  if (batch.width() != config_.width) {
    throw std::invalid_argument("VlsaModel: batch width mismatch");
  }
  const int n = config_.width;
  const int l = config_.chain;
  const int lw = batch.lane_words();
  const std::size_t lws = static_cast<std::size_t>(lw);
  const std::size_t planes = static_cast<std::size_t>(n) * lws;

  out.g.resize(planes);
  out.p.resize(planes);
  out.carry.resize(planes);
  arith::planeops::bulk_gp(batch.a(), batch.b(), out.g.data(), out.p.data(), planes);
  // Exact per-bit carries via the word-level Kogge-Stone prefix; carry[j] is
  // the carry *out* of bit j, so the carry *into* bit j is carry[j - 1].
  arith::kogge_stone_carries(out.g.data(), out.p.data(), n, lw, out.carry.data(), out.pp);

  // Sliding all-propagate mask over the planes, same doubling scheme as the
  // scalar propagate_runs(): runs[j] = all of p[j-l+1 .. j], zero when the
  // window would overhang bit 0.  Each doubling step is the plane-kernel
  // shifted_self_and (groupwise runs[j] &= runs[j-step], zero-fill below).
  out.runs = out.p;
  int covered = 1;
  while (covered < l) {
    const int step = std::min(covered, l - covered);
    arith::planeops::shifted_self_and(out.runs.data(), n, lw, step);
    covered += step;
  }

  // The speculative carry out of bit j differs from the exact one iff the
  // window ending at j is all-propagate and the true carry entering it is 1
  // (carry into bit j-l+1).  Any such difference flips a sum bit (j <= n-2)
  // or the reported carry-out (j = n-1), so spec_wrong is their OR.
  out.spec_wrong.assign(lws, 0);
  out.err.assign(lws, 0);
  for (int j = l - 1; j < n; ++j) {
    const std::size_t run_idx = static_cast<std::size_t>(j) * lws;
    const int into = j - l + 1;  // window's lowest bit
    for (std::size_t w = 0; w < lws; ++w) {
      const std::uint64_t run = out.runs[run_idx + w];
      const std::uint64_t carry_in =
          into == 0 ? 0 : out.carry[static_cast<std::size_t>(into - 1) * lws + w];
      out.spec_wrong[w] |= run & carry_in;
      out.err[w] |= run;
    }
  }
}

// ---- netlist generator ------------------------------------------------------

namespace {

using adders::GP;
using netlist::Netlist;
using netlist::Signal;

struct VlsaBuild {
  std::vector<Signal> p_bit;
  std::vector<std::vector<GP>> levels;  // levels[t][i] covers [max(0, i-2^t+1), i]
  int top_level = 0;                    // T with 2^T >= l
};

/// Composite (G,P) over the exact segment [j-len+1, j]; requires len <= j+1
/// and len <= 2^top_level.
GP segment(Netlist& nl, const VlsaBuild& build, int j, int len) {
  if (len > j + 1) throw std::logic_error("segment overhangs bit 0");
  // Full prefix [0, j] is directly available when it fits the tree depth.
  if (len == j + 1 && j < (1 << build.top_level)) {
    return build.levels[static_cast<std::size_t>(build.top_level)][static_cast<std::size_t>(j)];
  }
  int t = 0;
  while ((2 << t) <= len) ++t;  // t = floor(log2(len))
  const GP hi = build.levels[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)];
  const int rest = len - (1 << t);
  if (rest == 0) return hi;
  return adders::combine(nl, hi, segment(nl, build, j - (1 << t), rest));
}

VlsaBuild build_truncated_tree(Netlist& nl, const std::vector<Signal>& a,
                               const std::vector<Signal>& b, int l) {
  VlsaBuild build;
  const int n = static_cast<int>(a.size());
  std::vector<GP> leaves = adders::make_pg_leaves(nl, a, b);
  build.p_bit.reserve(leaves.size());
  for (const auto& leaf : leaves) build.p_bit.push_back(leaf.p);

  build.levels.push_back(std::move(leaves));
  int t = 0;
  while ((1 << t) < l) {
    const auto& prev = build.levels.back();
    std::vector<GP> cur = prev;
    const int d = 1 << t;
    for (int i = n - 1; i >= d; --i) {
      cur[static_cast<std::size_t>(i)] =
          adders::combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(i - d)]);
    }
    build.levels.push_back(std::move(cur));
    ++t;
  }
  build.top_level = t;
  return build;
}

struct VlsaPorts {
  std::vector<Signal> a, b;
};

VlsaPorts make_inputs(Netlist& nl, int n) {
  VlsaPorts in;
  for (int i = 0; i < n; ++i) in.a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < n; ++i) in.b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  return in;
}

void add_spec_outputs(Netlist& nl, const VlsaBuild& build, int n, int l) {
  nl.add_output("sum[0]", nl.buf(build.p_bit[0]), "spec");
  for (int i = 1; i < n; ++i) {
    const GP carry = segment(nl, build, i - 1, std::min(l, i));
    nl.add_output("sum[" + std::to_string(i) + "]",
                  nl.xor_(build.p_bit[static_cast<std::size_t>(i)], carry.g), "spec");
  }
  nl.add_output("cout", segment(nl, build, n - 1, std::min(l, n)).g, "spec");
}

}  // namespace

netlist::Netlist build_vlsa_spec_netlist(const VlsaConfig& config) {
  Netlist nl("vlsa_spec_" + std::to_string(config.width) + "_l" + std::to_string(config.chain));
  const auto in = make_inputs(nl, config.width);
  const VlsaBuild build = build_truncated_tree(nl, in.a, in.b, config.chain);
  add_spec_outputs(nl, build, config.width, config.chain);
  return nl;
}

netlist::Netlist build_vlsa_netlist(const VlsaConfig& config) {
  const int n = config.width;
  const int l = config.chain;
  Netlist nl("vlsa_" + std::to_string(n) + "_l" + std::to_string(l));
  const auto in = make_inputs(nl, n);
  const VlsaBuild build = build_truncated_tree(nl, in.a, in.b, l);
  add_spec_outputs(nl, build, n, l);

  // Detection: OR over all l-long propagate runs.  Composed from the same
  // truncated tree's P signals, then an n-wide OR tree — this is why VLSA's
  // detection is slower than its speculation (Ch. 7.4.2).
  std::vector<Signal> run_terms;
  for (int j = l - 1; j < n; ++j) {
    run_terms.push_back(segment(nl, build, j, l).p);
  }
  const Signal err = nl.or_reduce(run_terms);
  nl.add_output("err0", err, "detect");
  nl.add_output("stall", nl.buf(err), "detect");
  nl.add_output("valid", nl.not_(err), "detect");

  // Recovery: complete the Kogge-Stone tree and re-derive the sums.
  std::vector<GP> cur = build.levels.back();
  for (int d = 1 << build.top_level; d < n; d <<= 1) {
    const std::vector<GP> prev = cur;
    for (int i = n - 1; i >= d; --i) {
      cur[static_cast<std::size_t>(i)] =
          adders::combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(i - d)]);
    }
  }
  nl.add_output("rec[0]", nl.buf(build.p_bit[0]), "recovery");
  for (int i = 1; i < n; ++i) {
    nl.add_output("rec[" + std::to_string(i) + "]",
                  nl.xor_(build.p_bit[static_cast<std::size_t>(i)],
                          cur[static_cast<std::size_t>(i - 1)].g),
                  "recovery");
  }
  nl.add_output("rec_cout", cur[static_cast<std::size_t>(n - 1)].g, "recovery");
  return nl;
}

}  // namespace vlcsa::spec
