#include "harness/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <iostream>
#include <istream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "arith/distributions.hpp"
#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "service/trace.hpp"

namespace vlcsa::harness {

namespace {

/// Strictness, in the service.cpp tradition: every member of the spec must
/// be expected — a typo'd axis must never silently run a different grid.
std::string check_spec_fields(const JsonValue& spec,
                              std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : spec.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return "unknown field '" + key + "' in sweep spec";
  }
  return {};
}

/// Reads an optional array of non-empty strings; "" or an error message.
std::string read_string_axis(const JsonValue& spec, const char* name,
                             std::vector<std::string>& out, bool& given) {
  const JsonValue* field = spec.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (field->kind() != JsonValue::Kind::kArray) {
    return std::string("field '") + name + "' must be an array of strings";
  }
  for (const JsonValue& item : field->items()) {
    if (item.kind() != JsonValue::Kind::kString || item.as_string().empty()) {
      return std::string("field '") + name + "' must contain non-empty strings";
    }
    for (const std::string& prior : out) {
      if (prior == item.as_string()) {
        return std::string("field '") + name + "' repeats value '" + prior + "'";
      }
    }
    out.push_back(item.as_string());
  }
  if (out.empty()) return std::string("field '") + name + "' must not be empty";
  return {};
}

/// Reads an optional array of unsigned integers; "" or an error message.
std::string read_u64_axis(const JsonValue& spec, const char* name,
                          std::vector<std::uint64_t>& out, bool& given) {
  const JsonValue* field = spec.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (field->kind() != JsonValue::Kind::kArray) {
    return std::string("field '") + name + "' must be an array of non-negative integers";
  }
  for (const JsonValue& item : field->items()) {
    std::uint64_t value = 0;
    if (!item.to_u64(value)) {
      return std::string("field '") + name + "' must contain non-negative integers";
    }
    if (std::find(out.begin(), out.end(), value) != out.end()) {
      return std::string("field '") + name + "' repeats value " + std::to_string(value);
    }
    out.push_back(value);
  }
  if (out.empty()) return std::string("field '") + name + "' must not be empty";
  return {};
}

/// One selected registry entry (exactly one pointer is set).
struct SelectedExperiment {
  const ErrorRateExperiment* error_rate = nullptr;
  const ChainProfileExperiment* chain_profile = nullptr;

  [[nodiscard]] const std::string& name() const {
    return error_rate != nullptr ? error_rate->name : chain_profile->name;
  }
};

double now_epoch_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The exact q-quantile of a sorted sample (nearest-rank, as in loadgen).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  return sorted[std::min(index, sorted.size()) - 1];
}

/// Extracts the raw bytes of one JSON value starting at `pos` (its first
/// byte) — balanced-brace scan respecting string quoting, so an embedded
/// record is carried through byte-identical to what the service rendered
/// (re-rendering a parsed tree could reorder or reformat, breaking the
/// byte-identity the resume contract promises).
std::string raw_json_value(const std::string& text, std::size_t pos) {
  if (pos >= text.size()) return {};
  const char open = text[pos];
  if (open != '{' && open != '[') return {};
  const char close = open == '{' ? '}' : ']';
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0 && c == close) return text.substr(pos, i - pos + 1);
    }
  }
  return {};
}

/// Finds the next `"key": <value>` at or after `cursor` and returns the raw
/// value bytes, advancing `cursor` past it; "" when absent.
std::string next_raw_field(const std::string& text, const char* key, std::size_t& cursor) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = text.find(needle, cursor);
  if (at == std::string::npos) return {};
  const std::size_t value_at = at + needle.size();
  std::string value = raw_json_value(text, value_at);
  if (!value.empty()) cursor = value_at + value.size();
  return value;
}

std::string read_string_member(const JsonValue& object, const char* name) {
  const JsonValue* field = object.find(name);
  if (field == nullptr || field->kind() != JsonValue::Kind::kString) return {};
  return field->as_string();
}

void add_stage_us(std::vector<std::pair<std::string, std::uint64_t>>& totals,
                  const std::string& name, std::uint64_t us) {
  for (auto& [stage, total] : totals) {
    if (stage == name) {
      total += us;
      return;
    }
  }
  totals.emplace_back(name, us);
}

/// Folds one rendered RunProfile into the sweep-level rollup.
void accumulate_profile(SweepProfileTotals& totals, const std::string& profile_json) {
  const JsonParse parse = parse_json(profile_json);
  if (!parse.ok() || parse.value.kind() != JsonValue::Kind::kObject) return;
  ++totals.cells;
  const auto add_u64 = [&](const char* name, std::uint64_t& slot) {
    std::uint64_t value = 0;
    const JsonValue* field = parse.value.find(name);
    if (field != nullptr && field->to_u64(value)) slot += value;
  };
  add_u64("shards", totals.shards);
  add_u64("samples", totals.samples);
  add_u64("batch_blocks", totals.batch_blocks);
  add_u64("batched_samples", totals.batched_samples);
  add_u64("scalar_samples", totals.scalar_samples);
  add_u64("rng_words", totals.rng_words);
  const auto add_seconds = [&](const char* name, double& slot) {
    const JsonValue* field = parse.value.find(name);
    if (field != nullptr && field->kind() == JsonValue::Kind::kNumber) {
      slot += field->as_double();
    }
  };
  add_seconds("fill_seconds", totals.fill_seconds);
  add_seconds("eval_seconds", totals.eval_seconds);
  add_seconds("merge_seconds", totals.merge_seconds);
  std::uint64_t threads = 0;
  const JsonValue* threads_field = parse.value.find("threads");
  if (threads_field != nullptr && threads_field->to_u64(threads)) {
    totals.threads_max = std::max(totals.threads_max, threads);
  }
  const std::string backend = read_string_member(parse.value, "backend");
  if (!backend.empty()) totals.backend = backend;
}

/// Live progress line: counts, throughput, nearest-rank ETA, current cell.
/// One \r-rewritten line so a watching terminal sees it update in place.
void render_progress(std::ostream& out, std::uint64_t done, std::uint64_t total,
                     std::uint64_t computed, std::uint64_t resumed, std::uint64_t failed,
                     double elapsed_seconds, const std::vector<double>& terminal_wall_ms,
                     const std::string& label) {
  const double rate = elapsed_seconds > 0.0
                          ? static_cast<double>(done) / elapsed_seconds
                          : 0.0;
  std::vector<double> sorted = terminal_wall_ms;
  std::sort(sorted.begin(), sorted.end());
  const double p50_ms = quantile_sorted(sorted, 0.50);
  const double eta_seconds =
      static_cast<double>(total - done) * p50_ms * 1e-3;
  char line[256];
  std::snprintf(line, sizeof(line),
                "\r[sweep] %llu/%llu (%llu computed, %llu cached, %llu failed) "
                "%.1f cells/s eta %.0fs  %s",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(computed),
                static_cast<unsigned long long>(resumed),
                static_cast<unsigned long long>(failed), rate, eta_seconds,
                label.c_str());
  // Pad over any longer previous line, then rewind so the next update (or
  // the closing newline) lands cleanly.
  out << line << "                    " << "\r" << line << std::flush;
}

}  // namespace

SweepSpecParse parse_sweep_spec(const std::string& text) {
  SweepSpecParse out;
  const JsonParse parse = parse_json(text);
  if (!parse.ok()) {
    out.error = "malformed sweep spec: " + parse.error;
    return out;
  }
  if (parse.value.kind() != JsonValue::Kind::kObject) {
    out.error = "sweep spec must be a JSON object";
    return out;
  }
  const JsonValue& spec = parse.value;
  if (std::string error = check_spec_fields(
          spec, {"name", "experiments", "models", "widths", "windows", "distributions",
                 "samples", "seeds", "eval_path"});
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }

  // Identity.
  out.spec.name = "sweep";
  if (const JsonValue* name = spec.find("name"); name != nullptr) {
    if (name->kind() != JsonValue::Kind::kString || name->as_string().empty()) {
      out.error = "field 'name' must be a non-empty string";
      return out;
    }
    out.spec.name = name->as_string();
  }

  // Selection: exact names or "prefix/" entries, registry order per entry,
  // deduplicated across entries.
  std::vector<std::string> entries;
  bool experiments_given = false;
  if (std::string error = read_string_axis(spec, "experiments", entries, experiments_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  if (!experiments_given) {
    out.error = "sweep spec requires field 'experiments'";
    return out;
  }
  std::vector<SelectedExperiment> selection;
  std::unordered_set<std::string> seen;
  for (const std::string& entry : entries) {
    std::vector<SelectedExperiment> matched;
    if (entry.back() == '/') {
      for (const auto* experiment : error_rate_experiments_with_prefix(entry)) {
        matched.push_back({experiment, nullptr});
      }
      for (const auto* experiment : chain_profile_experiments_with_prefix(entry)) {
        matched.push_back({nullptr, experiment});
      }
      if (matched.empty()) {
        out.error = "experiments entry '" + entry + "' matched no experiment";
        return out;
      }
    } else if (const auto* experiment = find_error_rate_experiment(entry)) {
      matched.push_back({experiment, nullptr});
    } else if (const auto* experiment = find_chain_profile_experiment(entry)) {
      matched.push_back({nullptr, experiment});
    } else {
      out.error = "unknown experiment '" + entry + "' (exact name or \"prefix/\")";
      return out;
    }
    for (const SelectedExperiment& candidate : matched) {
      if (seen.insert(candidate.name()).second) selection.push_back(candidate);
    }
  }

  // Error-rate-only filters: models/widths/windows/distributions narrow a
  // prefix selection to a sub-grid.  Strict on both sides — a filter with a
  // chain-profile experiment in the selection is an error (chain profiles
  // have no model/window axes), and so is a filter value matching nothing
  // (a typo'd width must not silently empty an axis).
  std::vector<std::string> model_names;
  std::vector<std::uint64_t> widths;
  std::vector<std::uint64_t> windows;
  std::vector<std::string> distribution_names;
  bool models_given = false;
  bool widths_given = false;
  bool windows_given = false;
  bool distributions_given = false;
  if (std::string error = read_string_axis(spec, "models", model_names, models_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  if (std::string error = read_u64_axis(spec, "widths", widths, widths_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  if (std::string error = read_u64_axis(spec, "windows", windows, windows_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  if (std::string error =
          read_string_axis(spec, "distributions", distribution_names, distributions_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  const bool filtered = models_given || widths_given || windows_given || distributions_given;
  if (filtered) {
    for (const SelectedExperiment& candidate : selection) {
      if (candidate.chain_profile != nullptr) {
        out.error = "filters (models/widths/windows/distributions) apply to error-rate "
                    "experiments only; '" +
                    candidate.name() + "' is a chain-profile experiment";
        return out;
      }
    }
  }
  std::vector<ModelKind> models;
  for (const std::string& name : model_names) {
    ModelKind kind{};
    if (!parse_model_kind(name, kind)) {
      out.error = "field 'models' has unknown model '" + name +
                  "' (expected \"VLCSA 1\", \"VLCSA 2\" or \"VLSA\")";
      return out;
    }
    models.push_back(kind);
  }
  std::vector<arith::InputDistribution> distributions;
  for (const std::string& name : distribution_names) {
    arith::InputDistribution dist{};
    if (!arith::parse_distribution(name, dist)) {
      out.error = "field 'distributions' has unknown distribution '" + name + "'";
      return out;
    }
    distributions.push_back(dist);
  }
  const auto matches = [&](const ErrorRateExperiment& experiment) {
    const auto has_u64 = [](const std::vector<std::uint64_t>& axis, std::uint64_t value) {
      return std::find(axis.begin(), axis.end(), value) != axis.end();
    };
    if (models_given &&
        std::find(models.begin(), models.end(), experiment.model) == models.end()) {
      return false;
    }
    if (widths_given && !has_u64(widths, static_cast<std::uint64_t>(experiment.width))) {
      return false;
    }
    if (windows_given && !has_u64(windows, static_cast<std::uint64_t>(experiment.window))) {
      return false;
    }
    if (distributions_given &&
        std::find(distributions.begin(), distributions.end(), experiment.dist) ==
            distributions.end()) {
      return false;
    }
    return true;
  };
  if (filtered) {
    // Every filter value must bite somewhere in the selection.
    const auto check_values = [&](const char* field, auto&& value_matches, std::size_t count,
                                  auto&& describe) -> std::string {
      for (std::size_t i = 0; i < count; ++i) {
        bool any = false;
        for (const SelectedExperiment& candidate : selection) {
          if (value_matches(*candidate.error_rate, i)) {
            any = true;
            break;
          }
        }
        if (!any) {
          return std::string("field '") + field + "' value " + describe(i) +
                 " matches no selected experiment";
        }
      }
      return {};
    };
    std::string error = check_values(
        "models",
        [&](const ErrorRateExperiment& e, std::size_t i) { return e.model == models[i]; },
        models.size(), [&](std::size_t i) { return "'" + model_names[i] + "'"; });
    if (error.empty()) {
      error = check_values(
          "widths",
          [&](const ErrorRateExperiment& e, std::size_t i) {
            return static_cast<std::uint64_t>(e.width) == widths[i];
          },
          widths.size(), [&](std::size_t i) { return std::to_string(widths[i]); });
    }
    if (error.empty()) {
      error = check_values(
          "windows",
          [&](const ErrorRateExperiment& e, std::size_t i) {
            return static_cast<std::uint64_t>(e.window) == windows[i];
          },
          windows.size(), [&](std::size_t i) { return std::to_string(windows[i]); });
    }
    if (error.empty()) {
      error = check_values(
          "distributions",
          [&](const ErrorRateExperiment& e, std::size_t i) {
            return e.dist == distributions[i];
          },
          distributions.size(),
          [&](std::size_t i) { return "'" + distribution_names[i] + "'"; });
    }
    if (!error.empty()) {
      out.error = std::move(error);
      return out;
    }
    std::vector<SelectedExperiment> narrowed;
    for (const SelectedExperiment& candidate : selection) {
      if (matches(*candidate.error_rate)) narrowed.push_back(candidate);
    }
    if (narrowed.empty()) {
      out.error = "filters eliminated every selected experiment";
      return out;
    }
    selection = std::move(narrowed);
  }

  // Eval path (error-rate cells only; chain profiles are keyed "scalar").
  EvalPath path = EvalPath::kBatched;
  bool path_given = false;
  if (const JsonValue* field = spec.find("eval_path"); field != nullptr) {
    path_given = true;
    if (field->kind() != JsonValue::Kind::kString ||
        !parse_eval_path(field->as_string(), path)) {
      out.error = "field 'eval_path' must be \"batched\" or \"scalar\"";
      return out;
    }
  }
  if (path_given) {
    for (const SelectedExperiment& candidate : selection) {
      if (candidate.chain_profile != nullptr) {
        out.error = "field 'eval_path' only applies to error-rate experiments; '" +
                    candidate.name() + "' is a chain-profile experiment";
        return out;
      }
    }
  }

  // Numeric axes.  An absent samples axis means one cell per experiment at
  // its registry default (the 0 sentinel, resolved during expansion).
  std::vector<std::uint64_t> samples_axis;
  std::vector<std::uint64_t> seeds;
  bool samples_given = false;
  bool seeds_given = false;
  if (std::string error = read_u64_axis(spec, "samples", samples_axis, samples_given);
      !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  for (const std::uint64_t samples : samples_axis) {
    if (samples == 0) {
      out.error = "field 'samples' values must be positive (omit the axis for defaults)";
      return out;
    }
  }
  if (!samples_given) samples_axis.push_back(0);
  if (std::string error = read_u64_axis(spec, "seeds", seeds, seeds_given); !error.empty()) {
    out.error = std::move(error);
    return out;
  }
  if (!seeds_given) seeds.push_back(1);

  // Expansion: experiments (selection order) × samples × seeds, duplicates
  // collapsed by id (an explicit samples value equal to a default can
  // collide; the first occurrence wins, order stays deterministic).
  std::unordered_set<std::string> ids;
  for (const SelectedExperiment& candidate : selection) {
    const bool error_rate = candidate.error_rate != nullptr;
    const std::uint64_t default_samples = error_rate
                                              ? candidate.error_rate->default_samples
                                              : candidate.chain_profile->default_samples;
    const std::string eval_path =
        error_rate ? to_string(path) : to_string(EvalPath::kScalar);
    for (const std::uint64_t samples : samples_axis) {
      for (const std::uint64_t seed : seeds) {
        SweepCell cell;
        cell.experiment = candidate.name();
        cell.samples = samples == 0 ? default_samples : samples;
        cell.seed = seed;
        cell.eval_path = eval_path;
        cell.error_rate = error_rate;
        cell.id = cell.experiment + "|" + std::to_string(cell.samples) + "|" +
                  std::to_string(cell.seed) + "|" + cell.eval_path;
        if (!ids.insert(cell.id).second) continue;
        cell.index = out.spec.cells.size();
        out.spec.cells.push_back(std::move(cell));
      }
    }
  }
  return out;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options,
                      const SweepTransport& transport) {
  SweepResult out;
  if (options.chunk == 0) {
    out.error = "chunk size must be at least 1";
    return out;
  }
  if (!transport) {
    out.error = "no transport configured";
    return out;
  }
  std::ostream& progress =
      options.progress_out != nullptr ? *options.progress_out : std::cerr;
  service::JsonlLog event_log;
  if (!options.event_log_path.empty()) {
    if (std::string error =
            event_log.open(options.event_log_path, options.event_log_max_bytes);
        !error.empty()) {
      out.error = "cannot open event log: " + error;
      return out;
    }
  }
  const auto emit = [&](JsonObject& event) {
    if (event_log.enabled()) event_log.write(event.render_line());
  };

  const std::uint64_t total = static_cast<std::uint64_t>(spec.cells.size());
  {
    JsonObject event;
    event.add("event", "sweep-start");
    event.add("ts", now_epoch_seconds());
    event.add("sweep", spec.name);
    event.add("cells", total);
    event.add("mode", options.mode);
    if (!options.endpoint.empty()) event.add("endpoint", options.endpoint);
    event.add("chunk", static_cast<std::uint64_t>(options.chunk));
    emit(event);
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const std::string trace_prefix =
      options.trace_prefix.empty() ? std::string("sw") : options.trace_prefix;
  std::vector<std::pair<std::string, std::uint64_t>> stage_totals_us;
  std::vector<double> terminal_wall_ms;
  std::uint64_t done = 0;
  std::size_t chunk_index = 0;

  const auto emit_cell_error = [&](const SweepCell& cell, const std::string& trace_id,
                                   const std::string& error, const std::string& code,
                                   double wall_ms) {
    SweepCellResult result;
    result.cell = cell;
    result.error = error;
    result.code = code;
    result.trace_id = trace_id;
    result.wall_ms = wall_ms;
    out.cells.push_back(result);
    ++out.failed_cells;
    ++done;
    terminal_wall_ms.push_back(wall_ms);
    JsonObject event;
    event.add("event", "cell-error");
    event.add("ts", now_epoch_seconds());
    event.add("cell", cell.id);
    event.add("index", static_cast<std::uint64_t>(cell.index));
    event.add("trace_id", trace_id);
    event.add("wall_ms", wall_ms);
    event.add("error", error);
    event.add("code", code);
    emit(event);
  };

  for (std::size_t base = 0; base < spec.cells.size(); base += options.chunk) {
    const std::size_t count = std::min(options.chunk, spec.cells.size() - base);
    const std::string trace_id = trace_prefix + "-" + std::to_string(chunk_index++);

    if (options.progress) {
      render_progress(progress, done, total, out.computed_cells, out.resumed_cells,
                      out.failed_cells,
                      std::chrono::duration<double>(Clock::now() - start).count(),
                      terminal_wall_ms, spec.cells[base].experiment);
    }

    JsonObject request;
    request.add("request", "run-batch");
    request.add("origin", "sweep");
    request.add("trace", true);
    request.add("trace_id", trace_id);
    if (options.timeout_ms > 0) request.add("timeout_ms", options.timeout_ms);
    std::string runs = "[";
    for (std::size_t k = 0; k < count; ++k) {
      const SweepCell& cell = spec.cells[base + k];
      {
        JsonObject event;
        event.add("event", "cell-start");
        event.add("ts", now_epoch_seconds());
        event.add("cell", cell.id);
        event.add("index", static_cast<std::uint64_t>(cell.index));
        event.add("experiment", cell.experiment);
        event.add("samples", cell.samples);
        event.add("seed", cell.seed);
        event.add("eval_path", cell.eval_path);
        event.add("trace_id", trace_id);
        emit(event);
      }
      JsonObject run;
      run.add("experiment", cell.experiment);
      run.add("samples", cell.samples);
      run.add("seed", cell.seed);
      // Chain-profile runs must not carry eval_path (the service rejects
      // it); their cells are keyed "scalar" implicitly.
      if (cell.error_rate) run.add("eval_path", cell.eval_path);
      if (k != 0) runs += ", ";
      runs += run.render_line();
    }
    runs += "]";
    request.add_json("runs", runs);

    std::string reply;
    if (std::string error = transport(request.render_line(), reply); !error.empty()) {
      for (std::size_t k = 0; k < count; ++k) {
        emit_cell_error(spec.cells[base + k], trace_id, "transport failure: " + error,
                        "transport", 0.0);
      }
      out.error = "transport failure: " + error;
      break;
    }
    const JsonParse parsed = parse_json(reply);
    if (!parsed.ok() || parsed.value.kind() != JsonValue::Kind::kObject) {
      for (std::size_t k = 0; k < count; ++k) {
        emit_cell_error(spec.cells[base + k], trace_id, "malformed reply", "protocol", 0.0);
      }
      out.error = "malformed run-batch reply";
      break;
    }
    if (read_string_member(parsed.value, "status") != "ok") {
      // A refused chunk (e.g. a draining replica after exhausted retries)
      // fails its cells but not the sweep — later chunks may land elsewhere,
      // and a re-run resumes the survivors from cache.
      const std::string error = read_string_member(parsed.value, "error");
      const std::string code = read_string_member(parsed.value, "code");
      for (std::size_t k = 0; k < count; ++k) {
        emit_cell_error(spec.cells[base + k], trace_id,
                        error.empty() ? "request refused" : error,
                        code.empty() ? "error" : code, 0.0);
      }
      continue;
    }
    const JsonValue* results = parsed.value.find("results");
    if (results == nullptr || results->kind() != JsonValue::Kind::kArray ||
        results->items().size() != count) {
      for (std::size_t k = 0; k < count; ++k) {
        emit_cell_error(spec.cells[base + k], trace_id,
                        "reply 'results' does not match the chunk", "protocol", 0.0);
      }
      out.error = "run-batch reply 'results' does not match the chunk";
      break;
    }

    // Reply spans: the k-th "element" span is the k-th cell's server-side
    // wall time; every non-root span feeds the sweep's stage totals.
    std::vector<double> element_ms;
    if (const JsonValue* spans = parsed.value.find("spans");
        spans != nullptr && spans->kind() == JsonValue::Kind::kArray) {
      for (const JsonValue& span : spans->items()) {
        if (span.kind() != JsonValue::Kind::kObject) continue;
        const std::string name = read_string_member(span, "name");
        std::uint64_t depth = 0;
        std::uint64_t dur_us = 0;
        const JsonValue* depth_field = span.find("depth");
        const JsonValue* dur_field = span.find("dur_us");
        if (name.empty() || depth_field == nullptr || !depth_field->to_u64(depth) ||
            dur_field == nullptr || !dur_field->to_u64(dur_us)) {
          continue;
        }
        if (depth == 0) continue;
        add_stage_us(stage_totals_us, name, dur_us);
        if (name == "element") element_ms.push_back(static_cast<double>(dur_us) * 1e-3);
      }
    }

    // Raw-byte cursors: records and profiles are lifted from the reply text
    // verbatim (see raw_json_value) in element order.
    std::size_t record_cursor = 0;
    std::size_t profile_cursor = 0;
    for (std::size_t k = 0; k < count; ++k) {
      const SweepCell& cell = spec.cells[base + k];
      const JsonValue& element = results->items()[k];
      const double wall_ms = k < element_ms.size() ? element_ms[k] : 0.0;
      if (element.kind() != JsonValue::Kind::kObject) {
        emit_cell_error(cell, trace_id, "batch element is not an object", "protocol",
                        wall_ms);
        continue;
      }
      if (read_string_member(element, "status") != "ok") {
        const std::string error = read_string_member(element, "error");
        const std::string code = read_string_member(element, "code");
        emit_cell_error(cell, trace_id, error.empty() ? "cell failed" : error,
                        code.empty() ? "error" : code, wall_ms);
        continue;
      }
      SweepCellResult result;
      result.cell = cell;
      result.ok = true;
      result.cache = read_string_member(element, "cache");
      result.cached = !result.cache.empty() && result.cache != "miss";
      result.trace_id = trace_id;
      result.wall_ms = wall_ms;
      result.record = next_raw_field(reply, "record", record_cursor);
      if (element.find("profile") != nullptr) {
        result.profile = next_raw_field(reply, "profile", profile_cursor);
      }
      terminal_wall_ms.push_back(wall_ms);
      ++done;
      JsonObject event;
      event.add("event", result.cached ? "cell-cached" : "cell-done");
      event.add("ts", now_epoch_seconds());
      event.add("cell", cell.id);
      event.add("index", static_cast<std::uint64_t>(cell.index));
      event.add("trace_id", trace_id);
      event.add("wall_ms", wall_ms);
      event.add("cache", result.cache);
      event.add("cache_hit", result.cached);
      if (result.cached) {
        ++out.resumed_cells;
      } else {
        ++out.computed_cells;
        if (!result.profile.empty()) {
          accumulate_profile(out.profile_totals, result.profile);
          event.add_json("profile", result.profile);
        }
      }
      emit(event);
      out.cells.push_back(std::move(result));
    }
  }

  out.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& [stage, us] : stage_totals_us) {
    out.stage_totals_ms.emplace_back(stage, static_cast<double>(us) * 1e-3);
  }
  {
    JsonObject event;
    event.add("event", "sweep-done");
    event.add("ts", now_epoch_seconds());
    event.add("sweep", spec.name);
    event.add("status", out.error.empty() ? "ok" : "aborted");
    event.add("cells", total);
    event.add("computed_cells", out.computed_cells);
    event.add("resumed_cells", out.resumed_cells);
    event.add("failed_cells", out.failed_cells);
    event.add("wall_seconds", out.wall_seconds);
    if (!out.error.empty()) event.add("error", out.error);
    emit(event);
  }
  if (options.progress) {
    render_progress(progress, done, total, out.computed_cells, out.resumed_cells,
                    out.failed_cells, out.wall_seconds, terminal_wall_ms, "done");
    progress << "\n";
  }
  return out;
}

std::string render_sweep_report(const SweepSpec& spec, const SweepOptions& options,
                                const SweepResult& result) {
  JsonObject report;
  report.add("schema", "vlcsa-sweep-1");
  report.add("sweep", spec.name);
  report.add("status", result.error.empty() ? "ok" : "aborted");
  if (!result.error.empty()) report.add("error", result.error);
  report.add("mode", options.mode);
  if (!options.endpoint.empty()) report.add("endpoint", options.endpoint);
  report.add("chunk", static_cast<std::uint64_t>(options.chunk));
  report.add("cells", static_cast<std::uint64_t>(spec.cells.size()));
  report.add("completed_cells", static_cast<std::uint64_t>(result.cells.size()));
  report.add("computed_cells", result.computed_cells);
  report.add("resumed_cells", result.resumed_cells);
  report.add("failed_cells", result.failed_cells);
  report.add("wall_seconds", result.wall_seconds);
  report.add("cells_per_second",
             result.wall_seconds > 0.0
                 ? static_cast<double>(result.cells.size()) / result.wall_seconds
                 : 0.0);
  {
    JsonObject stages;
    for (const auto& [stage, ms] : result.stage_totals_ms) stages.add(stage, ms);
    report.add_json("stage_totals_ms", stages.render_line());
  }
  {
    const SweepProfileTotals& totals = result.profile_totals;
    JsonObject profile;
    profile.add("cells", totals.cells);
    profile.add("shards", totals.shards);
    profile.add("samples", totals.samples);
    profile.add("batch_blocks", totals.batch_blocks);
    profile.add("batched_samples", totals.batched_samples);
    profile.add("scalar_samples", totals.scalar_samples);
    profile.add("rng_words", totals.rng_words);
    profile.add("fill_seconds", totals.fill_seconds);
    profile.add("eval_seconds", totals.eval_seconds);
    profile.add("merge_seconds", totals.merge_seconds);
    profile.add("threads_max", totals.threads_max);
    profile.add("backend", totals.backend);
    report.add_json("profile_totals", profile.render_line());
  }
  std::string cell_records = "[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const SweepCellResult& cell = result.cells[i];
    JsonObject record;
    record.add("cell", cell.cell.id);
    record.add("index", static_cast<std::uint64_t>(cell.cell.index));
    record.add("experiment", cell.cell.experiment);
    record.add("samples", cell.cell.samples);
    record.add("seed", cell.cell.seed);
    record.add("eval_path", cell.cell.eval_path);
    record.add("status", cell.ok ? "ok" : "error");
    if (!cell.cache.empty()) record.add("cache", cell.cache);
    record.add("cache_hit", cell.cached);
    record.add("wall_ms", cell.wall_ms);
    record.add("trace_id", cell.trace_id);
    if (!cell.record.empty()) record.add_json("record", cell.record);
    if (!cell.profile.empty()) record.add_json("profile", cell.profile);
    if (!cell.error.empty()) {
      record.add("error", cell.error);
      record.add("code", cell.code);
    }
    if (i != 0) cell_records += ", ";
    cell_records += record.render_line();
  }
  cell_records += "]";
  report.add_json("cell_records", cell_records);
  return report.render_line();
}

SweepLogValidation validate_sweep_event_log(std::istream& in) {
  SweepLogValidation out;
  enum class CellState { kStarted, kTerminated };
  std::unordered_map<std::string, CellState> states;
  bool saw_start = false;
  bool saw_done = false;
  std::string done_status;
  std::uint64_t done_cells = 0;
  std::uint64_t done_computed = 0;
  std::uint64_t done_resumed = 0;
  std::uint64_t done_failed = 0;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& what) {
    out.error = "line " + std::to_string(line_number) + ": " + what;
  };
  while (out.error.empty() && std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const JsonParse parsed = parse_json(line);
    if (!parsed.ok() || parsed.value.kind() != JsonValue::Kind::kObject) {
      fail("malformed event line");
      break;
    }
    const std::string event = read_string_member(parsed.value, "event");
    if (event.empty()) {
      fail("event line without a string 'event'");
      break;
    }
    if (saw_done) {
      fail("event '" + event + "' after sweep-done");
      break;
    }
    if (!saw_start) {
      if (event != "sweep-start") {
        fail("first event must be sweep-start, got '" + event + "'");
        break;
      }
      saw_start = true;
      const JsonValue* cells = parsed.value.find("cells");
      if (cells == nullptr || !cells->to_u64(out.cells)) {
        fail("sweep-start without a numeric 'cells'");
        break;
      }
      continue;
    }
    if (event == "sweep-start") {
      fail("second sweep-start");
      break;
    }
    if (event == "sweep-done") {
      saw_done = true;
      done_status = read_string_member(parsed.value, "status");
      const auto read = [&](const char* name, std::uint64_t& slot) {
        const JsonValue* field = parsed.value.find(name);
        return field != nullptr && field->to_u64(slot);
      };
      if (!read("cells", done_cells) || !read("computed_cells", done_computed) ||
          !read("resumed_cells", done_resumed) || !read("failed_cells", done_failed)) {
        fail("sweep-done without numeric cell counts");
      }
      continue;
    }
    const std::string cell = read_string_member(parsed.value, "cell");
    if (cell.empty()) {
      fail("event '" + event + "' without a string 'cell'");
      break;
    }
    if (event == "cell-start") {
      if (!states.emplace(cell, CellState::kStarted).second) {
        fail("duplicate cell-start for cell " + cell);
      }
      continue;
    }
    if (event != "cell-done" && event != "cell-cached" && event != "cell-error") {
      fail("unknown event '" + event + "'");
      break;
    }
    const auto it = states.find(cell);
    if (it == states.end()) {
      fail("terminal event '" + event + "' for cell " + cell + " without a cell-start");
      break;
    }
    if (it->second == CellState::kTerminated) {
      fail("second terminal event '" + event + "' for cell " + cell);
      break;
    }
    it->second = CellState::kTerminated;
    if (event == "cell-done") ++out.computed;
    if (event == "cell-cached") ++out.resumed;
    if (event == "cell-error") ++out.failed;
  }
  if (!out.error.empty()) return out;
  if (!saw_start) {
    out.error = "no sweep-start event";
    return out;
  }
  if (!saw_done) {
    out.error = "no sweep-done event";
    return out;
  }
  for (const auto& [cell, state] : states) {
    if (state != CellState::kTerminated) {
      out.error = "cell " + cell + " started but has no terminal event";
      return out;
    }
  }
  if (done_cells != out.cells) {
    out.error = "sweep-done 'cells' disagrees with sweep-start";
    return out;
  }
  if (done_computed != out.computed || done_resumed != out.resumed ||
      done_failed != out.failed) {
    out.error = "sweep-done counts do not reconcile with per-cell terminal events";
    return out;
  }
  if (done_status == "ok" && out.computed + out.resumed + out.failed != out.cells) {
    out.error = "sweep-done says ok but terminal events do not cover every cell";
    return out;
  }
  return out;
}

}  // namespace vlcsa::harness
