#include "netlist/netlist.hpp"

#include <stdexcept>

namespace vlcsa::netlist {

const char* to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0: return "const0";
    case GateKind::kConst1: return "const1";
    case GateKind::kInput: return "input";
    case GateKind::kBuf: return "buf";
    case GateKind::kNot: return "not";
    case GateKind::kAnd2: return "and2";
    case GateKind::kOr2: return "or2";
    case GateKind::kNand2: return "nand2";
    case GateKind::kNor2: return "nor2";
    case GateKind::kXor2: return "xor2";
    case GateKind::kXnor2: return "xnor2";
    case GateKind::kMux2: return "mux2";
  }
  return "?";
}

Signal Netlist::add_input(std::string name) {
  const Signal s{num_gates()};
  gates_.push_back(Gate{GateKind::kInput, {}});
  inputs_.push_back(Port{std::move(name), s, ""});
  return s;
}

Signal Netlist::constant(bool value) {
  Signal& cached = value ? const1_ : const0_;
  if (!cached.valid()) {
    cached = Signal{num_gates()};
    gates_.push_back(Gate{value ? GateKind::kConst1 : GateKind::kConst0, {}});
  }
  return cached;
}

Signal Netlist::make_gate(GateKind kind, Signal a, Signal b, Signal c) {
  const int pins = fanin_count(kind);
  const std::array<Signal, 3> fanin{a, b, c};
  for (int i = 0; i < pins; ++i) {
    if (!fanin[static_cast<std::size_t>(i)].valid() ||
        fanin[static_cast<std::size_t>(i)].id >= num_gates()) {
      throw std::invalid_argument("Netlist::make_gate: bad fanin signal");
    }
  }
  for (int i = pins; i < 3; ++i) {
    if (fanin[static_cast<std::size_t>(i)].valid()) {
      throw std::invalid_argument("Netlist::make_gate: too many fanins for gate kind");
    }
  }
  const Signal s{num_gates()};
  gates_.push_back(Gate{kind, fanin});
  return s;
}

namespace {

Signal reduce_tree(Netlist& nl, GateKind kind, const std::vector<Signal>& xs, bool empty_value) {
  if (xs.empty()) return nl.constant(empty_value);
  std::vector<Signal> level = xs;
  while (level.size() > 1) {
    std::vector<Signal> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(nl.make_gate(kind, level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

}  // namespace

Signal Netlist::and_reduce(const std::vector<Signal>& xs) {
  return reduce_tree(*this, GateKind::kAnd2, xs, /*empty_value=*/true);
}

Signal Netlist::or_reduce(const std::vector<Signal>& xs) {
  return reduce_tree(*this, GateKind::kOr2, xs, /*empty_value=*/false);
}

namespace {

/// Polarity-tracked reduction with inverting gates: combining two same-
/// polarity nodes uses one NAND2/NOR2 and flips the polarity; mismatched
/// polarities are reconciled with an inverter.  `is_and` selects the
/// function being reduced.
Signal reduce_tree_fast(Netlist& nl, const std::vector<Signal>& xs, bool is_and) {
  struct Node {
    Signal s;
    bool inverted;  // node value = inverted ? ~s : s
  };
  if (xs.empty()) return nl.constant(is_and);
  std::vector<Node> level;
  level.reserve(xs.size());
  for (const Signal s : xs) level.push_back({s, false});
  while (level.size() > 1) {
    std::vector<Node> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      Node a = level[i];
      Node b = level[i + 1];
      if (a.inverted != b.inverted) {
        // Materialize the inverted one so both carry the same polarity.
        Node& inv = a.inverted ? a : b;
        inv = {nl.not_(inv.s), false};
      }
      if (!a.inverted) {
        // AND(a,b) = ~NAND(a,b); OR(a,b) = ~NOR(a,b).
        next.push_back({is_and ? nl.nand_(a.s, b.s) : nl.nor_(a.s, b.s), true});
      } else {
        // AND(~a,~b) = NOR(a,b); OR(~a,~b) = NAND(a,b).
        next.push_back({is_and ? nl.nor_(a.s, b.s) : nl.nand_(a.s, b.s), false});
      }
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  const Node root = level.front();
  return root.inverted ? nl.not_(root.s) : root.s;
}

}  // namespace

Signal Netlist::and_reduce_fast(const std::vector<Signal>& xs) {
  return reduce_tree_fast(*this, xs, /*is_and=*/true);
}

Signal Netlist::or_reduce_fast(const std::vector<Signal>& xs) {
  return reduce_tree_fast(*this, xs, /*is_and=*/false);
}

void Netlist::add_output(std::string name, Signal s, std::string group) {
  if (!s.valid() || s.id >= num_gates()) {
    throw std::invalid_argument("Netlist::add_output: bad signal");
  }
  outputs_.push_back(Port{std::move(name), s, std::move(group)});
}

std::optional<Signal> Netlist::find_input(const std::string& name) const {
  for (const auto& p : inputs_) {
    if (p.name == name) return p.signal;
  }
  return std::nullopt;
}

std::optional<Signal> Netlist::find_output(const std::string& name) const {
  for (const auto& p : outputs_) {
    if (p.name == name) return p.signal;
  }
  return std::nullopt;
}

std::uint32_t Netlist::logic_gate_count() const {
  std::uint32_t n = 0;
  for (const auto& g : gates_) {
    switch (g.kind) {
      case GateKind::kConst0:
      case GateKind::kConst1:
      case GateKind::kInput:
        break;
      default:
        ++n;
    }
  }
  return n;
}

std::array<std::uint32_t, kNumGateKinds> Netlist::kind_histogram() const {
  std::array<std::uint32_t, kNumGateKinds> h{};
  for (const auto& g : gates_) h[static_cast<std::size_t>(g.kind)] += 1;
  return h;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> fo(gates_.size(), 0);
  for (const auto& g : gates_) {
    const int pins = fanin_count(g.kind);
    for (int i = 0; i < pins; ++i) fo[g.fanin[static_cast<std::size_t>(i)].id] += 1;
  }
  for (const auto& p : outputs_) fo[p.signal.id] += 1;
  return fo;
}

std::uint32_t Netlist::max_input_fanout() const {
  const auto fo = fanout_counts();
  std::uint32_t best = 0;
  for (const auto& p : inputs_) best = std::max(best, fo[p.signal.id]);
  return best;
}

}  // namespace vlcsa::netlist
