// Figs 7.2 / 7.3 — delay and area of the speculative adders vs Kogge-Stone
// at the 0.01% design points: Kogge-Stone (baseline), the speculative part
// of VLSA [17] (reconstruction), and SCSA 1.  Everything flows through the
// same optimize + static-timing pipeline (DESIGN.md "Substitutions").

#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figures 7.2 / 7.3",
                        "Delay [tau] and area [inv] of speculative adders vs Kogge-Stone "
                        "at the 0.01% error-rate design points.");

  harness::Table delay({"n", "Kogge-Stone", "spec in VLSA", "vs KS", "SCSA 1", "vs KS"});
  harness::Table area({"n", "Kogge-Stone", "spec in VLSA", "vs KS", "SCSA 1", "vs KS"});
  for (const int n : {64, 128, 256, 512}) {
    const int k = spec::min_window_for_error_rate(n, 1e-4);
    const int l = spec::vlsa_published_chain_length(n);
    const auto ks =
        harness::synthesize(adders::build_adder_netlist(adders::AdderKind::kKoggeStone, n));
    const auto vlsa = harness::synthesize(spec::build_vlsa_spec_netlist({n, l}));
    const auto scsa = harness::synthesize(
        spec::build_scsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
    delay.add_row({std::to_string(n), harness::fmt_fixed(ks.delay, 1),
                   harness::fmt_fixed(vlsa.delay, 1), harness::fmt_delta_pct(vlsa.delay, ks.delay),
                   harness::fmt_fixed(scsa.delay, 1), harness::fmt_delta_pct(scsa.delay, ks.delay)});
    area.add_row({std::to_string(n), harness::fmt_fixed(ks.area, 0),
                  harness::fmt_fixed(vlsa.area, 0), harness::fmt_delta_pct(vlsa.area, ks.area),
                  harness::fmt_fixed(scsa.area, 0), harness::fmt_delta_pct(scsa.area, ks.area)});
  }
  std::cout << "Fig 7.2 — critical path delay:\n";
  delay.print(std::cout);
  std::cout << "\nFig 7.3 — area:\n";
  area.print(std::cout);
  std::cout << "\nPaper shape: SCSA 1 delay 18-38% below Kogge-Stone and comparable to\n"
               "VLSA's speculative part; SCSA 1 area always below VLSA's speculative\n"
               "part (window-level vs bit-level speculation, Ch. 7.4.1).\n";
  return 0;
}
