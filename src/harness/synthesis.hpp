#pragma once
// The "synthesis" pipeline: netlist -> optimizer -> static timing + area.
// This stands in for the Design Compiler runs of Ch. 7.1; every delay/area
// number in the benches flows through here so all designs are treated
// identically.

#include <map>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "netlist/timing.hpp"

namespace vlcsa::harness {

struct SynthesisResult {
  std::string name;
  double delay = 0.0;  // critical-path delay over all outputs [tau]
  double area = 0.0;   // cell area [minimal-inverter units]
  std::map<std::string, double> group_delay;
  std::uint32_t gates = 0;
  std::uint32_t max_input_fanout = 0;

  [[nodiscard]] double delay_of(const std::string& group) const {
    const auto it = group_delay.find(group);
    return it == group_delay.end() ? 0.0 : it->second;
  }
};

/// Optimizes (unless told not to) and measures a netlist.
[[nodiscard]] SynthesisResult synthesize(
    const netlist::Netlist& nl, bool run_optimizer = true,
    const netlist::CellLibrary& lib = netlist::CellLibrary::standard());

}  // namespace vlcsa::harness
