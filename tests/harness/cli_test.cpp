// Tests for the adder_explorer argument parser (harness/cli.hpp): strict
// rejection of unknown flags and malformed values — a typo must produce a
// hard error naming the argument, never a silently ignored flag.

#include "harness/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vlcsa::harness {
namespace {

ExplorerParse parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"adder_explorer"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_explorer_args(static_cast<int>(argv.size()), argv.data());
}

TEST(ExplorerCliTest, DefaultsWithNoArguments) {
  const auto result = parse({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options.design, "kogge-stone");
  EXPECT_EQ(result.options.width, 64);
  EXPECT_EQ(result.options.window, 0);
  EXPECT_EQ(result.options.samples, 0u);
  EXPECT_EQ(result.options.seed, 1u);
  EXPECT_EQ(result.options.threads, 0);
  EXPECT_EQ(result.options.path, EvalPath::kBatched);
  EXPECT_FALSE(result.options.show_help);
}

TEST(ExplorerCliTest, ParsesFullExperimentInvocation) {
  const auto result = parse({"--experiment=table7.1/n64", "--samples=500000", "--seed=42",
                             "--threads=8", "--batch=off", "--json=out.json"});
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.options.experiment, "table7.1/n64");
  EXPECT_EQ(result.options.samples, 500000u);
  EXPECT_EQ(result.options.seed, 42u);
  EXPECT_EQ(result.options.threads, 8);
  EXPECT_EQ(result.options.path, EvalPath::kScalar);
  EXPECT_EQ(result.options.json_path, "out.json");
}

TEST(ExplorerCliTest, ParsesBuildInvocation) {
  const auto result = parse({"--design=vlcsa2", "--width=128", "--window=13", "--chain=17",
                             "--verilog=v.v"});
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.options.design, "vlcsa2");
  EXPECT_EQ(result.options.width, 128);
  EXPECT_EQ(result.options.window, 13);
  EXPECT_EQ(result.options.chain, 17);
  EXPECT_EQ(result.options.verilog_path, "v.v");
}

TEST(ExplorerCliTest, ModeFlags) {
  EXPECT_TRUE(parse({"--help"}).options.show_help);
  EXPECT_TRUE(parse({"-h"}).options.show_help);
  EXPECT_TRUE(parse({"--list"}).options.list_designs);
  EXPECT_TRUE(parse({"--list-experiments"}).options.list_experiments);
}

TEST(ExplorerCliTest, RejectsUnknownFlagNamingIt) {
  const auto result = parse({"--widht=64"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("--widht=64"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("unknown argument"), std::string::npos) << result.error;
}

TEST(ExplorerCliTest, RejectsUnknownBareWord) {
  const auto result = parse({"table7.1/n64"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("table7.1/n64"), std::string::npos);
}

TEST(ExplorerCliTest, RejectsValueFlagWithoutValue) {
  const auto result = parse({"--samples"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("--samples"), std::string::npos);
}

TEST(ExplorerCliTest, RejectsNonNumericNumbers) {
  EXPECT_FALSE(parse({"--samples=abc"}).ok());
  EXPECT_FALSE(parse({"--samples=12x"}).ok());  // trailing garbage
  EXPECT_FALSE(parse({"--samples="}).ok());
  EXPECT_FALSE(parse({"--width=-3"}).ok());
  EXPECT_FALSE(parse({"--threads=1.5"}).ok());
  EXPECT_FALSE(parse({"--seed=0x10"}).ok());
}

TEST(ExplorerCliTest, RejectsBadBatchValue) {
  const auto result = parse({"--experiment=x", "--batch=maybe"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("--batch"), std::string::npos);
  EXPECT_TRUE(parse({"--experiment=x", "--batch=on"}).ok());
  EXPECT_EQ(parse({"--experiment=x", "--batch=on"}).options.path, EvalPath::kBatched);
  EXPECT_EQ(parse({"--experiment=x", "--batch=off"}).options.path, EvalPath::kScalar);
}

TEST(ExplorerCliTest, BatchAcceptsCanonicalEvalPathNames) {
  // The service protocol's eval_path spelling works everywhere.
  EXPECT_EQ(parse({"--experiment=x", "--batch=batched"}).options.path, EvalPath::kBatched);
  EXPECT_EQ(parse({"--experiment=x", "--batch=scalar"}).options.path, EvalPath::kScalar);
  EXPECT_TRUE(parse({"--experiment=x", "--batch=scalar"}).options.path_explicit);
}

TEST(ParseValueFlagsTest, MatchesStoresAndRejects) {
  std::string name;
  int count = 0;
  const std::vector<ValueFlag> flags = {
      {"--name",
       [&name](const std::string& value) {
         name = value;
         return !value.empty();
       }},
      {"--count", [&count](const std::string& value) { return parse_nonnegative_int(value, count); }},
  };
  const char* good[] = {"tool", "--name=x", "--count=3"};
  EXPECT_EQ(parse_value_flags(3, good, flags), "");
  EXPECT_EQ(name, "x");
  EXPECT_EQ(count, 3);

  const char* unknown[] = {"tool", "--nmae=x"};
  EXPECT_NE(parse_value_flags(2, unknown, flags).find("unknown argument: --nmae=x"),
            std::string::npos);

  const char* bad_value[] = {"tool", "--count=x"};
  EXPECT_NE(parse_value_flags(2, bad_value, flags).find("invalid value for --count"),
            std::string::npos);

  const char* missing_value[] = {"tool", "--count"};
  EXPECT_NE(parse_value_flags(2, missing_value, flags).find("requires a value"),
            std::string::npos);

  const char* tolerated[] = {"tool", "--benchmark_min_time=1", "--count=4"};
  EXPECT_EQ(parse_value_flags(3, tolerated, flags, "--benchmark"), "");
  EXPECT_EQ(count, 4);
}

TEST(ParseValueFlagsTest, PrefixOfAFlagNameIsNotAMatch) {
  int count = 0;
  const std::vector<ValueFlag> flags = {
      {"--count", [&count](const std::string& value) { return parse_nonnegative_int(value, count); }},
  };
  const char* argv[] = {"tool", "--counts=3"};
  EXPECT_NE(parse_value_flags(2, argv, flags).find("unknown argument"), std::string::npos);
}

TEST(ExplorerCliTest, RejectsExperimentFlagsInBuildMode) {
  // Without --experiment these flags would be silently dead — hard error.
  for (const char* arg : {"--samples=10", "--seed=2", "--threads=4", "--batch=off",
                          "--json=out.json"}) {
    const auto result = parse({arg});
    ASSERT_FALSE(result.ok()) << arg;
    EXPECT_NE(result.error.find("--experiment"), std::string::npos) << result.error;
  }
}

TEST(ExplorerCliTest, RejectsBuildFlagsInExperimentMode) {
  // Experiments take their shape from the registry; a --width here would be
  // silently ignored, so it is rejected instead.
  for (const char* arg : {"--design=vlcsa1", "--width=128", "--window=9", "--chain=12",
                          "--verilog=v.v"}) {
    const auto result = parse({"--experiment=table7.1/n64", arg});
    ASSERT_FALSE(result.ok()) << arg;
    EXPECT_NE(result.error.find("no effect with --experiment"), std::string::npos)
        << result.error;
  }
}

TEST(ExplorerCliTest, InformationalModesTolerateOtherFlags) {
  EXPECT_TRUE(parse({"--list", "--samples=10"}).ok());
  EXPECT_TRUE(parse({"--help", "--width=32"}).ok());
}

TEST(ExplorerCliTest, RejectsEmptyStringValues) {
  EXPECT_FALSE(parse({"--design="}).ok());
  EXPECT_FALSE(parse({"--experiment="}).ok());
  EXPECT_FALSE(parse({"--json="}).ok());
}

TEST(StrictNumberParseTest, U64FullStringOnly) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", value));
  EXPECT_EQ(value, 18446744073709551615ull);
  EXPECT_FALSE(parse_u64("18446744073709551616", value));  // overflow
  EXPECT_FALSE(parse_u64("", value));
  EXPECT_FALSE(parse_u64("-1", value));
  EXPECT_FALSE(parse_u64(" 1", value));
  EXPECT_FALSE(parse_u64("1 ", value));
  EXPECT_FALSE(parse_u64("1e3", value));
}

TEST(StrictNumberParseTest, IntRangeChecked) {
  int value = 0;
  EXPECT_TRUE(parse_nonnegative_int("2147483647", value));
  EXPECT_EQ(value, 2147483647);
  EXPECT_FALSE(parse_nonnegative_int("2147483648", value));
  EXPECT_FALSE(parse_nonnegative_int("-1", value));
}

}  // namespace
}  // namespace vlcsa::harness
