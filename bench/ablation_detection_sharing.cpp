// Ablation — the two implementation moves that make VLCSA's detection as
// fast as its speculation (Ch. 5.1's core claim):
//   1. the DeMorgan-paired (NAND/NOR) OR tree vs a plain OR2 tree;
//   2. tapping the lightly-loaded duplicate of each window's group-generate
//      vs sharing the mux-select net (which sits behind a fanout buffer
//      chain).
// Both are measured by rebuilding ERR0 in the degraded style next to the
// production netlist.

#include <iostream>

#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/timing.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;
using netlist::Netlist;
using netlist::Signal;

namespace {

/// Rebuilds the VLCSA 1 netlist, then appends a degraded ERR0 computed from
/// the loaded group-G nets with a plain OR2 tree, as extra outputs.
double degraded_detect_delay(int n, int k) {
  // Reconstruct group signals from a fresh SCSA build by name: the spec
  // netlist does not export per-window groups, so rebuild from scratch via
  // the public pieces.
  Netlist nl("degraded");
  std::vector<Signal> a, b;
  for (int i = 0; i < n; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < n; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  const spec::WindowLayout layout(n, k);
  std::vector<adders::ConditionalSums> windows;
  for (int i = 0; i < layout.count(); ++i) {
    const auto [pos, size] = layout.window(i);
    const std::span<const Signal> aw{a.data() + pos, static_cast<std::size_t>(size)};
    const std::span<const Signal> bw{b.data() + pos, static_cast<std::size_t>(size)};
    windows.push_back(
        adders::conditional_window_sums(nl, aw, bw, adders::PrefixTopology::kKoggeStone));
  }
  // Production-style spec outputs (so the group-G nets carry their real
  // mux-select load).
  for (int i = 0; i < layout.count(); ++i) {
    const auto [pos, size] = layout.window(i);
    Signal sel = i == 0 ? Signal{} : windows[static_cast<std::size_t>(i - 1)].cout0;
    for (int j = 0; j < size; ++j) {
      const auto& w = windows[static_cast<std::size_t>(i)];
      const Signal bit = i == 0 ? w.sum0[static_cast<std::size_t>(j)]
                                : nl.mux(sel, w.sum0[static_cast<std::size_t>(j)],
                                         w.sum1[static_cast<std::size_t>(j)]);
      nl.add_output("sum[" + std::to_string(pos + j) + "]", bit, "spec");
    }
  }
  // Degraded ERR0: loaded group_g + plain OR2 tree.
  std::vector<Signal> terms;
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    terms.push_back(nl.and_(windows[i + 1].group_p, windows[i].group_g));
  }
  nl.add_output("err0", nl.or_reduce(terms), "detect");
  return harness::synthesize(nl).delay_of("detect");
}

}  // namespace

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Ablation: detection implementation",
                        "ERR0 critical path with vs without the fast-tree and\n"
                        "load-splitting moves (VLCSA 1, 0.01% design points).");

  harness::Table table({"n", "k", "spec delay", "detect (production)",
                        "detect (plain OR tree, shared nets)", "penalty"});
  for (const int n : {64, 128, 256, 512}) {
    const int k = spec::min_window_for_error_rate(n, 1e-4);
    const auto production = harness::synthesize(
        spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
    const double degraded = degraded_detect_delay(n, k);
    table.add_row({std::to_string(n), std::to_string(k),
                   harness::fmt_fixed(production.delay_of("spec"), 1),
                   harness::fmt_fixed(production.delay_of("detect"), 1),
                   harness::fmt_fixed(degraded, 1),
                   harness::fmt_delta_pct(degraded, production.delay_of("detect"))});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the naive detector lands up to ~15% above the production\n"
               "one at the mid widths, eroding the detection <= speculation property\n"
               "the variable-latency clock period depends on (Ch. 5.1).\n";
  return 0;
}
