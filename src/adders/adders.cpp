#include "adders/adders.hpp"

#include <cmath>
#include <stdexcept>

namespace vlcsa::adders {

const char* to_string(AdderKind kind) {
  switch (kind) {
    case AdderKind::kRipple: return "ripple";
    case AdderKind::kCarrySelect: return "carry-select";
    case AdderKind::kCarrySkip: return "carry-skip";
    case AdderKind::kKoggeStone: return "kogge-stone";
    case AdderKind::kBrentKung: return "brent-kung";
    case AdderKind::kSklansky: return "sklansky";
    case AdderKind::kHanCarlson: return "han-carlson";
    case AdderKind::kHybridKsCarrySelect: return "hybrid-ks-carry-select";
    case AdderKind::kDesignWare: return "designware";
  }
  return "?";
}

namespace {

struct OperandInputs {
  std::vector<Signal> a;
  std::vector<Signal> b;
  Signal cin{};
};

OperandInputs make_operand_inputs(Netlist& nl, int n, bool with_cin) {
  OperandInputs in;
  in.a.reserve(static_cast<std::size_t>(n));
  in.b.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in.a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < n; ++i) in.b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));
  if (with_cin) in.cin = nl.add_input("cin");
  return in;
}

void add_sum_outputs(Netlist& nl, const std::vector<Signal>& sum, Signal cout) {
  for (std::size_t i = 0; i < sum.size(); ++i) {
    nl.add_output("sum[" + std::to_string(i) + "]", sum[i]);
  }
  nl.add_output("cout", cout);
}

int effective_block_size(int n, int requested) {
  if (requested > 0) return requested;
  const int b = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  return std::max(2, b);
}

/// Splits n bits into blocks of size <= b; the first (least significant)
/// block takes the remainder so the rest are uniform, mirroring the paper's
/// window placement (Ch. 4).
std::vector<int> block_sizes(int n, int b) {
  const int count = (n + b - 1) / b;
  std::vector<int> sizes(static_cast<std::size_t>(count), b);
  sizes[0] = n - b * (count - 1);
  return sizes;
}

Netlist build_ripple(int n, const AdderOptions& opts) {
  Netlist nl("ripple_" + std::to_string(n));
  const auto in = make_operand_inputs(nl, n, opts.with_cin);
  Signal cout{};
  const auto sum =
      ripple_sum(nl, in.a, in.b, opts.with_cin ? in.cin : nl.constant(false), &cout);
  add_sum_outputs(nl, sum, cout);
  return nl;
}

Netlist build_prefix(AdderKind kind, PrefixTopology topology, int n, const AdderOptions& opts) {
  Netlist nl(std::string(to_string(kind)) + "_" + std::to_string(n));
  const auto in = make_operand_inputs(nl, n, opts.with_cin);
  const auto result = prefix_sum(nl, in.a, in.b, in.cin, topology);
  add_sum_outputs(nl, result.sum, result.cout);
  return nl;
}

/// Classic carry-select: ripple blocks computing both carry-in cases, a mux
/// chain threading the block carries.
Netlist build_carry_select(int n, const AdderOptions& opts) {
  Netlist nl("carry_select_" + std::to_string(n));
  const auto in = make_operand_inputs(nl, n, opts.with_cin);
  const auto sizes = block_sizes(n, effective_block_size(n, opts.block_size));

  std::vector<Signal> sum(static_cast<std::size_t>(n));
  Signal carry = opts.with_cin ? in.cin : nl.constant(false);
  int pos = 0;
  for (const int size : sizes) {
    const std::span<const Signal> a_blk{in.a.data() + pos, static_cast<std::size_t>(size)};
    const std::span<const Signal> b_blk{in.b.data() + pos, static_cast<std::size_t>(size)};
    Signal cout0{}, cout1{};
    const auto s0 = ripple_sum(nl, a_blk, b_blk, nl.constant(false), &cout0);
    const auto s1 = ripple_sum(nl, a_blk, b_blk, nl.constant(true), &cout1);
    for (int j = 0; j < size; ++j) {
      sum[static_cast<std::size_t>(pos + j)] =
          nl.mux(carry, s0[static_cast<std::size_t>(j)], s1[static_cast<std::size_t>(j)]);
    }
    carry = nl.mux(carry, cout0, cout1);
    pos += size;
  }
  add_sum_outputs(nl, sum, carry);
  return nl;
}

/// Carry-skip: ripple blocks with a block-propagate bypass mux.
Netlist build_carry_skip(int n, const AdderOptions& opts) {
  Netlist nl("carry_skip_" + std::to_string(n));
  const auto in = make_operand_inputs(nl, n, opts.with_cin);
  const auto sizes = block_sizes(n, effective_block_size(n, opts.block_size));

  std::vector<Signal> sum(static_cast<std::size_t>(n));
  Signal carry = opts.with_cin ? in.cin : nl.constant(false);
  int pos = 0;
  for (const int size : sizes) {
    const std::span<const Signal> a_blk{in.a.data() + pos, static_cast<std::size_t>(size)};
    const std::span<const Signal> b_blk{in.b.data() + pos, static_cast<std::size_t>(size)};
    Signal ripple_cout{};
    const auto s = ripple_sum(nl, a_blk, b_blk, carry, &ripple_cout);
    for (int j = 0; j < size; ++j) sum[static_cast<std::size_t>(pos + j)] = s[static_cast<std::size_t>(j)];
    // Block propagate: every bit propagates -> the carry skips the block.
    std::vector<Signal> props;
    props.reserve(static_cast<std::size_t>(size));
    for (int j = 0; j < size; ++j) {
      props.push_back(nl.xor_(a_blk[static_cast<std::size_t>(j)], b_blk[static_cast<std::size_t>(j)]));
    }
    const Signal block_p = nl.and_reduce(props);
    carry = nl.mux(block_p, ripple_cout, carry);
    pos += size;
  }
  add_sum_outputs(nl, sum, carry);
  return nl;
}

/// The "hybrid Kogge-Stone carry-select adder" the authors implemented as a
/// sanity baseline (Ch. 7.5): carry-select blocks whose two conditional
/// results come from one shared Kogge-Stone tree per block, with an exact
/// mux chain for the block carries.  Structurally this is SCSA *without*
/// speculation — a useful ablation point.
Netlist build_hybrid_ks_carry_select(int n, const AdderOptions& opts) {
  Netlist nl("hybrid_ks_carry_select_" + std::to_string(n));
  const auto in = make_operand_inputs(nl, n, opts.with_cin);
  const auto sizes = block_sizes(n, effective_block_size(n, opts.block_size));

  std::vector<Signal> sum(static_cast<std::size_t>(n));
  Signal carry = opts.with_cin ? in.cin : nl.constant(false);
  int pos = 0;
  for (const int size : sizes) {
    const std::span<const Signal> a_blk{in.a.data() + pos, static_cast<std::size_t>(size)};
    const std::span<const Signal> b_blk{in.b.data() + pos, static_cast<std::size_t>(size)};
    const auto cond = conditional_window_sums(nl, a_blk, b_blk, PrefixTopology::kKoggeStone);
    for (int j = 0; j < size; ++j) {
      sum[static_cast<std::size_t>(pos + j)] = nl.mux(carry, cond.sum0[static_cast<std::size_t>(j)],
                                                      cond.sum1[static_cast<std::size_t>(j)]);
    }
    carry = nl.mux(carry, cond.cout0, cond.cout1);
    pos += size;
  }
  add_sum_outputs(nl, sum, carry);
  return nl;
}

}  // namespace

Netlist build_adder_netlist(AdderKind kind, int n, const AdderOptions& opts) {
  if (n < 1) throw std::invalid_argument("adder width must be >= 1");
  switch (kind) {
    case AdderKind::kRipple:
      return build_ripple(n, opts);
    case AdderKind::kCarrySelect:
      return build_carry_select(n, opts);
    case AdderKind::kCarrySkip:
      return build_carry_skip(n, opts);
    case AdderKind::kKoggeStone:
      return build_prefix(kind, PrefixTopology::kKoggeStone, n, opts);
    case AdderKind::kBrentKung:
      return build_prefix(kind, PrefixTopology::kBrentKung, n, opts);
    case AdderKind::kSklansky:
      return build_prefix(kind, PrefixTopology::kSklansky, n, opts);
    case AdderKind::kHanCarlson:
      return build_prefix(kind, PrefixTopology::kHanCarlson, n, opts);
    case AdderKind::kHybridKsCarrySelect:
      return build_hybrid_ks_carry_select(n, opts);
    case AdderKind::kDesignWare:
      return build_designware_adder(n, nullptr);
  }
  throw std::logic_error("unknown adder kind");
}

std::vector<Signal> ripple_sum(Netlist& nl, std::span<const Signal> a,
                               std::span<const Signal> b, Signal cin, Signal* cout) {
  if (a.size() != b.size()) throw std::invalid_argument("operand width mismatch");
  std::vector<Signal> sum;
  sum.reserve(a.size());
  Signal carry = cin.valid() ? cin : nl.constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Signal p = nl.xor_(a[i], b[i]);
    const Signal g = nl.and_(a[i], b[i]);
    sum.push_back(nl.xor_(p, carry));
    carry = nl.or_(g, nl.and_(p, carry));
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

}  // namespace vlcsa::adders
