// Fleet scenarios for the experiment service: the graceful-drain protocol
// (drain request, "draining"-coded refusals, deadline cancellation), the
// cross-replica compute lease observed through a live service, and the
// client's retry/backoff resilience against conversation churn
// (max-requests-per-conn bounces, idle timeouts).

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "harness/json.hpp"
#include "service/server.hpp"

namespace vlcsa::service {
namespace {

using harness::JsonParse;
using harness::JsonValue;
using harness::parse_json;

constexpr const char* kErrorRateRun =
    R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})";
// Big enough that cancellation always lands before completion.
constexpr const char* kLongRun =
    R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 40000000000})";

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_service_fleet_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JsonValue parse_line(const std::string& line) {
  JsonParse parse = parse_json(line);
  EXPECT_TRUE(parse.ok()) << line << " -> " << parse.error;
  EXPECT_EQ(parse.value.kind(), JsonValue::Kind::kObject);
  return parse.value;
}

JsonValue parse_reply(const ExperimentService::Reply& reply) { return parse_line(reply.line); }

std::string field(const JsonValue& response, const char* name) {
  const JsonValue* value = response.find(name);
  return value != nullptr && value->kind() == JsonValue::Kind::kString ? value->as_string()
                                                                       : std::string();
}

bool bool_field(const JsonValue& response, const char* name) {
  const JsonValue* value = response.find(name);
  return value != nullptr && value->kind() == JsonValue::Kind::kBool && value->as_bool();
}

/// The run key every request in this file resolves to (defaults: seed 1,
/// batched path; the error-rate family carries no stream version).
CacheKey error_rate_key(std::uint64_t samples) {
  CacheKey key;
  key.experiment = "fig7.1/n64-k6";
  key.samples = samples;
  key.seed = 1;
  key.eval_path = "batched";
  return key;
}

TEST(ServiceDrain, DrainReplyThenRunsRefusedObservationStillServed) {
  ExperimentService service({temp_dir("drain"), 64, 1});
  EXPECT_FALSE(service.draining());

  const ExperimentService::Reply reply = service.handle_line(R"({"request": "drain"})");
  EXPECT_TRUE(reply.drain);
  EXPECT_FALSE(reply.shutdown);
  const JsonValue response = parse_reply(reply);
  EXPECT_EQ(field(response, "status"), "ok");
  EXPECT_TRUE(bool_field(response, "draining"));
  ASSERT_NE(response.find("active_runs"), nullptr);
  EXPECT_TRUE(service.draining());

  // New runs bounce with the machine-readable drain code...
  const JsonValue run = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(run, "status"), "error");
  EXPECT_EQ(field(run, "code"), "draining");
  const JsonValue batch = parse_reply(service.handle_line(
      R"({"request": "run-batch", "runs": [{"experiment": "fig7.1/n64-k6", "samples": 2000}]})"));
  EXPECT_EQ(field(batch, "code"), "draining");

  // ... while observational requests keep working so rotation scripts can
  // watch the drain converge.
  const JsonValue list = parse_reply(service.handle_line(R"({"request": "list"})"));
  EXPECT_EQ(field(list, "status"), "ok");
  const JsonValue metrics = parse_reply(service.handle_line(R"({"request": "metrics"})"));
  EXPECT_EQ(field(metrics, "status"), "ok");
  EXPECT_TRUE(bool_field(metrics, "draining"));

  // The Prometheus exposition flips its gauge too.
  const JsonValue prom = parse_reply(service.handle_line(R"({"request": "metrics-prom"})"));
  const JsonValue* body = prom.find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->as_string().find("vlcsa_draining 1"), std::string::npos);
}

TEST(ServiceDrain, MetricsGaugeIsZeroBeforeDrain) {
  ExperimentService service({"", 64, 1});
  const JsonValue metrics = parse_reply(service.handle_line(R"({"request": "metrics"})"));
  const JsonValue* draining = metrics.find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_EQ(draining->kind(), JsonValue::Kind::kBool);
  EXPECT_FALSE(draining->as_bool());
  const JsonValue prom = parse_reply(service.handle_line(R"({"request": "metrics-prom"})"));
  EXPECT_NE(prom.find("body")->as_string().find("vlcsa_draining 0"), std::string::npos);
}

TEST(ServiceDrain, DrainRequestIsStrictAboutFields) {
  ExperimentService service({"", 64, 1});
  const JsonValue response =
      parse_reply(service.handle_line(R"({"request": "drain", "force": true})"));
  EXPECT_EQ(field(response, "status"), "error");
  EXPECT_FALSE(service.draining());
}

TEST(ServiceDrain, StdioConversationEndsAtDrain) {
  ExperimentService service({"", 64, 1});
  std::istringstream in(
      "{\"request\": \"drain\"}\n"
      "{\"request\": \"list\"}\n");
  std::ostringstream out;
  // The drain reply ends the conversation — the trailing list line is never
  // read, exactly like shutdown on this one-conversation transport.
  EXPECT_EQ(serve_stdio(in, out, service), 1u);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(bool_field(parse_line(line), "draining"));
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(ServiceDrain, DeadlineCancellationAnswersDrainingNotTimeout) {
  ExperimentService service({"", 64, 1});
  ExperimentService::Reply reply;
  std::thread runner([&] { reply = service.handle_line(kLongRun); });

  // Wait for the run to register, then simulate the server's drain deadline:
  // flip into drain mode and cancel in-flight work.
  for (int i = 0; i < 2000 && service.active_runs() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.active_runs(), 1u);
  service.begin_drain();
  service.cancel_active_runs();
  runner.join();

  const JsonValue response = parse_reply(reply);
  EXPECT_EQ(field(response, "status"), "error");
  EXPECT_EQ(field(response, "code"), "draining");
  // A drain cancellation is not a deadline miss: the timeout counter and the
  // timeout code stay untouched.
  EXPECT_EQ(service.metrics().snapshot().timeouts, 0u);
}

TEST(ServiceFleet, LeaderWaitsOnForeignLeaseThenHitsDisk) {
  const std::string dir = temp_dir("leasewait");
  ExperimentService service({dir, 64, 1});
  const CacheKey key = error_rate_key(2000);

  // A peer replica "holds" the compute lease for this key.
  const std::string lease_path = service.cache().lease_path(key);
  {
    std::ofstream out(lease_path);
    out << "424242\n";
  }

  ExperimentService::Reply reply;
  std::thread runner([&] { reply = service.handle_line(kErrorRateRun); });

  // While the leader is parked on the lease, the "peer" finishes: produce
  // the record out-of-band (a second service over its own directory), copy
  // it in, release the lease.
  const std::string peer_dir = temp_dir("leasewait_peer");
  {
    ExperimentService peer({peer_dir, 64, 1});
    const JsonValue response = parse_reply(peer.handle_line(kErrorRateRun));
    ASSERT_EQ(field(response, "status"), "ok");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const CacheKey peer_key = error_rate_key(2000);
  std::filesystem::copy_file(ResultCache(peer_dir, 0).file_path(peer_key),
                             service.cache().file_path(key));
  std::filesystem::remove(lease_path);
  runner.join();

  const JsonValue response = parse_reply(reply);
  EXPECT_EQ(field(response, "status"), "ok");
  EXPECT_EQ(field(response, "cache"), "hit-disk");
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.lease_waits, 1u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.stores, 0u);  // the wait saved the recompute entirely
}

TEST(ServiceFleet, StaleForeignLeaseIsTakenOverAndRunProceeds) {
  const std::string dir = temp_dir("takeover");
  ServiceConfig config;
  config.cache_dir = dir;
  config.threads = 1;
  config.lease_stale_ms = 50;
  ExperimentService service(config);

  // A crashed peer left a lease behind (created after construction so the
  // startup reap does not sweep it; backdated past the staleness bound).
  const CacheKey key = error_rate_key(2000);
  const std::string lease_path = service.cache().lease_path(key);
  {
    std::ofstream out(lease_path);
    out << "424242\n";
  }
  std::filesystem::last_write_time(
      lease_path, std::filesystem::last_write_time(lease_path) - std::chrono::seconds(60));

  const JsonValue response = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(response, "status"), "ok");
  EXPECT_EQ(field(response, "cache"), "miss");  // took over and computed
  EXPECT_EQ(service.cache_stats().lease_takeovers, 1u);
  EXPECT_FALSE(std::filesystem::exists(lease_path));  // released after the store
  EXPECT_TRUE(std::filesystem::exists(service.cache().file_path(key)));

  // cache-stats reports the fleet counters.
  const JsonValue stats = parse_reply(service.handle_line(R"({"request": "cache-stats"})"));
  std::uint64_t takeovers = 0;
  ASSERT_NE(stats.find("lease_takeovers"), nullptr);
  ASSERT_TRUE(stats.find("lease_takeovers")->to_u64(takeovers));
  EXPECT_EQ(takeovers, 1u);
  ASSERT_NE(stats.find("lease_waits"), nullptr);
}

TEST(SocketServerDrain, DrainRequestStopsServeCleanly) {
  ExperimentService service({"", 64, 1});
  const std::string socket_path = temp_dir("drainsock") + "/vlcsa.sock";
  SocketServer::Options options;
  options.workers = 2;
  options.drain_ms = 2000;
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::string serve_result = "unset";
  std::thread serving([&] { serve_result = server.serve(); });

  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(client.roundtrip(R"({"request": "drain"})", response), "");
  EXPECT_TRUE(bool_field(parse_line(response), "draining"));

  // No in-flight work, the drain conversation ended with its reply: serve()
  // converges without waiting for the deadline, exactly like a clean stop.
  serving.join();
  EXPECT_EQ(serve_result, "");
  EXPECT_FALSE(std::filesystem::exists(socket_path));  // listener unlinked
}

TEST(SocketServerDrain, BeginDrainCancelsInFlightRunAtDeadline) {
  ExperimentService service({"", 64, 1});
  const std::string socket_path = temp_dir("draincancel") + "/vlcsa.sock";
  SocketServer::Options options;
  options.workers = 2;
  options.drain_ms = 100;  // deadline fires quickly; the long run must die
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::string serve_result = "unset";
  std::thread serving([&] { serve_result = server.serve(); });

  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  std::thread requester([&] { ASSERT_EQ(client.roundtrip(kLongRun, response), ""); });
  for (int i = 0; i < 2000 && service.active_runs() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.active_runs(), 1u);

  server.begin_drain();  // what the SIGTERM watcher thread calls
  requester.join();
  serving.join();
  EXPECT_EQ(serve_result, "");
  const JsonValue parsed = parse_line(response);
  EXPECT_EQ(field(parsed, "status"), "error");
  EXPECT_EQ(field(parsed, "code"), "draining");
}

TEST(ServiceClientRetry, ReconnectsThroughMaxRequestsPerConnBounces) {
  ExperimentService service({"", 64, 1});
  const std::string socket_path = temp_dir("bounce") + "/vlcsa.sock";
  SocketServer::Options options;
  options.workers = 1;
  options.max_requests_per_conn = 1;  // every reply ends the conversation
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&] { EXPECT_EQ(server.serve(), ""); });

  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  fleet::RetryPolicy policy;
  policy.attempts = 3;
  policy.base_ms = 1;
  policy.jitter_seed = 1;
  std::uint64_t retries = 0;
  std::string response;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.roundtrip_with_retry(R"({"request": "list"})", response, policy, &retries),
              "")
        << "request " << i;
    EXPECT_EQ(field(parse_line(response), "status"), "ok") << "request " << i;
  }
  // The first request rode the initial connection; the next two found it
  // closed by the per-connection cap and had to redial.
  EXPECT_GE(retries, 2u);

  ASSERT_EQ(client.roundtrip_with_retry(R"({"request": "shutdown"})", response, policy, &retries),
            "");
  serving.join();
}

TEST(ServiceClientRetry, IdleTimeoutClosesConversationAndRetryRecovers) {
  ExperimentService service({"", 64, 1});
  const std::string socket_path = temp_dir("idle") + "/vlcsa.sock";
  SocketServer::Options options;
  options.workers = 1;
  options.idle_timeout_ms = 50;
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&] { EXPECT_EQ(server.serve(), ""); });

  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(client.roundtrip(R"({"request": "list"})", response), "");
  EXPECT_EQ(field(parse_line(response), "status"), "ok");

  // Linger past the idle bound: the server reclaims the worker.  A plain
  // roundtrip would fail; the retrying one redials and succeeds.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  fleet::RetryPolicy policy;
  policy.attempts = 3;
  policy.base_ms = 1;
  policy.jitter_seed = 2;
  std::uint64_t retries = 0;
  ASSERT_EQ(client.roundtrip_with_retry(R"({"request": "list"})", response, policy, &retries), "");
  EXPECT_EQ(field(parse_line(response), "status"), "ok");
  EXPECT_GE(retries, 1u);

  ASSERT_EQ(client.roundtrip_with_retry(R"({"request": "shutdown"})", response, policy, &retries),
            "");
  serving.join();
}

TEST(ServiceClientRetry, DrainingReplyIsRetriedAgainstARecoveringServer) {
  // A drained service refuses runs; retries against the *same* endpoint keep
  // receiving the refusal, and after exhausting the budget the caller gets
  // the refusal line itself (transport stays ""), per the server.hpp
  // contract — loadgen counts it as an error status, not a protocol error.
  ExperimentService service({"", 64, 1});
  const std::string socket_path = temp_dir("refusal") + "/vlcsa.sock";
  SocketServer::Options options;
  options.workers = 2;
  options.drain_ms = 60000;  // drain converges via shutdown below, not deadline
  SocketServer server({ListenerSpec::unix_socket(socket_path)}, service, options);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&] { EXPECT_EQ(server.serve(), ""); });

  service.begin_drain();  // service-level drain only; listeners stay open
  ServiceClient client;
  ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  fleet::RetryPolicy policy;
  policy.attempts = 2;
  policy.base_ms = 1;
  policy.jitter_seed = 3;
  std::uint64_t retries = 0;
  std::string response;
  ASSERT_EQ(client.roundtrip_with_retry(kErrorRateRun, response, policy, &retries), "");
  EXPECT_EQ(retries, 2u);  // both retries burned on the refusal
  const JsonValue parsed = parse_line(response);
  EXPECT_EQ(field(parsed, "status"), "error");
  EXPECT_EQ(field(parsed, "code"), "draining");

  server.begin_drain();
  serving.join();
}

}  // namespace
}  // namespace vlcsa::service
