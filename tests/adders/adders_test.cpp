#include "adders/adders.hpp"

#include <gtest/gtest.h>

#include "common/testutil.hpp"
#include "netlist/opt.hpp"

namespace vlcsa::adders {
namespace {

struct AdderCase {
  AdderKind kind;
  int width;
  bool with_cin;
};

class AdderKindTest : public ::testing::TestWithParam<AdderCase> {};

TEST_P(AdderKindTest, AddsExactly) {
  const auto [kind, width, with_cin] = GetParam();
  AdderOptions opts;
  opts.with_cin = with_cin;
  const auto nl = build_adder_netlist(kind, width, opts);
  testutil::check_adder_netlist(nl, width, with_cin);
}

TEST_P(AdderKindTest, AddsExactlyAfterOptimization) {
  const auto [kind, width, with_cin] = GetParam();
  AdderOptions opts;
  opts.with_cin = with_cin;
  const auto nl = netlist::optimize(build_adder_netlist(kind, width, opts));
  testutil::check_adder_netlist(nl, width, with_cin, 4, 77);
}

std::vector<AdderCase> adder_cases() {
  std::vector<AdderCase> cases;
  for (const auto kind :
       {AdderKind::kRipple, AdderKind::kCarrySelect, AdderKind::kCarrySkip,
        AdderKind::kKoggeStone, AdderKind::kBrentKung, AdderKind::kSklansky,
        AdderKind::kHanCarlson, AdderKind::kHybridKsCarrySelect}) {
    for (const int width : {1, 2, 3, 8, 15, 16, 33, 64}) {
      cases.push_back({kind, width, false});
    }
    cases.push_back({kind, 24, true});  // one cin case per family
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AdderKindTest, ::testing::ValuesIn(adder_cases()),
                         [](const auto& info) {
                           std::string name = to_string(info.param.kind);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_w" + std::to_string(info.param.width) +
                                  (info.param.with_cin ? "_cin" : "");
                         });

TEST(AdderNetlist, NamesFollowKindAndWidth) {
  const auto nl = build_adder_netlist(AdderKind::kKoggeStone, 32);
  EXPECT_EQ(nl.name(), "kogge-stone_32");
  EXPECT_EQ(nl.inputs().size(), 64u);
  EXPECT_EQ(nl.outputs().size(), 33u);  // 32 sums + cout
}

TEST(AdderNetlist, RejectsBadWidth) {
  EXPECT_THROW(build_adder_netlist(AdderKind::kRipple, 0), std::invalid_argument);
}

TEST(AdderNetlist, BlockSizeOptionIsHonored) {
  AdderOptions opts;
  opts.block_size = 4;
  const auto nl = build_adder_netlist(AdderKind::kCarrySelect, 16, opts);
  testutil::check_adder_netlist(nl, 16, false);
  // Extreme blocks also work.
  opts.block_size = 16;
  testutil::check_adder_netlist(build_adder_netlist(AdderKind::kCarrySelect, 16, opts), 16,
                                false);
  opts.block_size = 1;
  testutil::check_adder_netlist(build_adder_netlist(AdderKind::kCarrySkip, 9, opts), 9, false);
}

TEST(AdderNetlist, RippleUsesLinearGates) {
  const auto n64 = build_adder_netlist(AdderKind::kRipple, 64);
  const auto n128 = build_adder_netlist(AdderKind::kRipple, 128);
  // Linear growth: doubling width roughly doubles gates.
  EXPECT_NEAR(static_cast<double>(n128.logic_gate_count()) /
                  static_cast<double>(n64.logic_gate_count()),
              2.0, 0.1);
}

TEST(AdderNetlist, KoggeStoneAreaIsSuperlinear) {
  const auto n64 = netlist::optimize(build_adder_netlist(AdderKind::kKoggeStone, 64));
  const auto n128 = netlist::optimize(build_adder_netlist(AdderKind::kKoggeStone, 128));
  const double ratio = static_cast<double>(n128.logic_gate_count()) /
                       static_cast<double>(n64.logic_gate_count());
  EXPECT_GT(ratio, 2.05);  // n log n growth
}

TEST(ToString, CoversAllKinds) {
  EXPECT_STREQ(to_string(AdderKind::kRipple), "ripple");
  EXPECT_STREQ(to_string(AdderKind::kDesignWare), "designware");
  EXPECT_STREQ(to_string(AdderKind::kHybridKsCarrySelect), "hybrid-ks-carry-select");
}

}  // namespace
}  // namespace vlcsa::adders
