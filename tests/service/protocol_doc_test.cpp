// Documentation contract for the service protocol: DESIGN.md's protocol
// reference must list exactly the request types ExperimentService actually
// dispatches.  The canonical line in DESIGN.md looks like
//
//   Requests: `run`, `run-batch`, ... `shutdown`.
//
// and this test diffs its backticked names against
// ExperimentService::request_names() both ways, so adding a request without
// documenting it (or documenting one that does not exist) fails CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace vlcsa::service {
namespace {

std::filesystem::path design_md_path() {
  return std::filesystem::path(__FILE__).parent_path() / ".." / ".." / "DESIGN.md";
}

/// The backticked names on the first line of DESIGN.md starting "Requests:".
std::vector<std::string> documented_request_names() {
  std::ifstream in(design_md_path());
  EXPECT_TRUE(in.is_open()) << "cannot open " << design_md_path();
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Requests: ", 0) != 0) continue;
    std::vector<std::string> names;
    std::size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      const std::size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      names.push_back(line.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
    return names;
  }
  return {};
}

TEST(ProtocolDoc, DesignMdListsExactlyTheDispatchedRequests) {
  const std::vector<std::string> documented = documented_request_names();
  ASSERT_FALSE(documented.empty())
      << "DESIGN.md has no 'Requests: ...' line with backticked request names";
  const std::vector<std::string> dispatched = ExperimentService::request_names();

  const std::set<std::string> documented_set(documented.begin(), documented.end());
  const std::set<std::string> dispatched_set(dispatched.begin(), dispatched.end());
  EXPECT_EQ(documented_set, dispatched_set)
      << "DESIGN.md's request list and ExperimentService's dispatch table differ";
  // No duplicates in the documentation line either.
  EXPECT_EQ(documented.size(), documented_set.size());
}

TEST(ProtocolDoc, EveryDispatchedRequestHasAFieldTableHeading) {
  // Each request type gets its own `### \`name\`` subsection in DESIGN.md's
  // protocol reference (field table + errors).
  std::ifstream in(design_md_path());
  ASSERT_TRUE(in.is_open());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  for (const std::string& name : ExperimentService::request_names()) {
    EXPECT_NE(contents.find("### `" + name + "`"), std::string::npos)
        << "DESIGN.md lacks a '### `" << name << "`' protocol subsection";
  }
}

TEST(ProtocolDoc, TraceEnvelopeFieldsAreDocumented) {
  // The request-envelope observability fields ("trace", "trace_id") and the
  // echoed reply fields ride every request type, so they are documented once
  // in the protocol reference rather than per request — but they must be
  // documented.
  std::ifstream in(design_md_path());
  ASSERT_TRUE(in.is_open());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  for (const char* needle : {"`trace`", "`trace_id`", "`spans`"}) {
    EXPECT_NE(contents.find(needle), std::string::npos)
        << "DESIGN.md does not document the " << needle << " envelope field";
  }
}

}  // namespace
}  // namespace vlcsa::service
