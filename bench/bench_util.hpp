#pragma once
// Shared helpers for the per-artifact bench binaries.

#include <algorithm>
#include <iostream>
#include <string>

#include "arith/carry_chain.hpp"
#include "harness/report.hpp"

namespace vlcsa::bench {

/// Prints a carry-chain length histogram as rows of "length | % | bar",
/// the textual rendering of the Figs 6.1–6.5 bar charts.
inline void print_chain_histogram(const arith::CarryChainProfiler& profiler,
                                  std::ostream& os = std::cout) {
  double peak = 0.0;
  for (int len = 1; len <= profiler.width(); ++len) {
    peak = std::max(peak, profiler.fraction(len));
  }
  harness::Table table({"chain length", "fraction", "histogram"});
  for (int len = 1; len <= profiler.width(); ++len) {
    const double f = profiler.fraction(len);
    const int bar = peak > 0.0 ? static_cast<int>(f / peak * 40.0 + 0.5) : 0;
    table.add_row({std::to_string(len), harness::fmt_pct(f, 3), std::string(bar, '#')});
  }
  table.print(os);
  os << "chains recorded: " << profiler.total() << " over " << profiler.additions()
     << " additions; mean length " << harness::fmt_fixed(profiler.mean_length(), 2) << "\n";
}

}  // namespace vlcsa::bench
