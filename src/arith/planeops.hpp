#pragma once
// Plane-kernel layer: the bulk word-parallel primitives every bit-sliced
// evaluation path is built from, each with a scalar backend and (on x86-64)
// AVX2 and AVX-512 backends — plus NEON where the translation is trivial —
// selected once at startup by runtime CPU dispatch.
//
// A "plane array" is a flat sequence of 64-bit words; callers lay their
// planes out bit-major with `lane_words` words per bit (bitslice.hpp), but
// the elementwise kernels below are layout-agnostic: they just stream over
// `m` words.  The only structured kernel is the Kogge-Stone prefix, which
// takes the (n, lane_words) shape explicitly.
//
// Contracts:
//  * Every backend computes bit-identical results — the scalar backend is
//    the oracle and tests/arith/planeops_test.cpp pins the others to it.
//  * Backend selection: VLCSA_FORCE_BACKEND=scalar|avx2|avx512|neon|auto in the
//    environment wins (unsupported forced backends fall back to scalar with
//    a one-time stderr note); otherwise the best supported backend is used.
//    set_backend() switches at runtime for tests/benches; it must not race
//    in-flight kernels (switch between runs, not during).
//  * Plane storage should be 64-byte aligned (PlaneVec below guarantees it);
//    kernels that receive whole plane arrays assert the base alignment so a
//    stray unaligned buffer is caught in debug builds.  Loads/stores inside
//    the SIMD backends are unaligned-safe, so alignment is a performance
//    contract, not a correctness one.

#include <cstddef>
#include <cstdint>
#include <new>
#include <string_view>
#include <vector>

namespace vlcsa::arith::planeops {

/// Alignment of plane storage: one cache line (and ≥ any SIMD vector we use).
inline constexpr std::size_t kPlaneAlignment = 64;

/// Minimal aligned allocator so plane arrays (and scratch buffers) start on
/// a cache-line boundary without a custom container.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kPlaneAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kPlaneAlignment});
  }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// The standard container for plane arrays and lane-mask groups: a
/// uint64_t vector whose data() is 64-byte aligned.
using PlaneVec = std::vector<std::uint64_t, AlignedAllocator<std::uint64_t>>;

enum class Backend {
  kScalar,
  kAvx2,
  kAvx512,  // needs avx512f+avx512bw; vpopcntdq picked up separately when present
  kNeon,
};

[[nodiscard]] const char* to_string(Backend backend);

/// The backend the kernels below currently dispatch to.
[[nodiscard]] Backend active_backend();

/// True when this CPU/build can run `backend`.
[[nodiscard]] bool backend_available(Backend backend);

/// Switches the dispatch table; returns false (and leaves the active backend
/// unchanged) when the backend is not available.  Not safe to call while
/// kernels are executing on other threads.
bool set_backend(Backend backend);

/// Parses "scalar" / "avx2" / "avx512" / "neon" / "auto" ("auto" = best
/// available) and switches; returns false on unknown names and unavailable
/// backends (an avx512 request on a CPU without the ISA fails, it does not
/// degrade to auto).
bool set_backend(std::string_view name);

// --- Bulk boolean kernels over m words (dst may alias x and/or y; all
// --- pointers may be interior, but whole-plane callers pass aligned bases).
void bulk_and(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m);
void bulk_or(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
             std::size_t m);
void bulk_xor(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m);
/// dst = x & ~y.
void bulk_andnot(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                 std::size_t m);
/// dst = (mask & t) | (~mask & f) — per-bit select.
void bulk_select(const std::uint64_t* mask, const std::uint64_t* t, const std::uint64_t* f,
                 std::uint64_t* dst, std::size_t m);
/// g = a & b, p = a ^ b in one pass (the generate/propagate plane fill).
/// Unlike the single-output kernels above, g and p must NOT alias a, b, or
/// each other — the two outputs are interleaved per element, so an aliased
/// input would be clobbered mid-pass (and differently per backend).
void bulk_gp(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* g,
             std::uint64_t* p, std::size_t m);

/// Sum of popcounts over m words — the mask-popcount reduction the Monte
/// Carlo accumulators fold lane masks with.
[[nodiscard]] std::uint64_t popcount_sum(const std::uint64_t* x, std::size_t m);

/// Word-level Kogge-Stone carry prefix over bit-major plane arrays with
/// `lane_words` words per bit: carry[i] = carry out of bit i with carry-in 0,
/// independently in each of the n*lane_words*64 lanes.  `carry` and `pp`
/// must each hold n*lane_words words, be 64-byte aligned, and not alias
/// g/p/each other.  `pp` is clobbered scratch.
void kogge_stone(const std::uint64_t* g, const std::uint64_t* p, int n, int lane_words,
                 std::uint64_t* carry, std::uint64_t* pp);

/// In-place groupwise x[i] &= x[i - step] for i = n-1 .. step, then zeroes
/// groups [0, step) — one doubling step of a sliding all-ones window (the
/// VLSA propagate-run sweep).  Group = lane_words words.
void shifted_self_and(std::uint64_t* x, int n, int lane_words, int step);

/// In-place transpose of a 64x64 bit matrix; block[i] is row i.
void transpose_64x64(std::uint64_t block[64]);

}  // namespace vlcsa::arith::planeops
