#pragma once
// Block-generating RNG subsystem: a repo-owned MT19937-64 whose output is
// bit-identical to std::mt19937_64 — same seeding (both the single-value
// recurrence and std::seed_seq construction), same twist, same tempering,
// same draw order — so swapping it into every draw site changes no counter
// anywhere (tests/arith/rng_test.cpp pins the first 10^6 draws per seed).
//
// What the std engine cannot do, and this one exists for: the 312-word state
// is regenerated as one *block* (SIMD twist + batched tempering through the
// planeops backend pattern — scalar oracle + AVX2, runtime dispatch,
// VLCSA_FORCE_BACKEND / planeops::set_backend respected), and consumers can
// pull whole blocks with generate_block() instead of one word per call.
// That lifts the Amdahl ceiling PR 4 left: operand generation was ~90% of
// batched sampling cost, dominated by per-call std::mt19937_64 draws.
//
// Contracts:
//  * operator() is sequence-identical to std::mt19937_64 under the same
//    construction.  generate_block(dst, n) writes exactly the next n
//    operator() values (and consumes the stream identically), so bulk and
//    per-call consumption interleave freely.
//  * Every planeops backend produces the identical stream (the scalar twist
//    is the oracle; rng_test pins the others to it).
//  * The engine's reproducibility contract is unchanged: make_stream_rng
//    (and harness::make_shard_rng on top of it) feed all 128 bits of
//    (seed, stream) through std::seed_seq exactly as before this subsystem.

#include <cstddef>
#include <cstdint>
#include <random>
#include <type_traits>

namespace vlcsa::arith {

/// Drop-in MT19937-64 with block regeneration.  Satisfies
/// uniform_random_bit_generator, so std::normal_distribution and friends
/// consume it exactly like the std engine.
class BlockRng {
 public:
  using result_type = std::uint64_t;

  /// MT19937-64 state size (the block granularity of regeneration).
  static constexpr std::size_t kStateWords = 312;

  /// Same default seed as std::mt19937_64.
  static constexpr result_type default_seed = 5489u;

  BlockRng() { seed(default_seed); }
  explicit BlockRng(result_type value) { seed(value); }

  /// std::seed_seq (or any seed-sequence) construction, bit-identical to
  /// std::mt19937_64's — this is what make_stream_rng / make_shard_rng use.
  /// (BlockRng itself is excluded so copy construction from a non-const
  /// generator resolves to the copy constructor, as it does for the std
  /// engine, instead of instantiating seed<BlockRng>.)
  template <typename SeedSeq,
            typename = std::enable_if_t<
                !std::is_convertible_v<SeedSeq, result_type> &&
                !std::is_same_v<std::remove_cvref_t<SeedSeq>, BlockRng>>>
  explicit BlockRng(SeedSeq& seq) {
    seed(seq);
  }

  /// The std single-value seeding recurrence (mt[i] from mt[i-1]).
  void seed(result_type value);

  /// The std seed-sequence seeding: 624 32-bit words -> 312 state words,
  /// with the all-zero fixup ([rand.eng.mers]).
  template <typename SeedSeq>
  void seed(SeedSeq& seq) {
    std::uint32_t words[2 * kStateWords];
    seq.generate(words, words + 2 * kStateWords);
    bool zero = true;
    for (std::size_t i = 0; i < kStateWords; ++i) {
      state_[i] = static_cast<std::uint64_t>(words[2 * i]) |
                  (static_cast<std::uint64_t>(words[2 * i + 1]) << 32);
      if (i == 0 ? (state_[0] & kUpperMask) != 0 : state_[i] != 0) zero = false;
    }
    // Degenerate all-zero state (undetectable by the low r bits of word 0)
    // would make the twist a fixed point; the standard pins it to 2^63.
    if (zero) state_[0] = std::uint64_t{1} << 63;
    index_ = kStateWords;
    twists_ = 0;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// The next draw — value-identical to std::mt19937_64::operator().
  result_type operator()() {
    if (index_ == kStateWords) refill();
    return out_[index_++];
  }

  /// Writes the next `n` draws to `dst` — exactly the values (and stream
  /// consumption) of n operator() calls, but full 312-word blocks are
  /// twisted and tempered straight into `dst`, skipping the per-call path.
  /// This is the API the bulk operand-fill paths are built on.
  void generate_block(std::uint64_t* dst, std::size_t n);

  /// Skips `z` draws (std::mt19937_64::discard equivalent) without
  /// tempering the skipped blocks.
  void discard(unsigned long long z);

  /// Total stream words consumed since seeding — operator(), generate_block
  /// and discard all count.  Maintained with one increment per 312-word
  /// block regeneration (every consumed word belongs to exactly one twisted
  /// block, minus the unread tail of the current one), so the per-draw hot
  /// path is untouched; the engine's RunProfile reads this per shard.
  [[nodiscard]] std::uint64_t words_drawn() const {
    return twists_ * kStateWords - (kStateWords - index_);
  }

 private:
  static constexpr std::uint64_t kUpperMask = ~std::uint64_t{0} << 31;  // high w-r bits

  void refill();  // twist state_, temper into out_, reset index_

  std::uint64_t state_[kStateWords];  // untempered MT state
  std::uint64_t out_[kStateWords];    // tempered draws of the current block
  std::size_t index_ = kStateWords;   // next unread slot in out_
  std::uint64_t twists_ = 0;          // blocks twisted since seeding
};

/// Block-batched standard-normal sampler: a 256-layer ziggurat whose raw
/// uniform words come from BlockRng::generate_block in whole-block refills,
/// replacing the per-call std::normal_distribution draws that dominated the
/// Gaussian operand paths.  One word usually yields one variate (the classic
/// ~1.3% of draws fall through to the wedge/tail slow path), and the word
/// supplies a 55-bit signed mantissa so the variate granularity stays far
/// below one integer unit even at the paper's sigma = 2^32 — a 32-bit
/// ziggurat would quantize samples in steps of ~2^8 there and corrupt
/// low-bit carry statistics.
///
/// Contracts:
///  * operator() and fill() consume the underlying BlockRng from one shared
///    internal word buffer, so per-variate and bulk consumption interleave
///    freely and produce the same variate stream — this is what keeps the
///    scalar and batched Gaussian Monte Carlo paths bit-identical.
///  * The variate stream is a pure function of the BlockRng stream (and
///    therefore backend-invariant).  It is NOT the std::normal_distribution
///    stream: swapping this sampler in was the gauss-rng-v2 golden-counter
///    migration (see tests/harness/registry_pin_test.cpp and
///    docs/OPERATIONS.md).
///  * A default-constructed sampler is pristine (no buffered words); operand
///    sources clone() with a fresh sampler per shard.
class GaussianBlockSampler {
 public:
  GaussianBlockSampler() = default;

  /// The next standard-normal variate.
  [[nodiscard]] double operator()(BlockRng& rng);

  /// Writes the next `n` variates — exactly the values (and BlockRng
  /// consumption) of n operator() calls.
  void fill(BlockRng& rng, double* dst, std::size_t n);

 private:
  [[nodiscard]] std::uint64_t next_word(BlockRng& rng) {
    if (pos_ == kBufferWords) {
      rng.generate_block(buffer_, kBufferWords);
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

  /// Raw-draw buffer size: two full BlockRng blocks per refill.
  static constexpr std::size_t kBufferWords = 2 * BlockRng::kStateWords;

  std::uint64_t buffer_[kBufferWords];
  std::size_t pos_ = kBufferWords;  // next unread slot; kBufferWords = empty
};

/// The one shared seeding discipline for standalone (non-sharded) runs:
/// all 128 bits of (seed, stream) through std::seed_seq — the same
/// construction as the engine's per-shard streams, so ad-hoc `rng(seed)`
/// call sites stop bypassing it.  harness::make_shard_rng delegates here
/// with stream = shard index.
[[nodiscard]] BlockRng make_stream_rng(std::uint64_t seed, std::uint64_t stream = 0);

}  // namespace vlcsa::arith
