#include "service/service.hpp"

#include <chrono>
#include <exception>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"

namespace vlcsa::service {

namespace {

using harness::JsonObject;
using harness::JsonValue;

ExperimentService::Reply error_reply(const std::string& message) {
  JsonObject response;
  response.add("status", "error");
  response.add("error", message);
  return {response.render_line(), false};
}

/// Strictness: every member of the request object must be expected for its
/// request type — a typo'd field is an error, never silently ignored.
std::string check_fields(const JsonValue& request,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : request.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return "unknown field '" + key + "' for this request";
  }
  return {};
}

/// Optional unsigned-integer field; "" or an error message.
std::string read_u64_field(const JsonValue& request, const char* name, std::uint64_t& out,
                           bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (!field->to_u64(out)) {
    return std::string("field '") + name + "' must be a non-negative integer";
  }
  return {};
}

/// Optional string field; "" or an error message.
std::string read_string_field(const JsonValue& request, const char* name, std::string& out,
                              bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (field->kind() != JsonValue::Kind::kString) {
    return std::string("field '") + name + "' must be a string";
  }
  out = field->as_string();
  return {};
}

/// ["a", "b", ...] — the one place the protocol needs a JSON array.
std::string render_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + harness::json_escape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

const char* tier_name(ResultCache::Tier tier) {
  switch (tier) {
    case ResultCache::Tier::kMemory: return "hit-memory";
    case ResultCache::Tier::kDisk: return "hit-disk";
    case ResultCache::Tier::kMiss: return "miss";
  }
  return "?";
}

// The cached result record: a pure function of (experiment, samples, seed,
// eval path) — no wall time, no thread count — so a fresh recomputation at
// any --threads setting reproduces it byte-for-byte.  The embedded
// experiment/samples/seed/eval_path fields are what the disk tier validates
// against the key (cache.hpp).
std::string error_rate_record(const harness::ErrorRateExperiment& experiment,
                              std::uint64_t seed, harness::EvalPath path,
                              const harness::ErrorRateResult& result) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "error-rate");
  record.add("model", to_string(experiment.model));
  record.add("width", experiment.width);
  record.add("window", experiment.window);
  record.add("distribution", arith::to_string(experiment.dist));
  record.add("samples", result.samples);
  record.add("seed", seed);
  record.add("eval_path", to_string(path));
  record.add("actual_errors", result.actual_errors);
  record.add("nominal_errors", result.nominal_errors);
  record.add("false_negatives", result.false_negatives);
  record.add("either_wrong", result.either_wrong);
  record.add("emitted_wrong", result.emitted_wrong);
  record.add("total_cycles", result.total_cycles);
  record.add("actual_rate", result.actual_rate());
  record.add("nominal_rate", result.nominal_rate());
  record.add("either_wrong_rate", result.either_wrong_rate());
  record.add("avg_cycles", result.average_cycles());
  return record.render_line();
}

/// Stream version of the crypto chain-profile workloads.  Bumped whenever
/// their internal draw streams change incompatibly — v2 is the move of
/// run_crypto_workload's seeding onto the shared seed_seq discipline
/// (arith::make_stream_rng) that shipped with the BlockRng subsystem.
/// Distribution profiles and every error-rate experiment are sequence-
/// identical across that swap and stay unversioned (keys unchanged).
constexpr const char* kCryptoStreamVersion = "crypto-rng-v2";

std::string chain_profile_record(const harness::ChainProfileExperiment& experiment,
                                 std::uint64_t samples, std::uint64_t seed,
                                 const arith::CarryChainProfiler& profiler) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "chain-profile");
  record.add("width", experiment.width);
  const bool crypto = experiment.workload == harness::ChainProfileExperiment::Workload::kCrypto;
  record.add("workload", crypto ? "crypto" : "distribution");
  record.add("source",
             crypto ? std::string(to_string(experiment.crypto_kind))
                    : arith::to_string(experiment.dist));
  record.add("samples", samples);
  record.add("seed", seed);
  // Chain profiling has no batched pipeline; key the scalar path so the
  // cache key shape is uniform across both families.
  record.add("eval_path", to_string(harness::EvalPath::kScalar));
  // Crypto workloads are stream-versioned (see kCryptoStreamVersion):
  // records from an incompatible seeding era must miss, not hit stale.
  if (crypto) record.add("stream_version", kCryptoStreamVersion);
  record.add("additions", profiler.additions());
  record.add("chains", profiler.total());
  record.add("mean_chain_length", profiler.mean_length());
  record.add("fraction_at_least_half_width",
             profiler.fraction_at_least(experiment.width / 2));
  return record.render_line();
}

struct RunRequest {
  std::string experiment;
  std::uint64_t samples = 0;
  bool samples_given = false;
  std::uint64_t seed = 1;
  harness::EvalPath path = harness::EvalPath::kBatched;
  bool path_given = false;
};

/// Parses/validates the run request fields; "" or an error message.
std::string read_run_request(const JsonValue& request, RunRequest& out) {
  if (std::string error =
          check_fields(request, {"request", "experiment", "samples", "seed", "eval_path"});
      !error.empty()) {
    return error;
  }
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", out.experiment, given);
      !error.empty()) {
    return error;
  }
  if (!given || out.experiment.empty()) return "run requires field 'experiment'";
  if (std::string error = read_u64_field(request, "samples", out.samples, out.samples_given);
      !error.empty()) {
    return error;
  }
  if (out.samples_given && out.samples == 0) {
    return "field 'samples' must be positive (omit it for the experiment default)";
  }
  if (std::string error = read_u64_field(request, "seed", out.seed, given); !error.empty()) {
    return error;
  }
  std::string path_text;
  if (std::string error = read_string_field(request, "eval_path", path_text, out.path_given);
      !error.empty()) {
    return error;
  }
  if (out.path_given && !harness::parse_eval_path(path_text, out.path)) {
    return "field 'eval_path' must be \"batched\" or \"scalar\"";
  }
  return {};
}

}  // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.memory_entries, config_.cache_max_bytes) {}

ExperimentService::Reply ExperimentService::handle_line(const std::string& line) {
  const harness::JsonParse parse = harness::parse_json(line);
  if (!parse.ok()) return error_reply("malformed request: " + parse.error);
  if (parse.value.kind() != JsonValue::Kind::kObject) {
    return error_reply("request must be a JSON object");
  }
  const JsonValue* request_field = parse.value.find("request");
  if (request_field == nullptr || request_field->kind() != JsonValue::Kind::kString) {
    return error_reply("missing string field 'request'");
  }
  const std::string& request = request_field->as_string();

  // A daemon must outlive any single request: anything a handler throws
  // (engine failures, rethrown leader exceptions from the single-flight
  // latch) becomes an error reply, never a dead server.
  try {
    if (request == "run") return handle_run(parse.value);
    if (request == "list") return handle_list(parse.value);
    if (request == "describe") return handle_describe(parse.value);
    if (request == "cache-stats") return handle_cache_stats(parse.value);
  } catch (const std::exception& error) {
    return error_reply(std::string("internal error: ") + error.what());
  }
  if (request == "shutdown") {
    if (std::string error = check_fields(parse.value, {"request"}); !error.empty()) {
      return error_reply(error);
    }
    JsonObject response;
    response.add("status", "ok");
    response.add("request", "shutdown");
    return {response.render_line(), true};
  }
  return error_reply("unknown request '" + request +
                     "' (expected run, list, describe, cache-stats or shutdown)");
}

ExperimentService::Reply ExperimentService::handle_run(const JsonValue& request) {
  RunRequest run;
  if (std::string error = read_run_request(request, run); !error.empty()) {
    return error_reply(error);
  }

  const auto* error_rate = harness::find_error_rate_experiment(run.experiment);
  const auto* chain_profile =
      error_rate == nullptr ? harness::find_chain_profile_experiment(run.experiment) : nullptr;
  if (error_rate == nullptr && chain_profile == nullptr) {
    return error_reply("unknown experiment '" + run.experiment + "' (try \"list\")");
  }
  if (chain_profile != nullptr && run.path_given) {
    return error_reply("field 'eval_path' only applies to error-rate experiments; '" +
                       run.experiment + "' is a chain-profile experiment");
  }

  CacheKey key;
  key.experiment = run.experiment;
  key.samples = run.samples_given
                    ? run.samples
                    : (error_rate != nullptr ? error_rate->default_samples
                                             : chain_profile->default_samples);
  key.seed = run.seed;
  key.eval_path =
      to_string(error_rate != nullptr ? run.path : harness::EvalPath::kScalar);
  if (chain_profile != nullptr &&
      chain_profile->workload == harness::ChainProfileExperiment::Workload::kCrypto) {
    key.stream_version = kCryptoStreamVersion;
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  // Single-flight: one leader per key does the cache lookup and (on a miss)
  // the one computation; requests arriving while that is in flight wait on
  // the leader's future instead of re-sampling the same experiment in
  // parallel.  The latch is taken before the lookup so the cache counters
  // see exactly one event per non-coalesced request.
  const std::string map_key = cache_map_key(key);
  std::promise<std::string> promise;
  std::shared_future<std::string> future;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(map_key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_.emplace(map_key, future);
      leader = true;
    }
  }

  ResultCache::Lookup lookup;
  bool coalesced = false;
  if (leader) {
    try {
      lookup = cache_.get(key);
      if (lookup.tier == ResultCache::Tier::kMiss) {
        if (error_rate != nullptr) {
          const auto result = harness::run_experiment(*error_rate, key.samples, key.seed,
                                                      config_.threads, run.path);
          lookup.record = error_rate_record(*error_rate, key.seed, run.path, result);
        } else {
          const auto profiler = harness::run_experiment(*chain_profile, key.samples, key.seed,
                                                        config_.threads);
          lookup.record = chain_profile_record(*chain_profile, key.samples, key.seed, profiler);
        }
        cache_.put(key, lookup.record);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(map_key);
      }
      promise.set_exception(std::current_exception());
      throw;  // handle_line turns it into an error reply
    }
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(map_key);
    }
    promise.set_value(lookup.record);
  } else {
    lookup.record = future.get();  // rethrows if the leader failed
    coalesced = true;
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "run");
  response.add("experiment", run.experiment);
  response.add("cache", coalesced ? "coalesced" : tier_name(lookup.tier));
  response.add("wall_seconds", wall);
  response.add_json("record", lookup.record);
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_list(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request", "prefix"}); !error.empty()) {
    return error_reply(error);
  }
  std::string prefix;
  bool given = false;
  if (std::string error = read_string_field(request, "prefix", prefix, given);
      !error.empty()) {
    return error_reply(error);
  }

  std::vector<std::string> error_rate;
  for (const auto* experiment : harness::error_rate_experiments_with_prefix(prefix)) {
    error_rate.push_back(experiment->name);
  }
  std::vector<std::string> chain_profile;
  for (const auto* experiment : harness::chain_profile_experiments_with_prefix(prefix)) {
    chain_profile.push_back(experiment->name);
  }

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "list");
  response.add_json("error_rate", render_string_array(error_rate));
  response.add_json("chain_profile", render_string_array(chain_profile));
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_describe(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request", "experiment"}); !error.empty()) {
    return error_reply(error);
  }
  std::string name;
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", name, given);
      !error.empty()) {
    return error_reply(error);
  }
  if (!given || name.empty()) return error_reply("describe requires field 'experiment'");

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "describe");
  if (const auto* experiment = harness::find_error_rate_experiment(name)) {
    response.add("experiment", experiment->name);
    response.add("kind", "error-rate");
    response.add("model", to_string(experiment->model));
    response.add("width", experiment->width);
    response.add("window", experiment->window);
    response.add("distribution", arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  if (const auto* experiment = harness::find_chain_profile_experiment(name)) {
    const bool crypto =
        experiment->workload == harness::ChainProfileExperiment::Workload::kCrypto;
    response.add("experiment", experiment->name);
    response.add("kind", "chain-profile");
    response.add("width", experiment->width);
    response.add("workload", crypto ? "crypto" : "distribution");
    response.add("source", crypto ? std::string(to_string(experiment->crypto_kind))
                                  : arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  return error_reply("unknown experiment '" + name + "' (try \"list\")");
}

ExperimentService::Reply ExperimentService::handle_cache_stats(const JsonValue& request) {
  if (std::string error = check_fields(request, {"request"}); !error.empty()) {
    return error_reply(error);
  }
  const CacheStats stats = cache_.stats();
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "cache-stats");
  response.add("memory_hits", stats.memory_hits);
  response.add("disk_hits", stats.disk_hits);
  response.add("misses", stats.misses);
  response.add("stores", stats.stores);
  response.add("evictions", stats.evictions);
  response.add("disk_evictions", stats.disk_evictions);
  response.add("invalid_disk_records", stats.invalid_disk_records);
  response.add("memory_entries", stats.memory_entries);
  response.add("memory_capacity", static_cast<std::uint64_t>(cache_.memory_capacity()));
  response.add("disk_dir", cache_.disk_dir());
  response.add("disk_bytes", stats.disk_bytes);
  response.add("disk_max_bytes", cache_.max_disk_bytes());
  return {response.render_line(), false};
}

std::uint64_t serve_stdio(std::istream& in, std::ostream& out, ExperimentService& service) {
  std::uint64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    const ExperimentService::Reply reply = service.handle_line(line);
    out << reply.line << '\n' << std::flush;
    ++handled;
    if (reply.shutdown) break;
  }
  return handled;
}

}  // namespace vlcsa::service
