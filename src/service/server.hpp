#pragma once
// Socket transports for the experiment service: a long-running daemon loop
// (SocketServer, used by examples/vlcsa_serve.cpp) and the matching client
// connection (ServiceClient, used by examples/vlcsa_client.cpp,
// examples/vlcsa_loadgen.cpp and the tests).  Framing is the same
// newline-delimited JSON as the --stdio transport: one request object per
// line in, one response object per line out, any number of requests per
// connection.
//
// One SocketServer can listen on several transports at once — any mix of
// Unix-domain sockets and TCP endpoints (ListenerSpec) — all feeding the
// same accept loop, worker pool and ExperimentService, so a daemon started
// with --socket and --tcp serves both from one cache.
//
// The server keeps a warm pool of worker threads: accepted connections queue
// onto the pool, each worker converses with its connection until the peer
// hangs up, and experiment runs inside a request reuse the sharded engine
// (service.hpp).  When the pending queue is full (Options::max_pending) a
// new connection is answered with one "overloaded"-coded error line and
// closed instead of queueing unboundedly.  A "shutdown" request answers the
// requester, then stops the accept loop and drains the pool.
//
// A "drain" request (or begin_drain(), the signal handler's entry point)
// stops the daemon *gracefully*: listeners close immediately, open
// conversations keep being served — new runs inside them answer a
// "draining"-coded error — and the server waits for in-flight runs to
// finish.  At Options::drain_ms past the drain start, still-running work is
// cancelled (those runs answer "draining" too) and remaining conversations
// are read-half-closed so keep-alive clients move on; serve() then returns
// "" exactly like a clean shutdown.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "service/fleet.hpp"
#include "service/service.hpp"

namespace vlcsa::service {

/// One endpoint the server listens on.
struct ListenerSpec {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem socket path
  std::string host;  // kTcp: bind address (e.g. "127.0.0.1")
  int port = 0;      // kTcp: port; 0 = ephemeral (see SocketServer::tcp_port)

  static ListenerSpec unix_socket(std::string socket_path) {
    ListenerSpec spec;
    spec.kind = Kind::kUnix;
    spec.path = std::move(socket_path);
    return spec;
  }
  static ListenerSpec tcp(std::string bind_host, int bind_port) {
    ListenerSpec spec;
    spec.kind = Kind::kTcp;
    spec.host = std::move(bind_host);
    spec.port = bind_port;
    return spec;
  }
};

class SocketServer {
 public:
  struct Options {
    int workers = 2;        // warm connection pool size (clamped to >= 1)
    int max_pending = 128;  // reject when this many fds await a worker; 0 = unbounded
    int max_requests_per_conn = 0;  // close a conversation after this many; 0 = unbounded
    int idle_timeout_ms = 0;        // close a conversation idle this long; 0 = never
    int drain_ms = 30000;  // drain deadline: cancel still-running work after this
  };

  SocketServer(std::vector<ListenerSpec> listeners, ExperimentService& service,
               Options options);
  SocketServer(std::vector<ListenerSpec> listeners, ExperimentService& service);

  /// Convenience: a single Unix-socket listener (the historical shape).
  SocketServer(std::string socket_path, ExperimentService& service, int workers = 2);

  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on every configured endpoint (unlinking stale Unix
  /// sockets first).  Returns "" on success, else the error.
  [[nodiscard]] std::string listen_or_error();

  /// Runs the accept loop until a shutdown request (or request_stop) and
  /// drains the worker pool.  Returns "" on a clean stop, else the error.
  [[nodiscard]] std::string serve();

  /// Thread-safe external stop (e.g. from a signal handler's helper thread).
  void request_stop();

  /// Thread-safe graceful stop (idempotent; a no-op once stopping): flips
  /// the service into drain mode and makes serve() run the drain sequence
  /// described in the header comment.  SIGTERM handlers call this.
  void begin_drain();

  /// First Unix listener's path ("" when serving TCP only).
  [[nodiscard]] std::string socket_path() const;

  /// First TCP listener's bound port after listen_or_error() — resolves an
  /// ephemeral port request (port 0) to the real port.  0 when no TCP
  /// listener is configured.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  /// Accepted connections currently awaiting a worker (tests use this to
  /// drive the backlog-rejection path deterministically).
  [[nodiscard]] std::size_t pending_connections();

 private:
  void worker_loop();
  void handle_connection(int fd);

  std::vector<ListenerSpec> listeners_;
  ExperimentService& service_;
  Options options_;
  std::vector<int> listen_fds_;  // parallel to listeners_; -1 = not bound
  int tcp_port_ = 0;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  std::vector<int> active_;  // fds currently conversing with a worker
  bool stopping_ = false;
  bool draining_ = false;    // graceful drain under way (see begin_drain)
  std::chrono::steady_clock::time_point drain_start_{};
};

/// One client connection speaking the line protocol, over either transport.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to a Unix socket, retrying until `timeout_ms` elapses (covers
  /// the daemon's startup race in scripts: start vlcsa_serve &, connect
  /// immediately).  Returns "" on success, else the error.
  [[nodiscard]] std::string connect_or_error(const std::string& socket_path,
                                             int timeout_ms = 0);

  /// Connects to a TCP endpoint, with the same startup-race retry loop.
  /// Returns "" on success, else the error.
  [[nodiscard]] std::string connect_tcp_or_error(const std::string& host, int port,
                                                 int timeout_ms = 0);

  /// Arms an I/O deadline on the connected socket (SO_RCVTIMEO/SO_SNDTIMEO):
  /// a roundtrip blocked longer than this on a silent server fails with a
  /// "timed out" error instead of hanging forever.  0 disarms.  Returns ""
  /// on success, else the error.
  [[nodiscard]] std::string set_io_timeout_ms(int timeout_ms);

  /// Sends one request line and reads one response line (without trailing
  /// newline) into `response`.  Returns "" on success, else the error.
  [[nodiscard]] std::string roundtrip(const std::string& request_line, std::string& response);

  /// Reads one response line without sending anything — what a client does
  /// when the server speaks first, e.g. the one-line "overloaded" rejection
  /// a full-backlog connection receives.  Returns "" on success.
  [[nodiscard]] std::string read_response(std::string& response);

  /// Drops the current connection (if any) and redials the endpoint the last
  /// connect_* call configured, reapplying the I/O timeout.  Works even when
  /// that connect failed — the endpoint is remembered before dialing, so a
  /// client can be pointed at a daemon that is not up yet and retry in.
  [[nodiscard]] std::string reconnect();

  /// roundtrip(), plus fleet-grade resilience: on a transport error, a
  /// refused connection, or an "overloaded"/"draining"-coded error reply,
  /// drops the connection, sleeps one backoff step and retries, up to
  /// `policy.attempts` retries (0 = plain roundtrip).  Each retry increments
  /// `*retries_out` when given.  Returns "" when a response line arrived —
  /// after exhausted retries that line may still be the refusal reply, so
  /// callers inspect `response` as usual; a non-empty return means transport
  /// failure even after retrying.
  [[nodiscard]] std::string roundtrip_with_retry(const std::string& request_line,
                                                 std::string& response,
                                                 const fleet::RetryPolicy& policy,
                                                 std::uint64_t* retries_out = nullptr);

 private:
  enum class Endpoint { kNone, kUnix, kTcp };

  /// Closes fd_ and clears the line buffer (half-received bytes must never
  /// leak into the next connection's framing).
  void close_connection();

  int fd_ = -1;
  std::string buffer_;  // bytes received past the last complete line

  // The last-dialed endpoint, for reconnect()/roundtrip_with_retry.
  Endpoint endpoint_ = Endpoint::kNone;
  std::string unix_path_;
  std::string tcp_host_;
  int tcp_port_ = 0;
  int connect_timeout_ms_ = 0;
  int io_timeout_ms_ = 0;  // reapplied after every reconnect; 0 = none
};

}  // namespace vlcsa::service
