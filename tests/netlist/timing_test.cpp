#include "netlist/timing.hpp"

#include <gtest/gtest.h>

namespace vlcsa::netlist {
namespace {

TEST(CellLibrary, StandardValuesAreSane) {
  const auto& lib = CellLibrary::standard();
  EXPECT_EQ(lib.params(GateKind::kNot).effort, 1.0);
  EXPECT_EQ(lib.params(GateKind::kNot).parasitic, 1.0);
  EXPECT_GT(lib.params(GateKind::kXor2).area, lib.params(GateKind::kNand2).area);
  EXPECT_EQ(lib.area(GateKind::kInput), 0.0);
  EXPECT_EQ(lib.delay(GateKind::kNot, 3.0), 1.0 + 3.0);  // p + g*h
}

TEST(Timing, SingleGateDelay) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal y = nl.not_(a);
  nl.add_output("y", y);
  const auto t = analyze_timing(nl);
  const auto& lib = CellLibrary::standard();
  // input driver: p=2 g=2, fanout 1 -> arrival 4; NOT driving 1 load: +2.
  const double expected = lib.input_driver().parasitic + lib.input_driver().effort * 1.0 +
                          lib.delay(GateKind::kNot, 1.0);
  EXPECT_DOUBLE_EQ(t.critical_delay, expected);
}

TEST(Timing, ChainDelayAccumulates) {
  Netlist nl;
  Signal cur = nl.add_input("a");
  for (int i = 0; i < 10; ++i) cur = nl.not_(cur);
  nl.add_output("y", cur);
  const auto t = analyze_timing(nl);
  // Driver (fanout 1): 4.  Ten inverters each driving 1 load: 2 each.
  EXPECT_DOUBLE_EQ(t.critical_delay, 4.0 + 10 * 2.0);
  EXPECT_EQ(t.critical_path.size(), 11u);  // input + 10 inverters
}

TEST(Timing, FanoutSlowsTheDriver) {
  Netlist small, big;
  {
    const Signal a = small.add_input("a");
    small.add_output("y", small.not_(a));
  }
  {
    const Signal a = big.add_input("a");
    const Signal n = big.not_(a);
    for (int i = 0; i < 8; ++i) big.add_output("y" + std::to_string(i), big.not_(n));
  }
  const double d_small = analyze_timing(small).critical_delay;
  const double d_big = analyze_timing(big).critical_delay;
  EXPECT_GT(d_big, d_small);
}

TEST(Timing, PrimaryInputFanoutCostsTime) {
  // The paper calls out "large fanout at the primary inputs" as a cost of
  // per-bit speculation; the model must charge for it.
  Netlist lean, fat;
  {
    const Signal a = lean.add_input("a");
    lean.add_output("y", lean.not_(a));
  }
  {
    const Signal a = fat.add_input("a");
    for (int i = 0; i < 16; ++i) fat.add_output("y" + std::to_string(i), fat.not_(a));
  }
  EXPECT_GT(analyze_timing(fat).critical_delay, analyze_timing(lean).critical_delay);
}

TEST(Timing, GroupDelaysAreTrackedSeparately) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  Signal slow = a;
  for (int i = 0; i < 20; ++i) slow = nl.not_(slow);
  nl.add_output("fast", nl.not_(a), "fast_grp");
  nl.add_output("slow", slow, "slow_grp");
  const auto t = analyze_timing(nl);
  EXPECT_LT(t.delay_of("fast_grp"), t.delay_of("slow_grp"));
  EXPECT_DOUBLE_EQ(t.critical_delay, t.delay_of("slow_grp"));
  EXPECT_EQ(t.delay_of("missing"), 0.0);
}

TEST(Timing, CriticalPathEndsAtWorstOutput) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  Signal slow = nl.and_(a, b);
  for (int i = 0; i < 5; ++i) slow = nl.not_(slow);
  nl.add_output("y", slow);
  const auto t = analyze_timing(nl);
  ASSERT_FALSE(t.critical_path.empty());
  EXPECT_EQ(t.critical_path.back(), nl.outputs()[0].signal);
  // Path arrivals must be non-decreasing.
  for (std::size_t i = 1; i < t.critical_path.size(); ++i) {
    EXPECT_GE(t.arrival[t.critical_path[i].id], t.arrival[t.critical_path[i - 1].id]);
  }
}

TEST(Timing, ConstantsArriveAtZero) {
  Netlist nl;
  nl.add_output("y", nl.constant(true));
  const auto t = analyze_timing(nl);
  EXPECT_DOUBLE_EQ(t.critical_delay, 0.0);
}

TEST(Area, SumsCellAreas) {
  Netlist nl;
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("x", nl.xor_(a, b));   // area 4
  nl.add_output("n", nl.nand_(a, b));  // area 2
  const auto r = analyze_area(nl);
  EXPECT_DOUBLE_EQ(r.total, 6.0);
  EXPECT_EQ(r.logic_gates, 2u);
  EXPECT_EQ(r.kind_counts[static_cast<int>(GateKind::kXor2)], 1u);
}

TEST(Area, InputsAndConstantsAreFree) {
  Netlist nl;
  nl.add_input("a");
  nl.constant(true);
  const auto r = analyze_area(nl);
  EXPECT_DOUBLE_EQ(r.total, 0.0);
  EXPECT_EQ(r.logic_gates, 0u);
}

}  // namespace
}  // namespace vlcsa::netlist
