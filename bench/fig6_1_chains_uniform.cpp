// Fig 6.1 — carry-chain length statistics for unsigned uniform inputs on a
// 32-bit adder (paper: 10^6 additions; default here 10^6, override with
// --samples=N).  Runs the registry's "fig6.1/uniform-unsigned" experiment on
// the parallel sharded engine (--threads=N).

#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.1",
                        "Carry-chain length statistics, unsigned uniform inputs, 32-bit "
                        "adder, " + std::to_string(args.samples) + " additions.");

  const auto* experiment = harness::find_chain_profile_experiment("fig6.1/uniform-unsigned");
  if (experiment == nullptr) {
    std::cerr << "fig6.1/uniform-unsigned missing from the registry\n";
    return 1;
  }
  const auto profiler =
      harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: geometric decay (P(len = L | chain) = 2^-L), chains\n"
               "concentrated at short lengths — the premise of speculation (Ch. 3).\n";
  return 0;
}
