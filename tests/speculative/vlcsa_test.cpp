#include "speculative/vlcsa.hpp"

#include <gtest/gtest.h>

#include <random>

#include "arith/distributions.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;

TEST(VlcsaModel, EmittedResultIsAlwaysExact) {
  // The "reliable" in the title: across both variants and adversarial
  // inputs, what VLCSA emits (1 or 2 cycles) equals the true sum.
  for (const auto variant : {ScsaVariant::kScsa1, ScsaVariant::kScsa2}) {
    const VlcsaModel model(VlcsaConfig{64, 9, variant});
    arith::GaussianTwosSource gauss(64, arith::GaussianParams{0.0, 1048576.0});
    arith::UniformUnsignedSource uniform(64);
    vlcsa::arith::BlockRng rng(11);
    for (int i = 0; i < 20000; ++i) {
      const auto [a, b] = (i % 2 == 0) ? gauss.next(rng) : uniform.next(rng);
      const auto step = model.step(a, b);
      ASSERT_EQ(step.result, step.eval.exact);
      ASSERT_EQ(step.cout, step.eval.exact_cout);
      ASSERT_EQ(step.cycles, step.stalled ? 2 : 1);
    }
  }
}

TEST(VlcsaModel, Variant1StallsExactlyOnErr0) {
  const VlcsaModel model(VlcsaConfig{32, 6, ScsaVariant::kScsa1});
  vlcsa::arith::BlockRng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const auto a = ApInt::random(32, rng);
    const auto b = ApInt::random(32, rng);
    const auto step = model.step(a, b);
    ASSERT_EQ(step.stalled, step.eval.err0);
  }
}

TEST(VlcsaModel, Variant2StallsOnlyWhenBothFlagsRaise) {
  const VlcsaModel model(VlcsaConfig{32, 6, ScsaVariant::kScsa2});
  vlcsa::arith::BlockRng rng(17);
  int one_cycle_saves = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto a = ApInt::random(32, rng);
    const auto b = ApInt::random(32, rng);
    const auto step = model.step(a, b);
    ASSERT_EQ(step.stalled, step.eval.err0 && step.eval.err1);
    if (step.eval.err0 && !step.eval.err1) ++one_cycle_saves;
  }
  // The whole point of VLCSA 2: some ERR0 cases are answered in one cycle.
  EXPECT_GT(one_cycle_saves, 0);
}

TEST(VlcsaModel, Variant2NeverStallsMoreThanVariant1) {
  // Stall(v2) = ERR0 & ERR1 implies Stall(v1) = ERR0: v2's stall set is a
  // subset, so its average latency can only be equal or better.
  const VlcsaModel v1(VlcsaConfig{64, 10, ScsaVariant::kScsa1});
  const VlcsaModel v2(VlcsaConfig{64, 10, ScsaVariant::kScsa2});
  vlcsa::arith::BlockRng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const auto a = ApInt::random(64, rng);
    const auto b = ApInt::random(64, rng);
    const bool s1 = v1.step(a, b).stalled;
    const bool s2 = v2.step(a, b).stalled;
    if (s2) {
      ASSERT_TRUE(s1);
    }
  }
}

TEST(VlcsaModel, GaussianStallRateGapBetweenVariants) {
  // Table 7.1 vs 7.2 in miniature: on 2's-complement Gaussian inputs,
  // VLCSA 1 stalls on ~25% of additions (long sign chains), VLCSA 2 on far
  // fewer.
  const int n = 64, k = 14;
  arith::GaussianTwosSource source(n, arith::GaussianParams{0.0, 4294967296.0});
  const VlcsaModel v1(VlcsaConfig{n, k, ScsaVariant::kScsa1});
  const VlcsaModel v2(VlcsaConfig{n, k, ScsaVariant::kScsa2});
  vlcsa::arith::BlockRng r1(23), r2(23);
  LatencyStats s1, s2;
  for (int i = 0; i < 20000; ++i) {
    const auto [a1, b1] = source.next(r1);
    s1.record(v1.step(a1, b1));
    s2.record(v2.step(a1, b1));
  }
  EXPECT_NEAR(s1.stall_rate(), 0.25, 0.03);
  EXPECT_LT(s2.stall_rate(), 0.01);
  EXPECT_LT(s2.average_cycles(), s1.average_cycles());
}

TEST(LatencyStats, AverageCyclesFollowsEq52) {
  // T_ave = (1 + P_stall) * T_clk: with cycles in {1,2} this is exact.
  LatencyStats stats;
  VlcsaStep fast;
  fast.cycles = 1;
  fast.stalled = false;
  VlcsaStep slow;
  slow.cycles = 2;
  slow.stalled = true;
  for (int i = 0; i < 99; ++i) stats.record(fast);
  stats.record(slow);
  EXPECT_DOUBLE_EQ(stats.stall_rate(), 0.01);
  EXPECT_DOUBLE_EQ(stats.average_cycles(), 1.01);
  EXPECT_DOUBLE_EQ(stats.average_cycles(), 1.0 + stats.stall_rate());
}

TEST(LatencyStats, EmptyIsZero) {
  const LatencyStats stats;
  EXPECT_DOUBLE_EQ(stats.stall_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.average_cycles(), 0.0);
}

}  // namespace
}  // namespace vlcsa::spec
