#pragma once
// Gate-level netlist IR.
//
// A Netlist is an append-only DAG of gates.  Signals are indices into the
// gate array; a gate may only reference signals created before it, so the
// creation order is a topological order — the simulator and the static
// timing analyzer exploit this and never need an explicit sort.
//
// Primary outputs are named ports that may carry an *output group* label
// ("spec", "detect", "recovery", ...).  Per-group arrival times are what the
// paper's variable-latency delay figures (7.4, 7.8, 7.10) report.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/gate.hpp"

namespace vlcsa::netlist {

/// Handle to a net (the output of one gate).
struct Signal {
  std::uint32_t id = kInvalidId;

  static constexpr std::uint32_t kInvalidId = 0xffffffffu;

  [[nodiscard]] constexpr bool valid() const { return id != kInvalidId; }
  [[nodiscard]] constexpr bool operator==(const Signal&) const = default;
  [[nodiscard]] constexpr auto operator<=>(const Signal&) const = default;
};

struct Gate {
  GateKind kind = GateKind::kConst0;
  std::array<Signal, 3> fanin{};  // unused pins are invalid
};

/// A named primary input or output port.
struct Port {
  std::string name;
  Signal signal;
  std::string group;  // outputs only; "" = default group
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- construction -------------------------------------------------------

  /// Adds a primary input port.
  Signal add_input(std::string name);

  /// Returns the (cached) constant signal.
  Signal constant(bool value);

  /// Adds a gate; fanins must be existing signals of this netlist.
  Signal make_gate(GateKind kind, Signal a = {}, Signal b = {}, Signal c = {});

  Signal buf(Signal x) { return make_gate(GateKind::kBuf, x); }
  Signal not_(Signal x) { return make_gate(GateKind::kNot, x); }
  Signal and_(Signal x, Signal y) { return make_gate(GateKind::kAnd2, x, y); }
  Signal or_(Signal x, Signal y) { return make_gate(GateKind::kOr2, x, y); }
  Signal nand_(Signal x, Signal y) { return make_gate(GateKind::kNand2, x, y); }
  Signal nor_(Signal x, Signal y) { return make_gate(GateKind::kNor2, x, y); }
  Signal xor_(Signal x, Signal y) { return make_gate(GateKind::kXor2, x, y); }
  Signal xnor_(Signal x, Signal y) { return make_gate(GateKind::kXnor2, x, y); }
  /// sel ? d1 : d0
  Signal mux(Signal sel, Signal d0, Signal d1) { return make_gate(GateKind::kMux2, sel, d0, d1); }

  /// Balanced AND tree of AND2 gates; empty input yields constant 1.
  Signal and_reduce(const std::vector<Signal>& xs);
  /// Balanced OR tree of OR2 gates; empty input yields constant 0.
  Signal or_reduce(const std::vector<Signal>& xs);

  /// Reduction trees built from alternating NAND2/NOR2 levels (DeMorgan
  /// pairing) — what a delay-driven synthesis run produces instead of
  /// AND2/OR2 chains.  Same function, roughly half the per-level delay.
  /// Used by the error-detection blocks (Figs 5.1/6.7).
  Signal and_reduce_fast(const std::vector<Signal>& xs);
  Signal or_reduce_fast(const std::vector<Signal>& xs);

  /// Registers a primary output.
  void add_output(std::string name, Signal s, std::string group = "");

  // ---- inspection ---------------------------------------------------------

  [[nodiscard]] std::uint32_t num_gates() const { return static_cast<std::uint32_t>(gates_.size()); }
  [[nodiscard]] const Gate& gate(Signal s) const { return gates_[s.id]; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<Port>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Port>& outputs() const { return outputs_; }

  /// Looks up an input port by name.
  [[nodiscard]] std::optional<Signal> find_input(const std::string& name) const;
  /// Looks up an output port by name.
  [[nodiscard]] std::optional<Signal> find_output(const std::string& name) const;

  /// Number of logic gates (excludes inputs and constants).
  [[nodiscard]] std::uint32_t logic_gate_count() const;

  /// Per-kind gate histogram indexed by static_cast<int>(GateKind).
  [[nodiscard]] std::array<std::uint32_t, kNumGateKinds> kind_histogram() const;

  /// Fanout count of every signal (number of gate pins it drives; primary
  /// outputs add one each).
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Largest fanout among primary inputs (the paper flags PI fanout as a
  /// weakness of per-bit speculation).
  [[nodiscard]] std::uint32_t max_input_fanout() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  Signal const0_{};
  Signal const1_{};
};

}  // namespace vlcsa::netlist
