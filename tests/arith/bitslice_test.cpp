// Tests for the bit-sliced batch layer: the 64x64 bit-matrix transpose, the
// ApInt <-> bit-plane conversions, the word-level Kogge-Stone prefix, and
// the OperandSource::fill_batch stream contract (fill_batch must consume
// the RNG exactly like 64 next() calls and produce the same samples — the
// foundation of the batched pipeline's bit-identical-counters guarantee).

#include "arith/bitslice.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>

#include "arith/apint.hpp"
#include "arith/distributions.hpp"
#include "arith/planeops.hpp"

namespace vlcsa::arith {
namespace {

TEST(Transpose64x64Test, SingleBitLandsTransposed) {
  for (const auto& [r, c] : {std::pair{0, 0}, {0, 63}, {63, 0}, {3, 5}, {31, 32}, {40, 17}}) {
    std::uint64_t block[64] = {};
    block[r] = std::uint64_t{1} << c;
    transpose_64x64(block);
    for (int row = 0; row < 64; ++row) {
      EXPECT_EQ(block[row], row == c ? std::uint64_t{1} << r : 0)
          << "bit (" << r << "," << c << "), row " << row;
    }
  }
}

TEST(Transpose64x64Test, DoubleTransposeIsIdentity) {
  vlcsa::arith::BlockRng rng(1);
  std::uint64_t block[64], orig[64];
  for (int i = 0; i < 64; ++i) orig[i] = block[i] = rng();
  transpose_64x64(block);
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], orig[i]);
}

TEST(Transpose64x64Test, MatchesNaiveBitGather) {
  vlcsa::arith::BlockRng rng(2);
  std::uint64_t block[64];
  for (auto& row : block) row = rng();
  std::uint64_t expected[64] = {};
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      expected[c] |= ((block[r] >> c) & 1) << r;
    }
  }
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], expected[i]);
}

class TransposeToPlanesTest : public ::testing::TestWithParam<int> {};

TEST_P(TransposeToPlanesTest, PlanesMatchSampleBits) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(3);
  std::vector<ApInt> samples;
  for (int j = 0; j < 64; ++j) samples.push_back(ApInt::random(width, rng));
  std::vector<std::uint64_t> planes(static_cast<std::size_t>(width));
  transpose_to_planes(samples.data(), 64, width, planes.data());
  for (int bit = 0; bit < width; ++bit) {
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ((planes[static_cast<std::size_t>(bit)] >> j) & 1,
                static_cast<std::uint64_t>(samples[static_cast<std::size_t>(j)].bit(bit)))
          << "bit " << bit << " lane " << j;
    }
  }
}

TEST_P(TransposeToPlanesTest, ShortCountZeroPadsHighLanes) {
  const int width = GetParam();
  vlcsa::arith::BlockRng rng(4);
  std::vector<ApInt> samples;
  for (int j = 0; j < 10; ++j) samples.push_back(ApInt::random(width, rng));
  std::vector<std::uint64_t> planes(static_cast<std::size_t>(width), ~std::uint64_t{0});
  transpose_to_planes(samples.data(), 10, width, planes.data());
  for (int bit = 0; bit < width; ++bit) {
    EXPECT_EQ(planes[static_cast<std::size_t>(bit)] >> 10, 0u) << "bit " << bit;
  }
  EXPECT_EQ(plane_lane(planes.data(), width, 3), samples[3]);
}

INSTANTIATE_TEST_SUITE_P(Widths, TransposeToPlanesTest,
                         ::testing::Values(1, 13, 63, 64, 65, 128, 130));

TEST(BitSlicedBatchTest, LoadLaneRoundtrip) {
  const int width = 100;
  for (const int lane_words : {1, 2, 4}) {
    vlcsa::arith::BlockRng rng(5);
    std::vector<ApInt> a, b;
    for (int j = 0; j < 64 * lane_words; ++j) {
      a.push_back(ApInt::random(width, rng));
      b.push_back(ApInt::random(width, rng));
    }
    BitSlicedBatch batch(width, lane_words);
    ASSERT_EQ(batch.lanes(), 64 * lane_words);
    batch.load(a, b);
    for (int j = 0; j < batch.lanes(); ++j) {
      const auto [la, lb] = batch.lane(j);
      ASSERT_EQ(la, a[static_cast<std::size_t>(j)]) << "W " << lane_words << " lane " << j;
      ASSERT_EQ(lb, b[static_cast<std::size_t>(j)]) << "W " << lane_words << " lane " << j;
    }
  }
}

TEST(BitSlicedBatchTest, LaneAccessorRejectsOutOfRangeLanes) {
  BitSlicedBatch batch(8, 2);
  EXPECT_THROW((void)batch.lane(-1), std::invalid_argument);
  EXPECT_THROW((void)batch.lane(128), std::invalid_argument);
  EXPECT_NO_THROW((void)batch.lane(127));
}

TEST(BitSlicedBatchTest, PlaneStorageIsCacheLineAligned) {
  BitSlicedBatch batch(130, 4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(batch.a()) % planeops::kPlaneAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(batch.b()) % planeops::kPlaneAlignment, 0u);
}

TEST(BitSlicedBatchTest, PartialLoadZeroPadsHighLanes) {
  const int width = 40;
  vlcsa::arith::BlockRng rng(8);
  std::vector<ApInt> a, b;
  for (int j = 0; j < 70; ++j) {  // straddles the first lane-word boundary
    a.push_back(ApInt::random(width, rng));
    b.push_back(ApInt::random(width, rng));
  }
  BitSlicedBatch batch(width, 2);
  batch.load(a, b);
  for (int j = 0; j < 70; ++j) {
    ASSERT_EQ(batch.lane(j).first, a[static_cast<std::size_t>(j)]) << "lane " << j;
  }
  for (int j = 70; j < batch.lanes(); ++j) {
    ASSERT_EQ(batch.lane(j).first, ApInt(width)) << "lane " << j;
    ASSERT_EQ(batch.lane(j).second, ApInt(width)) << "lane " << j;
  }
  EXPECT_THROW(batch.load(std::vector<ApInt>(129, ApInt(width)),
                          std::vector<ApInt>(129, ApInt(width))),
               std::invalid_argument);
}

TEST(BitSlicedBatchTest, LoadRejectsMismatchedCounts) {
  BitSlicedBatch batch(8);
  std::vector<ApInt> a(3, ApInt(8)), b(2, ApInt(8));
  EXPECT_THROW(batch.load(a, b), std::invalid_argument);
}

class KoggeStoneTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KoggeStoneTest, LaneCarriesMatchApIntAdd) {
  const auto [width, lane_words] = GetParam();
  vlcsa::arith::BlockRng rng(6);
  std::vector<ApInt> a, b;
  for (int j = 0; j < 64 * lane_words; ++j) {
    a.push_back(ApInt::random(width, rng));
    b.push_back(ApInt::random(width, rng));
  }
  BitSlicedBatch batch(width, lane_words);
  batch.load(a, b);
  const std::size_t planes =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(lane_words);
  planeops::PlaneVec g(planes), p(planes), carry(planes), scratch;
  planeops::bulk_gp(batch.a(), batch.b(), g.data(), p.data(), planes);
  kogge_stone_carries(g.data(), p.data(), width, lane_words, carry.data(), scratch);
  for (int j = 0; j < batch.lanes(); ++j) {
    const auto exact = ApInt::add(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    const ApInt& aj = a[static_cast<std::size_t>(j)];
    const ApInt& bj = b[static_cast<std::size_t>(j)];
    const int lane_word = j / kBatchLanes;
    const int lane_bit = j % kBatchLanes;
    for (int i = 0; i < width; ++i) {
      // Carry out of bit i == carry into bit i+1 == p(i+1) ^ sum(i+1); the
      // top bit's carry-out is the reported carry_out.
      const bool expected =
          i == width - 1 ? exact.carry_out
                         : (aj.bit(i + 1) ^ bj.bit(i + 1) ^ exact.sum.bit(i + 1));
      const std::uint64_t word =
          carry[static_cast<std::size_t>(i) * static_cast<std::size_t>(lane_words) +
                static_cast<std::size_t>(lane_word)];
      ASSERT_EQ((word >> lane_bit) & 1, static_cast<std::uint64_t>(expected))
          << "width " << width << " W " << lane_words << " lane " << j << " bit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WidthsByLaneWords, KoggeStoneTest,
                         ::testing::Combine(::testing::Values(1, 2, 7, 64, 65, 130),
                                            ::testing::Values(1, 2, 4)));

// fill_batch contract: same samples, same RNG consumption as lanes() x next().
class FillBatchTest
    : public ::testing::TestWithParam<std::tuple<InputDistribution, int, int>> {};

TEST_P(FillBatchTest, MatchesScalarStreamAndRngState) {
  const auto [dist, width, lane_words] = GetParam();
  const auto proto = make_source(dist, width);

  vlcsa::arith::BlockRng rng_batch(99), rng_scalar(99);
  BitSlicedBatch batch(width, lane_words);
  const auto batch_source = proto->clone();
  batch_source->fill_batch(rng_batch, batch);

  const auto scalar_source = proto->clone();
  for (int j = 0; j < batch.lanes(); ++j) {
    const auto [a, b] = scalar_source->next(rng_scalar);
    const auto [la, lb] = batch.lane(j);
    ASSERT_EQ(la, a) << proto->name() << " width " << width << " lane " << j;
    ASSERT_EQ(lb, b) << proto->name() << " width " << width << " lane " << j;
  }
  // Identical consumption: the next raw draw must agree.
  EXPECT_EQ(rng_batch(), rng_scalar())
      << proto->name() << " width " << width << " W " << lane_words;
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsByWidthByLaneWords, FillBatchTest,
    ::testing::Combine(::testing::Values(InputDistribution::kUniformUnsigned,
                                         InputDistribution::kUniformTwos,
                                         InputDistribution::kGaussianUnsigned,
                                         InputDistribution::kGaussianTwos),
                       ::testing::Values(12, 32, 64, 128),
                       ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace vlcsa::arith
