#pragma once
// Error-magnitude analytics for the bare speculative adder (Ch. 3.3 /
// Fig 3.6): when SCSA errs, how large is the error relative to the correct
// result?  The paper argues the magnitude is low because a wrong window
// carry shifts the whole result by one window weight instead of flipping an
// arbitrary output bit.

#include <array>
#include <cstdint>

#include "arith/distributions.hpp"
#include "speculative/scsa.hpp"

namespace vlcsa::spec {

struct ErrorMagnitudeStats {
  std::uint64_t samples = 0;
  std::uint64_t errors = 0;
  double mean_relative_error = 0.0;  // mean of |exact-spec| / |exact| over errors
  double max_relative_error = 0.0;
  /// Histogram of floor(log2(|exact - spec| as unsigned)) over errors;
  /// index clamps to 63.
  std::array<std::uint64_t, 64> magnitude_log2{};

  [[nodiscard]] double error_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(errors) / static_cast<double>(samples);
  }
};

/// Measures S*,0 error magnitudes over a distribution.  Relative error uses
/// the unsigned interpretation (the paper's Ch. 3.3 convention); exact-zero
/// results with an error count as relative error 1.
[[nodiscard]] ErrorMagnitudeStats measure_error_magnitude(const ScsaConfig& config,
                                                          arith::OperandSource& source,
                                                          std::uint64_t samples,
                                                          std::uint64_t seed);

}  // namespace vlcsa::spec
