// Table 7.2 — experimental and nominal error rates of VLCSA 2 for
// 2's-complement Gaussian inputs (mu = 0, sigma = 2^32).  Paper reports
// 0.01% for both columns at every width: the dual-speculation + ERR1 design
// absorbs the sign-extension chains VLCSA 1 stalls on.
//
// Rows come from the "table7.2/" experiments in the registry and run on the
// parallel sharded engine (--threads=N; results are thread-count-invariant).

#include <iostream>

#include "harness/experiments.hpp"
#include "harness/report.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 200000);
  harness::print_banner(std::cout, "Table 7.2",
                        "VLCSA 2 error rates, 2's-complement Gaussian inputs "
                        "(mu=0, sigma=2^32), " + std::to_string(args.samples) +
                            " samples per row.  Paper: 0.01% everywhere.");

  harness::Table table({"adder width", "window size", "P_err (Monte Carlo)",
                        "P_err (ERR0=1, ERR1=1)", "avg cycles"});
  for (const auto* experiment : harness::error_rate_experiments_with_prefix("table7.2/")) {
    const auto result =
        harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
    table.add_row({std::to_string(experiment->width), std::to_string(experiment->window),
                   harness::fmt_pct(result.either_wrong_rate()),
                   harness::fmt_pct(result.nominal_rate()),
                   harness::fmt_fixed(result.average_cycles(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: ~0.01-0.05% in both columns, a ~2500x reduction over\n"
               "Table 7.1 on identical inputs (Ch. 7.3).\n";
  return 0;
}
