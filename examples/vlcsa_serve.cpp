// vlcsa_serve — the experiment service daemon (src/service): a long-running
// front end over the experiment registry with a two-tier result cache, so
// repeated table/figure reproductions and wide adder-comparison sweeps stop
// paying cold-start and re-sampling costs.  Speaks newline-delimited JSON
// over a Unix domain socket, TCP, or stdin/stdout with --stdio; --socket and
// --tcp may be combined (one cache, one worker pool, both transports);
// protocol reference in DESIGN.md, operational runbook in docs/OPERATIONS.md.
//
//   $ ./build/examples/vlcsa_serve --socket=/tmp/vlcsa.sock --cache-dir=.vlcsa-cache &
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=run
//         --experiment=table7.1/n64 --samples=200000
//   $ ./build/examples/vlcsa_serve --tcp=127.0.0.1:7411 --cache-dir=.vlcsa-cache &
//   $ echo '{"request": "run", "experiment": "table7.1/n64"}'
//         | ./build/examples/vlcsa_serve --stdio --cache-dir=.vlcsa-cache

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace vlcsa;

namespace {

void print_usage() {
  std::cout << "usage: vlcsa_serve [--socket=PATH] [--tcp=HOST:PORT] [--stdio]\n"
               "                   [--cache-dir=DIR] [--cache-max-bytes=N]\n"
               "                   [--memory-entries=N] [--threads=T] [--workers=N]\n"
               "                   [--timeout-ms=T] [--max-pending=N]\n"
               "                   [--trace-log=FILE] [--access-log=FILE]\n"
               "                   [--access-log-max-bytes=N] [--slow-ms=T]\n"
               "  --socket           Unix domain socket path to listen on\n"
               "  --tcp              TCP endpoint to listen on (port 0 = ephemeral;\n"
               "                     the bound port is printed on stderr); may be\n"
               "                     combined with --socket\n"
               "  --stdio            serve stdin/stdout instead of a socket (one-shot\n"
               "                     pipelines and tests)\n"
               "  --cache-dir        on-disk result cache directory (created if absent;\n"
               "                     default: no disk tier)\n"
               "  --cache-max-bytes  disk-tier byte cap: stores evict the oldest record\n"
               "                     files until the tier fits (default 0 = unbounded)\n"
               "  --memory-entries   in-memory LRU capacity (default 64; 0 disables)\n"
               "  --threads          engine threads per experiment run, 0 = all\n"
               "                     hardware threads (default 0)\n"
               "  --workers          warm connection-worker pool size (default 2)\n"
               "  --timeout-ms       default per-run deadline; a run past it is\n"
               "                     cancelled and answers a timeout error (default 0 =\n"
               "                     none; requests may override with \"timeout_ms\")\n"
               "  --max-pending      reject new connections with an \"overloaded\" error\n"
               "                     once this many await a worker (default 128; 0 =\n"
               "                     queue unboundedly)\n"
               "  --trace-log        JSONL request-trace sink: one line per request with\n"
               "                     its span tree (and engine profile on cache misses)\n"
               "  --access-log       JSONL access-log sink: one compact line per request\n"
               "                     (timestamp, trace id, type, cache, latency, code)\n"
               "  --access-log-max-bytes  rotate the access log to FILE.1 when a write\n"
               "                     would push it past N bytes (default 0 = unbounded)\n"
               "  --slow-ms          flag requests at/over this wall time with\n"
               "                     \"slow\": true in the logs (default 0 = never)\n";
}

/// Splits "HOST:PORT" on the last ':' (tolerates IPv6 hosts like ::1:7411
/// only via the last-colon rule; bracketed forms are not needed here).
bool parse_host_port(const std::string& value, std::string& host, int& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) return false;
  host = value.substr(0, colon);
  return harness::parse_nonnegative_int(value.substr(colon + 1), port) && port <= 65535;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;  // -1 = --tcp not given (0 is a valid ephemeral request)
  bool stdio = false;
  bool show_help = false;
  service::ServiceConfig config;
  service::SocketServer::Options server_options;
  int memory_entries = 64;
  bool workers_given = false;
  bool max_pending_given = false;

  const std::vector<harness::ValueFlag> flags = {
      {"--socket",
       [&](const std::string& value) {
         if (value.empty()) return false;
         socket_path = value;
         return true;
       }},
      {"--tcp",
       [&](const std::string& value) { return parse_host_port(value, tcp_host, tcp_port); }},
      {"--cache-dir",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.cache_dir = value;
         return true;
       }},
      {"--cache-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, config.cache_max_bytes);
       }},
      {"--memory-entries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, memory_entries);
       }},
      {"--threads",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.threads);
       }},
      {"--workers",
       [&](const std::string& value) {
         workers_given = true;
         return harness::parse_nonnegative_int(value, server_options.workers) &&
                server_options.workers > 0;
       }},
      {"--timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.timeout_ms);
       }},
      {"--max-pending",
       [&](const std::string& value) {
         max_pending_given = true;
         return harness::parse_nonnegative_int(value, server_options.max_pending);
       }},
      {"--trace-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.trace_log = value;
         return true;
       }},
      {"--access-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.access_log = value;
         return true;
       }},
      {"--access-log-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, config.access_log_max_bytes);
       }},
      {"--slow-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.slow_ms);
       }},
  };

  // --stdio and --help take no value, so they sit outside the ValueFlag set.
  std::vector<const char*> value_args;
  value_args.push_back(argc > 0 ? argv[0] : "vlcsa_serve");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--help" || arg == "-h") {
      show_help = true;
    } else {
      value_args.push_back(argv[i]);
    }
  }
  if (show_help) {
    print_usage();
    return 0;
  }
  if (const std::string error = harness::parse_value_flags(
          static_cast<int>(value_args.size()), value_args.data(), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  const bool tcp = tcp_port >= 0;
  if (!stdio && socket_path.empty() && !tcp) {
    std::cerr << "error: one of --socket=PATH, --tcp=HOST:PORT or --stdio is required\n";
    print_usage();
    return 2;
  }
  if (stdio && (!socket_path.empty() || tcp)) {
    std::cerr << "error: --stdio is mutually exclusive with --socket/--tcp\n";
    print_usage();
    return 2;
  }
  if (config.cache_max_bytes != 0 && config.cache_dir.empty()) {
    // A silently dead cap would suggest bounded disk usage that isn't there.
    std::cerr << "error: --cache-max-bytes requires --cache-dir\n";
    print_usage();
    return 2;
  }
  if (config.access_log_max_bytes != 0 && config.access_log.empty()) {
    // A silently dead rotation cap would suggest bounded logs that aren't.
    std::cerr << "error: --access-log-max-bytes requires --access-log\n";
    print_usage();
    return 2;
  }
  if (config.slow_ms != 0 && config.trace_log.empty() && config.access_log.empty()) {
    // The slow flag only surfaces in log lines; without a sink it is dead.
    std::cerr << "error: --slow-ms requires --trace-log or --access-log\n";
    print_usage();
    return 2;
  }
  if (stdio && (workers_given || max_pending_given)) {
    // Stdio serving is one conversation on one stream; silently dead
    // --workers/--max-pending would suggest parallelism that isn't there.
    std::cerr << "error: --workers/--max-pending only apply to socket mode\n";
    print_usage();
    return 2;
  }
  config.memory_entries = static_cast<std::size_t>(memory_entries);

  service::ExperimentService service(config);
  if (const std::string& error = service.log_error(); !error.empty()) {
    // Refuse to serve without a requested log rather than silently dropping
    // the operator's observability.
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (stdio) {
    service::serve_stdio(std::cin, std::cout, service);
    return 0;
  }

  std::vector<service::ListenerSpec> listeners;
  if (!socket_path.empty()) {
    listeners.push_back(service::ListenerSpec::unix_socket(socket_path));
  }
  if (tcp) listeners.push_back(service::ListenerSpec::tcp(tcp_host, tcp_port));

  service::SocketServer server(std::move(listeners), service, server_options);
  if (const std::string error = server.listen_or_error(); !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cerr << "vlcsa_serve: listening on";
  if (!socket_path.empty()) std::cerr << " " << socket_path;
  if (tcp) std::cerr << " " << tcp_host << ":" << server.tcp_port();
  std::cerr << (config.cache_dir.empty() ? " (memory cache only)"
                                         : ", cache dir " + config.cache_dir)
            << "\n";
  if (const std::string error = server.serve(); !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  return 0;
}
