#include "harness/engine.hpp"

namespace vlcsa::harness {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

arith::BlockRng make_shard_rng(std::uint64_t seed, std::uint64_t shard_index) {
  // Same seed_seq construction as always (now shared via make_stream_rng);
  // BlockRng is sequence-identical to std::mt19937_64, so every shard stream
  // — and therefore every merged counter — is unchanged from the std era.
  return arith::make_stream_rng(seed, shard_index);
}

}  // namespace vlcsa::harness
