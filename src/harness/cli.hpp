#pragma once
// Command-line parsing for the adder_explorer front end, extracted into the
// library so the parser is unit-testable.  Parsing is strict: unknown flags,
// missing "=value" parts, non-numeric or out-of-range numbers, and bad enum
// values are all hard errors with a message naming the offending argument —
// a typo'd flag must never be silently ignored (it would quietly change
// which experiment ran).

#include <cstdint>
#include <string>

#include "harness/montecarlo.hpp"

namespace vlcsa::harness {

/// Everything the adder_explorer front end can be asked to do.
struct ExplorerOptions {
  // Mode flags (checked in this order by the front end).
  bool show_help = false;
  bool list_designs = false;
  bool list_experiments = false;

  // Netlist-building mode.
  std::string design = "kogge-stone";
  std::string verilog_path;  // --verilog=FILE
  int width = 64;
  int window = 0;  // 0 = sized for 0.01%
  int chain = 0;   // 0 = published VLSA chain length

  // Experiment mode.
  std::string experiment;  // --experiment=NAME
  std::string json_path;   // --json=FILE: machine-readable result record
  std::uint64_t samples = 0;  // 0 = the experiment's default
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = all hardware threads
  EvalPath path = EvalPath::kBatched;  // --batch=on|off
  bool path_explicit = false;  // --batch was given (vs defaulted) — lets the
                               // front end reject it where it cannot apply
};

/// Result of parsing an argv; `error` is empty on success.
struct ExplorerParse {
  ExplorerOptions options;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses adder_explorer arguments (argv[0] is skipped).  Never throws;
/// every malformed input is reported through `error`.
[[nodiscard]] ExplorerParse parse_explorer_args(int argc, const char* const* argv);

/// Strict full-string parses used by the CLI (exposed for testing): the
/// entire string must be a base-10 number in range, else false.
[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t& out);
[[nodiscard]] bool parse_nonnegative_int(const std::string& text, int& out);

}  // namespace vlcsa::harness
