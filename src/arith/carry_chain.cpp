#include "arith/carry_chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace vlcsa::arith {

std::vector<int> carry_chain_lengths(const ApInt& a, const ApInt& b) {
  const PropagateGenerate pg(a, b);
  const int n = a.width();
  std::vector<int> lengths;
  int i = 0;
  while (i < n) {
    if (pg.g.bit(i)) {
      int len = 1;
      int j = i + 1;
      while (j < n && pg.p.bit(j)) {
        ++len;
        ++j;
      }
      lengths.push_back(len);
      // The chain was absorbed at position j (kill or generate); a new
      // chain may start exactly there, so resume the scan at j.
      i = j;
    } else {
      ++i;
    }
  }
  return lengths;
}

int longest_carry_chain(const ApInt& a, const ApInt& b) {
  const auto lengths = carry_chain_lengths(a, b);
  return lengths.empty() ? 0 : *std::max_element(lengths.begin(), lengths.end());
}

CarryChainProfiler::CarryChainProfiler(int width, ChainMetric metric)
    : width_(width), metric_(metric), counts_(static_cast<std::size_t>(width) + 1, 0) {
  if (width < 1) throw std::invalid_argument("CarryChainProfiler width must be >= 1");
}

void CarryChainProfiler::record(const ApInt& a, const ApInt& b) {
  record_lengths(carry_chain_lengths(a, b));
}

void CarryChainProfiler::record_lengths(const std::vector<int>& lengths) {
  ++additions_;
  if (metric_ == ChainMetric::kAllChains) {
    for (const int len : lengths) {
      counts_[static_cast<std::size_t>(std::min(len, width_))] += 1;
      ++total_;
    }
  } else {
    const int longest =
        lengths.empty() ? 0 : *std::max_element(lengths.begin(), lengths.end());
    counts_[static_cast<std::size_t>(std::min(longest, width_))] += 1;
    ++total_;
  }
}

CarryChainProfiler& CarryChainProfiler::operator+=(const CarryChainProfiler& other) {
  if (other.width_ != width_ || other.metric_ != metric_) {
    throw std::invalid_argument("CarryChainProfiler merge: width/metric mismatch");
  }
  for (std::size_t l = 0; l < counts_.size(); ++l) counts_[l] += other.counts_[l];
  total_ += other.total_;
  additions_ += other.additions_;
  return *this;
}

double CarryChainProfiler::fraction(int length) const {
  if (total_ == 0 || length < 0 || length > width_) return 0.0;
  return static_cast<double>(counts_[static_cast<std::size_t>(length)]) /
         static_cast<double>(total_);
}

double CarryChainProfiler::fraction_at_least(int length) const {
  if (total_ == 0) return 0.0;
  std::uint64_t n = 0;
  for (int l = std::max(length, 0); l <= width_; ++l) {
    n += counts_[static_cast<std::size_t>(l)];
  }
  return static_cast<double>(n) / static_cast<double>(total_);
}

double CarryChainProfiler::mean_length() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (int l = 0; l <= width_; ++l) {
    acc += static_cast<double>(l) * static_cast<double>(counts_[static_cast<std::size_t>(l)]);
  }
  return acc / static_cast<double>(total_);
}

}  // namespace vlcsa::arith
