#pragma once
// Experiment service: the long-running front end over the experiment
// registry (ROADMAP item 1).  One instance owns the two-tier result cache
// and routes newline-delimited JSON requests:
//
//   {"request": "run", "experiment": NAME, "samples": N?, "seed": S?,
//    "eval_path": "batched"|"scalar"?, "timeout_ms": T?}
//   {"request": "run-batch", "runs": [RUNSPEC, ...], "timeout_ms": T?}
//   {"request": "list", "prefix": P?}
//   {"request": "describe", "experiment": NAME}
//   {"request": "cache-stats"}
//   {"request": "metrics"}
//   {"request": "metrics-prom"}
//   {"request": "drain"}
//   {"request": "shutdown"}
//
// Every request additionally accepts the observability envelope fields
// "trace": true (echo the request's span tree in the reply — a traced
// computed run's reply also carries its RunProfile), "trace_id": ID
// (caller-supplied correlation id, echoed and logged) and "origin": KIND
// (caller-declared traffic origin, logged; "sweep" run traffic is counted
// in the sweep metrics so operators can see a grid hammering a replica);
// trace.hpp has the span machinery and DESIGN.md the field reference.
// Trace data lives only in reply envelopes and log files — never inside a
// cached result record, whose bytes stay a pure function of the run inputs.
//
// over both experiment families (error-rate and chain-profile).  Request
// parsing is strict in the cli.hpp tradition: unknown request names, unknown
// fields, wrong field types and malformed JSON are all errors — a typo'd
// field must never silently run a different experiment.  Responses are
// single-line JSON objects with "status": "ok"|"error" (error responses
// also carry a machine-readable "code"); a run response embeds the result
// record verbatim, so the record bytes a client sees are exactly the bytes
// the cache stores (DESIGN.md has the full protocol reference).
//
// Timeouts: a run (or run-batch) request may carry "timeout_ms", and the
// daemon may set a default (ServiceConfig::timeout_ms).  The deadline is
// enforced cooperatively: a watchdog thread flips the run's cancellation
// token, the engine's shard loop observes it at block granularity and
// aborts with RunCancelled, and the request answers a "timeout"-coded error
// — a cancelled run never writes a (partial) cache record.
//
// handle_line is thread-safe — the socket server's worker pool calls it
// concurrently; cache access is internally locked and experiment runs
// themselves are independent sharded-engine invocations.

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/cache.hpp"
#include "service/fleet.hpp"
#include "service/metrics.hpp"
#include "service/trace.hpp"
#include "service/watchdog.hpp"

namespace vlcsa::harness {
class JsonValue;
}

namespace vlcsa::service {

struct ServiceConfig {
  std::string cache_dir;            // empty = memory tier only
  std::size_t memory_entries = 64;  // LRU capacity; 0 disables the tier
  int threads = 0;                  // engine threads per run (0 = all cores)
  std::uint64_t cache_max_bytes = 0;  // disk-tier byte cap; 0 = unbounded
  int timeout_ms = 0;  // default per-request run deadline; 0 = none
  std::string trace_log{};   // JSONL trace sink (--trace-log); empty = off
  std::string access_log{};  // JSONL access sink (--access-log); empty = off
  std::uint64_t access_log_max_bytes = 0;  // rotate cap; 0 = unbounded
  int slow_ms = 0;  // flag requests at/over this wall time; 0 = never
  int lease_stale_ms = 30000;  // fleet: crashed-peer .tmp/.lease takeover age; 0 = never
};

class ExperimentService {
 public:
  explicit ExperimentService(ServiceConfig config);

  struct Reply {
    std::string line;       // one response object, no trailing newline
    bool shutdown = false;  // the request asked the daemon to stop
    bool ok = true;         // "status" was "ok" (metrics bookkeeping)
    bool drain = false;     // the request asked the daemon to drain gracefully
  };

  /// Handles one request line, returning one response line.  Never throws on
  /// malformed input — errors come back as {"status": "error", ...}.
  [[nodiscard]] Reply handle_line(const std::string& line);

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] ServiceMetrics& metrics() { return metrics_; }

  /// Non-empty when a configured log file (trace_log/access_log) could not
  /// be opened at construction; the daemon front end refuses to start then
  /// rather than silently serving without its logs.
  [[nodiscard]] const std::string& log_error() const { return log_error_; }

  /// Graceful drain (idempotent): from here on, run/run-batch requests
  /// answer a "draining"-coded error while observational requests (list,
  /// metrics, cache-stats, ...) keep working so rotation scripts can watch
  /// the drain converge.  The socket server drives the connection side
  /// (stop accepting, drain deadline — server.hpp).
  void begin_drain();
  [[nodiscard]] bool draining() const { return drain_.draining(); }
  /// Runs currently inside run/run-batch handlers (drain progress).
  [[nodiscard]] std::size_t active_runs() const { return drain_.active_runs(); }
  /// Flips every in-flight run's cancel token — the drain deadline fired;
  /// cancelled runs answer "draining"-coded errors.
  void cancel_active_runs() { drain_.cancel_active_runs(); }

  /// Every request name handle_line dispatches, in documentation order —
  /// the list DESIGN.md's protocol reference is tested against
  /// (tests/service/protocol_doc_test.cpp).
  [[nodiscard]] static std::vector<std::string> request_names();

  struct RunSpec;         // one validated run request / batch element
  struct RunOutcome;      // what running one spec produced
  struct RequestContext;  // per-request observability state (spans, ids)

 private:
  [[nodiscard]] Reply handle_run(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_run_batch(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_list(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_describe(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_cache_stats(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_metrics(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_metrics_prom(const harness::JsonValue& request,
                                          RequestContext& ctx);
  [[nodiscard]] Reply handle_drain(const harness::JsonValue& request, RequestContext& ctx);
  [[nodiscard]] Reply handle_shutdown(const harness::JsonValue& request, RequestContext& ctx);

  /// Runs one validated spec through cache + single-flight + engine.
  /// `cancel` (may be null) is the caller-armed deadline token.
  [[nodiscard]] RunOutcome run_one(const RunSpec& spec, const std::atomic<bool>* cancel,
                                   RequestContext& ctx);

  /// End-of-request observability: feeds span durations into the per-stage
  /// histograms, assigns a trace id, injects the trace echo into the reply
  /// envelope (never into the embedded record), and writes the trace and
  /// access log lines.  A single early-exit branch when nothing is enabled.
  void finalize_request(RequestContext& ctx, const std::string& type, Reply& reply,
                        double wall_seconds);

  /// Resolves the effective deadline for a run/run-batch request:
  /// request-level "timeout_ms" when given, else the config default.
  [[nodiscard]] int effective_timeout_ms(const RunSpec& spec) const;

  ServiceConfig config_;
  ResultCache cache_;
  ServiceMetrics metrics_;
  DeadlineWatchdog watchdog_;
  JsonlLog trace_log_;       // per-request span trees (+ profile), JSONL
  JsonlLog access_log_;      // one compact line per request, JSONL
  TraceIdGenerator trace_ids_;
  std::string log_error_;    // see log_error()
  fleet::DrainState drain_;  // graceful-drain flag + in-flight run registry

  // Single-flight latch: concurrent run requests for the same cold key
  // compute once — the first request (leader) runs the experiment, the rest
  // wait on its future and answer "cache": "coalesced".  Keyed on
  // cache_map_key; entries live only while a computation is in flight.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_future<std::string>> inflight_;
};

/// The --stdio transport: reads request lines from `in` until EOF or a
/// shutdown/drain request (a one-conversation transport drains by ending the
/// conversation), writing one response line each to `out` (flushed per line,
/// so a pipe peer can converse).  Returns the number of requests handled.  This is the mode tests and one-shot pipelines use; the Unix
/// socket transport lives in server.hpp.
std::uint64_t serve_stdio(std::istream& in, std::ostream& out, ExperimentService& service);

}  // namespace vlcsa::service
