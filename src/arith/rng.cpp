#include "arith/rng.hpp"

#include <algorithm>
#include <cmath>

#include "arith/planeops.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VLCSA_HAVE_AVX2_RNG 1
#include <immintrin.h>
#endif

namespace vlcsa::arith {

namespace {

// MT19937-64 constants ([rand.eng.mers] mersenne_twister_engine<uint64, 64,
// 312, 156, 31, A, 29, D, 17, B, 37, C, 43, F>).
constexpr std::size_t kN = BlockRng::kStateWords;  // 312
constexpr std::size_t kM = 156;
constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
constexpr std::uint64_t kLowerMask = 0x7FFFFFFFULL;        // low r = 31 bits
constexpr std::uint64_t kUpperMask = ~kLowerMask;          // high w - r bits
constexpr std::uint64_t kTemperD = 0x5555555555555555ULL;  // u = 29
constexpr std::uint64_t kTemperB = 0x71D67FFFEDA60000ULL;  // s = 17
constexpr std::uint64_t kTemperC = 0xFFF7EEE000000000ULL;  // t = 37
constexpr std::uint64_t kSeedF = 6364136223846793005ULL;

// ---- scalar backend (the oracle the SIMD twist is pinned to) ---------------

inline std::uint64_t twist_word(std::uint64_t hi, std::uint64_t lo) {
  const std::uint64_t y = (hi & kUpperMask) | (lo & kLowerMask);
  return (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
}

void twist_scalar(std::uint64_t* mt) {
  for (std::size_t i = 0; i < kN - kM; ++i) {
    mt[i] = mt[i + kM] ^ twist_word(mt[i], mt[i + 1]);
  }
  for (std::size_t i = kN - kM; i < kN - 1; ++i) {
    mt[i] = mt[i + kM - kN] ^ twist_word(mt[i], mt[i + 1]);
  }
  mt[kN - 1] = mt[kM - 1] ^ twist_word(mt[kN - 1], mt[0]);
}

inline std::uint64_t temper_word(std::uint64_t z) {
  z ^= (z >> 29) & kTemperD;
  z ^= (z << 17) & kTemperB;
  z ^= (z << 37) & kTemperC;
  z ^= z >> 43;
  return z;
}

void temper_scalar(const std::uint64_t* mt, std::uint64_t* dst) {
  for (std::size_t i = 0; i < kN; ++i) dst[i] = temper_word(mt[i]);
}

// ---- AVX2 backend ----------------------------------------------------------
//
// Same per-function target attributes as planeops.cpp: the stock build
// carries the AVX2 bodies and runtime dispatch picks them on capable hosts.
// The twist recurrence x[i] = x[i+m] ^ f(x[i], x[i+1]) only feeds back at
// distances m = 156 and 1 (through the *old* value of x[i+1]), so 4-wide
// chunks that load both operand vectors before storing never observe a
// value the chunk itself wrote — the exact pre-round-read reasoning of the
// planeops kogge/ssand kernels.

#if VLCSA_HAVE_AVX2_RNG

__attribute__((target("avx2"))) inline __m256i twist_vec(__m256i hi, __m256i lo,
                                                         __m256i feed) {
  const __m256i upper = _mm256_set1_epi64x(static_cast<long long>(kUpperMask));
  const __m256i lower = _mm256_set1_epi64x(static_cast<long long>(kLowerMask));
  const __m256i a = _mm256_set1_epi64x(static_cast<long long>(kMatrixA));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i y =
      _mm256_or_si256(_mm256_and_si256(hi, upper), _mm256_and_si256(lo, lower));
  // (y & 1) ? A : 0 without a compare: 0 - (y & 1) is all-ones or zero.
  const __m256i odd_mask =
      _mm256_sub_epi64(_mm256_setzero_si256(), _mm256_and_si256(y, one));
  return _mm256_xor_si256(
      feed, _mm256_xor_si256(_mm256_srli_epi64(y, 1), _mm256_and_si256(odd_mask, a)));
}

__attribute__((target("avx2"))) void twist_avx2(std::uint64_t* mt) {
  // First stretch: i in [0, n-m) reads old mt[i..i+1] and old mt[i+m].
  // 156 is a multiple of 4, so no scalar tail here.
  for (std::size_t i = 0; i < kN - kM; i += 4) {
    const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i));
    const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i + 1));
    const __m256i feed =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i + kM));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mt + i), twist_vec(hi, lo, feed));
  }
  // Second stretch: i in [n-m, n-1) feeds back the *new* mt[i+m-n] (written
  // 156 slots earlier) while still reading old mt[i..i+1]; a 4-chunk writes
  // mt[i..i+3] only after loading mt[i..i+4], so the lo vector's overlap
  // with the chunk's own stores is safe.  155 iterations -> 3 scalar tail.
  std::size_t i = kN - kM;
  for (; i + 4 <= kN - 1; i += 4) {
    const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i));
    const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i + 1));
    const __m256i feed =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i + kM - kN));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mt + i), twist_vec(hi, lo, feed));
  }
  for (; i < kN - 1; ++i) mt[i] = mt[i + kM - kN] ^ twist_word(mt[i], mt[i + 1]);
  mt[kN - 1] = mt[kM - 1] ^ twist_word(mt[kN - 1], mt[0]);
}

__attribute__((target("avx2"))) void temper_avx2(const std::uint64_t* mt,
                                                 std::uint64_t* dst) {
  const __m256i d = _mm256_set1_epi64x(static_cast<long long>(kTemperD));
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(kTemperB));
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(kTemperC));
  for (std::size_t i = 0; i < kN; i += 4) {  // 312 is a multiple of 4
    __m256i z = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mt + i));
    z = _mm256_xor_si256(z, _mm256_and_si256(_mm256_srli_epi64(z, 29), d));
    z = _mm256_xor_si256(z, _mm256_and_si256(_mm256_slli_epi64(z, 17), b));
    z = _mm256_xor_si256(z, _mm256_and_si256(_mm256_slli_epi64(z, 37), c));
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 43));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), z);
  }
}

#endif  // VLCSA_HAVE_AVX2_RNG

// ---- AVX-512 backend -------------------------------------------------------
//
// The 8-wide analogue of the AVX2 twist/temper.  The same pre-round-read
// argument holds — a chunk loads mt[i..i+8] (and the feed vector) before it
// stores mt[i..i+7] — but the chunk counts change: the first stretch spans
// 156 words (19 chunks of 8 + 4 tail) and the second spans 155.

#if VLCSA_HAVE_AVX2_RNG
#define VLCSA_HAVE_AVX512_RNG 1

// Same GCC avx512fintrin.h -Wmaybe-uninitialized false positive as
// planeops.cpp (GCC bug 105593); silenced for this section only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f,avx512bw"))) inline __m512i twist_vec512(__m512i hi,
                                                                        __m512i lo,
                                                                        __m512i feed) {
  const __m512i upper = _mm512_set1_epi64(static_cast<long long>(kUpperMask));
  const __m512i lower = _mm512_set1_epi64(static_cast<long long>(kLowerMask));
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(kMatrixA));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i y =
      _mm512_or_si512(_mm512_and_si512(hi, upper), _mm512_and_si512(lo, lower));
  // (y & 1) ? A : 0 without a compare: 0 - (y & 1) is all-ones or zero.
  const __m512i odd_mask =
      _mm512_sub_epi64(_mm512_setzero_si512(), _mm512_and_si512(y, one));
  return _mm512_xor_si512(
      feed, _mm512_xor_si512(_mm512_srli_epi64(y, 1), _mm512_and_si512(odd_mask, a)));
}

__attribute__((target("avx512f,avx512bw"))) void twist_avx512(std::uint64_t* mt) {
  // First stretch: i in [0, n-m) reads old mt[i..i+1] and old mt[i+m].
  // 156 = 19*8 + 4, so a 4-word scalar tail remains.
  std::size_t i = 0;
  for (; i + 8 <= kN - kM; i += 8) {
    const __m512i hi = _mm512_loadu_si512(mt + i);
    const __m512i lo = _mm512_loadu_si512(mt + i + 1);
    const __m512i feed = _mm512_loadu_si512(mt + i + kM);
    _mm512_storeu_si512(mt + i, twist_vec512(hi, lo, feed));
  }
  for (; i < kN - kM; ++i) mt[i] = mt[i + kM] ^ twist_word(mt[i], mt[i + 1]);
  // Second stretch: i in [n-m, n-1) feeds back the *new* mt[i+m-n] (written
  // 156 slots earlier) while still reading old mt[i..i+1]; an 8-chunk writes
  // mt[i..i+7] only after loading mt[i..i+8].  155 iterations -> 3 tail.
  for (; i + 8 <= kN - 1; i += 8) {
    const __m512i hi = _mm512_loadu_si512(mt + i);
    const __m512i lo = _mm512_loadu_si512(mt + i + 1);
    const __m512i feed = _mm512_loadu_si512(mt + i + kM - kN);
    _mm512_storeu_si512(mt + i, twist_vec512(hi, lo, feed));
  }
  for (; i < kN - 1; ++i) mt[i] = mt[i + kM - kN] ^ twist_word(mt[i], mt[i + 1]);
  mt[kN - 1] = mt[kM - 1] ^ twist_word(mt[kN - 1], mt[0]);
}

__attribute__((target("avx512f,avx512bw"))) void temper_avx512(const std::uint64_t* mt,
                                                               std::uint64_t* dst) {
  const __m512i d = _mm512_set1_epi64(static_cast<long long>(kTemperD));
  const __m512i b = _mm512_set1_epi64(static_cast<long long>(kTemperB));
  const __m512i c = _mm512_set1_epi64(static_cast<long long>(kTemperC));
  for (std::size_t i = 0; i < kN; i += 8) {  // 312 is a multiple of 8
    __m512i z = _mm512_loadu_si512(mt + i);
    z = _mm512_xor_si512(z, _mm512_and_si512(_mm512_srli_epi64(z, 29), d));
    z = _mm512_xor_si512(z, _mm512_and_si512(_mm512_slli_epi64(z, 17), b));
    z = _mm512_xor_si512(z, _mm512_and_si512(_mm512_slli_epi64(z, 37), c));
    z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 43));
    _mm512_storeu_si512(dst + i, z);
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // VLCSA_HAVE_AVX512_RNG

// ---- dispatch --------------------------------------------------------------
//
// The RNG rides the planeops dispatch state rather than keeping its own:
// VLCSA_FORCE_BACKEND and planeops::set_backend select the twist/temper
// implementation too, so one switch covers the whole bit-parallel stack.
// NEON has no dedicated body (the scalar twist is already branch-light on
// aarch64); it dispatches to the oracle.

struct RngKernels {
  void (*twist)(std::uint64_t*);
  void (*temper)(const std::uint64_t*, std::uint64_t*);
};

RngKernels active_kernels() {
#if VLCSA_HAVE_AVX512_RNG
  if (planeops::active_backend() == planeops::Backend::kAvx512) {
    return {twist_avx512, temper_avx512};
  }
#endif
#if VLCSA_HAVE_AVX2_RNG
  if (planeops::active_backend() == planeops::Backend::kAvx2) {
    return {twist_avx2, temper_avx2};
  }
#endif
  return {twist_scalar, temper_scalar};
}

}  // namespace

void BlockRng::seed(result_type value) {
  state_[0] = value;
  for (std::size_t i = 1; i < kStateWords; ++i) {
    state_[i] = kSeedF * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
  }
  index_ = kStateWords;
  twists_ = 0;
}

void BlockRng::refill() {
  const RngKernels k = active_kernels();
  k.twist(state_);
  k.temper(state_, out_);
  index_ = 0;
  ++twists_;
}

void BlockRng::generate_block(std::uint64_t* dst, std::size_t n) {
  std::size_t produced = 0;
  // Drain whatever the per-call path left buffered, preserving draw order.
  if (index_ < kStateWords) {
    const std::size_t take = std::min(kStateWords - index_, n);
    std::copy(out_ + index_, out_ + index_ + take, dst);
    index_ += take;
    produced = take;
  }
  const RngKernels k = active_kernels();
  // Full blocks: twist and temper straight into the destination, never
  // touching the out_ buffer.
  while (n - produced >= kStateWords) {
    k.twist(state_);
    k.temper(state_, dst + produced);
    produced += kStateWords;
    ++twists_;
  }
  // Partial trailing block: regenerate out_ and hand out its head, leaving
  // the rest buffered for subsequent draws.
  if (produced < n) {
    k.twist(state_);
    k.temper(state_, out_);
    const std::size_t take = n - produced;
    std::copy(out_, out_ + take, dst + produced);
    index_ = take;
    ++twists_;
  }
}

void BlockRng::discard(unsigned long long z) {
  // Drain what the current block has buffered, then twist (without
  // tempering) any block skipped in full — tempering is a pure per-word
  // map, so dropping it cannot desynchronize the stream.
  const std::size_t buffered = kStateWords - index_;
  if (z <= buffered) {
    index_ += static_cast<std::size_t>(z);
    return;
  }
  z -= buffered;
  const RngKernels k = active_kernels();
  while (z >= kStateWords) {
    k.twist(state_);
    z -= kStateWords;
    ++twists_;
  }
  k.twist(state_);
  k.temper(state_, out_);
  index_ = static_cast<std::size_t>(z);
  ++twists_;
}

// ---- GaussianBlockSampler ---------------------------------------------------
//
// 256-layer ziggurat for the standard normal (Marsaglia & Tsang 2000,
// widened from the classic 32-bit draw to one 64-bit word per attempt):
// the low 8 bits pick the layer, the top 55 bits form a signed mantissa hz
// with |hz| < 2^54, and the fast path accepts when |hz| < kn[iz], returning
// x = hz * wn[iz].  Layer boundaries x_i solve the standard recurrence with
// strip area V and base boundary R; kn/wn are pre-scaled by m = 2^54 so the
// fast path is one integer compare and one multiply.

namespace {

constexpr double kZigR = 3.6541528853610088;   // base strip boundary
constexpr double kZigV = 4.92867323399e-3;     // per-strip area
constexpr double kZigM = 18014398509481984.0;  // 2^54, the |hz| scale

struct ZigguratTables {
  std::uint64_t kn[256];  // acceptance thresholds, in hz units
  double wn[256];         // hz -> x scale per layer
  double fn[256];         // exp(-x_i^2 / 2) at the layer boundaries
};

const ZigguratTables& ziggurat_tables() {
  static const ZigguratTables tables = [] {
    ZigguratTables t{};
    double dn = kZigR;
    double tn = kZigR;
    const double q = kZigV / std::exp(-0.5 * dn * dn);
    t.kn[0] = static_cast<std::uint64_t>((dn / q) * kZigM);
    t.kn[1] = 0;
    t.wn[0] = q / kZigM;
    t.wn[255] = dn / kZigM;
    t.fn[0] = 1.0;
    t.fn[255] = std::exp(-0.5 * dn * dn);
    for (int i = 254; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(kZigV / dn + std::exp(-0.5 * dn * dn)));
      t.kn[i + 1] = static_cast<std::uint64_t>((dn / tn) * kZigM);
      tn = dn;
      t.fn[i] = std::exp(-0.5 * dn * dn);
      t.wn[i] = dn / kZigM;
    }
    return t;
  }();
  return tables;
}

// (0, 1] uniform from a raw word: 53 high bits, offset so log() never sees 0.
inline double u01_from_word(std::uint64_t w) {
  return (static_cast<double>(w >> 11) + 1.0) * 0x1p-53;
}

}  // namespace

double GaussianBlockSampler::operator()(BlockRng& rng) {
  const ZigguratTables& t = ziggurat_tables();
  for (;;) {
    const std::uint64_t w = next_word(rng);
    const std::size_t iz = w & 0xFF;
    const std::int64_t hz = static_cast<std::int64_t>(w) >> 9;
    const std::uint64_t mag = static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
    if (mag < t.kn[iz]) return static_cast<double>(hz) * t.wn[iz];
    if (iz == 0) {
      // Tail beyond R, Marsaglia's exponential-majorant rejection.
      double x;
      double y;
      do {
        x = -std::log(u01_from_word(next_word(rng))) * (1.0 / kZigR);
        y = -std::log(u01_from_word(next_word(rng)));
      } while (y + y < x * x);
      return hz < 0 ? -(kZigR + x) : kZigR + x;
    }
    // Wedge between layer iz and iz-1.
    const double x = static_cast<double>(hz) * t.wn[iz];
    if (t.fn[iz] + u01_from_word(next_word(rng)) * (t.fn[iz - 1] - t.fn[iz]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
  }
}

void GaussianBlockSampler::fill(BlockRng& rng, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = (*this)(rng);
}

BlockRng make_stream_rng(std::uint64_t seed, std::uint64_t stream) {
  // Identical construction to the engine's historical make_shard_rng: all
  // 128 bits of (seed, stream) feed the seed_seq, so distinct streams and
  // distinct seeds never collide.
  std::seed_seq sequence{
      static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32),
      static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)};
  return BlockRng(sequence);
}

}  // namespace vlcsa::arith
