#include "service/watchdog.hpp"

namespace vlcsa::service {

DeadlineWatchdog::~DeadlineWatchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

DeadlineWatchdog::Id DeadlineWatchdog::arm(Clock::time_point deadline,
                                           std::atomic<bool>* token) {
  Id id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    armed_.emplace(id, Entry{deadline, token});
    if (!thread_.joinable()) thread_ = std::thread([this] { loop(); });
  }
  cv_.notify_all();
  return id;
}

void DeadlineWatchdog::disarm(Id id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.erase(id);
}

void DeadlineWatchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    // Fire everything due, then sleep until the earliest remaining deadline
    // (or indefinitely when nothing is armed — arm() notifies).
    const Clock::time_point now = Clock::now();
    Clock::time_point next = Clock::time_point::max();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second.deadline <= now) {
        it->second.token->store(true, std::memory_order_relaxed);
        it = armed_.erase(it);
      } else {
        next = std::min(next, it->second.deadline);
        ++it;
      }
    }
    if (next == Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, next);
    }
  }
}

}  // namespace vlcsa::service
