#include "harness/json.hpp"

#include <charconv>
#include <stdexcept>

namespace vlcsa::harness {

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(std::string token, double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::move(token);
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

[[noreturn]] void wrong_kind(const char* wanted) {
  throw std::logic_error(std::string("JsonValue: value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) wrong_kind("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) wrong_kind("an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) wrong_kind("an object");
  return members_;
}

const std::string& JsonValue::number_text() const {
  if (kind_ != Kind::kNumber) wrong_kind("a number");
  return text_;
}

bool JsonValue::to_u64(std::uint64_t& out) const {
  if (kind_ != Kind::kNumber) return false;
  if (text_.empty() || text_.find_first_of(".eE-") != std::string::npos) return false;
  std::uint64_t value = 0;
  const char* first = text_.data();
  const char* last = text_.data() + text_.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return false;
  out = value;
  return true;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParse run() {
    JsonParse parse;
    skip_ws();
    parse.value = parse_value(0);
    if (ok()) {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters after JSON value");
    }
    parse.error = error_;
    parse.offset = error_offset_;
    return parse;
  }

 private:
  [[nodiscard]] bool ok() const { return error_.empty(); }

  void fail(const std::string& message) {
    if (!ok()) return;
    error_ = message + " at offset " + std::to_string(pos_);
    error_offset_ = pos_;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxJsonDepth) {
      fail("nesting deeper than " + std::to_string(kMaxJsonDepth));
      return {};
    }
    if (at_end()) {
      fail("unexpected end of input");
      return {};
    }
    switch (peek()) {
      case 'n': consume_literal("null"); return JsonValue::make_null();
      case 't': consume_literal("true"); return JsonValue::make_bool(true);
      case 'f': consume_literal("false"); return JsonValue::make_bool(false);
      case '"': return JsonValue::make_string(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  JsonValue parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (ok()) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      if (!ok()) break;
      skip_ws();
      if (at_end()) {
        fail("unterminated array");
        break;
      }
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
        break;
      }
    }
    return {};
  }

  JsonValue parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (ok()) {
      skip_ws();
      if (at_end() || peek() != '"') {
        fail("expected string object key");
        break;
      }
      std::string key = parse_string();
      if (!ok()) break;
      for (const auto& member : members) {
        if (member.first == key) {
          fail("duplicate object key '" + key + "'");
          break;
        }
      }
      if (!ok()) break;
      skip_ws();
      if (at_end() || peek() != ':') {
        fail("expected ':' after object key");
        break;
      }
      ++pos_;
      skip_ws();
      JsonValue value = parse_value(depth + 1);
      if (!ok()) break;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) {
        fail("unterminated object");
        break;
      }
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
        break;
      }
    }
    return {};
  }

  // RFC 8259 number grammar: -? (0 | [1-9][0-9]*) frac? exp?
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      pos_ = start;
      fail("invalid number");
      return {};
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
        return {};
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
        return {};
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      // Magnitude over/underflow is representable as ±inf/0 per from_chars;
      // keep the parse (the token text stays exact for integer extraction).
      (void)ptr;
    } else if (ec != std::errc{} || ptr != token.data() + token.size()) {
      pos_ = start;
      fail("invalid number");
      return {};
    }
    return JsonValue::make_number(std::move(token), value);
  }

  [[nodiscard]] int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  // Parses "\uXXXX"'s four hex digits (cursor already past the 'u').
  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) {
        fail("unterminated \\u escape");
        return 0;
      }
      const int digit = hex_digit(peek());
      if (digit < 0) {
        fail("invalid hex digit in \\u escape");
        return 0;
      }
      code = code * 16 + static_cast<std::uint32_t>(digit);
      ++pos_;
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (ok()) {
      if (at_end()) {
        fail("unterminated string");
        break;
      }
      const char c = peek();
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        break;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (at_end()) {
        fail("unterminated escape");
        break;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (!ok()) break;
          if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate");
            break;
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a \uDC00–\uDFFF low surrogate must follow.
            if (text_.substr(pos_, 2) != "\\u") {
              fail("high surrogate not followed by \\u low surrogate");
              break;
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (!ok()) break;
            if (low < 0xdc00 || low > 0xdfff) {
              fail("high surrogate not followed by low surrogate");
              break;
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          pos_ -= 1;
          fail("invalid escape character");
          break;
      }
    }
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_offset_ = 0;
};

}  // namespace

JsonParse parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace vlcsa::harness
