#pragma once
// Bit-sliced logic simulation: 64 test vectors per lane word, and a
// configurable number of lane words per net.
//
// Every net carries `lane_words` 64-bit words: bit j of word w is the net's
// value in test vector w*64 + j, so one pass over the netlist evaluates
// 64 * lane_words input vectors.  Because gate creation order is
// topological, evaluation is a single linear sweep — this is what makes
// exhaustive netlist-vs-behavioral equivalence checking cheap enough to run
// inside unit tests.  The default single lane word keeps the classic 64-way
// interface; wider simulators use the *_lanes accessors.

#include <cstdint>
#include <string>
#include <vector>

#include "arith/planeops.hpp"
#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl, int lane_words = 1);

  [[nodiscard]] int lane_words() const { return lane_words_; }

  /// Sets lane word 0 of one primary input (by input index) — the classic
  /// 64-vector interface; higher lane words are untouched.
  void set_input(std::size_t input_index, std::uint64_t word);

  /// Sets an input's lane word 0 by port name; throws if absent.
  void set_input(const std::string& name, std::uint64_t word);

  /// Sets all lane words of one primary input; `words` must hold
  /// lane_words() values.
  void set_input_lanes(std::size_t input_index, const std::uint64_t* words);

  /// Evaluates every gate once, in creation order, across all lane words.
  void run();

  /// Lane word 0 of any signal after run().
  [[nodiscard]] std::uint64_t value(Signal s) const {
    return values_[static_cast<std::size_t>(s.id) * static_cast<std::size_t>(lane_words_)];
  }

  /// All lane words of any signal after run() (lane_words() values).
  [[nodiscard]] const std::uint64_t* value_lanes(Signal s) const {
    return values_.data() +
           static_cast<std::size_t>(s.id) * static_cast<std::size_t>(lane_words_);
  }

  /// Lane word 0 of a named output after run(); throws if absent.
  [[nodiscard]] std::uint64_t output(const std::string& name) const;

  /// All lane words of a named output after run(); throws if absent.
  [[nodiscard]] const std::uint64_t* output_lanes(const std::string& name) const;

  [[nodiscard]] const Netlist& netlist() const { return nl_; }

 private:
  const Netlist& nl_;
  int lane_words_;
  arith::planeops::PlaneVec values_;  // values_[gate * lane_words + w]
};

}  // namespace vlcsa::netlist
