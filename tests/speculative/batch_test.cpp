// Batch-vs-scalar differential tests: the bit-sliced evaluate_batch /
// step_batch paths must reproduce the scalar models' predicates lane for
// lane.  Coverage:
//  * exhaustive over ALL operand pairs and ALL window/chain sizes at small
//    widths (n <= 8 — 4^n pairs stays unit-test cheap there);
//  * exhaustive in one operand x deterministic-pseudorandom partner at
//    n in {10, 12}, again over all windows/chains;
//  * randomized at n in {32, 64, 128} x every registered operand
//    distribution x all four models (ScsaModel, VLCSA 1, VLCSA 2, VLSA).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "arith/distributions.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlcsa.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;
using arith::BitSlicedBatch;

/// Compares every batch lane mask against 64 scalar evaluations.
void check_scsa_batch(const ScsaModel& model, const std::vector<ApInt>& a,
                      const std::vector<ApInt>& b) {
  BitSlicedBatch batch(model.config().width);
  batch.load(a, b);
  ScsaBatchEvaluation ev;
  model.evaluate_batch(batch, ev);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.evaluate(a[j], b[j]);
    const auto lane = [&](std::uint64_t mask) { return ((mask >> j) & 1) != 0; };
    ASSERT_EQ(lane(ev.spec0_wrong), !scalar.spec0_correct())
        << "spec0, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.spec1_wrong), !scalar.spec1_correct())
        << "spec1, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.err0), scalar.err0)
        << "err0, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.err1), scalar.err1)
        << "err1, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.either_wrong()), !scalar.either_correct());
    ASSERT_EQ(lane(ev.vlcsa2_selected_wrong()), !scalar.vlcsa2_selected_correct());
  }
}

void check_vlsa_batch(const VlsaModel& model, const std::vector<ApInt>& a,
                      const std::vector<ApInt>& b) {
  BitSlicedBatch batch(model.config().width);
  batch.load(a, b);
  VlsaBatchEvaluation ev;
  model.evaluate_batch(batch, ev);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.evaluate(a[j], b[j]);
    ASSERT_EQ(((ev.spec_wrong >> j) & 1) != 0, !scalar.spec_correct())
        << "n=" << model.config().width << " l=" << model.config().chain << " a=" << a[j]
        << " b=" << b[j];
    ASSERT_EQ(((ev.err >> j) & 1) != 0, scalar.err)
        << "n=" << model.config().width << " l=" << model.config().chain << " a=" << a[j]
        << " b=" << b[j];
  }
}

void check_vlcsa_batch(const VlcsaModel& model, const std::vector<ApInt>& a,
                       const std::vector<ApInt>& b) {
  BitSlicedBatch batch(model.config().width);
  batch.load(a, b);
  VlcsaBatchStep step;
  model.step_batch(batch, step);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.step(a[j], b[j]);
    ASSERT_EQ(((step.stalled >> j) & 1) != 0, scalar.stalled)
        << to_string(model.config().variant) << " n=" << model.config().width
        << " k=" << model.config().window << " a=" << a[j] << " b=" << b[j];
    const bool scalar_emitted_wrong =
        scalar.result != scalar.eval.exact || scalar.cout != scalar.eval.exact_cout;
    ASSERT_EQ(((step.emitted_wrong >> j) & 1) != 0, scalar_emitted_wrong);
  }
}

TEST(ScsaBatchDifferentialTest, ExhaustiveSmallWidthsAllWindows) {
  for (int n = 1; n <= 8; ++n) {
    for (int k = 1; k <= n; ++k) {
      const ScsaModel model(ScsaConfig{n, k});
      std::vector<ApInt> a, b;
      a.reserve(64);
      b.reserve(64);
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        for (std::uint64_t vb = 0; vb < limit; ++vb) {
          a.push_back(ApInt::from_u64(n, va));
          b.push_back(ApInt::from_u64(n, vb));
          if (a.size() == 64) {
            check_scsa_batch(model, a, b);
            a.clear();
            b.clear();
          }
        }
      }
      if (!a.empty()) check_scsa_batch(model, a, b);
    }
  }
}

TEST(ScsaBatchDifferentialTest, ExhaustiveOperandAtMediumWidthsAllWindows) {
  // n in {10, 12}: one operand sweeps its full range, the partner is a
  // deterministic pseudorandom function of (value, window) — exhaustive in
  // `a` where the full cross product would be too slow for a unit test.
  for (const int n : {10, 12}) {
    for (int k = 1; k <= n; ++k) {
      const ScsaModel model(ScsaConfig{n, k});
      std::mt19937_64 partner(static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(k));
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        a.push_back(ApInt::from_u64(n, va));
        b.push_back(ApInt::from_u64(n, partner()));
        if (a.size() == 64) {
          check_scsa_batch(model, a, b);
          a.clear();
          b.clear();
        }
      }
      if (!a.empty()) check_scsa_batch(model, a, b);
    }
  }
}

TEST(VlsaBatchDifferentialTest, ExhaustiveSmallWidthsAllChains) {
  for (int n = 1; n <= 8; ++n) {
    for (int l = 1; l <= n; ++l) {
      const VlsaModel model(VlsaConfig{n, l});
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        for (std::uint64_t vb = 0; vb < limit; ++vb) {
          a.push_back(ApInt::from_u64(n, va));
          b.push_back(ApInt::from_u64(n, vb));
          if (a.size() == 64) {
            check_vlsa_batch(model, a, b);
            a.clear();
            b.clear();
          }
        }
      }
      if (!a.empty()) check_vlsa_batch(model, a, b);
    }
  }
}

TEST(VlsaBatchDifferentialTest, ExhaustiveOperandAtMediumWidthsAllChains) {
  for (const int n : {10, 12}) {
    for (int l = 1; l <= n; ++l) {
      const VlsaModel model(VlsaConfig{n, l});
      std::mt19937_64 partner(static_cast<std::uint64_t>(n) * 2000 + static_cast<std::uint64_t>(l));
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        a.push_back(ApInt::from_u64(n, va));
        b.push_back(ApInt::from_u64(n, partner()));
        if (a.size() == 64) {
          check_vlsa_batch(model, a, b);
          a.clear();
          b.clear();
        }
      }
      if (!a.empty()) check_vlsa_batch(model, a, b);
    }
  }
}

/// Randomized sweep: width x distribution, driven through all four models.
class RandomizedBatchTest
    : public ::testing::TestWithParam<std::tuple<int, arith::InputDistribution>> {};

TEST_P(RandomizedBatchTest, AllFourModelsMatchScalar) {
  const auto [n, dist] = GetParam();
  const auto source = arith::make_source(dist, n);
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 31 + static_cast<int>(dist));

  // Window/chain choices: one small (frequent errors) and one realistic.
  for (const int k : {4, 11}) {
    const ScsaModel scsa(ScsaConfig{n, k});
    const VlcsaModel vlcsa1(VlcsaConfig{n, k, ScsaVariant::kScsa1});
    const VlcsaModel vlcsa2(VlcsaConfig{n, k, ScsaVariant::kScsa2});
    const VlsaModel vlsa(VlsaConfig{n, std::min(n, k + 2)});
    for (int round = 0; round < 4; ++round) {
      std::vector<ApInt> a, b;
      for (int j = 0; j < 64; ++j) {
        auto [x, y] = source->next(rng);
        a.push_back(std::move(x));
        b.push_back(std::move(y));
      }
      check_scsa_batch(scsa, a, b);
      check_vlcsa_batch(vlcsa1, a, b);
      check_vlcsa_batch(vlcsa2, a, b);
      check_vlsa_batch(vlsa, a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthByDistribution, RandomizedBatchTest,
    ::testing::Combine(::testing::Values(32, 64, 128),
                       ::testing::Values(arith::InputDistribution::kUniformUnsigned,
                                         arith::InputDistribution::kUniformTwos,
                                         arith::InputDistribution::kGaussianUnsigned,
                                         arith::InputDistribution::kGaussianTwos)));

/// Short batches (tail shapes) still evaluate correctly: unused lanes are
/// zero-padded operands, which must not disturb the populated lanes.
TEST(ScsaBatchDifferentialTest, PartialBatchLanesMatch) {
  const ScsaModel model(ScsaConfig{64, 8});
  std::mt19937_64 rng(77);
  for (const int count : {1, 7, 63}) {
    std::vector<ApInt> a, b;
    for (int j = 0; j < count; ++j) {
      a.push_back(ApInt::random(64, rng));
      b.push_back(ApInt::random(64, rng));
    }
    check_scsa_batch(model, a, b);
  }
}

}  // namespace
}  // namespace vlcsa::spec
