// Fig 6.4 — carry-chain length statistics for unsigned Gaussian inputs on a
// 32-bit adder.  sigma = 2^20 keeps |sample| well inside 32 bits (the paper
// plots a 32-bit adder without stating sigma for this figure; the shape is
// sigma-insensitive as long as samples fit).

#include <cmath>
#include <iostream>

#include "arith/distributions.hpp"
#include "bench_util.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.4",
                        "Carry-chain length statistics, unsigned Gaussian inputs "
                        "(mu=0, sigma=2^20), 32-bit adder, " +
                            std::to_string(args.samples) + " additions.");

  arith::CarryChainProfiler profiler(32, arith::ChainMetric::kAllChains);
  arith::GaussianUnsignedSource source(32, arith::GaussianParams{0.0, std::ldexp(1.0, 20)});
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < args.samples; ++i) {
    const auto [a, b] = source.next(rng);
    profiler.record(a, b);
  }
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: short-chain dominated, similar to unsigned uniform —\n"
               "magnitude alone does not create long chains (Ch. 6.3).\n";
  return 0;
}
