#include "arith/apint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace vlcsa::arith {

namespace {

constexpr std::uint64_t mask_low(int bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

}  // namespace

ApInt::ApInt(int width) : width_(width) {
  if (width < 1) throw std::invalid_argument("ApInt width must be >= 1");
  limbs_.assign(static_cast<std::size_t>((width + kLimbBits - 1) / kLimbBits), 0);
}

ApInt ApInt::all_ones(int width) {
  ApInt r(width);
  for (auto& l : r.limbs_) l = ~std::uint64_t{0};
  r.normalize();
  return r;
}

ApInt ApInt::from_u64(int width, std::uint64_t v) {
  ApInt r(width);
  r.limbs_[0] = v;
  r.normalize();
  return r;
}

ApInt ApInt::from_i64(int width, std::int64_t v) {
  ApInt r(width);
  r.limbs_[0] = static_cast<std::uint64_t>(v);
  if (v < 0) {
    for (std::size_t i = 1; i < r.limbs_.size(); ++i) r.limbs_[i] = ~std::uint64_t{0};
  }
  r.normalize();
  return r;
}

ApInt ApInt::from_binary(int width, const std::string& bits) {
  if (static_cast<int>(bits.size()) > width) {
    throw std::invalid_argument("binary string longer than width");
  }
  ApInt r(width);
  const int n = static_cast<int>(bits.size());
  for (int i = 0; i < n; ++i) {
    const char c = bits[static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') throw std::invalid_argument("binary string must be 0/1");
    // bits[0] is the MSB of the string.
    r.set_bit(n - 1 - i, c == '1');
  }
  return r;
}

ApInt ApInt::random(int width, BlockRng& rng) {
  ApInt r(width);
  rng.generate_block(r.limbs_.data(), r.limbs_.size());
  r.normalize();
  return r;
}

void ApInt::normalize() {
  const int top_bits = width_ - (num_limbs() - 1) * kLimbBits;
  limbs_.back() &= mask_low(top_bits);
}

void ApInt::check_same_width(const ApInt& a, const ApInt& b) {
  if (a.width_ != b.width_) throw std::invalid_argument("ApInt width mismatch");
}

bool ApInt::bit(int i) const {
  if (i < 0) throw std::out_of_range("ApInt::bit negative index");
  if (i >= width_) return false;
  return (limbs_[static_cast<std::size_t>(i / kLimbBits)] >> (i % kLimbBits)) & 1;
}

void ApInt::set_bit(int i, bool v) {
  if (i < 0 || i >= width_) throw std::out_of_range("ApInt::set_bit index out of range");
  auto& l = limbs_[static_cast<std::size_t>(i / kLimbBits)];
  const std::uint64_t m = std::uint64_t{1} << (i % kLimbBits);
  l = v ? (l | m) : (l & ~m);
}

std::uint64_t ApInt::extract(int pos, int len) const {
  assert(len >= 1 && len <= 64);
  if (pos < 0) throw std::out_of_range("ApInt::extract negative position");
  if (pos >= width_) return 0;
  const int limb_idx = pos / kLimbBits;
  const int offset = pos % kLimbBits;
  std::uint64_t lo = limbs_[static_cast<std::size_t>(limb_idx)] >> offset;
  if (offset != 0 && limb_idx + 1 < num_limbs()) {
    lo |= limbs_[static_cast<std::size_t>(limb_idx + 1)] << (kLimbBits - offset);
  }
  return lo & mask_low(len);
}

void ApInt::deposit(int pos, int len, std::uint64_t v) {
  assert(len >= 1 && len <= 64);
  v &= mask_low(len);
  for (int i = 0; i < len; ++i) {
    const int bit_pos = pos + i;
    if (bit_pos >= width_) break;
    set_bit(bit_pos, (v >> i) & 1);
  }
}

AddResult ApInt::add(const ApInt& a, const ApInt& b, bool carry_in) {
  check_same_width(a, b);
  ApInt sum(a.width_);
  unsigned __int128 carry = carry_in ? 1 : 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const unsigned __int128 t =
        static_cast<unsigned __int128>(a.limbs_[i]) + b.limbs_[i] + carry;
    sum.limbs_[i] = static_cast<std::uint64_t>(t);
    carry = t >> 64;
  }
  // The carry out of bit width-1 (not out of the top limb) is what an n-bit
  // adder reports.  Recompute it from the top limb when width is not a
  // multiple of 64.
  bool cout;
  const int top_bits = a.width_ - (a.num_limbs() - 1) * kLimbBits;
  if (top_bits == kLimbBits) {
    cout = carry != 0;
  } else {
    cout = (sum.limbs_.back() >> top_bits) & 1;
  }
  sum.normalize();
  return {std::move(sum), cout};
}

ApInt ApInt::operator+(const ApInt& rhs) const { return add(*this, rhs).sum; }

ApInt ApInt::operator-(const ApInt& rhs) const { return add(*this, ~rhs, /*carry_in=*/true).sum; }

ApInt ApInt::negated() const {
  ApInt zero_v(width_);
  return zero_v - *this;
}

ApInt ApInt::operator&(const ApInt& rhs) const {
  check_same_width(*this, rhs);
  ApInt r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] & rhs.limbs_[i];
  return r;
}

ApInt ApInt::operator|(const ApInt& rhs) const {
  check_same_width(*this, rhs);
  ApInt r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] | rhs.limbs_[i];
  return r;
}

ApInt ApInt::operator^(const ApInt& rhs) const {
  check_same_width(*this, rhs);
  ApInt r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = limbs_[i] ^ rhs.limbs_[i];
  return r;
}

ApInt ApInt::operator~() const {
  ApInt r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = ~limbs_[i];
  r.normalize();
  return r;
}

ApInt ApInt::shl(int amount) const {
  if (amount < 0) throw std::invalid_argument("negative shift");
  ApInt r(width_);
  if (amount >= width_) return r;
  const int limb_shift = amount / kLimbBits;
  const int bit_shift = amount % kLimbBits;
  for (int i = num_limbs() - 1; i >= limb_shift; --i) {
    std::uint64_t v = limbs_[static_cast<std::size_t>(i - limb_shift)] << bit_shift;
    if (bit_shift != 0 && i - limb_shift - 1 >= 0) {
      v |= limbs_[static_cast<std::size_t>(i - limb_shift - 1)] >> (kLimbBits - bit_shift);
    }
    r.limbs_[static_cast<std::size_t>(i)] = v;
  }
  r.normalize();
  return r;
}

ApInt ApInt::shr(int amount) const {
  if (amount < 0) throw std::invalid_argument("negative shift");
  ApInt r(width_);
  if (amount >= width_) return r;
  const int limb_shift = amount / kLimbBits;
  const int bit_shift = amount % kLimbBits;
  for (int i = 0; i + limb_shift < num_limbs(); ++i) {
    std::uint64_t v = limbs_[static_cast<std::size_t>(i + limb_shift)] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < num_limbs()) {
      v |= limbs_[static_cast<std::size_t>(i + limb_shift + 1)] << (kLimbBits - bit_shift);
    }
    r.limbs_[static_cast<std::size_t>(i)] = v;
  }
  return r;
}

int ApInt::compare_unsigned(const ApInt& rhs) const {
  check_same_width(*this, rhs);
  for (int i = num_limbs() - 1; i >= 0; --i) {
    const auto a = limbs_[static_cast<std::size_t>(i)];
    const auto b = rhs.limbs_[static_cast<std::size_t>(i)];
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

int ApInt::compare_signed(const ApInt& rhs) const {
  check_same_width(*this, rhs);
  const bool sa = sign_bit();
  const bool sb = rhs.sign_bit();
  if (sa != sb) return sa ? -1 : 1;  // negative < positive
  return compare_unsigned(rhs);     // same sign: unsigned order matches
}

bool ApInt::is_zero() const {
  return std::all_of(limbs_.begin(), limbs_.end(), [](std::uint64_t l) { return l == 0; });
}

int ApInt::popcount() const {
  int n = 0;
  for (const auto l : limbs_) n += std::popcount(l);
  return n;
}

int ApInt::highest_set_bit() const {
  for (int i = num_limbs() - 1; i >= 0; --i) {
    const auto l = limbs_[static_cast<std::size_t>(i)];
    if (l != 0) return i * kLimbBits + 63 - std::countl_zero(l);
  }
  return -1;
}

ApInt ApInt::zext(int new_width) const {
  ApInt r(new_width);
  const std::size_t n = std::min(r.limbs_.size(), limbs_.size());
  std::copy_n(limbs_.begin(), n, r.limbs_.begin());
  r.normalize();
  return r;
}

ApInt ApInt::sext(int new_width) const {
  if (new_width <= width_ || !sign_bit()) return zext(new_width);
  ApInt r = (~ApInt(new_width));  // all ones
  // Clear the low `width_` bits then OR the value in.
  for (int i = 0; i < width_; ++i) r.set_bit(i, bit(i));
  return r;
}

std::int64_t ApInt::to_i64() const {
  std::int64_t v = static_cast<std::int64_t>(limbs_[0]);
  if (width_ < 64) {
    // Sign-extend from bit width-1.
    const std::uint64_t m = std::uint64_t{1} << (width_ - 1);
    const std::uint64_t u = limbs_[0];
    v = static_cast<std::int64_t>((u ^ m) - m);
  } else {
    // The value must fit: all higher bits equal the sign.
    assert(([&] {
      const bool neg = sign_bit();
      for (int i = 64; i < width_; ++i) {
        if (bit(i) != neg) return false;
      }
      return true;
    })());
  }
  return v;
}

std::string ApInt::to_binary() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    if (bit(i)) s[static_cast<std::size_t>(width_ - 1 - i)] = '1';
  }
  return s;
}

std::string ApInt::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const int num_digits = (width_ + 3) / 4;
  std::string s(static_cast<std::size_t>(num_digits), '0');
  for (int d = 0; d < num_digits; ++d) {
    const auto nib = extract(d * 4, std::min(4, width_ - d * 4));
    s[static_cast<std::size_t>(num_digits - 1 - d)] = digits[nib];
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const ApInt& v) {
  return os << "ApInt<" << v.width() << ">(0x" << v.to_hex() << ")";
}

bool PropagateGenerate::group_propagate(int pos, int len) const {
  for (int chunk = 0; chunk < len; chunk += 64) {
    const int l = std::min(64, len - chunk);
    if (pos + chunk + l > p.width()) return false;  // overhang never propagates
    const std::uint64_t bits = p.extract(pos + chunk, l);
    const std::uint64_t want = l >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << l) - 1);
    if (bits != want) return false;
  }
  return pos + len <= p.width();
}

bool PropagateGenerate::group_generate(int pos, int len) const {
  // Scan from the top of the window down: the window generates iff the
  // highest non-propagating bit is a generate.
  for (int i = pos + len - 1; i >= pos; --i) {
    if (i >= p.width()) return false;  // overhang bits are 0/0: kill
    if (p.bit(i)) continue;
    return g.bit(i);
  }
  return false;  // all-propagate window cannot generate
}

}  // namespace vlcsa::arith
