#include "adders/adders.hpp"

#include <gtest/gtest.h>

#include "common/testutil.hpp"
#include "netlist/opt.hpp"
#include "netlist/timing.hpp"

namespace vlcsa::adders {
namespace {

class DesignWareTest : public ::testing::TestWithParam<int> {};

TEST_P(DesignWareTest, AddsExactly) {
  const int width = GetParam();
  const auto nl = build_designware_adder(width);
  testutil::check_adder_netlist(nl, width, /*with_cin=*/false);
}

TEST_P(DesignWareTest, IsNoSlowerThanEveryCandidate) {
  const int width = GetParam();
  DesignWareChoice choice;
  const auto dw = build_designware_adder(width, &choice);
  EXPECT_GT(choice.delay, 0.0);
  EXPECT_GT(choice.area, 0.0);
  for (const auto kind : {AdderKind::kKoggeStone, AdderKind::kSklansky,
                          AdderKind::kBrentKung, AdderKind::kHanCarlson}) {
    const auto candidate = netlist::optimize(build_adder_netlist(kind, width));
    const double delay = netlist::analyze_timing(candidate).critical_delay;
    EXPECT_LE(choice.delay, delay + 1e-9)
        << "designware slower than " << to_string(kind) << " at width " << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DesignWareTest, ::testing::Values(8, 16, 32, 64));

TEST(DesignWare, ReportsWinningFamily) {
  DesignWareChoice choice;
  (void)build_designware_adder(64, &choice);
  // The winner must be one of the candidate set.
  const char* name = to_string(choice.winner);
  EXPECT_NE(name, nullptr);
  EXPECT_STRNE(name, "?");
}

TEST(DesignWare, NetlistIsNamedByWidth) {
  const auto nl = build_designware_adder(32);
  EXPECT_EQ(nl.name(), "designware_32");
}

}  // namespace
}  // namespace vlcsa::adders
