#include "service/server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "harness/json.hpp"

namespace vlcsa::service {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Blocking full-buffer send; MSG_NOSIGNAL so a peer that hung up yields an
/// error return instead of SIGPIPE killing the daemon.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `buffer` contains a '\n'; returns false on EOF/error before
/// a complete line (sets errno = 0 on clean EOF).  On success `line` holds
/// the line without the newline.
bool recv_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // EOF mid-line
      errno = 0;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// recv_line with an optional idle deadline: when no complete line is
/// buffered and nothing arrives within `idle_timeout_ms`, reports kIdle so
/// the server can close a conversation that went quiet (keep-alive hygiene).
enum class RecvStatus { kLine, kIdle, kClosed };

RecvStatus recv_line_idle(int fd, std::string& buffer, std::string& line,
                          int idle_timeout_ms) {
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return RecvStatus::kLine;
    }
    if (idle_timeout_ms > 0) {
      pollfd pfd{fd, POLLIN, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, idle_timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) return RecvStatus::kIdle;
      if (ready < 0) return RecvStatus::kClosed;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return RecvStatus::kClosed;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.empty()) {
    error = "socket path is empty";
    return false;
  }
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long (max " + std::to_string(sizeof(addr.sun_path) - 1) +
            " bytes): " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Resolves host:port (numeric or named, IPv4 or IPv6).  Returns a
/// getaddrinfo result list the caller must freeaddrinfo(), or nullptr with
/// `error` set.
addrinfo* resolve_tcp(const std::string& host, int port, bool for_bind, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(), &hints,
                               &result);
  if (rc != 0) {
    error = "resolve " + host + ":" + service + ": " + ::gai_strerror(rc);
    return nullptr;
  }
  return result;
}

/// The one-line reply a connection gets when the pending queue is full; the
/// field shape matches service.cpp's error replies.
constexpr const char* kOverloadedLine =
    "{\"status\": \"error\", \"code\": \"overloaded\", "
    "\"error\": \"server overloaded: connection backlog full, retry later\"}\n";

}  // namespace

SocketServer::SocketServer(std::vector<ListenerSpec> listeners, ExperimentService& service,
                           Options options)
    : listeners_(std::move(listeners)), service_(service), options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_pending < 0) options_.max_pending = 0;
  listen_fds_.assign(listeners_.size(), -1);
}

SocketServer::SocketServer(std::vector<ListenerSpec> listeners, ExperimentService& service)
    : SocketServer(std::move(listeners), service, Options{}) {}

SocketServer::SocketServer(std::string socket_path, ExperimentService& service, int workers)
    : SocketServer({ListenerSpec::unix_socket(std::move(socket_path))}, service,
                   Options{workers, 128}) {}

SocketServer::~SocketServer() {
  for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
    if (listen_fds_[i] < 0) continue;
    ::close(listen_fds_[i]);
    if (listeners_[i].kind == ListenerSpec::Kind::kUnix) {
      ::unlink(listeners_[i].path.c_str());
    }
  }
}

std::string SocketServer::socket_path() const {
  for (const ListenerSpec& listener : listeners_) {
    if (listener.kind == ListenerSpec::Kind::kUnix) return listener.path;
  }
  return {};
}

std::size_t SocketServer::pending_connections() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::string SocketServer::listen_or_error() {
  if (listeners_.empty()) return "no listeners configured";
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (listen_fds_[i] >= 0) continue;  // already bound
    const ListenerSpec& listener = listeners_[i];
    if (listener.kind == ListenerSpec::Kind::kUnix) {
      sockaddr_un addr{};
      std::string error;
      if (!fill_sockaddr(listener.path, addr, error)) return error;
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return errno_message("socket");
      ::unlink(listener.path.c_str());  // stale socket from a previous daemon
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        const std::string error_text = errno_message("bind " + listener.path);
        ::close(fd);
        return error_text;
      }
      if (::listen(fd, 16) < 0) {
        const std::string error_text = errno_message("listen " + listener.path);
        ::close(fd);
        return error_text;
      }
      listen_fds_[i] = fd;
    } else {
      std::string error;
      addrinfo* addresses = resolve_tcp(listener.host, listener.port, /*for_bind=*/true, error);
      if (addresses == nullptr) return error;
      int fd = -1;
      std::string bind_error = "no usable address for " + listener.host;
      for (const addrinfo* address = addresses; address != nullptr;
           address = address->ai_next) {
        fd = ::socket(address->ai_family, address->ai_socktype, address->ai_protocol);
        if (fd < 0) {
          bind_error = errno_message("socket");
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, address->ai_addr, address->ai_addrlen) == 0 && ::listen(fd, 16) == 0) {
          break;
        }
        bind_error = errno_message("bind " + listener.host + ":" +
                                   std::to_string(listener.port));
        ::close(fd);
        fd = -1;
      }
      ::freeaddrinfo(addresses);
      if (fd < 0) return bind_error;
      listen_fds_[i] = fd;
      // Resolve an ephemeral-port request (port 0) to the real bound port.
      if (tcp_port_ == 0) {
        sockaddr_storage bound{};
        socklen_t bound_len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
          if (bound.ss_family == AF_INET) {
            tcp_port_ = ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
          } else if (bound.ss_family == AF_INET6) {
            tcp_port_ = ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
          }
        }
      }
    }
  }
  return {};
}

void SocketServer::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || draining_) return;
    draining_ = true;
    drain_start_ = std::chrono::steady_clock::now();
  }
  // Outside the lock: the service takes its own locks flipping drain state.
  service_.begin_drain();
}

void SocketServer::request_stop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = true;
  // Workers may be blocked in recv() on an open conversation and would
  // otherwise never observe the stop; half-closing every active connection
  // makes their next recv() return 0, ending the conversation.  Safe under
  // the lock: an fd is removed from active_ (and closed) under this same
  // lock, so no shutdown() can hit a recycled descriptor.
  for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  queue_cv_.notify_all();
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  std::string line;
  int served = 0;
  while (true) {
    const RecvStatus status = recv_line_idle(fd, buffer, line, options_.idle_timeout_ms);
    if (status != RecvStatus::kLine) break;  // peer gone or idle-timed-out
    if (line.empty()) continue;
    const ExperimentService::Reply reply = service_.handle_line(line);
    if (!send_all(fd, reply.line + "\n")) break;
    if (reply.shutdown) {
      request_stop();
      break;
    }
    if (reply.drain) {
      // Like the stdio transport, the drain reply ends this conversation;
      // begin_drain moves serve() into its graceful-stop sequence.
      begin_drain();
      break;
    }
    ++served;
    if (options_.max_requests_per_conn > 0 && served >= options_.max_requests_per_conn) {
      break;  // keep-alive cap: the client redials (or retries) to continue
    }
  }
}

void SocketServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // queued connections are closed unserved by serve()
      fd = pending_.front();
      pending_.pop_front();
      active_.push_back(fd);
    }
    handle_connection(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(std::find(active_.begin(), active_.end(), fd));
      ::close(fd);
    }
  }
}

std::string SocketServer::serve() {
  if (std::string error = listen_or_error(); !error.empty()) return error;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) pool.emplace_back([this] { worker_loop(); });

  std::vector<pollfd> pfds;
  pfds.reserve(listen_fds_.size());

  // Accept with a poll timeout so a stop requested from a worker (shutdown
  // request) is noticed within one tick even with no incoming connection.
  std::string failure;
  while (failure.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || draining_) break;
    }
    pfds.clear();
    for (const int fd : listen_fds_) pfds.push_back({fd, POLLIN, 0});
    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      failure = errno_message("poll");
      break;
    }
    if (ready == 0) continue;
    for (const pollfd& pfd : pfds) {
      if ((pfd.revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfd.fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK) {
          continue;
        }
        failure = errno_message("accept");
        break;
      }
      bool reject = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (options_.max_pending > 0 &&
            pending_.size() >= static_cast<std::size_t>(options_.max_pending)) {
          reject = true;
        } else {
          pending_.push_back(fd);
        }
      }
      if (reject) {
        // Shedding load beats queueing unboundedly: tell the peer why in one
        // protocol-shaped line, then close.
        send_all(fd, kOverloadedLine);
        ::close(fd);
        service_.metrics().record_rejected_connection();
      } else {
        queue_cv_.notify_one();
      }
    }
  }

  // Graceful drain: stop listening right away (peers get ECONNREFUSED and
  // retry another replica), keep serving the conversations we already have —
  // their new runs answer "draining" — and wait for in-flight work.  At the
  // drain deadline, cancel what is still running and read-half-close the
  // remaining conversations (SHUT_RD, not RDWR: replies in flight still
  // deliver, the next recv sees EOF).  A short backstop bounds the wait even
  // against a worker wedged mid-send.
  bool drained = false;
  std::chrono::steady_clock::time_point drain_start;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    drained = draining_ && !stopping_;
    drain_start = drain_start_;
  }
  if (failure.empty() && drained) {
    for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
      if (listen_fds_[i] < 0) continue;
      ::close(listen_fds_[i]);
      listen_fds_[i] = -1;
      if (listeners_[i].kind == ListenerSpec::Kind::kUnix) {
        ::unlink(listeners_[i].path.c_str());
      }
    }
    const auto deadline = drain_start + std::chrono::milliseconds(options_.drain_ms);
    const auto backstop = deadline + std::chrono::seconds(2);
    bool cancelled = false;
    while (true) {
      const bool runs_done = service_.active_runs() == 0;
      bool conversations_done = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
        conversations_done = pending_.empty() && active_.empty();
      }
      if (runs_done && conversations_done) break;
      const auto now = std::chrono::steady_clock::now();
      if (now >= backstop) break;
      if (now >= deadline && !cancelled) {
        service_.cancel_active_runs();
        cancelled = true;
      }
      if (runs_done || now >= deadline) {
        // Only conversations remain (idle keep-alives, or ones whose runs
        // were just cancelled): end them after their in-flight replies.
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : active_) ::shutdown(fd, SHUT_RD);
        for (const int fd : pending_) ::shutdown(fd, SHUT_RD);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // The one shutdown path, for a drained stop, a requested stop and an
  // accept-loop failure alike: stop and join the workers, then close
  // connections still queued unserved — an error return must not leak the
  // pending fds.
  request_stop();
  for (auto& worker : pool) worker.join();
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
  return failure;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServiceClient::close_connection() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

std::string ServiceClient::connect_or_error(const std::string& socket_path, int timeout_ms) {
  close_connection();
  // Remembered before dialing so reconnect() can retry a refused endpoint.
  endpoint_ = Endpoint::kUnix;
  unix_path_ = socket_path;
  connect_timeout_ms_ = timeout_ms;

  sockaddr_un addr{};
  std::string error;
  if (!fill_sockaddr(socket_path, addr, error)) return error;

  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return errno_message("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return {};
    }
    const std::string connect_error = errno_message("connect " + socket_path);
    ::close(fd_);
    fd_ = -1;
    if (Clock::now() >= deadline) return connect_error;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::string ServiceClient::connect_tcp_or_error(const std::string& host, int port,
                                                int timeout_ms) {
  close_connection();
  endpoint_ = Endpoint::kTcp;
  tcp_host_ = host;
  tcp_port_ = port;
  connect_timeout_ms_ = timeout_ms;

  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string last_error = "connect " + host + ":" + std::to_string(port) + " failed";
  while (true) {
    std::string resolve_error;
    addrinfo* addresses = resolve_tcp(host, port, /*for_bind=*/false, resolve_error);
    if (addresses == nullptr) return resolve_error;
    for (const addrinfo* address = addresses; address != nullptr;
         address = address->ai_next) {
      fd_ = ::socket(address->ai_family, address->ai_socktype, address->ai_protocol);
      if (fd_ < 0) {
        last_error = errno_message("socket");
        continue;
      }
      if (::connect(fd_, address->ai_addr, address->ai_addrlen) == 0) {
        ::freeaddrinfo(addresses);
        return {};
      }
      last_error = errno_message("connect " + host + ":" + std::to_string(port));
      ::close(fd_);
      fd_ = -1;
    }
    ::freeaddrinfo(addresses);
    if (Clock::now() >= deadline) return last_error;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::string ServiceClient::set_io_timeout_ms(int timeout_ms) {
  if (fd_ < 0) return "not connected";
  if (timeout_ms < 0) timeout_ms = 0;
  io_timeout_ms_ = timeout_ms;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return errno_message("setsockopt SO_RCVTIMEO");
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return errno_message("setsockopt SO_SNDTIMEO");
  }
  return {};
}

std::string ServiceClient::roundtrip(const std::string& request_line, std::string& response) {
  if (fd_ < 0) return "not connected";
  if (!send_all(fd_, request_line + "\n")) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return "send timed out";
    return errno_message("send");
  }
  return read_response(response);
}

std::string ServiceClient::read_response(std::string& response) {
  if (fd_ < 0) return "not connected";
  if (!recv_line(fd_, buffer_, response)) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return "read timed out waiting for a response line";
    }
    return "connection closed before a response line arrived";
  }
  return {};
}

std::string ServiceClient::reconnect() {
  const Endpoint endpoint = endpoint_;
  const int io_timeout_ms = io_timeout_ms_;
  std::string error;
  switch (endpoint) {
    case Endpoint::kNone:
      return "no endpoint configured (connect first)";
    case Endpoint::kUnix:
      error = connect_or_error(unix_path_, connect_timeout_ms_);
      break;
    case Endpoint::kTcp:
      error = connect_tcp_or_error(tcp_host_, tcp_port_, connect_timeout_ms_);
      break;
  }
  if (!error.empty()) return error;
  if (io_timeout_ms > 0) return set_io_timeout_ms(io_timeout_ms);
  return {};
}

namespace {

/// True for well-formed error replies a retry can help with: the server
/// refused this request ("overloaded" backlog shed, "draining" rotation) but
/// the same request is valid against the same fleet a moment later.  Every
/// other reply — ok, a semantic error, or a line that does not parse — is
/// final.
bool reply_is_retryable(const std::string& response) {
  using Kind = harness::JsonValue::Kind;
  const harness::JsonParse parse = harness::parse_json(response);
  if (!parse.ok()) return false;
  const harness::JsonValue* status = parse.value.find("status");
  if (status == nullptr || status->kind() != Kind::kString ||
      status->as_string() != "error") {
    return false;
  }
  const harness::JsonValue* code = parse.value.find("code");
  if (code == nullptr || code->kind() != Kind::kString) return false;
  return code->as_string() == "overloaded" || code->as_string() == "draining";
}

}  // namespace

std::string ServiceClient::roundtrip_with_retry(const std::string& request_line,
                                                std::string& response,
                                                const fleet::RetryPolicy& policy,
                                                std::uint64_t* retries_out) {
  fleet::BackoffSchedule backoff(policy);
  std::string error;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      if (retries_out != nullptr) ++*retries_out;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_delay_ms()));
    }
    if (fd_ < 0) {
      error = reconnect();
      if (!error.empty()) {
        if (attempt >= policy.attempts) return error;
        continue;  // refused/unreachable: the retryable case retries exist for
      }
    }
    error = roundtrip(request_line, response);
    if (!error.empty()) {
      // Transport failure (peer hung up mid-roundtrip, keep-alive cap, I/O
      // timeout): the connection state is unknown, drop it and redial.
      close_connection();
      if (attempt >= policy.attempts) return error;
      continue;
    }
    if (!reply_is_retryable(response)) return {};
    // The server answered but refused (overloaded/draining) — it also ends
    // such conversations, so redial rather than reuse the half-dead fd.
    close_connection();
    if (attempt >= policy.attempts) return {};  // caller sees the refusal reply
  }
}

}  // namespace vlcsa::service
