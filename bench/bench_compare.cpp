// bench_compare — diff two perf_microbench --json records (vlcsa-perf-*)
// and gate on regressions, so the BENCH_batch.json artifact trajectory can
// be enforced instead of eyeballed:
//
//   $ ./build/bench/bench_compare --old=BENCH_pr8.json --new=BENCH_pr9.json
//         --max-regress-pct=10
//
// Both records are walked recursively into flat metric paths
// (kernels[bulk_gp_n512_w4].best_ns_per_sample, rng.generation...); array
// elements are keyed by their "kernel"/"workload" member so reordering a
// suite between PRs never misaligns the diff.  Every numeric metric present
// in both records is reported with its delta.  Only time metrics (name
// containing "ns_per" / ending "_ns") gate the exit status: a time that grew
// by more than --max-regress-pct fails the run.  Speedup ratios and counts
// are informational — they already move whenever their underlying times do.
//
// Exit status: 0 = no gated regression, 1 = at least one time metric
// regressed past the threshold, 2 = usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/cli.hpp"
#include "harness/json.hpp"

using vlcsa::harness::JsonValue;

namespace {

// One flattened numeric metric: path like "end_to_end[vlcsa2-uniform-n512].ns_per_sample".
using MetricList = std::vector<std::pair<std::string, double>>;

/// The member that names an array element across record versions, when any.
std::string element_key(const JsonValue& value) {
  if (value.kind() != JsonValue::Kind::kObject) return {};
  for (const char* key : {"kernel", "workload"}) {
    if (const JsonValue* name = value.find(key);
        name != nullptr && name->kind() == JsonValue::Kind::kString) {
      return name->as_string();
    }
  }
  return {};
}

void flatten(const JsonValue& value, const std::string& path, MetricList& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNumber:
      out.emplace_back(path, value.as_double());
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.members()) {
        flatten(member, path.empty() ? key : path + "." + key, out);
      }
      break;
    case JsonValue::Kind::kArray: {
      std::size_t index = 0;
      for (const JsonValue& item : value.items()) {
        std::string label = element_key(item);
        if (label.empty()) label = std::to_string(index);
        flatten(item, path + "[" + label + "]", out);
        ++index;
      }
      break;
    }
    default:
      break;  // strings/bools/null carry labels, not metrics
  }
}

/// Time metrics gate the exit status; everything else is informational.
bool is_time_metric(const std::string& path) {
  if (path.find("ns_per") != std::string::npos) return true;
  return path.size() >= 3 && path.compare(path.size() - 3, 3, "_ns") == 0;
}

bool load_metrics(const std::string& path, MetricList& out, std::string& schema) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const vlcsa::harness::JsonParse parsed = vlcsa::harness::parse_json(buffer.str());
  if (!parsed.ok()) {
    std::cerr << "error: " << path << ": " << parsed.error << "\n";
    return false;
  }
  if (parsed.value.kind() != JsonValue::Kind::kObject) {
    std::cerr << "error: " << path << ": record is not a JSON object\n";
    return false;
  }
  if (const JsonValue* s = parsed.value.find("schema");
      s != nullptr && s->kind() == JsonValue::Kind::kString) {
    schema = s->as_string();
  }
  flatten(parsed.value, "", out);
  return true;
}

/// Strict full-string double parse (cli.hpp only covers integers).
bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  out = value;
  return true;
}

void print_usage() {
  std::cout << "usage: bench_compare --old=FILE --new=FILE [--max-regress-pct=P]\n"
               "Diffs two perf_microbench --json records.  Time metrics (ns_per_*)\n"
               "that grew by more than P percent (default 10) fail the run with\n"
               "exit 1; other numeric metrics are reported but never gate.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path;
  std::string new_path;
  double max_regress_pct = 10.0;

  const std::vector<vlcsa::harness::ValueFlag> flags = {
      {"--old",
       [&](const std::string& value) {
         if (value.empty()) return false;
         old_path = value;
         return true;
       }},
      {"--new",
       [&](const std::string& value) {
         if (value.empty()) return false;
         new_path = value;
         return true;
       }},
      {"--max-regress-pct",
       [&](const std::string& value) {
         return parse_double(value, max_regress_pct) && max_regress_pct >= 0.0;
       }},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
  }
  if (const std::string error = vlcsa::harness::parse_value_flags(
          argc, const_cast<const char* const*>(argv), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  if (old_path.empty() || new_path.empty()) {
    std::cerr << "error: --old=FILE and --new=FILE are both required\n";
    print_usage();
    return 2;
  }

  MetricList old_metrics, new_metrics;
  std::string old_schema, new_schema;
  if (!load_metrics(old_path, old_metrics, old_schema)) return 2;
  if (!load_metrics(new_path, new_metrics, new_schema)) return 2;
  if (!old_schema.empty() && !new_schema.empty() && old_schema != new_schema) {
    std::cerr << "note: comparing across schemas (" << old_schema << " -> " << new_schema
              << "); only shared metric paths are diffed\n";
  }

  std::size_t compared = 0;
  std::size_t regressions = 0;
  for (const auto& [path, old_value] : old_metrics) {
    const double* new_value = nullptr;
    for (const auto& [other_path, value] : new_metrics) {
      if (other_path == path) {
        new_value = &value;
        break;
      }
    }
    if (new_value == nullptr) continue;  // metric dropped between versions
    ++compared;
    const bool gated = is_time_metric(path);
    const double delta_pct =
        old_value != 0.0 ? (*new_value - old_value) / old_value * 100.0 : 0.0;
    const bool regressed = gated && delta_pct > max_regress_pct;
    if (regressed) ++regressions;
    std::printf("%-72s %14.4g %14.4g %+8.2f%% %s\n", path.c_str(), old_value, *new_value,
                delta_pct, regressed ? "REGRESSED" : (gated ? "" : "(info)"));
  }
  if (compared == 0) {
    std::cerr << "error: the records share no metric paths\n";
    return 2;
  }
  std::printf("%zu metric(s) compared, %zu regression(s) past %+.2f%%\n", compared,
              regressions, max_regress_pct);
  return regressions > 0 ? 1 : 0;
}
