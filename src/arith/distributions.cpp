#include "arith/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace vlcsa::arith {

void OperandSource::fill_batch(BlockRng& rng, BitSlicedBatch& out) {
  if (out.width() != width()) {
    throw std::invalid_argument("OperandSource::fill_batch: batch width mismatch");
  }
  // One 64-sample group per lane word, in sample order, so the RNG stream is
  // exactly out.lanes() next() calls.
  ApInt a[kBatchLanes], b[kBatchLanes];
  for (int w = 0; w < out.lane_words(); ++w) {
    for (int j = 0; j < kBatchLanes; ++j) {
      auto [aj, bj] = next(rng);
      a[j] = std::move(aj);
      b[j] = std::move(bj);
    }
    transpose_to_planes(a, kBatchLanes, width(), out.a(), out.lane_words(), w);
    transpose_to_planes(b, kBatchLanes, width(), out.b(), out.lane_words(), w);
  }
}

std::pair<ApInt, ApInt> UniformUnsignedSource::next(BlockRng& rng) {
  return {ApInt::random(width(), rng), ApInt::random(width(), rng)};
}

void UniformUnsignedSource::fill_batch(BlockRng& rng, BitSlicedBatch& out) {
  if (out.width() != width()) {
    throw std::invalid_argument("UniformUnsignedSource::fill_batch: batch width mismatch");
  }
  // Mirror of out.lanes() x next(): per sample, a's limbs then b's limbs, one
  // rng word per limb in limb order, top limb masked — exactly ApInt::random's
  // consumption — but the whole lane-word group's words come from ONE
  // generate_block() call (the block RNG's SIMD twist + batched tempering),
  // then get deinterleaved into per-limb 64x64 transpose blocks and written
  // straight into the bit-planes.  Member scratch: no allocation after the
  // first batch.
  const int n = width();
  const int lane_words = out.lane_words();
  const int limbs = (n + ApInt::kLimbBits - 1) / ApInt::kLimbBits;
  const int top_bits = n - (limbs - 1) * ApInt::kLimbBits;
  const std::uint64_t top_mask =
      top_bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << top_bits) - 1);
  const std::size_t group_words = static_cast<std::size_t>(2 * limbs) * 64;
  stream_.resize(group_words);
  rows_.resize(group_words);
  for (int w = 0; w < lane_words; ++w) {
    rng.generate_block(stream_.data(), group_words);
    if (limbs == 1) {
      // Single-limb fast path (every width <= 64): the stream is simply
      // a0 b0 a1 b1 ..., a two-way deinterleave with the width mask applied
      // on the way through.
      for (int j = 0; j < kBatchLanes; ++j) {
        rows_[static_cast<std::size_t>(j)] = stream_[static_cast<std::size_t>(2 * j)] & top_mask;
        rows_[static_cast<std::size_t>(64 + j)] =
            stream_[static_cast<std::size_t>(2 * j + 1)] & top_mask;
      }
    } else {
      // Sample j's words sit at stream_[j*2*limbs ..]; scatter them into the
      // (op, limb) blocks the transpose wants, masking top limbs in place.
      for (int j = 0; j < kBatchLanes; ++j) {
        const std::uint64_t* sample = stream_.data() + static_cast<std::size_t>(j) * 2 * limbs;
        for (int op = 0; op < 2; ++op) {
          for (int limb = 0; limb < limbs; ++limb) {
            std::uint64_t word = sample[op * limbs + limb];
            if (limb == limbs - 1) word &= top_mask;
            rows_[static_cast<std::size_t>((op * limbs + limb) * 64 + j)] = word;
          }
        }
      }
    }
    for (int op = 0; op < 2; ++op) {
      std::uint64_t* planes = op == 0 ? out.a() : out.b();
      for (int limb = 0; limb < limbs; ++limb) {
        std::uint64_t* block =
            rows_.data() + static_cast<std::size_t>(op * limbs + limb) * 64;
        transpose_64x64(block);
        block_to_planes(block, limb, n, planes, lane_words, w);
      }
    }
  }
}

namespace {

ApInt random_signed_magnitude(int width, BlockRng& rng) {
  // Uniform magnitude in [0, 2^(width-1)) with a random sign bit.
  ApInt mag = ApInt::random(width, rng);
  mag.set_bit(width - 1, false);
  const bool negative = (rng() & 1) != 0;
  return negative ? mag.negated() : mag;
}

}  // namespace

std::pair<ApInt, ApInt> UniformTwosSource::next(BlockRng& rng) {
  return {random_signed_magnitude(width(), rng), random_signed_magnitude(width(), rng)};
}

namespace {

// Raw-word encode bodies shared by the ApInt wrappers below and the
// direct-to-plane Gaussian fill paths (which build transpose blocks from
// these words without touching the heap).

std::int64_t signed_sample_to_i64(int width, double sample) {
  const double rounded = std::nearbyint(sample);
  if (width >= 64) {
    // sigma = 2^32 keeps samples far inside int64 range (8 sigma < 2^36).
    return static_cast<std::int64_t>(rounded);
  }
  const double lo = -std::ldexp(1.0, width - 1);
  const double hi = std::ldexp(1.0, width - 1) - 1.0;
  return static_cast<std::int64_t>(std::fmin(std::fmax(rounded, lo), hi));
}

std::uint64_t unsigned_sample_to_u64(int width, double sample) {
  const double mag = std::fabs(std::nearbyint(sample));
  if (width >= 64) return static_cast<std::uint64_t>(mag);
  const double hi = std::ldexp(1.0, width) - 1.0;
  return static_cast<std::uint64_t>(std::fmin(mag, hi));
}

}  // namespace

ApInt encode_signed_sample(int width, double sample) {
  return ApInt::from_i64(width, signed_sample_to_i64(width, sample));
}

ApInt encode_unsigned_sample(int width, double sample) {
  return ApInt::from_u64(width, unsigned_sample_to_u64(width, sample));
}

std::pair<ApInt, ApInt> GaussianUnsignedSource::next(BlockRng& rng) {
  const double a = params_.mean + params_.sigma * sampler_(rng);
  const double b = params_.mean + params_.sigma * sampler_(rng);
  return {encode_unsigned_sample(width(), a), encode_unsigned_sample(width(), b)};
}

std::pair<ApInt, ApInt> GaussianTwosSource::next(BlockRng& rng) {
  const double a = params_.mean + params_.sigma * sampler_(rng);
  const double b = params_.mean + params_.sigma * sampler_(rng);
  return {encode_signed_sample(width(), a), encode_signed_sample(width(), b)};
}

void GaussianUnsignedSource::fill_batch(BlockRng& rng, BitSlicedBatch& out) {
  if (out.width() != width()) {
    throw std::invalid_argument("GaussianUnsignedSource::fill_batch: batch width mismatch");
  }
  // Mirror of out.lanes() x next(): variates a0 b0 a1 b1 ... from the shared
  // block sampler (so the RNG stream is exactly next()'s), encoded to raw
  // limb-0 words in per-operand 64x64 blocks.  Samples carry at most 64
  // magnitude bits, so bit-planes >= 64 are identically zero — no transposes
  // above limb 0.
  const int n = width();
  const int lane_words = out.lane_words();
  const std::uint64_t top_mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  variates_.resize(static_cast<std::size_t>(2 * kBatchLanes));
  rows_.resize(static_cast<std::size_t>(2 * kBatchLanes));
  for (int w = 0; w < lane_words; ++w) {
    sampler_.fill(rng, variates_.data(), static_cast<std::size_t>(2 * kBatchLanes));
    for (int j = 0; j < kBatchLanes; ++j) {
      const double a = params_.mean + params_.sigma * variates_[static_cast<std::size_t>(2 * j)];
      const double b =
          params_.mean + params_.sigma * variates_[static_cast<std::size_t>(2 * j + 1)];
      rows_[static_cast<std::size_t>(j)] = unsigned_sample_to_u64(n, a) & top_mask;
      rows_[static_cast<std::size_t>(64 + j)] = unsigned_sample_to_u64(n, b) & top_mask;
    }
    for (int op = 0; op < 2; ++op) {
      std::uint64_t* planes = op == 0 ? out.a() : out.b();
      std::uint64_t* block = rows_.data() + static_cast<std::size_t>(op) * 64;
      transpose_64x64(block);
      block_to_planes(block, 0, n, planes, lane_words, w);
      for (int bit = 64; bit < n; ++bit) {
        planes[static_cast<std::size_t>(bit) * lane_words + w] = 0;
      }
    }
  }
}

void GaussianTwosSource::fill_batch(BlockRng& rng, BitSlicedBatch& out) {
  if (out.width() != width()) {
    throw std::invalid_argument("GaussianTwosSource::fill_batch: batch width mismatch");
  }
  // Same structure as the unsigned fill; negatives make every bit-plane
  // above limb 0 the lane-wise sign mask (two's-complement sign extension),
  // written directly instead of transposing constant blocks.
  const int n = width();
  const int lane_words = out.lane_words();
  const std::uint64_t top_mask =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  variates_.resize(static_cast<std::size_t>(2 * kBatchLanes));
  rows_.resize(static_cast<std::size_t>(2 * kBatchLanes));
  for (int w = 0; w < lane_words; ++w) {
    sampler_.fill(rng, variates_.data(), static_cast<std::size_t>(2 * kBatchLanes));
    std::uint64_t sign[2] = {0, 0};
    for (int j = 0; j < kBatchLanes; ++j) {
      const double a = params_.mean + params_.sigma * variates_[static_cast<std::size_t>(2 * j)];
      const double b =
          params_.mean + params_.sigma * variates_[static_cast<std::size_t>(2 * j + 1)];
      const std::int64_t av = signed_sample_to_i64(n, a);
      const std::int64_t bv = signed_sample_to_i64(n, b);
      rows_[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(av) & top_mask;
      rows_[static_cast<std::size_t>(64 + j)] = static_cast<std::uint64_t>(bv) & top_mask;
      if (av < 0) sign[0] |= std::uint64_t{1} << j;
      if (bv < 0) sign[1] |= std::uint64_t{1} << j;
    }
    for (int op = 0; op < 2; ++op) {
      std::uint64_t* planes = op == 0 ? out.a() : out.b();
      std::uint64_t* block = rows_.data() + static_cast<std::size_t>(op) * 64;
      transpose_64x64(block);
      block_to_planes(block, 0, n, planes, lane_words, w);
      for (int bit = 64; bit < n; ++bit) {
        planes[static_cast<std::size_t>(bit) * lane_words + w] = sign[op];
      }
    }
  }
}

std::string to_string(InputDistribution dist) {
  switch (dist) {
    case InputDistribution::kUniformUnsigned:
      return "uniform-unsigned";
    case InputDistribution::kUniformTwos:
      return "uniform-twos-complement";
    case InputDistribution::kGaussianUnsigned:
      return "gaussian-unsigned";
    case InputDistribution::kGaussianTwos:
      return "gaussian-twos-complement";
  }
  throw std::logic_error("unknown InputDistribution");
}

bool parse_distribution(std::string_view text, InputDistribution& out) {
  for (const InputDistribution dist :
       {InputDistribution::kUniformUnsigned, InputDistribution::kUniformTwos,
        InputDistribution::kGaussianUnsigned, InputDistribution::kGaussianTwos}) {
    if (text == to_string(dist)) {
      out = dist;
      return true;
    }
  }
  return false;
}

std::unique_ptr<OperandSource> make_source(InputDistribution dist, int width,
                                           GaussianParams params) {
  switch (dist) {
    case InputDistribution::kUniformUnsigned:
      return std::make_unique<UniformUnsignedSource>(width);
    case InputDistribution::kUniformTwos:
      return std::make_unique<UniformTwosSource>(width);
    case InputDistribution::kGaussianUnsigned:
      return std::make_unique<GaussianUnsignedSource>(width, params);
    case InputDistribution::kGaussianTwos:
      return std::make_unique<GaussianTwosSource>(width, params);
  }
  throw std::logic_error("unknown InputDistribution");
}

}  // namespace vlcsa::arith
