// Ablation — the window-size knob.  One sweep shows the whole design space
// of Ch. 3-5 at a glance: smaller k is faster and smaller but errs (stalls)
// more; the analytical model (3.13) prices the trade exactly.

#include <algorithm>
#include <iostream>

#include "arith/distributions.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 100000);
  harness::print_banner(std::cout, "Ablation: window size",
                        "VLCSA 1 at n = 128 across window sizes: correct-path delay, "
                        "area, model stall rate, simulated average cycles (" +
                            std::to_string(args.samples) + " samples).");

  const int n = 128;
  harness::Table table({"k", "windows", "correct-path delay", "area", "P_stall (model)",
                        "avg cycles (sim)", "time/add"});
  for (const int k : {6, 8, 10, 12, 14, 15, 16, 20, 24}) {
    const auto synth = harness::synthesize(
        spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1));
    const double tclk = std::max(synth.delay_of("spec"), synth.delay_of("detect"));
    auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
    const auto mc = harness::run_vlcsa(spec::VlcsaConfig{n, k, spec::ScsaVariant::kScsa1},
                                       *source, args.samples, args.seed, args.threads);
    table.add_row({std::to_string(k), std::to_string((n + k - 1) / k),
                   harness::fmt_fixed(tclk, 1), harness::fmt_fixed(synth.area, 0),
                   harness::fmt_pct(spec::scsa_error_rate(n, k), 3),
                   harness::fmt_fixed(mc.average_cycles(), 4),
                   harness::fmt_fixed(tclk * mc.average_cycles(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: time/add is U-shaped — tiny windows stall too often, huge\n"
               "windows lose the speculation win; the sweet spot sits near the\n"
               "Table 7.4 sizing (k = 15 at this width for 0.01%).\n";
  return 0;
}
