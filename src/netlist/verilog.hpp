#pragma once
// Structural Verilog-2001 emitter.
//
// The paper's flow is "C++ programs which take the adder width n and the
// window size k, and generate Verilog files" (Ch. 7.1); this module is that
// back-end.  Ports named like "a[3]" are collapsed into proper vector ports;
// everything else becomes scalar ports.  The body is a flat sea of
// primitive-gate continuous assignments, synthesizable by any tool.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

/// Writes a synthesizable structural Verilog module for `nl`.
void emit_verilog(const Netlist& nl, std::ostream& os);

/// Convenience: returns the module text as a string.
[[nodiscard]] std::string to_verilog(const Netlist& nl);

}  // namespace vlcsa::netlist
