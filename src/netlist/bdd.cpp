#include "netlist/bdd.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace vlcsa::netlist {

BddManager::BddManager(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0) throw std::invalid_argument("BddManager: negative variable count");
  // Terminals live at refs 0 and 1 with a variable index below every real
  // variable in cofactor comparisons (num_vars_ == "past the end").
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});
}

BddManager::NodeRef BddManager::make_node(int var, NodeRef lo, NodeRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::array<std::uint32_t, 3> key{static_cast<std::uint32_t>(var), lo, hi};
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (node_limit_ != 0 && nodes_.size() >= node_limit_) {
    throw std::runtime_error("BddManager: node limit exceeded");
  }
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddManager::NodeRef BddManager::var(int index) {
  if (index < 0 || index >= num_vars_) throw std::out_of_range("BddManager::var");
  return make_node(index, kFalse, kTrue);
}

BddManager::NodeRef BddManager::not_(NodeRef f) { return ite(f, kFalse, kTrue); }
BddManager::NodeRef BddManager::and_(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
BddManager::NodeRef BddManager::or_(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
BddManager::NodeRef BddManager::xor_(NodeRef f, NodeRef g) { return ite(f, not_(g), g); }

BddManager::NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::array<std::uint32_t, 3> key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

  const int top = std::min(var_of(f), std::min(var_of(g), var_of(h)));
  const auto cofactor = [&](NodeRef x, bool positive) {
    if (var_of(x) != top) return x;
    return positive ? nodes_[x].hi : nodes_[x].lo;
  };
  const NodeRef lo = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const NodeRef hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const NodeRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

bool BddManager::evaluate(NodeRef f, const std::vector<bool>& assignment) const {
  if (static_cast<int>(assignment.size()) != num_vars_) {
    throw std::invalid_argument("BddManager::evaluate: assignment size mismatch");
  }
  while (f > kTrue) {
    const Node& node = nodes_[f];
    f = assignment[static_cast<std::size_t>(node.var)] ? node.hi : node.lo;
  }
  return f == kTrue;
}

std::optional<std::vector<bool>> BddManager::find_satisfying(NodeRef f) const {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> assignment(static_cast<std::size_t>(num_vars_), false);
  while (f > kTrue) {
    const Node& node = nodes_[f];
    // In a reduced BDD every non-false node reaches the true terminal; take
    // the low branch when possible, else set the variable and go high.
    if (node.lo != kFalse) {
      f = node.lo;
    } else {
      assignment[static_cast<std::size_t>(node.var)] = true;
      f = node.hi;
    }
  }
  return assignment;
}

double BddManager::count_satisfying(NodeRef f) const {
  // count(f) over the variables at or below var(f); scale at the root.
  std::unordered_map<NodeRef, double> memo;
  const auto count = [&](auto&& self, NodeRef x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = memo.find(x); it != memo.end()) return it->second;
    const Node& node = nodes_[x];
    const double lo = self(self, node.lo) * std::ldexp(1.0, var_of(node.lo) - node.var - 1);
    const double hi = self(self, node.hi) * std::ldexp(1.0, var_of(node.hi) - node.var - 1);
    const double total = lo + hi;
    memo.emplace(x, total);
    return total;
  };
  return count(count, f) * std::ldexp(1.0, var_of(f));
}

}  // namespace vlcsa::netlist
