#include "speculative/vlcsa.hpp"

namespace vlcsa::spec {

VlcsaStep VlcsaModel::step(const ApInt& a, const ApInt& b) const {
  VlcsaStep out;
  out.eval = scsa_.evaluate(a, b);
  const ScsaEvaluation& ev = out.eval;

  if (config_.variant == ScsaVariant::kScsa1) {
    out.stalled = ev.vlcsa1_stall();
    if (out.stalled) {
      out.result = ev.recovered;
      out.cout = ev.recovered_cout;
      out.cycles = 2;
    } else {
      out.result = ev.spec0;
      out.cout = ev.spec0_cout;
      out.cycles = 1;
    }
  } else {
    out.stalled = ev.vlcsa2_stall();
    if (out.stalled) {
      out.result = ev.recovered;
      out.cout = ev.recovered_cout;
      out.cycles = 2;
    } else {
      // ERR0 = 0 -> S*,0; ERR0 = 1 & ERR1 = 0 -> S*,1 (Ch. 6.7).
      out.result = ev.vlcsa2_selected();
      out.cout = ev.vlcsa2_selected_cout();
      out.cycles = 1;
    }
  }
  return out;
}

void VlcsaModel::step_batch(const BitSlicedBatch& batch, VlcsaBatchStep& out) const {
  scsa_.evaluate_batch(batch, out.eval);
  const ScsaBatchEvaluation& ev = out.eval;
  const std::size_t lw = static_cast<std::size_t>(ev.lane_words());
  out.stalled.resize(lw);
  out.emitted_wrong.resize(lw);
  for (std::size_t w = 0; w < lw; ++w) {
    const int wi = static_cast<int>(w);
    if (config_.variant == ScsaVariant::kScsa1) {
      out.stalled[w] = ev.vlcsa1_stall(wi);
      // Stalled lanes emit the (always exact) recovery result; the rest S*,0.
      out.emitted_wrong[w] = ~out.stalled[w] & ev.spec0_wrong[w];
    } else {
      out.stalled[w] = ev.vlcsa2_stall(wi);
      out.emitted_wrong[w] = ~out.stalled[w] & ev.vlcsa2_selected_wrong(wi);
    }
  }
}

}  // namespace vlcsa::spec
