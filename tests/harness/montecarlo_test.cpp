#include "harness/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "speculative/error_model.hpp"

namespace vlcsa::harness {
namespace {

TEST(MonteCarlo, VlcsaResultIsDeterministicInSeed) {
  const spec::VlcsaConfig config{64, 10, spec::ScsaVariant::kScsa1};
  auto s1 = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  auto s2 = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto r1 = run_vlcsa(config, *s1, 5000, 42);
  const auto r2 = run_vlcsa(config, *s2, 5000, 42);
  EXPECT_EQ(r1.actual_errors, r2.actual_errors);
  EXPECT_EQ(r1.nominal_errors, r2.nominal_errors);
}

TEST(MonteCarlo, InvariantCountersHoldOnUniform) {
  const spec::VlcsaConfig config{64, 8, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto r = run_vlcsa(config, *source, 50000, 7);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.emitted_wrong, 0u);
  EXPECT_GE(r.nominal_errors, r.actual_errors);
  EXPECT_GT(r.nominal_errors, 0u);  // k = 8 errs often enough to observe
  EXPECT_NEAR(r.average_cycles(), 1.0 + r.nominal_rate(), 1e-12);
}

TEST(MonteCarlo, NominalRateTracksAnalyticalModel) {
  // Fig 7.1 in miniature: ERR0 rate vs the exact DP model.
  const int n = 64, k = 7;
  const spec::VlcsaConfig config{n, k, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, n);
  const std::uint64_t samples = 300000;
  const auto r = run_vlcsa(config, *source, samples, 11);
  const double expected = spec::scsa_exact_error_rate(n, k);
  const double sigma = std::sqrt(expected * (1 - expected) / static_cast<double>(samples));
  EXPECT_NEAR(r.nominal_rate(), expected, 5 * sigma + 1e-4);
}

TEST(MonteCarlo, GaussianVlcsa1StallsNearQuarter) {
  // Table 7.1: ~25% for 2's-complement Gaussian with sigma = 2^32.
  const spec::VlcsaConfig config{64, 14, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                                   arith::GaussianParams{0.0, 4294967296.0});
  const auto r = run_vlcsa(config, *source, 40000, 13);
  EXPECT_NEAR(r.nominal_rate(), 0.25, 0.02);
  EXPECT_EQ(r.false_negatives, 0u);
}

TEST(MonteCarlo, GaussianVlcsa2StallsRarely) {
  // Table 7.2: ~0.01% for the same inputs.
  const spec::VlcsaConfig config{64, 14, spec::ScsaVariant::kScsa2};
  auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64,
                                   arith::GaussianParams{0.0, 4294967296.0});
  const auto r = run_vlcsa(config, *source, 40000, 13);
  EXPECT_LT(r.nominal_rate(), 0.005);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.emitted_wrong, 0u);
}

TEST(MonteCarlo, VlsaRunHonorsInvariants) {
  const spec::VlsaConfig config{64, 8};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const auto r = run_vlsa(config, *source, 50000, 17);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.emitted_wrong, 0u);
  EXPECT_GE(r.nominal_errors, r.actual_errors);
  const double expected = spec::vlsa_exact_error_rate(64, 8);
  const double sigma = std::sqrt(expected * (1 - expected) / 50000.0);
  EXPECT_NEAR(r.actual_rate(), expected, 5 * sigma + 1e-3);
}

TEST(MonteCarlo, WindowSearchFindsSmallGaussianWindows) {
  // Table 7.5's procedure in miniature: for 2's-complement Gaussian inputs
  // the VLCSA 2 window needed for ~0.25% is small and width-insensitive.
  const auto found = find_window_for_nominal_rate(
      64, spec::ScsaVariant::kScsa2, arith::InputDistribution::kGaussianTwos,
      arith::GaussianParams{0.0, 4294967296.0}, 2.5e-3, 1.25, 20000, 19, 4, 16);
  EXPECT_GE(found.window, 4);
  EXPECT_LE(found.window, 12);
  EXPECT_LE(found.result.nominal_rate(), 1.25 * 2.5e-3);
}

TEST(MonteCarlo, ZeroSamplesIsWellDefined) {
  const spec::VlcsaConfig config{32, 8, spec::ScsaVariant::kScsa1};
  auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 32);
  const auto r = run_vlcsa(config, *source, 0, 1);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_DOUBLE_EQ(r.actual_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.average_cycles(), 0.0);
}

}  // namespace
}  // namespace vlcsa::harness
