#pragma once
// Strict JSON parser — the read-side dual of report.hpp's JsonObject writer.
// One implementation serves every place the repo consumes JSON: service
// protocol requests (src/service), cache-file loading, and validating the
// records the explorer's --json flag emits.
//
// Strictness mirrors the CLI parser's philosophy (cli.hpp): the entire input
// must be exactly one RFC 8259 value, duplicate object keys are errors (a
// request naming "seed" twice must not silently drop one), unescaped control
// characters are errors, and numbers follow the JSON grammar exactly (no
// leading zeros, no bare '.', no hex).  Every malformed input is reported
// through JsonParse::error with the byte offset — parsing never throws.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vlcsa::harness {

/// One parsed JSON value.  Object members and array items preserve document
/// order (the same insertion-order contract JsonObject writes with).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  [[nodiscard]] static JsonValue make_null();
  [[nodiscard]] static JsonValue make_bool(bool value);
  [[nodiscard]] static JsonValue make_number(std::string token, double value);
  [[nodiscard]] static JsonValue make_string(std::string value);
  [[nodiscard]] static JsonValue make_array(std::vector<JsonValue> items);
  [[nodiscard]] static JsonValue make_object(std::vector<Member> members);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Kind-checked accessors; throw std::logic_error when the value is not of
  /// the requested kind (a programmer error, unlike malformed input).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// The number's raw source token ("1e3", "0.25", ...), preserved so exact
  /// integer extraction does not round-trip through double.
  [[nodiscard]] const std::string& number_text() const;

  /// True iff this is a number that is exactly a non-negative base-10
  /// integer fitting std::uint64_t ("1e3" and "1.0" are not, by design —
  /// protocol counters must be written as integers).
  [[nodiscard]] bool to_u64(std::uint64_t& out) const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  // string payload, or the raw number token
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Result of parsing; `error` is empty on success and names the problem plus
/// the byte offset otherwise.
struct JsonParse {
  JsonValue value;
  std::string error;
  std::size_t offset = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses `text` as exactly one JSON value (leading/trailing whitespace
/// allowed, trailing garbage is an error).  Nesting is limited to
/// kMaxJsonDepth so adversarial request lines cannot overflow the stack.
inline constexpr int kMaxJsonDepth = 64;
[[nodiscard]] JsonParse parse_json(std::string_view text);

}  // namespace vlcsa::harness
