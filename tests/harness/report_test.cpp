#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace vlcsa::harness {
namespace {

TEST(JsonEscape, QuotesBackslashesAndNamedControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nfeed\rtab\t"), "line\\nfeed\\rtab\\t");
}

TEST(JsonEscape, UnnamedControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("\b\f"), "\\u0008\\u000c");  // no named escape emitted
  // 0x20 and above pass through, including high bytes (UTF-8 sequences).
  EXPECT_EQ(json_escape(" ~"), " ~");
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonObject, WritesInsertionOrderAndTypes) {
  JsonObject object;
  object.add("s", "v\"q");
  object.add("u", std::uint64_t{18446744073709551615ull});
  object.add("i", -3);
  object.add("b", true);
  EXPECT_EQ(object.render_line(),
            "{\"s\": \"v\\\"q\", \"u\": 18446744073709551615, \"i\": -3, \"b\": true}");
  std::ostringstream os;
  object.write(os);
  EXPECT_EQ(os.str(),
            "{\n  \"s\": \"v\\\"q\",\n  \"u\": 18446744073709551615,\n  \"i\": -3,\n"
            "  \"b\": true\n}\n");
}

TEST(JsonObject, NonFiniteDoublesBecomeNull) {
  JsonObject object;
  object.add("nan", std::nan(""));
  object.add("inf", std::numeric_limits<double>::infinity());
  object.add("neg_inf", -std::numeric_limits<double>::infinity());
  object.add("finite", 0.5);
  EXPECT_EQ(object.render_line(),
            "{\"nan\": null, \"inf\": null, \"neg_inf\": null, \"finite\": 0.5}");
}

TEST(JsonObject, EscapesKeysToo) {
  JsonObject object;
  object.add("we\"ird\nkey", 1);
  EXPECT_EQ(object.render_line(), "{\"we\\\"ird\\nkey\": 1}");
}

TEST(JsonObject, AddJsonEmbedsRenderedValueVerbatim) {
  JsonObject record;
  record.add("samples", std::uint64_t{5});
  JsonObject response;
  response.add("status", "ok");
  response.add_json("record", record.render_line());
  EXPECT_EQ(response.render_line(), "{\"status\": \"ok\", \"record\": {\"samples\": 5}}");
}

TEST(JsonObject, EmptyObject) {
  JsonObject object;
  EXPECT_EQ(object.render_line(), "{}");
  std::ostringstream os;
  object.write(os);
  EXPECT_EQ(os.str(), "{\n}\n");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.0001), "0.01%");
  EXPECT_EQ(fmt_pct(0.2501), "25.01%");
  EXPECT_EQ(fmt_pct(0.5, 0), "50%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(1.005, 2), "1.00");  // round-to-even banker-ish via printf
  EXPECT_EQ(fmt_fixed(2.5, 1), "2.5");
}

TEST(Format, DeltaPercent) {
  EXPECT_EQ(fmt_delta_pct(110.0, 100.0), "+10.0%");
  EXPECT_EQ(fmt_delta_pct(81.0, 100.0), "-19.0%");
  EXPECT_EQ(fmt_delta_pct(1.0, 0.0), "n/a");
}

TEST(Format, Scientific) { EXPECT_EQ(fmt_sci(0.000114), "1.14e-04"); }

TEST(BenchArgs, DefaultsAndOverrides) {
  const char* argv1[] = {"bench"};
  auto args = BenchArgs::parse(1, const_cast<char**>(argv1), 1000);
  EXPECT_EQ(args.samples, 1000u);
  EXPECT_EQ(args.seed, 1u);

  const char* argv2[] = {"bench", "--samples=5", "--seed=77"};
  args = BenchArgs::parse(3, const_cast<char**>(argv2), 1000);
  EXPECT_EQ(args.samples, 5u);
  EXPECT_EQ(args.seed, 77u);
}

TEST(BenchArgs, UnknownArgumentThrows) {
  const char* argv[] = {"bench", "--frobnicate"};
  EXPECT_THROW(BenchArgs::parse(2, const_cast<char**>(argv), 1), std::invalid_argument);
}

TEST(BenchArgs, ToleratesGoogleBenchmarkFlags) {
  const char* argv[] = {"bench", "--benchmark_filter=all"};
  EXPECT_NO_THROW(BenchArgs::parse(2, const_cast<char**>(argv), 1));
}

TEST(BenchArgs, RejectsMalformedValuesStrictly) {
  // BenchArgs shares the strict cli.hpp parser: trailing garbage that the
  // old std::stoull-based parser silently accepted ("12x" -> 12) now throws.
  for (const char* arg : {"--samples=12x", "--samples=", "--samples=1e3", "--seed=-1",
                          "--threads=1.5", "--threads=2147483648", "--samples"}) {
    const char* argv[] = {"bench", arg};
    EXPECT_THROW(BenchArgs::parse(2, const_cast<char**>(argv), 1), std::invalid_argument)
        << arg;
  }
}

TEST(BenchArgs, ErrorNamesTheOffendingArgument) {
  const char* argv[] = {"bench", "--seed=abc"};
  try {
    BenchArgs::parse(2, const_cast<char**>(argv), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--seed"), std::string::npos) << error.what();
  }
}

TEST(BenchArgs, ParsesThreads) {
  const char* argv[] = {"bench", "--threads=8"};
  const auto args = BenchArgs::parse(2, const_cast<char**>(argv), 1);
  EXPECT_EQ(args.threads, 8);
}

TEST(Banner, ContainsArtifactAndDescription) {
  std::ostringstream os;
  print_banner(os, "Table 7.1", "error rates");
  EXPECT_NE(os.str().find("Table 7.1"), std::string::npos);
  EXPECT_NE(os.str().find("error rates"), std::string::npos);
}

}  // namespace
}  // namespace vlcsa::harness
