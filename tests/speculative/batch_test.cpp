// Batch-vs-scalar differential tests: the bit-sliced evaluate_batch /
// step_batch paths must reproduce the scalar models' predicates lane for
// lane, at every lane width and on every planeops backend this host can
// run.  Coverage:
//  * exhaustive over ALL operand pairs and ALL window/chain sizes at small
//    widths (n <= 8 — 4^n pairs stays unit-test cheap there);
//  * exhaustive in one operand x deterministic-pseudorandom partner at
//    n in {10, 12}, again over all windows/chains;
//  * randomized at n in {32, 64, 128} x every registered operand
//    distribution x all four models (ScsaModel, VLCSA 1, VLCSA 2, VLSA);
//  * the backend/lane-width matrix: scalar vs SIMD backend x lane words
//    {1, 2, 4} x all four models x tail sizes {1, 63, 65, 127, 255, 257},
//    pinned bit-identical both per-lane (direct batch loads) and through
//    the sharded engine against the scalar EvalPath.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "arith/distributions.hpp"
#include "arith/planeops.hpp"
#include "harness/engine.hpp"
#include "harness/montecarlo.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlcsa.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::spec {
namespace {

using arith::ApInt;
using arith::BitSlicedBatch;
namespace planeops = arith::planeops;

/// Bit j of lane-mask group `mask` (word j/64, bit j%64).
bool mask_lane(const planeops::PlaneVec& mask, std::size_t j) {
  return ((mask[j / 64] >> (j % 64)) & 1) != 0;
}

/// Compares every batch lane mask against per-sample scalar evaluations.
void check_scsa_batch(const ScsaModel& model, const std::vector<ApInt>& a,
                      const std::vector<ApInt>& b, int lane_words = 1) {
  BitSlicedBatch batch(model.config().width, lane_words);
  batch.load(a, b);
  ScsaBatchEvaluation ev;
  model.evaluate_batch(batch, ev);
  ASSERT_EQ(ev.lane_words(), lane_words);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.evaluate(a[j], b[j]);
    const int w = static_cast<int>(j / 64);
    const auto lane = [&](const planeops::PlaneVec& mask) { return mask_lane(mask, j); };
    const auto lane_word = [&](std::uint64_t word) { return ((word >> (j % 64)) & 1) != 0; };
    ASSERT_EQ(lane(ev.spec0_wrong), !scalar.spec0_correct())
        << "spec0, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.spec1_wrong), !scalar.spec1_correct())
        << "spec1, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.err0), scalar.err0)
        << "err0, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane(ev.err1), scalar.err1)
        << "err1, n=" << model.config().width << " k=" << model.config().window
        << " a=" << a[j] << " b=" << b[j];
    ASSERT_EQ(lane_word(ev.either_wrong(w)), !scalar.either_correct());
    ASSERT_EQ(lane_word(ev.vlcsa2_selected_wrong(w)), !scalar.vlcsa2_selected_correct());
  }
}

void check_vlsa_batch(const VlsaModel& model, const std::vector<ApInt>& a,
                      const std::vector<ApInt>& b, int lane_words = 1) {
  BitSlicedBatch batch(model.config().width, lane_words);
  batch.load(a, b);
  VlsaBatchEvaluation ev;
  model.evaluate_batch(batch, ev);
  ASSERT_EQ(ev.lane_words(), lane_words);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.evaluate(a[j], b[j]);
    ASSERT_EQ(mask_lane(ev.spec_wrong, j), !scalar.spec_correct())
        << "n=" << model.config().width << " l=" << model.config().chain << " a=" << a[j]
        << " b=" << b[j];
    ASSERT_EQ(mask_lane(ev.err, j), scalar.err)
        << "n=" << model.config().width << " l=" << model.config().chain << " a=" << a[j]
        << " b=" << b[j];
  }
}

void check_vlcsa_batch(const VlcsaModel& model, const std::vector<ApInt>& a,
                       const std::vector<ApInt>& b, int lane_words = 1) {
  BitSlicedBatch batch(model.config().width, lane_words);
  batch.load(a, b);
  VlcsaBatchStep step;
  model.step_batch(batch, step);
  ASSERT_EQ(step.lane_words(), lane_words);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto scalar = model.step(a[j], b[j]);
    ASSERT_EQ(mask_lane(step.stalled, j), scalar.stalled)
        << to_string(model.config().variant) << " n=" << model.config().width
        << " k=" << model.config().window << " a=" << a[j] << " b=" << b[j];
    const bool scalar_emitted_wrong =
        scalar.result != scalar.eval.exact || scalar.cout != scalar.eval.exact_cout;
    ASSERT_EQ(mask_lane(step.emitted_wrong, j), scalar_emitted_wrong);
  }
}

TEST(ScsaBatchDifferentialTest, ExhaustiveSmallWidthsAllWindows) {
  for (int n = 1; n <= 8; ++n) {
    for (int k = 1; k <= n; ++k) {
      const ScsaModel model(ScsaConfig{n, k});
      std::vector<ApInt> a, b;
      a.reserve(64);
      b.reserve(64);
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        for (std::uint64_t vb = 0; vb < limit; ++vb) {
          a.push_back(ApInt::from_u64(n, va));
          b.push_back(ApInt::from_u64(n, vb));
          if (a.size() == 64) {
            check_scsa_batch(model, a, b);
            a.clear();
            b.clear();
          }
        }
      }
      if (!a.empty()) check_scsa_batch(model, a, b);
    }
  }
}

TEST(ScsaBatchDifferentialTest, ExhaustiveOperandAtMediumWidthsAllWindows) {
  // n in {10, 12}: one operand sweeps its full range, the partner is a
  // deterministic pseudorandom function of (value, window) — exhaustive in
  // `a` where the full cross product would be too slow for a unit test.
  for (const int n : {10, 12}) {
    for (int k = 1; k <= n; ++k) {
      const ScsaModel model(ScsaConfig{n, k});
      vlcsa::arith::BlockRng partner(static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(k));
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        a.push_back(ApInt::from_u64(n, va));
        b.push_back(ApInt::from_u64(n, partner()));
        if (a.size() == 64) {
          check_scsa_batch(model, a, b);
          a.clear();
          b.clear();
        }
      }
      if (!a.empty()) check_scsa_batch(model, a, b);
    }
  }
}

TEST(VlsaBatchDifferentialTest, ExhaustiveSmallWidthsAllChains) {
  for (int n = 1; n <= 8; ++n) {
    for (int l = 1; l <= n; ++l) {
      const VlsaModel model(VlsaConfig{n, l});
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        for (std::uint64_t vb = 0; vb < limit; ++vb) {
          a.push_back(ApInt::from_u64(n, va));
          b.push_back(ApInt::from_u64(n, vb));
          if (a.size() == 64) {
            check_vlsa_batch(model, a, b);
            a.clear();
            b.clear();
          }
        }
      }
      if (!a.empty()) check_vlsa_batch(model, a, b);
    }
  }
}

TEST(VlsaBatchDifferentialTest, ExhaustiveOperandAtMediumWidthsAllChains) {
  for (const int n : {10, 12}) {
    for (int l = 1; l <= n; ++l) {
      const VlsaModel model(VlsaConfig{n, l});
      vlcsa::arith::BlockRng partner(static_cast<std::uint64_t>(n) * 2000 + static_cast<std::uint64_t>(l));
      std::vector<ApInt> a, b;
      const std::uint64_t limit = std::uint64_t{1} << n;
      for (std::uint64_t va = 0; va < limit; ++va) {
        a.push_back(ApInt::from_u64(n, va));
        b.push_back(ApInt::from_u64(n, partner()));
        if (a.size() == 64) {
          check_vlsa_batch(model, a, b);
          a.clear();
          b.clear();
        }
      }
      if (!a.empty()) check_vlsa_batch(model, a, b);
    }
  }
}

/// Randomized sweep: width x distribution, driven through all four models.
class RandomizedBatchTest
    : public ::testing::TestWithParam<std::tuple<int, arith::InputDistribution>> {};

TEST_P(RandomizedBatchTest, AllFourModelsMatchScalar) {
  const auto [n, dist] = GetParam();
  const auto source = arith::make_source(dist, n);
  vlcsa::arith::BlockRng rng(static_cast<std::uint64_t>(n) * 31 + static_cast<int>(dist));

  // Window/chain choices: one small (frequent errors) and one realistic.
  for (const int k : {4, 11}) {
    const ScsaModel scsa(ScsaConfig{n, k});
    const VlcsaModel vlcsa1(VlcsaConfig{n, k, ScsaVariant::kScsa1});
    const VlcsaModel vlcsa2(VlcsaConfig{n, k, ScsaVariant::kScsa2});
    const VlsaModel vlsa(VlsaConfig{n, std::min(n, k + 2)});
    for (int round = 0; round < 4; ++round) {
      std::vector<ApInt> a, b;
      for (int j = 0; j < 64; ++j) {
        auto [x, y] = source->next(rng);
        a.push_back(std::move(x));
        b.push_back(std::move(y));
      }
      check_scsa_batch(scsa, a, b);
      check_vlcsa_batch(vlcsa1, a, b);
      check_vlcsa_batch(vlcsa2, a, b);
      check_vlsa_batch(vlsa, a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthByDistribution, RandomizedBatchTest,
    ::testing::Combine(::testing::Values(32, 64, 128),
                       ::testing::Values(arith::InputDistribution::kUniformUnsigned,
                                         arith::InputDistribution::kUniformTwos,
                                         arith::InputDistribution::kGaussianUnsigned,
                                         arith::InputDistribution::kGaussianTwos)));

/// Short batches (tail shapes) still evaluate correctly: unused lanes are
/// zero-padded operands, which must not disturb the populated lanes.
TEST(ScsaBatchDifferentialTest, PartialBatchLanesMatch) {
  const ScsaModel model(ScsaConfig{64, 8});
  vlcsa::arith::BlockRng rng(77);
  for (const int count : {1, 7, 63}) {
    std::vector<ApInt> a, b;
    for (int j = 0; j < count; ++j) {
      a.push_back(ApInt::random(64, rng));
      b.push_back(ApInt::random(64, rng));
    }
    check_scsa_batch(model, a, b);
  }
}

// ---- backend x lane-width differential matrix -------------------------------

/// The matrix axes: (backend, lane_words).  Backends not available on this
/// host are skipped (the scalar column always runs).
class BackendLaneWidthTest
    : public ::testing::TestWithParam<std::tuple<planeops::Backend, int>> {
 protected:
  void SetUp() override {
    if (!planeops::backend_available(std::get<0>(GetParam()))) {
      GTEST_SKIP() << planeops::to_string(std::get<0>(GetParam()))
                   << " backend not supported on this host";
    }
    ASSERT_TRUE(planeops::set_backend(std::get<0>(GetParam())));
  }
  // Restore the pre-test backend (not "auto"): a process pinned via
  // VLCSA_FORCE_BACKEND must stay pinned for the tests that follow.
  void TearDown() override { planeops::set_backend(prev_); }

 private:
  planeops::Backend prev_ = planeops::active_backend();
};

/// Direct batch loads at every tail size that fits the lane count: each
/// loaded lane must match the scalar model, for all four models.
TEST_P(BackendLaneWidthTest, AllFourModelsMatchScalarPerLane) {
  const auto [backend, lane_words] = GetParam();
  (void)backend;
  const int n = 64;
  const int k = 6;  // small window: frequent errors exercise every predicate
  const ScsaModel scsa(ScsaConfig{n, k});
  const VlcsaModel vlcsa1(VlcsaConfig{n, k, ScsaVariant::kScsa1});
  const VlcsaModel vlcsa2(VlcsaConfig{n, k, ScsaVariant::kScsa2});
  const VlsaModel vlsa(VlsaConfig{n, k + 2});
  vlcsa::arith::BlockRng rng(2024);
  for (const int count : {1, 63, 65, 127, 255, 257}) {
    if (count > 64 * lane_words) continue;  // does not fit this lane width
    std::vector<ApInt> a, b;
    for (int j = 0; j < count; ++j) {
      a.push_back(ApInt::random(n, rng));
      b.push_back(ApInt::random(n, rng));
    }
    check_scsa_batch(scsa, a, b, lane_words);
    check_vlcsa_batch(vlcsa1, a, b, lane_words);
    check_vlcsa_batch(vlcsa2, a, b, lane_words);
    check_vlsa_batch(vlsa, a, b, lane_words);
  }
}

/// Through the sharded engine: total sample counts with every tail shape
/// (count % (64 * lane_words) from "pure tail" to "one batch + 1") must
/// produce counters bit-identical to the scalar EvalPath — the same pinning
/// the service byte-identity contract rides on.
TEST_P(BackendLaneWidthTest, EngineCountersBitIdenticalToScalarPath) {
  const auto [backend, lane_words] = GetParam();
  (void)backend;
  const auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64);
  for (const std::uint64_t samples : {1ull, 63ull, 65ull, 127ull, 255ull, 257ull}) {
    harness::RunOptions options;
    options.samples = samples;
    options.seed = 29;
    options.threads = 1;
    options.lane_words = lane_words;
    const spec::VlcsaConfig config1{64, 9, ScsaVariant::kScsa1};
    const spec::VlcsaConfig config2{64, 9, ScsaVariant::kScsa2};
    const spec::VlsaConfig vlsa_config{64, 11};
    const auto b1 = harness::run_vlcsa(config1, *source, options, harness::EvalPath::kBatched);
    const auto s1 = harness::run_vlcsa(config1, *source, options, harness::EvalPath::kScalar);
    EXPECT_EQ(b1, s1) << "VLCSA1 samples=" << samples << " W=" << lane_words;
    const auto b2 = harness::run_vlcsa(config2, *source, options, harness::EvalPath::kBatched);
    const auto s2 = harness::run_vlcsa(config2, *source, options, harness::EvalPath::kScalar);
    EXPECT_EQ(b2, s2) << "VLCSA2 samples=" << samples << " W=" << lane_words;
    const auto bv = harness::run_vlsa(vlsa_config, *source, options, harness::EvalPath::kBatched);
    const auto sv = harness::run_vlsa(vlsa_config, *source, options, harness::EvalPath::kScalar);
    EXPECT_EQ(bv, sv) << "VLSA samples=" << samples << " W=" << lane_words;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendByLaneWords, BackendLaneWidthTest,
    ::testing::Combine(::testing::Values(planeops::Backend::kScalar,
                                         planeops::Backend::kAvx2,
                                         planeops::Backend::kAvx512,
                                         planeops::Backend::kNeon),
                       ::testing::Values(1, 2, 4, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<planeops::Backend, int>>& info) {
      return std::string(planeops::to_string(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vlcsa::spec
