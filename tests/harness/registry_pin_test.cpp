// Registry-wide regression pin: golden ErrorRateResult counters for a sample
// of registry experiments at 20000 samples, seed 1.  Counters must stay
// bit-identical — at every lane width {1, 4} and thread count {1, 4}, on
// whatever planeops backend dispatch selected.  If one of these values ever
// moves, the RNG (or the engine's stream discipline) broke its identity
// contract, and every cached service record on disk is silently stale.
//
// The sample spans both VLCSA variants, VLSA, three distributions, and
// widths 64..256; fig6.2 (crypto workload) is deliberately NOT pinned — its
// internal seeding moved onto the shared seed_seq helper in the same PR that
// introduced BlockRng, which changes its stream by design.
//
// Golden provenance, by row:
//  * Uniform rows (table7.4, fig7.1, vlsa): recorded from the pre-BlockRng
//    baseline (the std::mt19937_64 era, PR 4 head) and never moved since —
//    the block RNG is sequence-identical to the std engine.
//  * Gaussian rows (table7.1, table7.2, eq5.2): re-recorded at the
//    gauss-rng-v2 migration, when GaussianUnsignedSource/GaussianTwosSource
//    moved from per-sample std::normal_distribution to the block ziggurat
//    (arith::GaussianBlockSampler).  That swap changes the Gaussian variate
//    stream by design; the matching service-cache stream_version bump keeps
//    pre-migration disk records from being served (see docs/OPERATIONS.md).
//    The uniform rows staying bit-identical across the same PR is the
//    evidence the migration touched only the Gaussian streams.

#include <gtest/gtest.h>

#include <cstdint>

#include "arith/carry_chain.hpp"
#include "harness/experiments.hpp"
#include "harness/montecarlo.hpp"

namespace vlcsa::harness {
namespace {

struct GoldenCounters {
  const char* experiment;
  std::uint64_t actual_errors;
  std::uint64_t nominal_errors;
  std::uint64_t either_wrong;
  std::uint64_t total_cycles;
};

// samples=20000, seed=1; false_negatives and emitted_wrong were 0 everywhere
// (also asserted below as the model invariants they are).  Gaussian rows are
// gauss-rng-v2 values; uniform rows are PR 4 head values (see header).
constexpr GoldenCounters kGolden[] = {
    {"table7.1/n64", 5102, 5102, 1, 25102},
    {"table7.2/n128", 1, 1, 1, 20001},
    {"table7.4/n256-rate0.01", 4, 5, 0, 20005},
    {"fig7.1/n64-k8", 230, 265, 2, 20265},
    {"eq5.2/n64-gaussian-2c", 27, 61, 27, 20061},
    {"vlsa/n128", 1, 4, 1, 20004},
};

constexpr std::uint64_t kSamples = 20000;
constexpr std::uint64_t kSeed = 1;

class RegistryPinTest
    : public ::testing::TestWithParam<std::tuple<GoldenCounters, int, int>> {};

TEST_P(RegistryPinTest, CountersMatchPreBlockRngBaseline) {
  const auto& [golden, lane_words, threads] = GetParam();
  const ErrorRateExperiment* experiment = find_error_rate_experiment(golden.experiment);
  ASSERT_NE(experiment, nullptr) << golden.experiment;

  const auto source =
      arith::make_source(experiment->dist, experiment->width, experiment->params);
  RunOptions options;
  options.samples = kSamples;
  options.seed = kSeed;
  options.threads = threads;
  options.lane_words = lane_words;

  ErrorRateResult result;
  switch (experiment->model) {
    case ModelKind::kVlcsa1:
      result = run_vlcsa({experiment->width, experiment->window, spec::ScsaVariant::kScsa1},
                         *source, options);
      break;
    case ModelKind::kVlcsa2:
      result = run_vlcsa({experiment->width, experiment->window, spec::ScsaVariant::kScsa2},
                         *source, options);
      break;
    case ModelKind::kVlsa:
      result = run_vlsa({experiment->width, experiment->window}, *source, options);
      break;
  }

  EXPECT_EQ(result.samples, kSamples);
  EXPECT_EQ(result.actual_errors, golden.actual_errors);
  EXPECT_EQ(result.nominal_errors, golden.nominal_errors);
  EXPECT_EQ(result.either_wrong, golden.either_wrong);
  EXPECT_EQ(result.total_cycles, golden.total_cycles);
  EXPECT_EQ(result.false_negatives, 0u);
  EXPECT_EQ(result.emitted_wrong, 0u);
}

std::string pin_name(
    const ::testing::TestParamInfo<std::tuple<GoldenCounters, int, int>>& info) {
  std::string name = std::get<0>(info.param).experiment;
  for (char& c : name) {
    if (c == '/' || c == '.' || c == '-') c = '_';
  }
  return name + "_w" + std::to_string(std::get<1>(info.param)) + "_t" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(GoldenByLaneWordsByThreads, RegistryPinTest,
                         ::testing::Combine(::testing::ValuesIn(kGolden),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 4)),
                         pin_name);

// The chain-profile side of the registry, pinned the same way (fig6.1 runs
// the uniform source through the per-sample engine path; its histogram is a
// pure function of the shard streams).
TEST(RegistryPinTest, ChainProfileHistogramMatchesPreBlockRngBaseline) {
  const ChainProfileExperiment* experiment =
      find_chain_profile_experiment("fig6.1/uniform-unsigned");
  ASSERT_NE(experiment, nullptr);
  for (const int threads : {1, 4}) {
    const auto profile = run_experiment(*experiment, kSamples, kSeed, threads);
    EXPECT_EQ(profile.additions(), kSamples);
    std::uint64_t fnv = 1469598103934665603ULL;
    for (const std::uint64_t count : profile.counts()) {
      fnv ^= count;
      fnv *= 1099511628211ULL;
    }
    EXPECT_EQ(fnv, 18201216359876648524ULL) << "threads " << threads;
  }
}

}  // namespace
}  // namespace vlcsa::harness
